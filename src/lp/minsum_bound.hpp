/// \file minsum_bound.hpp
/// Lower bounds on the optimal weighted sum of completion times.
///
/// The main bound is the paper's §3.3 interval-indexed LP relaxation:
/// decision variable x_{i,l} = 1 when task i completes in interval l of the
/// geometric grid; objective sum w_i * (interval left endpoint) * x_{i,l};
/// constraints: each task completes somewhere, and for every prefix of
/// intervals the minimal areas of the tasks finishing in it fit in the
/// m * t rectangle. Our formulation adds two soundness patches to the
/// paper's sketch (documented in DESIGN.md §3):
///
///  * a leading interval (0, t_0] with zero objective coefficient, so tasks
///    that finish before t_0 are representable at a cost below their true
///    completion time;
///  * a trailing open interval (t_{K+1}, inf) with no area constraint, so
///    schedules longer than 2*C*max remain representable.
///
/// Both patches only enlarge the LP's feasible set relative to any feasible
/// schedule's induced solution, so the optimum stays a valid lower bound.
///
/// A secondary, purely combinatorial "squashed area" bound is provided as a
/// fast cross-check (used heavily in the property tests).

#pragma once

#include "lp/simplex.hpp"
#include "tasks/instance.hpp"
#include "tasks/time_grid.hpp"

namespace moldsched {

struct MinsumBoundResult {
  double bound = 0.0;        ///< valid lower bound on OPT(sum w_i C_i)
  LpStatus status = LpStatus::Optimal;
  std::int64_t iterations = 0;
  int num_vars = 0;
  int num_rows = 0;
};

/// Build and solve the relaxation for the given grid (normally
/// TimeGrid(estimate_cmax(instance).estimate, instance.tmin())).
/// On solver failure (iteration limit) falls back to the squashed-area
/// bound and reports the solver status.
[[nodiscard]] MinsumBoundResult minsum_lower_bound(
    const Instance& instance, const TimeGrid& grid,
    const SimplexOptions& options = {});

/// Convenience overload: derives the grid from the dual-approximation
/// makespan estimate, as the paper does.
[[nodiscard]] MinsumBoundResult minsum_lower_bound(const Instance& instance);

/// Squashed-area bound: sort minimal task areas increasingly; the k-th
/// completion in ANY schedule is at least (sum of k smallest areas) / m; by
/// the rearrangement inequality, pairing the largest weights with the
/// earliest positions yields a valid lower bound on sum w_i C_i.
[[nodiscard]] double squashed_area_bound(const Instance& instance);

}  // namespace moldsched
