#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace moldsched {

void LpProblem::validate() const {
  if (num_vars < 0) throw std::invalid_argument("LpProblem: num_vars < 0");
  if (static_cast<int>(objective.size()) != num_vars) {
    throw std::invalid_argument("LpProblem: objective size mismatch");
  }
  if (!upper.empty() && static_cast<int>(upper.size()) != num_vars) {
    throw std::invalid_argument("LpProblem: upper size mismatch");
  }
  for (double u : upper) {
    if (u < 0.0) throw std::invalid_argument("LpProblem: negative upper bound");
  }
  for (const auto& row : rows) {
    std::vector<bool> seen(static_cast<std::size_t>(num_vars), false);
    for (const auto& [j, v] : row.coeffs) {
      if (j < 0 || j >= num_vars) {
        throw std::invalid_argument("LpProblem: column index out of range");
      }
      if (seen[static_cast<std::size_t>(j)]) {
        throw std::invalid_argument("LpProblem: repeated column in row");
      }
      seen[static_cast<std::size_t>(j)] = true;
      if (!std::isfinite(v)) {
        throw std::invalid_argument("LpProblem: non-finite coefficient");
      }
    }
    if (!std::isfinite(row.rhs)) {
      throw std::invalid_argument("LpProblem: non-finite rhs");
    }
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarState : std::uint8_t { AtLower, AtUpper, Basic };

/// Dense bounded-variable primal simplex working state. The tableau is
/// B^{-1}A, kept explicit and updated by full row elimination per pivot;
/// `beta` stores the current *values* of the basic variables (not B^{-1}b),
/// which makes the bounded-variable update rule a one-liner.
class Tableau {
 public:
  Tableau(const LpProblem& problem, const SimplexOptions& options)
      : opt_(options), n_struct_(problem.num_vars),
        n_rows_(static_cast<int>(problem.rows.size())) {
    // Column layout: [structurals][slacks][artificials].
    n_slack_ = 0;
    for (const auto& row : problem.rows) {
      if (row.rel != Relation::Equal) ++n_slack_;
    }
    n_total_ = n_struct_ + n_slack_ + n_rows_;
    tab_.assign(static_cast<std::size_t>(n_rows_) * n_total_, 0.0);
    upper_.assign(static_cast<std::size_t>(n_total_), kInf);
    for (int j = 0; j < n_struct_; ++j) {
      upper_[static_cast<std::size_t>(j)] =
          problem.upper.empty() ? kInf
                                : problem.upper[static_cast<std::size_t>(j)];
    }
    cost_.assign(static_cast<std::size_t>(n_total_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      cost_[static_cast<std::size_t>(j)] =
          problem.objective[static_cast<std::size_t>(j)];
    }

    beta_.assign(static_cast<std::size_t>(n_rows_), 0.0);
    basis_.assign(static_cast<std::size_t>(n_rows_), -1);
    state_.assign(static_cast<std::size_t>(n_total_), VarState::AtLower);
    eligible_.assign(static_cast<std::size_t>(n_total_), true);

    int slack = n_struct_;
    for (int i = 0; i < n_rows_; ++i) {
      const auto& row = problem.rows[static_cast<std::size_t>(i)];
      double* t = row_ptr(i);
      double sign = 1.0;
      // Slack converts the relation to an equality.
      int slack_col = -1;
      double slack_coeff = 0.0;
      if (row.rel == Relation::LessEq) {
        slack_col = slack++;
        slack_coeff = 1.0;
      } else if (row.rel == Relation::GreaterEq) {
        slack_col = slack++;
        slack_coeff = -1.0;
      }
      // Make rhs non-negative so artificials start feasible.
      if (row.rhs < 0.0) sign = -1.0;
      for (const auto& [j, v] : row.coeffs) {
        t[j] = sign * v;
      }
      if (slack_col >= 0) t[slack_col] = sign * slack_coeff;
      const int art = n_struct_ + n_slack_ + i;
      t[art] = 1.0;
      beta_[static_cast<std::size_t>(i)] = sign * row.rhs;
      basis_[static_cast<std::size_t>(i)] = art;
      state_[static_cast<std::size_t>(art)] = VarState::Basic;
    }
  }

  /// Run phase 1 (artificial elimination) then phase 2. Returns the final
  /// status; `iterations` accumulates across phases.
  LpStatus run(std::int64_t& iterations) {
    // Phase 1: minimise the sum of artificial variables.
    std::vector<double> phase1_cost(static_cast<std::size_t>(n_total_), 0.0);
    for (int i = 0; i < n_rows_; ++i) {
      phase1_cost[static_cast<std::size_t>(n_struct_ + n_slack_ + i)] = 1.0;
    }
    const LpStatus s1 = optimize(phase1_cost, iterations);
    if (s1 == LpStatus::IterationLimit) return s1;
    if (s1 == LpStatus::Unbounded) {
      throw std::logic_error("simplex: phase 1 unbounded (impossible)");
    }
    double infeas = 0.0;
    for (int i = 0; i < n_rows_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b >= n_struct_ + n_slack_) {
        infeas += std::max(0.0, beta_[static_cast<std::size_t>(i)]);
      }
    }
    for (int j = n_struct_ + n_slack_; j < n_total_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::AtUpper) {
        // Artificials have infinite upper bound, so this cannot happen.
        throw std::logic_error("simplex: artificial at upper bound");
      }
    }
    if (infeas > opt_.feas_tol) return LpStatus::Infeasible;

    // Lock artificials at zero for phase 2: never price them in, and cap
    // their bound so the ratio test expels any still basic at value 0.
    for (int j = n_struct_ + n_slack_; j < n_total_; ++j) {
      eligible_[static_cast<std::size_t>(j)] = false;
      upper_[static_cast<std::size_t>(j)] = 0.0;
    }
    return optimize(cost_, iterations);
  }

  /// Extract the structural solution.
  void extract(std::vector<double>& x) const {
    x.assign(static_cast<std::size_t>(n_struct_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::AtUpper) {
        x[static_cast<std::size_t>(j)] = upper_[static_cast<std::size_t>(j)];
      }
    }
    for (int i = 0; i < n_rows_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < n_struct_) {
        x[static_cast<std::size_t>(b)] = beta_[static_cast<std::size_t>(i)];
      }
    }
  }

 private:
  double* row_ptr(int i) {
    return tab_.data() + static_cast<std::size_t>(i) * n_total_;
  }
  const double* row_ptr(int i) const {
    return tab_.data() + static_cast<std::size_t>(i) * n_total_;
  }

  /// Reduced costs for the given cost vector: d = c - c_B^T (B^{-1}A).
  void compute_reduced_costs(const std::vector<double>& c,
                             std::vector<double>& d) const {
    d = c;
    for (int i = 0; i < n_rows_; ++i) {
      const double cb = c[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
      if (cb == 0.0) continue;
      const double* t = row_ptr(i);
      for (int j = 0; j < n_total_; ++j) {
        d[static_cast<std::size_t>(j)] -= cb * t[j];
      }
    }
    for (int i = 0; i < n_rows_; ++i) {
      d[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = 0.0;
    }
  }

  LpStatus optimize(const std::vector<double>& c, std::int64_t& iterations) {
    std::vector<double> d;
    compute_reduced_costs(c, d);

    for (;;) {
      if (iterations >= opt_.max_iterations) return LpStatus::IterationLimit;
      const bool bland = iterations >= opt_.bland_after;

      // --- Pricing ---------------------------------------------------
      int q = -1;
      double best_score = opt_.cost_tol;
      int dir = 0;
      for (int j = 0; j < n_total_; ++j) {
        if (!eligible_[static_cast<std::size_t>(j)]) continue;
        const VarState s = state_[static_cast<std::size_t>(j)];
        double score = 0.0;
        int candidate_dir = 0;
        if (s == VarState::AtLower && d[static_cast<std::size_t>(j)] < -opt_.cost_tol) {
          score = -d[static_cast<std::size_t>(j)];
          candidate_dir = +1;
        } else if (s == VarState::AtUpper &&
                   d[static_cast<std::size_t>(j)] > opt_.cost_tol) {
          score = d[static_cast<std::size_t>(j)];
          candidate_dir = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          q = j;
          dir = candidate_dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          q = j;
          dir = candidate_dir;
        }
      }
      if (q < 0) return LpStatus::Optimal;  // no improving direction

      // --- Ratio test -------------------------------------------------
      // Entering variable moves by step t >= 0 in direction `dir`; basic
      // variable i changes as beta_i - dir * t * T[i][q]. The step is
      // limited by each basic variable's bounds and by the entering
      // variable's own opposite bound (a "bound flip", leave_row == -1).
      double t_max = upper_[static_cast<std::size_t>(q)];
      int leave_row = -1;
      int leave_to_upper = 0;
      for (int i = 0; i < n_rows_; ++i) {
        const double alpha = row_ptr(i)[q];
        const double gamma = dir * alpha;
        if (std::abs(gamma) <= opt_.pivot_tol) continue;
        const int b = basis_[static_cast<std::size_t>(i)];
        double limit;
        int to_upper;
        if (gamma > 0.0) {  // basic value decreasing toward 0
          limit = beta_[static_cast<std::size_t>(i)] / gamma;
          to_upper = 0;
        } else {  // basic value increasing toward its upper bound
          const double ub = upper_[static_cast<std::size_t>(b)];
          if (ub == kInf) continue;
          limit = (ub - beta_[static_cast<std::size_t>(i)]) / (-gamma);
          to_upper = 1;
        }
        limit = std::max(limit, 0.0);
        // Careful with an infinite t_max (entering variable unbounded
        // above): inf - tol is NaN-prone only if tol were inf, so keep the
        // tolerance finite and compare explicitly.
        const double tie_tol =
            std::isfinite(t_max) ? 1e-10 * (1.0 + std::abs(t_max)) : 0.0;
        const bool strictly_better =
            !std::isfinite(t_max) || limit < t_max - tie_tol;
        if (strictly_better) {
          t_max = limit;
          leave_row = i;
          leave_to_upper = to_upper;
        } else if (leave_row >= 0 && limit <= t_max + tie_tol) {
          // Tie among leaving candidates: Bland wants the smallest basis
          // index (termination); otherwise prefer the largest pivot
          // magnitude (stability).
          const bool prefer =
              bland ? basis_[static_cast<std::size_t>(i)] <
                          basis_[static_cast<std::size_t>(leave_row)]
                    : std::abs(alpha) > std::abs(row_ptr(leave_row)[q]);
          if (prefer) {
            t_max = std::min(t_max, limit);
            leave_row = i;
            leave_to_upper = to_upper;
          }
        }
      }

      if (t_max == kInf) return LpStatus::Unbounded;
      ++iterations;

      if (leave_row < 0) {
        // Pure bound flip: q jumps to its opposite bound.
        const double step = t_max;
        for (int i = 0; i < n_rows_; ++i) {
          beta_[static_cast<std::size_t>(i)] -= dir * step * row_ptr(i)[q];
        }
        state_[static_cast<std::size_t>(q)] =
            dir > 0 ? VarState::AtUpper : VarState::AtLower;
        continue;
      }

      // --- Pivot -------------------------------------------------------
      const double step = t_max;
      const int leaving = basis_[static_cast<std::size_t>(leave_row)];
      // New values: every basic moves; q enters with its new value.
      for (int i = 0; i < n_rows_; ++i) {
        beta_[static_cast<std::size_t>(i)] -= dir * step * row_ptr(i)[q];
      }
      const double entering_value =
          (state_[static_cast<std::size_t>(q)] == VarState::AtLower
               ? 0.0
               : upper_[static_cast<std::size_t>(q)]) +
          dir * step;
      beta_[static_cast<std::size_t>(leave_row)] = entering_value;
      basis_[static_cast<std::size_t>(leave_row)] = q;
      state_[static_cast<std::size_t>(q)] = VarState::Basic;
      state_[static_cast<std::size_t>(leaving)] =
          leave_to_upper ? VarState::AtUpper : VarState::AtLower;

      // Eliminate column q from all other rows and from the reduced costs.
      double* pr = row_ptr(leave_row);
      const double pivot = pr[q];
      if (std::abs(pivot) <= opt_.pivot_tol) {
        throw std::logic_error("simplex: numerically singular pivot");
      }
      const double inv = 1.0 / pivot;
      for (int j = 0; j < n_total_; ++j) pr[j] *= inv;
      pr[q] = 1.0;  // exact
      for (int i = 0; i < n_rows_; ++i) {
        if (i == leave_row) continue;
        double* ri = row_ptr(i);
        const double f = ri[q];
        if (f == 0.0) continue;
        for (int j = 0; j < n_total_; ++j) ri[j] -= f * pr[j];
        ri[q] = 0.0;  // exact
      }
      {
        const double f = d[static_cast<std::size_t>(q)];
        if (f != 0.0) {
          for (int j = 0; j < n_total_; ++j) {
            d[static_cast<std::size_t>(j)] -= f * pr[j];
          }
          d[static_cast<std::size_t>(q)] = 0.0;
        }
      }
    }
  }

  SimplexOptions opt_;
  int n_struct_;
  int n_rows_;
  int n_slack_ = 0;
  int n_total_ = 0;
  std::vector<double> tab_;
  std::vector<double> beta_;
  std::vector<int> basis_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<VarState> state_;
  std::vector<bool> eligible_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  problem.validate();
  LpSolution solution;
  if (problem.num_vars == 0) {
    // Feasible iff every row is satisfied by the empty assignment.
    for (const auto& row : problem.rows) {
      const bool ok = (row.rel == Relation::LessEq && row.rhs >= 0.0) ||
                      (row.rel == Relation::GreaterEq && row.rhs <= 0.0) ||
                      (row.rel == Relation::Equal && row.rhs == 0.0);
      if (!ok) {
        solution.status = LpStatus::Infeasible;
        return solution;
      }
    }
    solution.status = LpStatus::Optimal;
    return solution;
  }

  Tableau tableau(problem, options);
  std::int64_t iterations = 0;
  solution.status = tableau.run(iterations);
  solution.iterations = iterations;
  if (solution.status == LpStatus::Optimal) {
    tableau.extract(solution.x);
    double z = 0.0;
    for (int j = 0; j < problem.num_vars; ++j) {
      z += problem.objective[static_cast<std::size_t>(j)] *
           solution.x[static_cast<std::size_t>(j)];
    }
    solution.objective = z;
  }
  return solution;
}

}  // namespace moldsched
