/// \file simplex.hpp
/// Dense two-phase primal simplex with implicit variable upper bounds
/// (0 <= x_j <= u_j, u_j possibly infinite). Built for the interval-indexed
/// minsum LP relaxation (a few hundred rows, a few thousand columns), but a
/// fully general mini LP solver: <= / >= / = rows, infeasibility and
/// unboundedness detection, Bland anti-cycling fallback.
///
/// The paper solved its relaxation with an unnamed external linear solver;
/// moldsched has no external dependencies, so the solver is part of the
/// library (see DESIGN.md §3).

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace moldsched {

enum class Relation { LessEq, GreaterEq, Equal };

/// Minimise c^T x subject to the rows and 0 <= x <= upper.
struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars
  /// Upper bounds; use LpProblem::kInfinity for unbounded-above variables.
  /// Empty vector = all infinite.
  std::vector<double> upper;

  struct Row {
    /// Sparse coefficients (var index, value); indices need not be sorted
    /// but must not repeat.
    std::vector<std::pair<int, double>> coeffs;
    Relation rel = Relation::LessEq;
    double rhs = 0.0;
  };
  std::vector<Row> rows;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Throws std::invalid_argument when shapes/indices are inconsistent.
  void validate() const;
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;          ///< primal values, size num_vars
  std::int64_t iterations = 0;
};

struct SimplexOptions {
  double pivot_tol = 1e-9;        ///< minimum magnitude of a pivot element
  double cost_tol = 1e-9;         ///< optimality tolerance on reduced costs
  double feas_tol = 1e-7;         ///< phase-1 residual tolerance
  std::int64_t max_iterations = 200000;
  /// Switch from Dantzig to Bland pricing after this many iterations
  /// (guarantees termination on degenerate problems).
  std::int64_t bland_after = 20000;
};

[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  const SimplexOptions& options = {});

}  // namespace moldsched
