#include "lp/minsum_bound.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dualapprox/cmax_estimator.hpp"

namespace moldsched {

namespace {

/// Interval layout: index l = 0..L-1 over boundaries
///   b_0 = 0, b_1 = t_0, ..., b_{K+2} = t_{K+1}, b_L = +inf (open tail).
/// Interval l is (b_l, b_{l+1}]. L = K + 3 intervals.
struct IntervalGrid {
  std::vector<double> left;   ///< b_l for each interval
  std::vector<double> right;  ///< b_{l+1}; +inf for the tail

  explicit IntervalGrid(const TimeGrid& grid) {
    const int k = grid.K();
    left.push_back(0.0);
    for (int j = 0; j <= k + 1; ++j) left.push_back(grid.t(j));
    for (std::size_t l = 1; l < left.size(); ++l) right.push_back(left[l]);
    right.push_back(LpProblem::kInfinity);
  }

  [[nodiscard]] int count() const { return static_cast<int>(left.size()); }
};

}  // namespace

MinsumBoundResult minsum_lower_bound(const Instance& instance,
                                     const TimeGrid& grid,
                                     const SimplexOptions& options) {
  MinsumBoundResult result;
  const int n = instance.num_tasks();
  const int m = instance.procs();
  const IntervalGrid intervals(grid);
  const int L = intervals.count();

  // Variables: one per (task, interval) pair where the task CAN finish in
  // the interval (some allotment completes by the right boundary). The tail
  // interval is always available.
  LpProblem lp;
  struct Var {
    int task;
    int interval;
    double area;  ///< S_{i,l}: minimal work given the deadline b_{l+1}
  };
  std::vector<Var> vars;
  std::vector<std::vector<int>> task_vars(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const MoldableTask& task = instance.task(i);
    for (int l = 0; l < L; ++l) {
      const double deadline = intervals.right[static_cast<std::size_t>(l)];
      int alloc;
      if (std::isinf(deadline)) {
        alloc = task.min_work_procs();
      } else {
        alloc = task.min_work_allotment(deadline);
        if (alloc == 0) continue;  // cannot finish this early
      }
      task_vars[static_cast<std::size_t>(i)].push_back(
          static_cast<int>(vars.size()));
      vars.push_back(Var{i, l, task.work(alloc)});
    }
  }

  lp.num_vars = static_cast<int>(vars.size());
  lp.objective.resize(vars.size());
  lp.upper.assign(vars.size(), 1.0);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    lp.objective[v] = instance.task(vars[v].task).weight() *
                      intervals.left[static_cast<std::size_t>(vars[v].interval)];
  }

  // Cover rows: every task finishes at least once.
  for (int i = 0; i < n; ++i) {
    LpProblem::Row row;
    row.rel = Relation::GreaterEq;
    row.rhs = 1.0;
    for (int v : task_vars[static_cast<std::size_t>(i)]) {
      row.coeffs.emplace_back(v, 1.0);
    }
    lp.rows.push_back(std::move(row));
  }

  // Prefix area rows for every bounded interval l: the minimal areas of
  // tasks finishing by b_{l+1} must fit in m * b_{l+1}.
  for (int l = 0; l + 1 < L; ++l) {  // skip the open tail
    LpProblem::Row row;
    row.rel = Relation::LessEq;
    row.rhs = static_cast<double>(m) * intervals.right[static_cast<std::size_t>(l)];
    for (std::size_t v = 0; v < vars.size(); ++v) {
      if (vars[v].interval <= l) {
        row.coeffs.emplace_back(static_cast<int>(v), vars[v].area);
      }
    }
    lp.rows.push_back(std::move(row));
  }

  result.num_vars = lp.num_vars;
  result.num_rows = static_cast<int>(lp.rows.size());

  const LpSolution solution = solve_lp(lp, options);
  result.status = solution.status;
  result.iterations = solution.iterations;
  if (solution.status == LpStatus::Optimal) {
    // Guard against tiny negative roundoff and cross-check against the
    // combinatorial bound — both are valid, take the larger.
    result.bound =
        std::max({solution.objective, 0.0, squashed_area_bound(instance)});
  } else {
    // The relaxation should never be infeasible or unbounded (x_{i,tail}=1
    // for all i is feasible, objective >= 0); fall back combinatorially.
    result.bound = squashed_area_bound(instance);
  }
  return result;
}

MinsumBoundResult minsum_lower_bound(const Instance& instance) {
  const CmaxEstimate est = estimate_cmax(instance);
  const TimeGrid grid(est.estimate, instance.tmin());
  return minsum_lower_bound(instance, grid);
}

double squashed_area_bound(const Instance& instance) {
  const int n = instance.num_tasks();
  std::vector<double> areas(static_cast<std::size_t>(n));
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    areas[static_cast<std::size_t>(i)] = instance.task(i).min_work();
    weights[static_cast<std::size_t>(i)] = instance.task(i).weight();
  }
  std::sort(areas.begin(), areas.end());
  std::sort(weights.begin(), weights.end(), std::greater<>());
  double prefix = 0.0;
  double bound = 0.0;
  for (int k = 0; k < n; ++k) {
    prefix += areas[static_cast<std::size_t>(k)];
    bound += weights[static_cast<std::size_t>(k)] * prefix /
             static_cast<double>(instance.procs());
  }
  return bound;
}

}  // namespace moldsched
