/// \file baselines.hpp
/// The five comparison schedulers of the paper's evaluation (§4.1):
///
/// * Gang        — every task on all m processors, sorted by weight over
///                 execution time (optimal for linear speedups);
/// * Sequential  — every task on one processor, largest processing time
///                 first, Graham list scheduling;
/// * List-Graham — allotments from the dual-approximation shelf partition
///                 (reference [7]), Graham list scheduling, three orders:
///                 - ShelfOrder: large shelf, then small shelf, then the
///                   small sequential tasks (the order of [7]);
///                 - WeightedLptf: execution time / weight decreasing
///                   (the paper's "weighted LPTF": long-per-unit-weight
///                   tasks first — see DESIGN.md §3 on the ambiguity);
///                 - SmallestAreaFirst: allotment x time increasing (SAF).

#pragma once

#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

/// Gang scheduling. Throws on an empty instance.
[[nodiscard]] Schedule gang_schedule(const Instance& instance);

/// Sequential LPTF list scheduling.
[[nodiscard]] Schedule sequential_lptf_schedule(const Instance& instance);

enum class ListOrder { ShelfOrder, WeightedLptf, SmallestAreaFirst };

/// List-Graham with dual-approximation allotments in the given order.
/// `dual_eps` is the makespan search precision.
[[nodiscard]] Schedule list_graham_schedule(const Instance& instance,
                                            ListOrder order,
                                            double dual_eps = 1e-4);

}  // namespace moldsched
