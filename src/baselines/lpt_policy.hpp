/// \file lpt_policy.hpp
/// LPT over rigid min-work allotments as a SchedulingPolicy — the third
/// built-in policy, and deliberately the proof that the policy surface is
/// a real extension point: this file lives with the paper baselines and
/// plugs into the engine, the on-line simulator, the streaming path, and
/// the async serving layer without a single change to any of them
/// (exercised end-to-end by tests/test_policy.cpp).
///
/// The algorithm is classic Graham LPT restricted to rigid allotments:
/// every task runs on its min-work allotment (the cheapest processor
/// count in total work), the list is ordered by duration decreasing
/// (longest processing time first, task id tie-break), and one
/// allocation-free list pass places it. Compared to FlatListPolicy only
/// the list order differs — Smith ratio optimises the weighted minsum,
/// LPT the makespan.

#pragma once

#include "core/policy.hpp"

namespace moldsched {

/// Longest-processing-time-first list scheduling on rigid min-work
/// allotments. Stateless; workspaces shared per class.
class LptRigidPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "lpt_rigid";
  }
  [[nodiscard]] std::unique_ptr<PolicyWorkspace> make_workspace()
      const override;
  void schedule_into(const Instance& batch, PolicyWorkspace& ws,
                     FlatPlacements& out) const override;
  [[nodiscard]] const void* workspace_key() const noexcept override;
  /// Stateless algorithm: one class-wide constant cache key
  /// (core/decision_cache.hpp).
  [[nodiscard]] std::uint64_t cache_key() const noexcept override;
};

}  // namespace moldsched
