#include "baselines/lpt_policy.hpp"

#include <algorithm>

namespace moldsched {

namespace {

struct LptRigidWorkspace final : PolicyWorkspace {
  ListPassWorkspace list;
};

}  // namespace

std::unique_ptr<PolicyWorkspace> LptRigidPolicy::make_workspace() const {
  return std::make_unique<LptRigidWorkspace>();
}

void LptRigidPolicy::schedule_into(const Instance& batch, PolicyWorkspace& ws,
                                   FlatPlacements& out) const {
  auto& lpt_ws = static_cast<LptRigidWorkspace&>(ws);
  ListPassWorkspace& list = lpt_ws.list;
  fill_min_work_jobs(batch, list);
  // Longest duration first; task id pins ties so the schedule is a pure
  // function of the instance.
  std::sort(list.jobs.begin(), list.jobs.end(),
            [](const ListJob& a, const ListJob& b) {
              if (a.duration != b.duration) return a.duration > b.duration;
              return a.task < b.task;
            });
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(batch.procs(), batch.num_tasks(), kNoReservations, list,
                     out);
}

const void* LptRigidPolicy::workspace_key() const noexcept {
  static const char kKey = 0;
  return &kKey;
}

std::uint64_t LptRigidPolicy::cache_key() const noexcept {
  return 0x4C50545249474944ULL;  // "LPTRIGID": stateless, one key per class
}

}  // namespace moldsched
