#include "baselines/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dualapprox/cmax_estimator.hpp"
#include "sched/list_scheduler.hpp"

namespace moldsched {

Schedule gang_schedule(const Instance& instance) {
  if (instance.empty()) throw std::invalid_argument("gang_schedule: empty");
  const int n = instance.num_tasks();
  const int m = instance.procs();

  // Each task runs on every processor it can use (all m for the paper's
  // generators; capped at the task's own width for narrower tasks).
  auto gang_procs = [&](int i) {
    return std::min(m, instance.task(i).max_procs());
  };

  // Sort by weight / execution time on the full machine, decreasing —
  // Smith's rule on the gang profile (optimal for linear speedup).
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra =
        instance.task(a).weight() / instance.task(a).time(gang_procs(a));
    const double rb =
        instance.task(b).weight() / instance.task(b).time(gang_procs(b));
    if (ra != rb) return ra > rb;
    return a < b;
  });

  Schedule schedule(m, n);
  double now = 0.0;
  for (int task_id : order) {
    const int k = gang_procs(task_id);
    std::vector<int> procs(static_cast<std::size_t>(k));
    std::iota(procs.begin(), procs.end(), 0);
    const double d = instance.task(task_id).time(k);
    schedule.place(task_id, now, d, std::move(procs));
    now += d;
  }
  return schedule;
}

Schedule sequential_lptf_schedule(const Instance& instance) {
  if (instance.empty()) {
    throw std::invalid_argument("sequential_lptf_schedule: empty");
  }
  const int n = instance.num_tasks();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int i = 0; i < n; ++i) {
    if (instance.task(i).min_procs() > 1) {
      throw std::invalid_argument(
          "sequential_lptf_schedule: task cannot run on one processor");
    }
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ta = instance.task(a).time(1);
    const double tb = instance.task(b).time(1);
    if (ta != tb) return ta > tb;  // largest processing time first
    return a < b;
  });
  std::vector<ListJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int task_id : order) {
    jobs.push_back(ListJob{task_id, 1, instance.task(task_id).time(1), 0.0});
  }
  return list_schedule(instance.procs(), n, jobs);
}

Schedule list_graham_schedule(const Instance& instance, ListOrder order,
                              double dual_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("list_graham_schedule: empty");
  }
  const int n = instance.num_tasks();
  const CmaxEstimate estimate = estimate_cmax(instance, dual_eps);
  const double lambda = estimate.estimate;

  struct Entry {
    int task;
    int alloc;
    double duration;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& assignment =
        estimate.partition.assignment[static_cast<std::size_t>(i)];
    const int alloc = assignment.allotment;
    entries.push_back(Entry{i, alloc, instance.task(i).time(alloc)});
  }

  // Weighted LPTF: largest processing time per unit weight first. The
  // paper's phrasing ("ratio between weight and their execution time") is
  // ambiguous about the direction; p/w descending is the reading that
  // matches both the LPTF name ("very good behavior for Cmax" = long tasks
  // first) and the published Figure 5 curve, where LPTF's minsum ratio
  // grows with n. See DESIGN.md §3.
  auto lptf_key = [&](const Entry& e) {
    return e.duration / instance.task(e.task).weight();
  };
  auto area = [](const Entry& e) { return e.alloc * e.duration; };

  switch (order) {
    case ListOrder::ShelfOrder: {
      // The order of [7]: large shelf, then the small shelf, then the small
      // sequential tasks (the MRT transformation stacks those last).
      // Category first, longest first inside each category.
      auto category = [&](const Entry& e) {
        const auto shelf =
            estimate.partition.assignment[static_cast<std::size_t>(e.task)].shelf;
        if (shelf == Shelf::Large) return 0;
        const MoldableTask& task = instance.task(e.task);
        const bool small_seq =
            task.min_procs() == 1 && task.time(1) <= lambda / 2.0;
        return small_seq ? 2 : 1;
      };
      std::sort(entries.begin(), entries.end(),
                [&](const Entry& a, const Entry& b) {
                  const int ca = category(a), cb = category(b);
                  if (ca != cb) return ca < cb;
                  if (a.duration != b.duration) return a.duration > b.duration;
                  return a.task < b.task;
                });
      break;
    }
    case ListOrder::WeightedLptf:
      std::sort(entries.begin(), entries.end(),
                [&](const Entry& a, const Entry& b) {
                  const double ra = lptf_key(a), rb = lptf_key(b);
                  if (ra != rb) return ra > rb;
                  return a.task < b.task;
                });
      break;
    case ListOrder::SmallestAreaFirst:
      std::sort(entries.begin(), entries.end(),
                [&](const Entry& a, const Entry& b) {
                  const double aa = area(a), ab = area(b);
                  if (aa != ab) return aa < ab;
                  return a.task < b.task;
                });
      break;
  }

  std::vector<ListJob> jobs;
  jobs.reserve(entries.size());
  for (const auto& e : entries) {
    jobs.push_back(ListJob{e.task, e.alloc, e.duration, 0.0});
  }
  return list_schedule(instance.procs(), n, jobs);
}

}  // namespace moldsched
