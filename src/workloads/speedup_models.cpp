#include "workloads/speedup_models.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched {

std::vector<double> recurrence_times(double seq_time, int m,
                                     const RecurrenceParams& params, Rng& rng) {
  if (m < 1) throw std::invalid_argument("recurrence_times: m < 1");
  if (!(seq_time > 0.0)) {
    throw std::invalid_argument("recurrence_times: seq_time must be positive");
  }
  std::vector<double> times(static_cast<std::size_t>(m));
  times[0] = seq_time;
  // The paper prints p(j) = p(j-1) * (X + j) / (1 + j), which telescopes to
  // a speedup of roughly k^(1-X) — meaning X near 0.9 would generate WEAK
  // speedup, contradicting the paper's own description ("highly parallel
  // (with a quasi-linear speedup) ... generated using gaussian distribution
  // centered on 0.9"). The description and figure labels define the
  // semantics, so we substitute X -> 1-X: the step ratio is
  // ((1 - X) + j) / (1 + j), giving speedup ~ k^X (X = 0.9 quasi-linear,
  // X = 0.1 nearly none). See DESIGN.md §3. Monotonicity is unchanged:
  // the ratio stays within [j/(1+j), 1] for X in [0, 1], so times are
  // non-increasing and work is non-decreasing by construction.
  for (int j = 2; j <= m; ++j) {
    const double x = rng.truncated_gaussian(params.mean, params.sd, 0.0, 1.0);
    times[static_cast<std::size_t>(j) - 1] =
        times[static_cast<std::size_t>(j) - 2] * ((1.0 - x) + j) / (1.0 + j);
  }
  return times;
}

double downey_speedup(double n, double A, double sigma) {
  if (A < 1.0) throw std::invalid_argument("downey_speedup: A must be >= 1");
  if (sigma < 0.0) {
    throw std::invalid_argument("downey_speedup: sigma must be >= 0");
  }
  if (n <= 1.0) return 1.0;
  if (sigma <= 1.0) {
    // Low-variance regime.
    if (n <= A) {
      return A * n / (A + sigma / 2.0 * (n - 1.0));
    }
    if (n <= 2.0 * A - 1.0) {
      return A * n / (sigma * (A - 0.5) + n * (1.0 - sigma / 2.0));
    }
    return A;
  }
  // High-variance regime.
  const double knee = A * (1.0 + sigma) - sigma;
  if (n <= knee) {
    return n * A * (sigma + 1.0) / (sigma * (n + A - 1.0) + A);
  }
  return A;
}

std::vector<double> downey_times(double seq_time, int m, double A,
                                 double sigma) {
  if (m < 1) throw std::invalid_argument("downey_times: m < 1");
  if (!(seq_time > 0.0)) {
    throw std::invalid_argument("downey_times: seq_time must be positive");
  }
  std::vector<double> times(static_cast<std::size_t>(m));
  for (int k = 1; k <= m; ++k) {
    times[static_cast<std::size_t>(k) - 1] =
        seq_time / downey_speedup(k, A, sigma);
  }
  return times;
}

}  // namespace moldsched
