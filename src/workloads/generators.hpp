/// \file generators.hpp
/// The four workload families of the paper's evaluation (§4.1). All runs in
/// the paper use m = 200 processors, n in 25..400 tasks, task weights
/// uniform in [1, 10].
///
/// * WeaklyParallel — sequential time U(1,10), recurrence X ~ N(0.1, 0.2);
/// * HighlyParallel — sequential time U(1,10), recurrence X ~ N(0.9, 0.2);
/// * Mixed — 70% "small" tasks N(1, 0.5) that are weakly parallel and 30%
///   "large" tasks N(10, 5) that are highly parallel;
/// * Cirne — Cirne–Berman moldable jobs: sequential time U(1,10) and Downey
///   speedup curves. The original model's survey-fitted constants are not
///   public; we draw log2(A) ~ U(0, log2 m) and sigma ~ U(0, 2)
///   (substitution documented in DESIGN.md §3).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tasks/instance.hpp"
#include "util/rng.hpp"

namespace moldsched {

enum class WorkloadFamily { WeaklyParallel, HighlyParallel, Mixed, Cirne };

[[nodiscard]] std::string_view family_name(WorkloadFamily family);
[[nodiscard]] WorkloadFamily parse_family(std::string_view name);
[[nodiscard]] const std::vector<WorkloadFamily>& all_families();

/// Tunable generator constants; the defaults reproduce the paper.
struct GeneratorConfig {
  double weight_lo = 1.0;       ///< task priority lower bound
  double weight_hi = 10.0;      ///< task priority upper bound
  double seq_lo = 1.0;          ///< uniform sequential time lower bound
  double seq_hi = 10.0;         ///< uniform sequential time upper bound
  double mixed_small_frac = 0.7;///< fraction of small tasks in Mixed
  double small_mean = 1.0;      ///< small-task gaussian mean
  double small_sd = 0.5;        ///< small-task gaussian sd
  double large_mean = 10.0;     ///< large-task gaussian mean
  double large_sd = 5.0;        ///< large-task gaussian sd
  double seq_floor = 0.05;      ///< positivity floor for gaussian seq times
  double cirne_sigma_hi = 2.0;  ///< Downey variance upper bound
};

/// Generate an n-task instance of the given family on an m-processor
/// cluster. Deterministic in (family, n, m, rng state, config).
[[nodiscard]] Instance generate_instance(WorkloadFamily family, int n, int m,
                                         Rng& rng,
                                         const GeneratorConfig& config = {});

}  // namespace moldsched
