/// \file speedup_models.hpp
/// Parallelism models used by the paper's workload generators (§4.1):
///
/// * the step recurrence with X drawn from a truncated gaussian — "highly
///   parallel" (X ~ N(0.9, 0.2)) gives quasi-linear speedup (~k^X),
///   "weakly parallel" (X ~ N(0.1, 0.2)) speedup close to 1. We implement
///   the step ratio as ((1-X)+j)/(1+j): the paper's printed formula
///   (X+j)/(1+j) inverts its own described semantics — see DESIGN.md §3.
///   The construction is monotone by design;
/// * Downey's speedup curves (A = average parallelism, sigma = variance of
///   parallelism), the parallelism component of the Cirne–Berman moldable
///   job model (paper reference [5]).

#pragma once

#include <vector>

#include "util/rng.hpp"

namespace moldsched {

/// Gaussian parameters for one draw of the recurrence variable X,
/// truncated to [0, 1] by rejection (paper: out-of-range draws are
/// "ignored and recomputed").
struct RecurrenceParams {
  double mean;
  double sd = 0.2;
};

/// Paper presets.
inline constexpr RecurrenceParams kHighlyParallel{0.9, 0.2};
inline constexpr RecurrenceParams kWeaklyParallel{0.1, 0.2};

/// Generate the full time vector p(1..m) with the paper's recurrence;
/// p(1) = seq_time, X redrawn for every step j.
[[nodiscard]] std::vector<double> recurrence_times(double seq_time, int m,
                                                   const RecurrenceParams& params,
                                                   Rng& rng);

/// Downey's speedup S(n) for average parallelism A >= 1 and variance
/// sigma >= 0. Continuous in n; S(1) = 1; saturates at A.
[[nodiscard]] double downey_speedup(double n, double A, double sigma);

/// Time vector derived from Downey's model: p(k) = seq_time / S(k).
[[nodiscard]] std::vector<double> downey_times(double seq_time, int m, double A,
                                               double sigma);

}  // namespace moldsched
