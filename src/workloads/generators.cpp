#include "workloads/generators.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "workloads/speedup_models.hpp"

namespace moldsched {

std::string_view family_name(WorkloadFamily family) {
  switch (family) {
    case WorkloadFamily::WeaklyParallel: return "weakly";
    case WorkloadFamily::HighlyParallel: return "highly";
    case WorkloadFamily::Mixed: return "mixed";
    case WorkloadFamily::Cirne: return "cirne";
  }
  return "?";
}

WorkloadFamily parse_family(std::string_view name) {
  if (name == "weakly") return WorkloadFamily::WeaklyParallel;
  if (name == "highly") return WorkloadFamily::HighlyParallel;
  if (name == "mixed") return WorkloadFamily::Mixed;
  if (name == "cirne") return WorkloadFamily::Cirne;
  throw std::invalid_argument("unknown workload family: " + std::string(name));
}

const std::vector<WorkloadFamily>& all_families() {
  static const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::HighlyParallel,
      WorkloadFamily::Mixed, WorkloadFamily::Cirne};
  return families;
}

namespace {

MoldableTask make_recurrence_task(double seq, double weight, int m,
                                  const RecurrenceParams& params, Rng& rng) {
  MoldableTask task(recurrence_times(seq, m, params, rng), weight);
  task.enforce_monotonicity();  // numerical safety; construction is monotone
  return task;
}

MoldableTask make_cirne_task(double seq, double weight, int m,
                             const GeneratorConfig& config, Rng& rng) {
  // Downey parameters: average parallelism log-uniform over [1, m],
  // variance uniform over [0, cirne_sigma_hi].
  const double log2_a = rng.uniform(0.0, std::log2(static_cast<double>(m)));
  const double a = std::exp2(log2_a);
  const double sigma = rng.uniform(0.0, config.cirne_sigma_hi);
  MoldableTask task(downey_times(seq, m, a, sigma), weight);
  task.enforce_monotonicity();  // Downey curves can violate work-monotony
                                // marginally at the saturation knee
  return task;
}

}  // namespace

Instance generate_instance(WorkloadFamily family, int n, int m, Rng& rng,
                           const GeneratorConfig& config) {
  if (n < 1) throw std::invalid_argument("generate_instance: n < 1");
  if (m < 1) throw std::invalid_argument("generate_instance: m < 1");
  Instance instance(m);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    const double weight = rng.uniform(config.weight_lo, config.weight_hi);
    switch (family) {
      case WorkloadFamily::WeaklyParallel: {
        const double seq = rng.uniform(config.seq_lo, config.seq_hi);
        instance.add_task(
            make_recurrence_task(seq, weight, m, kWeaklyParallel, rng));
        break;
      }
      case WorkloadFamily::HighlyParallel: {
        const double seq = rng.uniform(config.seq_lo, config.seq_hi);
        instance.add_task(
            make_recurrence_task(seq, weight, m, kHighlyParallel, rng));
        break;
      }
      case WorkloadFamily::Mixed: {
        // 70% small N(1, 0.5) weakly parallel, 30% large N(10, 5) highly
        // parallel; gaussians truncated below at seq_floor to stay positive.
        if (rng.bernoulli(config.mixed_small_frac)) {
          const double seq = rng.truncated_gaussian(
              config.small_mean, config.small_sd, config.seq_floor, kInf);
          instance.add_task(
              make_recurrence_task(seq, weight, m, kWeaklyParallel, rng));
        } else {
          const double seq = rng.truncated_gaussian(
              config.large_mean, config.large_sd, config.seq_floor, kInf);
          instance.add_task(
              make_recurrence_task(seq, weight, m, kHighlyParallel, rng));
        }
        break;
      }
      case WorkloadFamily::Cirne: {
        const double seq = rng.uniform(config.seq_lo, config.seq_hi);
        instance.add_task(make_cirne_task(seq, weight, m, config, rng));
        break;
      }
    }
  }
  return instance;
}

}  // namespace moldsched
