/// \file engine.hpp
/// Multi-instance batch scheduling engine: the server-style entry point of
/// moldsched. A SchedulerEngine accepts many independent scheduling
/// requests — off-line instances (the paper's batch of released jobs) or
/// whole on-line simulations — and runs them concurrently on the
/// process-wide shared_thread_pool(), one pooled EngineWorkspace per
/// strand, so a steady request stream stops re-warming buffers on every
/// request.
///
/// Determinism contract: results depend only on the requests, never on the
/// worker count. Requests are independent, each runs with per-request
/// options inside its strand's workspace, and results are written at the
/// request's index — `schedule_batch` with 1, 2, 4 or all workers returns
/// bit-identical results (mirrored by tests/test_engine.cpp). DEMT calls
/// that land on a pool worker evaluate their shuffle candidates
/// sequentially (nested-pool fallback), which by the shuffle engine's
/// replay design does not change the schedule either.
///
/// Allocation contract: the engine's own dispatch adds no per-request heap
/// allocation in steady state. FlatList requests in metrics-only mode
/// (`keep_schedules == false`) are fully allocation-free after warm-up;
/// Demt requests reuse a per-strand DemtWorkspace (the remaining
/// allocations are demt_schedule internals — allotment tables, batch item
/// vectors, the result Schedule). bench/engine_throughput.cpp measures all
/// three numbers.

#pragma once

#include <cstdint>
#include <vector>

#include "core/demt.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "sim/online.hpp"
#include "tasks/instance.hpp"
#include "util/thread_pool.hpp"

namespace moldsched {

/// Scheduling algorithm a request runs.
enum class EngineAlgorithm {
  /// Full bi-criteria DEMT (paper §3.2). Highest quality; allocates inside
  /// demt_schedule (workspace-reduced).
  Demt,
  /// Min-work allotments + one Smith-ordered flat list pass. A fast,
  /// allocation-free baseline for latency-critical serving.
  FlatList,
};

/// One off-line request: schedule `*instance` with `algorithm`. The
/// instance is borrowed — the caller keeps it alive until the batch call
/// returns.
struct EngineRequest {
  const Instance* instance = nullptr;
  EngineAlgorithm algorithm = EngineAlgorithm::Demt;
  DemtOptions demt;  ///< options when algorithm == EngineAlgorithm::Demt
};

/// One on-line simulation request: run the batch framework for `*jobs` on
/// an m-processor machine, with `offline_algorithm` as the per-batch
/// off-line scheduler.
struct OnlineRequest {
  int m = 1;
  const std::vector<OnlineJob>* jobs = nullptr;
  /// Optional node reservations (nullptr = none).
  const std::vector<NodeReservation>* reservations = nullptr;
  EngineAlgorithm offline_algorithm = EngineAlgorithm::Demt;
  DemtOptions demt;
};

struct EngineResult {
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  /// Materialised placements; only valid when `has_schedule` (metrics-only
  /// mode skips materialisation to keep the hot path allocation-free).
  bool has_schedule = false;
  Schedule schedule{1, 0};
  DemtDiagnostics diag;  ///< meaningful for Demt requests only
};

struct EngineOptions {
  /// Worker strands per batch call: 0 = every shared-pool worker, 1 = run
  /// on the calling thread (no pool round-trip), k > 1 = cap at k. Results
  /// are identical for every setting.
  int workers = 0;
  /// Materialise a Schedule per result. false = metrics-only serving mode.
  bool keep_schedules = true;
};

/// Cumulative counters; read through SchedulerEngine::stats().
struct EngineStats {
  std::uint64_t requests = 0;         ///< off-line requests served
  std::uint64_t online_requests = 0;  ///< on-line simulations served
  std::uint64_t batches = 0;          ///< batch calls dispatched
  int strands_last_batch = 1;         ///< concurrency of the last call
};

/// Per-strand reusable state: every buffer a request of either kind needs.
/// The engine owns one per strand; two concurrent requests never share one.
struct EngineWorkspace {
  DemtWorkspace demt;
  ListPassWorkspace list;      ///< FlatList scratch
  FlatPlacements flat;         ///< FlatList output
  OnlineWorkspace online;      ///< on-line simulator state
  /// Per-request DEMT options for the on-line off-line plug-in; staged
  /// here so the plug-in lambda captures one pointer (fits std::function's
  /// small-object storage — no per-request allocation).
  DemtOptions online_demt;
};

/// The FlatList algorithm: give every task its min-work allotment, order by
/// Smith ratio (weight/duration decreasing, task id tie-break), run one
/// allocation-free list pass into `out`. Exposed for tests and for use as a
/// flat off-line plug-in inside the on-line simulator.
void flat_list_schedule(const Instance& instance, ListPassWorkspace& list,
                        FlatPlacements& out);

class SchedulerEngine {
 public:
  explicit SchedulerEngine(EngineOptions options = {});

  /// Serve every off-line request; results[i] answers requests[i].
  /// Deterministic for any worker count. Not thread-safe: one batch call at
  /// a time per engine.
  [[nodiscard]] std::vector<EngineResult> schedule_batch(
      const std::vector<EngineRequest>& requests);

  /// Same, reusing the caller's result storage (steady-state serving loop).
  void schedule_batch(const std::vector<EngineRequest>& requests,
                      std::vector<EngineResult>& results);

  /// Batch-assembly hook for serving layers that coalesce requests in
  /// their own storage (serve/async_scheduler.hpp assembles batches from
  /// ring-buffer slots): serve `count` requests from raw arrays.
  /// `results` must point at `count` constructed EngineResult slots.
  /// Identical semantics and determinism to the vector overloads; adds no
  /// heap allocation of its own.
  void schedule_batch_into(const EngineRequest* requests, std::size_t count,
                           EngineResult* results);

  /// Convenience: one algorithm/options for a whole instance set.
  [[nodiscard]] std::vector<EngineResult> schedule_all(
      const std::vector<Instance>& instances,
      EngineAlgorithm algorithm = EngineAlgorithm::Demt,
      const DemtOptions& demt = {});

  /// Serve every on-line simulation request; results[i] answers
  /// requests[i]. Reuses the caller's result storage.
  void simulate_batch(const std::vector<OnlineRequest>& requests,
                      std::vector<FlatOnlineResult>& results);

  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  /// Dispatch `count` indexed work items over the strands (inline when one
  /// strand, shared pool otherwise) and update the dispatch stats. A
  /// template, not std::function: the single-strand serving loop must not
  /// allocate per batch call.
  template <typename Body>
  void run_indexed(std::size_t count, const Body& body) {
    if (count == 0) return;
    const std::size_t strands = strand_count(count);
    if (workspaces_.size() < strands) workspaces_.resize(strands);
    if (workspaces_.empty()) workspaces_.resize(1);
    if (strands == 1) {
      for (std::size_t i = 0; i < count; ++i) body(workspaces_[0], i);
    } else {
      shared_thread_pool().parallel_for_slots(
          0, count,
          [&](std::size_t slot, std::size_t i) { body(workspaces_[slot], i); },
          strands);
    }
    ++stats_.batches;
    stats_.strands_last_batch = static_cast<int>(strands);
  }

  [[nodiscard]] std::size_t strand_count(std::size_t count) const;

  EngineOptions options_;
  EngineStats stats_;
  std::vector<EngineWorkspace> workspaces_;
};

}  // namespace moldsched
