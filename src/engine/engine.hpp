/// \file engine.hpp
/// Multi-instance batch scheduling engine: the server-style entry point of
/// moldsched. A SchedulerEngine accepts many independent scheduling
/// requests — off-line instances (the paper's batch of released jobs) or
/// whole on-line simulations — and runs them concurrently on the
/// process-wide shared_thread_pool(), one pooled EngineWorkspace per
/// strand, so a steady request stream stops re-warming buffers on every
/// request.
///
/// The per-request algorithm is a SchedulingPolicy object
/// (core/policy.hpp): requests carry `const SchedulingPolicy*`, the engine
/// pools one policy workspace per (strand, workspace key), and any
/// user-defined policy plugs into every entry point below without engine
/// changes. The legacy `EngineAlgorithm` enum + `DemtOptions` request
/// fields remain as deprecated adapters the engine resolves to the
/// built-in DemtPolicy/FlatListPolicy — bit-identical to the policy path
/// (regression-gated by tests/test_policy.cpp) and still allocation-free.
///
/// Determinism contract: results depend only on the requests, never on the
/// worker count. Requests are independent, each runs with per-request
/// options inside its strand's workspace, and results are written at the
/// request's index — `schedule_batch` with 1, 2, 4 or all workers returns
/// bit-identical results (mirrored by tests/test_engine.cpp). DEMT calls
/// that land on a pool worker evaluate their shuffle candidates
/// sequentially (nested-pool fallback), which by the shuffle engine's
/// replay design does not change the schedule either.
///
/// Allocation contract: the engine's own dispatch adds no per-request heap
/// allocation in steady state. FlatList requests in metrics-only mode
/// (`keep_schedules == false`) are fully allocation-free after warm-up;
/// Demt requests reuse a per-strand DemtWorkspace (the remaining
/// allocations are demt_schedule internals — allotment tables, batch item
/// vectors, the result Schedule). bench/engine_throughput.cpp measures all
/// three numbers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/decision_cache.hpp"
#include "core/demt.hpp"
#include "core/policy.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "sim/checkpoint.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "tasks/instance.hpp"
#include "util/thread_pool.hpp"

namespace moldsched {

/// Deprecated spelling of the per-request algorithm choice. New code
/// passes a `SchedulingPolicy` object (core/policy.hpp) on the request
/// instead; the enum remains as a thin adapter the engine resolves to the
/// matching built-in policy (DemtPolicy / FlatListPolicy), bit-identical
/// to the policy path and still allocation-free.
enum class EngineAlgorithm {
  /// Full bi-criteria DEMT (paper §3.2). Highest quality; allocates inside
  /// demt_schedule (workspace-reduced).
  Demt,
  /// Min-work allotments + one Smith-ordered flat list pass. A fast,
  /// allocation-free baseline for latency-critical serving.
  FlatList,
};

/// One off-line request: schedule `*instance` with the given policy. The
/// instance (and the policy, when set) is borrowed — the caller keeps it
/// alive until the batch call returns.
struct EngineRequest {
  const Instance* instance = nullptr;
  /// Deprecated adapter pair, used only while `policy == nullptr`.
  EngineAlgorithm algorithm = EngineAlgorithm::Demt;
  DemtOptions demt;  ///< options when algorithm == EngineAlgorithm::Demt
  /// The per-batch algorithm as a first-class object; overrides the
  /// enum+options pair above when set.
  const SchedulingPolicy* policy = nullptr;
  /// Skip the decision cache (EngineOptions::cache) for this request:
  /// no lookup, no insert — the exact pre-cache execution path, for
  /// callers that need a guaranteed fresh run.
  bool bypass_cache = false;
};

/// One on-line simulation request: run the batch framework for `*jobs` on
/// an m-processor machine, with the given policy as the per-batch
/// off-line scheduler.
struct OnlineRequest {
  int m = 1;
  const std::vector<OnlineJob>* jobs = nullptr;
  /// Optional node reservations (nullptr = none).
  const std::vector<NodeReservation>* reservations = nullptr;
  /// Deprecated adapter pair, used only while `policy == nullptr`.
  EngineAlgorithm offline_algorithm = EngineAlgorithm::Demt;
  DemtOptions demt;
  /// Per-batch off-line policy (borrowed); overrides the enum pair.
  const SchedulingPolicy* policy = nullptr;
};

struct EngineResult {
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  /// Materialised placements; only valid when `has_schedule` (metrics-only
  /// mode skips materialisation to keep the hot path allocation-free).
  bool has_schedule = false;
  Schedule schedule{1, 0};
  DemtDiagnostics diag;  ///< meaningful for Demt requests only
};

struct EngineOptions {
  /// Worker strands per batch call: 0 = every shared-pool worker, 1 = run
  /// on the calling thread (no pool round-trip), k > 1 = cap at k. Results
  /// are identical for every setting.
  int workers = 0;
  /// Materialise a Schedule per result. false = metrics-only serving mode.
  bool keep_schedules = true;
  /// Decision cache (core/decision_cache.hpp), borrowed for the engine's
  /// whole life; nullptr (default) disables caching entirely — the
  /// pre-cache hot path, bit-identical to before the cache existed. When
  /// set, off-line requests whose policy opts in (cache_key() != 0 and
  /// the request does not set bypass_cache) are served by signature
  /// lookup + allotment replay on a hit, and inserted on a miss. Results
  /// are bit-identical either way (the cache verifies task descriptors
  /// exactly before replaying). One cache may be shared by any number of
  /// engines — the serving layer passes one to every shard.
  DecisionCache* cache = nullptr;
};

/// Configuration of one streaming session (SchedulerEngine::open_stream):
/// machine size, optional reservations (copied at open), and the per-batch
/// off-line policy every decision of the stream runs.
struct StreamConfig {
  int m = 1;
  /// Optional node reservations (nullptr = none); copied at open.
  const std::vector<NodeReservation>* reservations = nullptr;
  /// Deprecated adapter pair, used only while `policy == nullptr`.
  EngineAlgorithm offline_algorithm = EngineAlgorithm::FlatList;
  DemtOptions demt;  ///< options when offline_algorithm == Demt
  /// Per-batch off-line policy, borrowed for the stream's whole life
  /// (open through close); overrides the enum pair when set.
  const SchedulingPolicy* policy = nullptr;
  /// Decide batches speculatively ahead of the watermark (see
  /// OnlineStream::set_speculate). Off by default; deliveries are
  /// bit-identical either way — only EngineStats speculation counters and
  /// feed latency change.
  bool speculate = false;
  /// Speculation budget per frontier advance (see
  /// OnlineStream::set_speculate_depth): at most this many batch decisions
  /// are staged ahead of the watermark before one becomes final, bounding
  /// wasted work on rollback-heavy tapes; 0 = unlimited. Only meaningful
  /// with `speculate` on.
  int speculate_depth = 0;
};

/// Handle to an open engine stream: a dense pool index plus a serial that
/// invalidates the handle when the pooled session is recycled.
struct EngineStreamId {
  int index = -1;
  std::uint64_t serial = 0;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
};

/// Cumulative counters; read through SchedulerEngine::stats().
struct EngineStats {
  std::uint64_t requests = 0;         ///< off-line requests served
  std::uint64_t online_requests = 0;  ///< on-line simulations served
  std::uint64_t batches = 0;          ///< batch calls dispatched
  std::uint64_t streams_opened = 0;   ///< streaming sessions opened
  std::uint64_t streams_restored = 0; ///< sessions resumed from a checkpoint
  std::uint64_t stream_feeds = 0;     ///< feed_stream calls served
  std::uint64_t stream_arrivals = 0;  ///< arrivals fed across all streams
  std::uint64_t spec_decided = 0;     ///< batches decided ahead of watermark
  std::uint64_t spec_committed = 0;   ///< staged decisions later confirmed
  std::uint64_t spec_rolled_back = 0; ///< staged decisions invalidated
  int strands_last_batch = 1;         ///< concurrency of the last call
};

/// One pooled streaming session: the OnlineStream (which owns its
/// simulator state and scratch) plus the per-stream off-line plug-in
/// configuration (a borrowed policy, or the deprecated enum adapter pair).
/// Sessions live behind unique_ptr so their addresses stay stable while
/// the pool grows.
struct EngineStreamState {
  OnlineStream sim;
  DemtOptions demt;
  EngineAlgorithm offline_algorithm = EngineAlgorithm::FlatList;
  const SchedulingPolicy* policy = nullptr;  ///< borrowed while open
  std::uint64_t serial = 0;
  bool in_use = false;
  // Speculation counters already folded into EngineStats (the stream's own
  // counters are cumulative per session; the engine accumulates deltas).
  std::uint64_t spec_seen_decided = 0;
  std::uint64_t spec_seen_committed = 0;
  std::uint64_t spec_seen_rolled_back = 0;
};

/// Per-strand reusable state: every buffer a request of either kind needs.
/// The engine owns one per strand; two concurrent requests never share
/// one. Policy scratch is pooled per (strand, SchedulingPolicy::
/// workspace_key): the first request a strand serves under a given key
/// allocates its workspace, every later one reuses it — which is what
/// keeps the steady-state serving loop (and the deprecated enum adapters,
/// whose stack-constructed built-ins share per-class keys) allocation-free.
struct EngineWorkspace {
  FlatPlacements flat;         ///< policy output staging
  OnlineWorkspace online;      ///< on-line simulator state
  SignatureScratch signature;  ///< decision-cache canonicalization scratch
  /// Pooled per-policy scratch, keyed by workspace_key().
  struct PolicySlot {
    const void* key = nullptr;
    std::unique_ptr<PolicyWorkspace> ws;
  };
  std::vector<PolicySlot> policy_pool;
  /// Fetch (or lazily create) this strand's workspace for `policy`.
  [[nodiscard]] PolicyWorkspace& policy_workspace(
      const SchedulingPolicy& policy);
  /// Streaming sessions, pooled: close_stream retires a session into
  /// `free_streams` with all its capacity, and the next open_stream
  /// reuses it — a warm open/feed/close cycle allocates nothing. The
  /// engine keeps one pool, in its first workspace (stream calls follow
  /// the engine's one-caller-at-a-time contract, so per-strand isolation
  /// is not needed; the serving layer gives each shard its own engine).
  std::vector<std::unique_ptr<EngineStreamState>> streams;
  std::vector<int> free_streams;
};

class SchedulerEngine {
 public:
  explicit SchedulerEngine(EngineOptions options = {});

  /// Serve every off-line request; results[i] answers requests[i].
  /// Deterministic for any worker count. Not thread-safe: one batch call at
  /// a time per engine.
  [[nodiscard]] std::vector<EngineResult> schedule_batch(
      const std::vector<EngineRequest>& requests);

  /// Same, reusing the caller's result storage (steady-state serving loop).
  void schedule_batch(const std::vector<EngineRequest>& requests,
                      std::vector<EngineResult>& results);

  /// Batch-assembly hook for serving layers that coalesce requests in
  /// their own storage (serve/async_scheduler.hpp assembles batches from
  /// ring-buffer slots): serve `count` requests from raw arrays.
  /// `results` must point at `count` constructed EngineResult slots.
  /// Identical semantics and determinism to the vector overloads; adds no
  /// heap allocation of its own.
  void schedule_batch_into(const EngineRequest* requests, std::size_t count,
                           EngineResult* results);

  /// Convenience: one algorithm/options for a whole instance set
  /// (deprecated enum spelling; resolves to the built-in policies).
  [[nodiscard]] std::vector<EngineResult> schedule_all(
      const std::vector<Instance>& instances,
      EngineAlgorithm algorithm = EngineAlgorithm::Demt,
      const DemtOptions& demt = {});

  /// Convenience: one policy for a whole instance set (borrowed for the
  /// duration of the call).
  [[nodiscard]] std::vector<EngineResult> schedule_all(
      const std::vector<Instance>& instances, const SchedulingPolicy& policy);

  /// Serve every on-line simulation request; results[i] answers
  /// requests[i]. Reuses the caller's result storage.
  void simulate_batch(const std::vector<OnlineRequest>& requests,
                      std::vector<FlatOnlineResult>& results);

  /// Open a streaming session (paper §5 job mix as a live request
  /// stream): returns a handle for feed_stream/close_stream. Sessions
  /// live in one pool per engine (inside its first EngineWorkspace) and
  /// are pinned to this engine. Stream calls follow the engine's thread
  /// contract — one caller at a time; the serving layer pins each engine
  /// (shard) to one strand. Throws std::invalid_argument on a bad config
  /// (m < 1, bad reservation).
  [[nodiscard]] EngineStreamId open_stream(const StreamConfig& config);

  /// Feed `count` arrivals with the new watermark; decisions that became
  /// final are written into `out` (cleared first, buffers reused). Same
  /// validation and error contract as OnlineStream::feed, plus
  /// std::invalid_argument on an unknown/closed stream id.
  void feed_stream(const EngineStreamId& id, const StreamArrival* arrivals,
                   std::size_t count, double watermark, StreamDelivery& out);

  /// Close the stream: final decisions + divisible drain delivered with
  /// final_delivery == true, then the session returns to the pool and the
  /// id becomes invalid (even when the close itself throws).
  void close_stream(const EngineStreamId& id, StreamDelivery& out);

  /// True while `id` names a live (opened, not yet closed) stream.
  [[nodiscard]] bool stream_open(const EngineStreamId& id) const noexcept;

  /// Snapshot an open stream's resumable state into `out`
  /// (sim/checkpoint.hpp); the session stays open and unchanged. Same
  /// thread contract as feed_stream. Throws std::invalid_argument on an
  /// unknown/closed id.
  void checkpoint_stream(const EngineStreamId& id, StreamCheckpoint& out);

  /// Open a session resuming from `ckpt`: machine size and reservations
  /// come from the checkpoint, the per-batch policy (or deprecated enum
  /// pair) from `config` — the same configuration the original stream ran,
  /// or the resumed decisions will differ. Future feeds/close deliver
  /// bit-identically to the original session's continuation. Throws
  /// std::invalid_argument on a malformed checkpoint.
  [[nodiscard]] EngineStreamId restore_stream(const StreamConfig& config,
                                              const StreamCheckpoint& ckpt);

  /// Release a session without running finish(): no final delivery, the
  /// id becomes invalid, the pooled state is recycled. The failover path
  /// after checkpoint_stream — the stream's life continues elsewhere.
  /// Unknown/closed ids are ignored.
  void abandon_stream(const EngineStreamId& id) noexcept;

  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  /// Dispatch `count` indexed work items over the strands (inline when one
  /// strand, shared pool otherwise) and update the dispatch stats. A
  /// template, not std::function: the single-strand serving loop must not
  /// allocate per batch call.
  template <typename Body>
  void run_indexed(std::size_t count, const Body& body) {
    if (count == 0) return;
    const std::size_t strands = strand_count(count);
    if (workspaces_.size() < strands) workspaces_.resize(strands);
    if (workspaces_.empty()) workspaces_.resize(1);
    if (strands == 1) {
      for (std::size_t i = 0; i < count; ++i) body(workspaces_[0], i);
    } else {
      shared_thread_pool().parallel_for_slots(
          0, count,
          [&](std::size_t slot, std::size_t i) { body(workspaces_[slot], i); },
          strands);
    }
    ++stats_.batches;
    stats_.strands_last_batch = static_cast<int>(strands);
  }

  [[nodiscard]] std::size_t strand_count(std::size_t count) const;

  /// Resolve a stream id to its pooled session; throws
  /// std::invalid_argument when the id is unknown, closed, or recycled.
  [[nodiscard]] EngineStreamState& stream_state(const EngineStreamId& id);

  EngineOptions options_;
  EngineStats stats_;
  std::vector<EngineWorkspace> workspaces_;
};

}  // namespace moldsched
