#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace moldsched {

void flat_list_schedule(const Instance& instance, ListPassWorkspace& list,
                        FlatPlacements& out) {
  const int n = instance.num_tasks();
  list.jobs.clear();
  for (int t = 0; t < n; ++t) {
    const MoldableTask& task = instance.task(t);
    const int k = task.min_work_procs();
    list.jobs.push_back(ListJob{t, k, task.time(k), 0.0});
  }
  // Smith ratio decreasing; task id breaks ties so the order (and thus the
  // schedule) is deterministic. std::sort, not stable_sort: the latter may
  // allocate its merge buffer, and the explicit tie-break already pins the
  // order.
  std::sort(list.jobs.begin(), list.jobs.end(),
            [&](const ListJob& a, const ListJob& b) {
              const double ra =
                  instance.task(a.task).weight() / a.duration;
              const double rb =
                  instance.task(b.task).weight() / b.duration;
              if (ra != rb) return ra > rb;
              return a.task < b.task;
            });
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(instance.procs(), n, kNoReservations, list, out);
}

namespace {

void serve_offline(const EngineRequest& request, bool keep_schedules,
                   EngineWorkspace& ws, EngineResult& out) {
  if (request.instance == nullptr) {
    throw std::invalid_argument("SchedulerEngine: request without instance");
  }
  const Instance& instance = *request.instance;
  out.has_schedule = false;
  switch (request.algorithm) {
    case EngineAlgorithm::Demt: {
      DemtResult result = demt_schedule(instance, request.demt, ws.demt);
      out.cmax = result.schedule.cmax();
      out.weighted_completion_sum =
          result.schedule.weighted_completion_sum(instance);
      out.diag = result.diag;
      if (keep_schedules) {
        out.schedule = std::move(result.schedule);
        out.has_schedule = true;
      }
      return;
    }
    case EngineAlgorithm::FlatList: {
      flat_list_schedule(instance, ws.list, ws.flat);
      out.cmax = ws.flat.cmax();
      out.weighted_completion_sum =
          ws.flat.weighted_completion_sum(instance);
      out.diag = DemtDiagnostics{};
      if (keep_schedules) {
        out.schedule = ws.flat.to_schedule(instance.procs());
        out.has_schedule = true;
      }
      return;
    }
  }
  throw std::logic_error("SchedulerEngine: unknown algorithm");
}

void serve_online(const OnlineRequest& request, EngineWorkspace& ws,
                  FlatOnlineResult& out) {
  if (request.jobs == nullptr) {
    throw std::invalid_argument("SchedulerEngine: request without jobs");
  }
  static const std::vector<NodeReservation> kNoReservations;
  const std::vector<NodeReservation>& reservations =
      request.reservations != nullptr ? *request.reservations
                                      : kNoReservations;
  FlatOfflineScheduler offline;
  if (request.offline_algorithm == EngineAlgorithm::FlatList) {
    // Capture-less: fits std::function's small-object storage.
    offline = [](const Instance& batch, OnlineWorkspace& ows,
                 FlatPlacements& placed) {
      flat_list_schedule(batch, ows.list, placed);
    };
  } else {
    ws.online_demt = request.demt;
    EngineWorkspace* strand = &ws;  // one-pointer capture: stays in SBO
    offline = [strand](const Instance& batch, OnlineWorkspace& /*ows*/,
                       FlatPlacements& placed) {
      placed.assign_from(
          demt_schedule(batch, strand->online_demt, strand->demt).schedule);
    };
  }
  online_batch_schedule_into(request.m, *request.jobs, offline, reservations,
                             ws.online, out);
}

}  // namespace

SchedulerEngine::SchedulerEngine(EngineOptions options)
    : options_(options) {
  if (options_.workers < 0) {
    throw std::invalid_argument("SchedulerEngine: workers < 0");
  }
}

std::size_t SchedulerEngine::strand_count(std::size_t count) const {
  if (count <= 1 || options_.workers == 1) return 1;
  // From inside a pool worker the dispatch runs inline anyway.
  if (ThreadPool::this_thread_is_worker()) return 1;
  std::size_t strands = shared_thread_pool().size();
  if (options_.workers > 0) {
    strands = std::min(strands, static_cast<std::size_t>(options_.workers));
  }
  return std::max<std::size_t>(1, std::min(strands, count));
}

std::vector<EngineResult> SchedulerEngine::schedule_batch(
    const std::vector<EngineRequest>& requests) {
  std::vector<EngineResult> results;
  schedule_batch(requests, results);
  return results;
}

void SchedulerEngine::schedule_batch(
    const std::vector<EngineRequest>& requests,
    std::vector<EngineResult>& results) {
  results.resize(requests.size());
  schedule_batch_into(requests.data(), requests.size(), results.data());
}

void SchedulerEngine::schedule_batch_into(const EngineRequest* requests,
                                          std::size_t count,
                                          EngineResult* results) {
  run_indexed(count, [&](EngineWorkspace& ws, std::size_t i) {
    serve_offline(requests[i], options_.keep_schedules, ws, results[i]);
  });
  stats_.requests += count;
}

std::vector<EngineResult> SchedulerEngine::schedule_all(
    const std::vector<Instance>& instances, EngineAlgorithm algorithm,
    const DemtOptions& demt) {
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = algorithm;
    requests[i].demt = demt;
  }
  return schedule_batch(requests);
}

void SchedulerEngine::simulate_batch(
    const std::vector<OnlineRequest>& requests,
    std::vector<FlatOnlineResult>& results) {
  results.resize(requests.size());
  run_indexed(requests.size(), [&](EngineWorkspace& ws, std::size_t i) {
    serve_online(requests[i], ws, results[i]);
  });
  stats_.online_requests += requests.size();
}

namespace {

/// Per-call off-line plug-in for a stream's batch decisions. Capture-light
/// (two pointers, valid for the duration of one engine call), so the
/// std::function stays in its small-object storage — no allocation per
/// feed.
[[nodiscard]] FlatOfflineScheduler stream_offline(EngineStreamState& state,
                                                  EngineWorkspace& ws) {
  if (state.offline_algorithm == EngineAlgorithm::FlatList) {
    return [](const Instance& batch, OnlineWorkspace& ows,
              FlatPlacements& placed) {
      flat_list_schedule(batch, ows.list, placed);
    };
  }
  EngineStreamState* stream = &state;
  EngineWorkspace* strand = &ws;
  return [stream, strand](const Instance& batch, OnlineWorkspace& /*ows*/,
                          FlatPlacements& placed) {
    placed.assign_from(
        demt_schedule(batch, stream->demt, strand->demt).schedule);
  };
}

}  // namespace

EngineStreamId SchedulerEngine::open_stream(const StreamConfig& config) {
  if (workspaces_.empty()) workspaces_.resize(1);
  EngineWorkspace& ws = workspaces_[0];
  int index = -1;
  if (!ws.free_streams.empty()) {
    index = ws.free_streams.back();
    ws.free_streams.pop_back();
  } else {
    index = static_cast<int>(ws.streams.size());
    ws.streams.push_back(std::make_unique<EngineStreamState>());
  }
  EngineStreamState& state = *ws.streams[static_cast<std::size_t>(index)];
  static const std::vector<NodeReservation> kNoReservations;
  try {
    state.sim.open(config.m, config.reservations != nullptr
                                 ? *config.reservations
                                 : kNoReservations);
  } catch (...) {
    ws.free_streams.push_back(index);
    throw;
  }
  state.demt = config.demt;
  state.offline_algorithm = config.offline_algorithm;
  state.in_use = true;
  ++state.serial;
  ++stats_.streams_opened;
  return EngineStreamId{index, state.serial};
}

EngineStreamState& SchedulerEngine::stream_state(const EngineStreamId& id) {
  if (workspaces_.empty() || id.index < 0 ||
      static_cast<std::size_t>(id.index) >= workspaces_[0].streams.size()) {
    throw std::invalid_argument("SchedulerEngine: unknown stream");
  }
  EngineStreamState& state = *workspaces_[0].streams[
      static_cast<std::size_t>(id.index)];
  if (!state.in_use || state.serial != id.serial) {
    throw std::invalid_argument("SchedulerEngine: unknown stream");
  }
  return state;
}

void SchedulerEngine::feed_stream(const EngineStreamId& id,
                                  const StreamArrival* arrivals,
                                  std::size_t count, double watermark,
                                  StreamDelivery& out) {
  EngineStreamState& state = stream_state(id);
  state.sim.feed(arrivals, count, watermark,
                 stream_offline(state, workspaces_[0]), out);
  ++stats_.stream_feeds;
  stats_.stream_arrivals += count;
}

void SchedulerEngine::close_stream(const EngineStreamId& id,
                                   StreamDelivery& out) {
  EngineStreamState& state = stream_state(id);
  // The session returns to the pool whatever finish() does: close is
  // terminal, and a broken stream must not leak its slot.
  EngineWorkspace& ws = workspaces_[0];
  try {
    state.sim.finish(stream_offline(state, ws), out);
  } catch (...) {
    state.in_use = false;
    ++state.serial;
    ws.free_streams.push_back(id.index);
    throw;
  }
  state.in_use = false;
  ++state.serial;
  ws.free_streams.push_back(id.index);
}

bool SchedulerEngine::stream_open(const EngineStreamId& id) const noexcept {
  if (workspaces_.empty() || id.index < 0 ||
      static_cast<std::size_t>(id.index) >= workspaces_[0].streams.size()) {
    return false;
  }
  const EngineStreamState& state =
      *workspaces_[0].streams[static_cast<std::size_t>(id.index)];
  return state.in_use && state.serial == id.serial;
}

}  // namespace moldsched
