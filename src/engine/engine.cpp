#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace moldsched {

PolicyWorkspace& EngineWorkspace::policy_workspace(
    const SchedulingPolicy& policy) {
  const void* key = policy.workspace_key();
  for (auto& slot : policy_pool) {
    if (slot.key == key) return *slot.ws;
  }
  policy_pool.push_back(PolicySlot{key, policy.make_workspace()});
  return *policy_pool.back().ws;
}

namespace {

/// Finish one off-line result from the flat placements staged in `ws`:
/// metrics are linear scans over the flat arrays, and a Schedule is
/// materialised into the pooled result object only when asked for.
void finish_offline_result(const Instance& instance, bool keep_schedules,
                           EngineWorkspace& ws, EngineResult& out) {
  out.cmax = ws.flat.cmax();
  out.weighted_completion_sum = ws.flat.weighted_completion_sum(instance);
  out.has_schedule = false;
  if (keep_schedules) {
    // Refill the result's pooled Schedule in place (processor-vector
    // capacity survives) instead of building a fresh one per batch.
    ws.flat.materialize_into(instance.procs(), out.schedule);
    out.has_schedule = true;
  }
}

/// Serve one off-line request under `policy` (the single execution path:
/// the deprecated enum adapters resolve here too). With a decision cache
/// configured and a policy that opts in (cache_key() != 0, request not
/// bypassed), a recurring shape is served by signature lookup + replay;
/// the replayed doubles are the cached run's verbatim, so hit and fresh
/// results are bit-identical.
void run_policy_request(const SchedulingPolicy& policy,
                        const Instance& instance,
                        const EngineOptions& options, bool bypass_cache,
                        EngineWorkspace& ws, EngineResult& out) {
  DecisionCache* cache = options.cache;
  const std::uint64_t policy_key =
      (cache != nullptr && !bypass_cache) ? policy.cache_key() : 0;
  InstanceSignature sig;
  if (policy_key != 0) {
    sig = canonical_signature(instance, cache->options().quantize_steps,
                              ws.signature);
    if (cache->lookup(sig, policy_key, instance, ws.flat, out.diag)) {
      finish_offline_result(instance, options.keep_schedules, ws, out);
      return;
    }
  }
  PolicyWorkspace& policy_ws = ws.policy_workspace(policy);
  policy_ws.last_diag = DemtDiagnostics{};  // workspaces carry no state
  policy.schedule_into(instance, policy_ws, ws.flat);
  out.diag = policy_ws.last_diag;
  finish_offline_result(instance, options.keep_schedules, ws, out);
  if (policy_key != 0) {
    cache->insert(sig, policy_key, instance, ws.flat, out.diag);
  }
}

void serve_offline(const EngineRequest& request, const EngineOptions& options,
                   EngineWorkspace& ws, EngineResult& out) {
  if (request.instance == nullptr) {
    throw std::invalid_argument("SchedulerEngine: request without instance");
  }
  const Instance& instance = *request.instance;
  if (request.policy != nullptr) {
    run_policy_request(*request.policy, instance, options,
                       request.bypass_cache, ws, out);
    return;
  }
  // Deprecated enum adapter: resolve to the matching built-in policy.
  // Construction only copies options (no heap), the built-ins share
  // per-class workspace keys, and cache_key() is a value identity (so
  // per-request temporaries share cache entries correctly) — the adapter
  // stays allocation-free and bit-identical to passing the policy object
  // directly.
  switch (request.algorithm) {
    case EngineAlgorithm::Demt: {
      const DemtPolicy policy(request.demt);
      run_policy_request(policy, instance, options, request.bypass_cache, ws,
                         out);
      return;
    }
    case EngineAlgorithm::FlatList: {
      const FlatListPolicy policy;
      run_policy_request(policy, instance, options, request.bypass_cache, ws,
                         out);
      return;
    }
  }
  throw std::logic_error("SchedulerEngine: unknown algorithm");
}

void serve_online(const OnlineRequest& request, EngineWorkspace& ws,
                  FlatOnlineResult& out) {
  if (request.jobs == nullptr) {
    throw std::invalid_argument("SchedulerEngine: request without jobs");
  }
  static const std::vector<NodeReservation> kNoReservations;
  const std::vector<NodeReservation>& reservations =
      request.reservations != nullptr ? *request.reservations
                                      : kNoReservations;
  if (request.policy != nullptr) {
    online_batch_schedule_into(request.m, *request.jobs, *request.policy,
                               ws.policy_workspace(*request.policy),
                               reservations, ws.online, out);
    return;
  }
  if (request.offline_algorithm == EngineAlgorithm::FlatList) {
    const FlatListPolicy policy;
    online_batch_schedule_into(request.m, *request.jobs, policy,
                               ws.policy_workspace(policy), reservations,
                               ws.online, out);
  } else {
    const DemtPolicy policy(request.demt);
    online_batch_schedule_into(request.m, *request.jobs, policy,
                               ws.policy_workspace(policy), reservations,
                               ws.online, out);
  }
}

/// Run `fn(policy, policy_workspace)` under the stream's off-line policy —
/// the borrowed policy object when one was configured, else a
/// stack-constructed built-in adapter whose lifetime spans the call.
template <typename Fn>
void with_stream_policy(EngineStreamState& state, EngineWorkspace& ws,
                        const Fn& fn) {
  if (state.policy != nullptr) {
    fn(*state.policy, ws.policy_workspace(*state.policy));
  } else if (state.offline_algorithm == EngineAlgorithm::FlatList) {
    const FlatListPolicy policy;
    fn(policy, ws.policy_workspace(policy));
  } else {
    const DemtPolicy policy(state.demt);
    fn(policy, ws.policy_workspace(policy));
  }
}

/// Fold a session's cumulative speculation counters into the engine stats
/// as deltas since the last harvest (sessions are pooled and their own
/// counters reset at open/restore, so the engine tracks what it has seen).
void harvest_speculation(EngineStreamState& state, EngineStats& stats) {
  const std::uint64_t decided = state.sim.speculated_batches();
  const std::uint64_t committed = state.sim.committed_speculations();
  const std::uint64_t rolled_back = state.sim.rolled_back_speculations();
  stats.spec_decided += decided - state.spec_seen_decided;
  stats.spec_committed += committed - state.spec_seen_committed;
  stats.spec_rolled_back += rolled_back - state.spec_seen_rolled_back;
  state.spec_seen_decided = decided;
  state.spec_seen_committed = committed;
  state.spec_seen_rolled_back = rolled_back;
}

}  // namespace

SchedulerEngine::SchedulerEngine(EngineOptions options)
    : options_(options) {
  if (options_.workers < 0) {
    throw std::invalid_argument("SchedulerEngine: workers < 0");
  }
}

std::size_t SchedulerEngine::strand_count(std::size_t count) const {
  if (count <= 1 || options_.workers == 1) return 1;
  // From inside a pool worker the dispatch runs inline anyway.
  if (ThreadPool::this_thread_is_worker()) return 1;
  std::size_t strands = shared_thread_pool().size();
  if (options_.workers > 0) {
    strands = std::min(strands, static_cast<std::size_t>(options_.workers));
  }
  return std::max<std::size_t>(1, std::min(strands, count));
}

std::vector<EngineResult> SchedulerEngine::schedule_batch(
    const std::vector<EngineRequest>& requests) {
  std::vector<EngineResult> results;
  schedule_batch(requests, results);
  return results;
}

void SchedulerEngine::schedule_batch(
    const std::vector<EngineRequest>& requests,
    std::vector<EngineResult>& results) {
  results.resize(requests.size());
  schedule_batch_into(requests.data(), requests.size(), results.data());
}

void SchedulerEngine::schedule_batch_into(const EngineRequest* requests,
                                          std::size_t count,
                                          EngineResult* results) {
  run_indexed(count, [&](EngineWorkspace& ws, std::size_t i) {
    serve_offline(requests[i], options_, ws, results[i]);
  });
  stats_.requests += count;
}

std::vector<EngineResult> SchedulerEngine::schedule_all(
    const std::vector<Instance>& instances, EngineAlgorithm algorithm,
    const DemtOptions& demt) {
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = algorithm;
    requests[i].demt = demt;
  }
  return schedule_batch(requests);
}

std::vector<EngineResult> SchedulerEngine::schedule_all(
    const std::vector<Instance>& instances, const SchedulingPolicy& policy) {
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].policy = &policy;
  }
  return schedule_batch(requests);
}

void SchedulerEngine::simulate_batch(
    const std::vector<OnlineRequest>& requests,
    std::vector<FlatOnlineResult>& results) {
  results.resize(requests.size());
  run_indexed(requests.size(), [&](EngineWorkspace& ws, std::size_t i) {
    serve_online(requests[i], ws, results[i]);
  });
  stats_.online_requests += requests.size();
}

EngineStreamId SchedulerEngine::open_stream(const StreamConfig& config) {
  if (workspaces_.empty()) workspaces_.resize(1);
  EngineWorkspace& ws = workspaces_[0];
  int index = -1;
  if (!ws.free_streams.empty()) {
    index = ws.free_streams.back();
    ws.free_streams.pop_back();
  } else {
    index = static_cast<int>(ws.streams.size());
    ws.streams.push_back(std::make_unique<EngineStreamState>());
  }
  EngineStreamState& state = *ws.streams[static_cast<std::size_t>(index)];
  static const std::vector<NodeReservation> kNoReservations;
  try {
    state.sim.open(config.m, config.reservations != nullptr
                                 ? *config.reservations
                                 : kNoReservations);
  } catch (...) {
    ws.free_streams.push_back(index);
    throw;
  }
  state.sim.set_speculate(config.speculate);
  state.sim.set_speculate_depth(config.speculate_depth);
  state.demt = config.demt;
  state.offline_algorithm = config.offline_algorithm;
  state.policy = config.policy;
  state.in_use = true;
  state.spec_seen_decided = 0;
  state.spec_seen_committed = 0;
  state.spec_seen_rolled_back = 0;
  ++state.serial;
  ++stats_.streams_opened;
  return EngineStreamId{index, state.serial};
}

EngineStreamState& SchedulerEngine::stream_state(const EngineStreamId& id) {
  if (workspaces_.empty() || id.index < 0 ||
      static_cast<std::size_t>(id.index) >= workspaces_[0].streams.size()) {
    throw std::invalid_argument("SchedulerEngine: unknown stream");
  }
  EngineStreamState& state = *workspaces_[0].streams[
      static_cast<std::size_t>(id.index)];
  if (!state.in_use || state.serial != id.serial) {
    throw std::invalid_argument("SchedulerEngine: unknown stream");
  }
  return state;
}

void SchedulerEngine::feed_stream(const EngineStreamId& id,
                                  const StreamArrival* arrivals,
                                  std::size_t count, double watermark,
                                  StreamDelivery& out) {
  EngineStreamState& state = stream_state(id);
  with_stream_policy(
      state, workspaces_[0],
      [&](const SchedulingPolicy& policy, PolicyWorkspace& policy_ws) {
        state.sim.feed(arrivals, count, watermark, policy, policy_ws, out);
      });
  harvest_speculation(state, stats_);
  ++stats_.stream_feeds;
  stats_.stream_arrivals += count;
}

void SchedulerEngine::close_stream(const EngineStreamId& id,
                                   StreamDelivery& out) {
  EngineStreamState& state = stream_state(id);
  // The session returns to the pool whatever finish() does: close is
  // terminal, and a broken stream must not leak its slot.
  EngineWorkspace& ws = workspaces_[0];
  try {
    with_stream_policy(
        state, ws,
        [&](const SchedulingPolicy& policy, PolicyWorkspace& policy_ws) {
          state.sim.finish(policy, policy_ws, out);
        });
  } catch (...) {
    harvest_speculation(state, stats_);
    state.in_use = false;
    state.policy = nullptr;
    ++state.serial;
    ws.free_streams.push_back(id.index);
    throw;
  }
  harvest_speculation(state, stats_);
  state.in_use = false;
  state.policy = nullptr;
  ++state.serial;
  ws.free_streams.push_back(id.index);
}

void SchedulerEngine::checkpoint_stream(const EngineStreamId& id,
                                        StreamCheckpoint& out) {
  stream_state(id).sim.checkpoint(out);
}

EngineStreamId SchedulerEngine::restore_stream(const StreamConfig& config,
                                               const StreamCheckpoint& ckpt) {
  if (workspaces_.empty()) workspaces_.resize(1);
  EngineWorkspace& ws = workspaces_[0];
  int index = -1;
  if (!ws.free_streams.empty()) {
    index = ws.free_streams.back();
    ws.free_streams.pop_back();
  } else {
    index = static_cast<int>(ws.streams.size());
    ws.streams.push_back(std::make_unique<EngineStreamState>());
  }
  EngineStreamState& state = *ws.streams[static_cast<std::size_t>(index)];
  try {
    state.sim.restore(ckpt);
  } catch (...) {
    ws.free_streams.push_back(index);
    throw;
  }
  state.sim.set_speculate(config.speculate);
  state.sim.set_speculate_depth(config.speculate_depth);
  state.demt = config.demt;
  state.offline_algorithm = config.offline_algorithm;
  state.policy = config.policy;
  state.in_use = true;
  state.spec_seen_decided = 0;
  state.spec_seen_committed = 0;
  state.spec_seen_rolled_back = 0;
  ++state.serial;
  ++stats_.streams_restored;
  return EngineStreamId{index, state.serial};
}

void SchedulerEngine::abandon_stream(const EngineStreamId& id) noexcept {
  if (workspaces_.empty() || id.index < 0 ||
      static_cast<std::size_t>(id.index) >= workspaces_[0].streams.size()) {
    return;
  }
  EngineStreamState& state =
      *workspaces_[0].streams[static_cast<std::size_t>(id.index)];
  if (!state.in_use || state.serial != id.serial) return;
  state.in_use = false;
  state.policy = nullptr;
  ++state.serial;
  workspaces_[0].free_streams.push_back(id.index);
}

bool SchedulerEngine::stream_open(const EngineStreamId& id) const noexcept {
  if (workspaces_.empty() || id.index < 0 ||
      static_cast<std::size_t>(id.index) >= workspaces_[0].streams.size()) {
    return false;
  }
  const EngineStreamState& state =
      *workspaces_[0].streams[static_cast<std::size_t>(id.index)];
  return state.in_use && state.serial == id.serial;
}

}  // namespace moldsched
