#include "trace/tape.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "workloads/speedup_models.hpp"

namespace moldsched {

namespace {

/// A record the tape replays: completed (or status-unknown) with a
/// positive runtime and at least one processor. Failed and cancelled
/// records stay in the log for fidelity but never become arrivals.
[[nodiscard]] bool usable(const SwfJob& job) noexcept {
  if (job.status != 1 && job.status != -1) return false;
  if (!(job.run_time > 0.0)) return false;
  return job.req_procs >= 1 || job.used_procs >= 1;
}

[[nodiscard]] int record_procs(const SwfJob& job) noexcept {
  return static_cast<int>(job.req_procs >= 1 ? job.req_procs
                                             : job.used_procs);
}

}  // namespace

void Tape::clear() {
  m = 1;
  arrivals.clear();
  info.clear();
  jobs_in_trace = 0;
  jobs_skipped = 0;
  jobs_sampled_out = 0;
  span = 0.0;
}

double quantize_runtime(double runtime, const TimeGrid& grid, int steps) {
  if (steps < 1) {
    throw std::invalid_argument("quantize_runtime: steps must be >= 1");
  }
  if (!(runtime > 0.0)) {
    throw std::invalid_argument("quantize_runtime: runtime must be > 0");
  }
  const double anchor = grid.t(0);
  if (runtime <= anchor) return anchor;
  // Index of the smallest sub-step boundary anchor * 2^(idx/steps) at or
  // above the runtime. The epsilon re-maps a value already sitting on a
  // boundary (up to log2 rounding noise) onto itself, which is what makes
  // the mapping idempotent.
  const double x =
      std::log2(runtime / anchor) * static_cast<double>(steps);
  double idx = std::ceil(x - 1e-9);
  double q = anchor * std::exp2(idx / static_cast<double>(steps));
  while (q < runtime) {  // floating guard: never round down
    idx += 1.0;
    q = anchor * std::exp2(idx / static_cast<double>(steps));
  }
  return q;
}

void compile_tape(const SwfTrace& trace, const TapeOptions& options,
                  Tape& out) {
  if (!(options.time_scale > 0.0)) {
    throw std::invalid_argument("compile_tape: time_scale must be > 0");
  }
  if (options.stride < 1) {
    throw std::invalid_argument("compile_tape: stride must be >= 1");
  }
  if (options.lanes < 1) {
    throw std::invalid_argument("compile_tape: lanes must be >= 1");
  }
  if (options.quantize_steps < 0 || options.max_jobs < 0) {
    throw std::invalid_argument(
        "compile_tape: quantize_steps and max_jobs must be >= 0");
  }
  if (!(options.weight > 0.0)) {
    throw std::invalid_argument("compile_tape: weight must be > 0");
  }
  if (options.moldable && !(options.downey_sigma >= 0.0)) {
    throw std::invalid_argument(
        "compile_tape: downey_sigma must be >= 0");
  }
  out.clear();
  out.jobs_in_trace = static_cast<std::int64_t>(trace.jobs.size());

  int m = options.m;
  if (m == 0) {
    const std::int64_t header = trace.max_procs >= 1
                                    ? trace.max_procs
                                    : trace.observed_max_procs();
    if (header < 1) {
      throw std::invalid_argument(
          "compile_tape: no machine size (no MaxProcs header, no processor "
          "counts in any record, and options.m == 0)");
    }
    m = static_cast<int>(std::min<std::int64_t>(
        header, std::numeric_limits<int>::max()));
  }
  if (m < 1) {
    throw std::invalid_argument("compile_tape: m must be >= 1");
  }
  out.m = m;

  // Usable records in submit order (stable on file order for ties).
  // Sorting, origin, and the quantization grid are all computed over the
  // *pre-stride* usable set, so a down-sampled tape is an exact sub-tape
  // of the full one.
  static thread_local std::vector<std::int32_t> order;
  order.clear();
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    if (usable(trace.jobs[i])) {
      order.push_back(static_cast<std::int32_t>(i));
    } else {
      ++out.jobs_skipped;
    }
  }
  if (order.empty()) {
    throw std::invalid_argument(
        "compile_tape: no usable record in the trace");
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return trace.jobs[static_cast<std::size_t>(a)].submit <
                            trace.jobs[static_cast<std::size_t>(b)].submit;
                   });
  const double submit0 =
      trace.jobs[static_cast<std::size_t>(order.front())].submit;

  // Quantization grid over the scaled runtimes of every usable record.
  double run_min = std::numeric_limits<double>::infinity();
  double run_max = 0.0;
  for (const std::int32_t i : order) {
    const double r = trace.jobs[static_cast<std::size_t>(i)].run_time /
                     options.time_scale;
    run_min = std::min(run_min, r);
    run_max = std::max(run_max, r);
  }
  const TimeGrid grid(run_max, run_min);

  double release_floor = 0.0;
  std::int64_t usable_seen = 0;
  for (const std::int32_t i : order) {
    const SwfJob& job = trace.jobs[static_cast<std::size_t>(i)];
    const bool kept =
        (usable_seen % options.stride) == 0 &&
        (options.max_jobs == 0 || out.jobs_kept() < options.max_jobs);
    ++usable_seen;
    if (!kept) {
      ++out.jobs_sampled_out;
      continue;
    }
    double release = (job.submit - submit0) / options.time_scale;
    // Submit order is exact, but the division can jitter equal gaps by an
    // ulp; the stream contract requires non-decreasing releases.
    release = std::max(release, release_floor);
    release_floor = release;

    double runtime = job.run_time / options.time_scale;
    if (options.quantize_steps > 0) {
      runtime = quantize_runtime(runtime, grid, options.quantize_steps);
    }
    const int procs = std::min(record_procs(job), m);

    StreamArrival arrival;
    double min_time = runtime;
    if (options.moldable) {
      // Downey curve with average parallelism equal to the request,
      // calibrated so the requested allotment reproduces the logged
      // runtime: seq = runtime * S(procs), time(k) = seq / S(k).
      const double A = static_cast<double>(procs);
      const double seq =
          runtime * downey_speedup(A, A, options.downey_sigma);
      MoldableTask task(downey_times(seq, m, A, options.downey_sigma),
                        options.weight, 1);
      task.enforce_monotonicity();
      min_time = task.min_time();
      arrival = moldable_arrival(std::move(task), release);
    } else {
      arrival = rigid_arrival(procs, runtime, options.weight, release);
    }
    out.arrivals.push_back(std::move(arrival));
    TapeJobInfo info;
    info.swf_id = job.id;
    info.release = release;
    info.min_time = min_time;
    info.lane = job.queue >= 0
                    ? static_cast<int>(job.queue %
                                       static_cast<std::int64_t>(options.lanes))
                    : 0;
    info.procs = procs;
    out.info.push_back(info);
  }
  out.span = out.arrivals.empty()
                 ? 0.0
                 : out.arrivals.back().release - out.arrivals.front().release;
}

}  // namespace moldsched
