/// \file tape.hpp
/// Tape compiler: a parsed SWF log (trace/swf.hpp) becomes a
/// release-ordered `StreamArrival` tape the streaming machinery replays —
/// the bridge from real cluster logs to the paper's online framework.
///
/// Mapping, per usable record (status completed, positive runtime, at
/// least one processor):
///  * release = (submit - first usable submit) / time_scale — real
///    inter-arrival structure, shifted to start at 0 and compressed so a
///    multi-month log replays in seconds;
///  * runtime = run_time / time_scale, optionally rounded UP onto a
///    geometric grid anchored on the log's TimeGrid (quantize_steps
///    sub-steps per doubling) — recurring runtimes collapse onto shared
///    values, which is what makes real logs cache- and
///    speculation-friendly;
///  * processors = requested count (falling back to allocated), clamped
///    to the machine; the job becomes a **rigid** arrival of exactly that
///    shape, or — with `moldable` set — a **moldable** task whose Downey
///    speedup curve (workloads/speedup_models.hpp) has average
///    parallelism equal to the request and is calibrated so the requested
///    allotment reproduces the logged runtime;
///  * lane = queue id modulo the lane count — the per-lane axis the SLO
///    report (trace/slo.hpp) aggregates on.
///
/// Down-sampling is deterministic: usable records are sorted by submit
/// (stable in file order) and every `stride`-th one is kept, so a
/// stride-k tape is an exact sub-tape of the stride-1 tape — same
/// releases, same shapes (gated by tests/test_trace.cpp property tests,
/// together with release monotonicity and quantization idempotence).
///
/// Operator documentation: docs/TRACES.md.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/stream.hpp"
#include "tasks/time_grid.hpp"
#include "trace/swf.hpp"

namespace moldsched {

/// Compilation knobs. The defaults replay the log as-is: rigid shapes,
/// real time, no down-sampling.
struct TapeOptions {
  /// Target machine size; 0 = the log's MaxProcs header, falling back to
  /// the largest processor count any record mentions. Requests larger
  /// than the machine are clamped to it.
  int m = 0;
  /// Divide every submit gap and runtime by this (> 0). Uniform scaling,
  /// so the replayed schedule is the real one with the clock compressed.
  double time_scale = 1.0;
  /// Keep every stride-th usable job in submit order (>= 1).
  int stride = 1;
  /// Stop after this many kept jobs; 0 = unlimited.
  int max_jobs = 0;
  /// Compile moldable tasks (Downey curves calibrated to the log) instead
  /// of rigid shapes.
  bool moldable = false;
  /// Downey curve variance-of-parallelism for moldable compilation.
  double downey_sigma = 1.0;
  /// Round runtimes up onto a geometric grid with this many sub-steps per
  /// TimeGrid doubling; 0 = keep exact runtimes.
  int quantize_steps = 0;
  /// Weight of every compiled task (the log has no priority field).
  double weight = 1.0;
  /// SLO lanes; a job lands in lane (queue mod lanes), lane 0 when the
  /// log has no queue field (>= 1).
  int lanes = 4;
};

/// Per-arrival provenance and SLO inputs, parallel to Tape::arrivals.
struct TapeJobInfo {
  std::int64_t swf_id = -1;  ///< job number in the source log
  double release = 0.0;      ///< compiled release time
  double min_time = 0.0;     ///< fastest runtime (stretch denominator)
  int lane = 0;              ///< SLO lane (queue mod lanes)
  int procs = 0;             ///< compiled processor request
};

/// A compiled replay tape: release-ordered arrivals plus per-job SLO
/// inputs and compile statistics. Buffers keep capacity across compiles.
struct Tape {
  int m = 1;                            ///< machine size replays run on
  std::vector<StreamArrival> arrivals;  ///< release-ordered batch jobs
  std::vector<TapeJobInfo> info;        ///< parallel to arrivals

  std::int64_t jobs_in_trace = 0;  ///< records in the source log
  std::int64_t jobs_skipped = 0;   ///< unusable records filtered out
  std::int64_t jobs_sampled_out = 0;  ///< usable but dropped by stride/cap
  double span = 0.0;               ///< last release minus first (compiled)

  [[nodiscard]] std::int64_t jobs_kept() const noexcept {
    return static_cast<std::int64_t>(arrivals.size());
  }

  /// Empty all fields; capacity kept.
  void clear();
};

/// Round `runtime` UP onto the geometric grid anchored at `grid.t(0)`
/// with `steps` sub-steps per doubling. Idempotent (a grid value maps to
/// itself) and bounded: quantized/runtime is in [1, 2^(1/steps)] up to
/// rounding. Values at or below the anchor map to the anchor. Throws
/// std::invalid_argument on steps < 1 or a non-positive runtime.
[[nodiscard]] double quantize_runtime(double runtime, const TimeGrid& grid,
                                      int steps);

/// Compile `trace` into `out` (cleared first; capacity kept). Throws
/// std::invalid_argument on bad options (time_scale <= 0, stride < 1,
/// lanes < 1, negative quantize_steps or max_jobs, non-positive weight,
/// or no resolvable machine size) and when no usable record survives
/// filtering.
void compile_tape(const SwfTrace& trace, const TapeOptions& options,
                  Tape& out);

}  // namespace moldsched
