#include "trace/slo.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strfmt.hpp"

namespace moldsched {

namespace {

/// Shared bench percentile convention: sorted, index q * (n - 1).
[[nodiscard]] SloPercentiles percentiles_of(std::vector<double>& samples) {
  SloPercentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto last = samples.size() - 1;
  const auto at = [&](double q) {
    const auto index = static_cast<std::size_t>(q * static_cast<double>(last));
    return samples[std::min(index, last)];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

}  // namespace

void SloAccumulator::open(int lanes, std::size_t expected_jobs) {
  if (lanes < 1) {
    throw std::invalid_argument("SloAccumulator: lanes must be >= 1");
  }
  const auto count = static_cast<std::size_t>(lanes);
  latency_.resize(count);
  stretch_.resize(count);
  for (std::size_t lane = 0; lane < count; ++lane) {
    latency_[lane].clear();
    latency_[lane].reserve(expected_jobs);
    stretch_[lane].clear();
    stretch_[lane].reserve(expected_jobs);
  }
  total_ = 0;
}

void SloAccumulator::record(int lane, double release, double min_time,
                            double completion) {
  if (latency_.empty()) {
    throw std::logic_error("SloAccumulator: record before open");
  }
  const auto index = static_cast<std::size_t>(
      std::clamp(lane, 0, static_cast<int>(latency_.size()) - 1));
  const double latency = completion - release;
  latency_[index].push_back(latency);
  stretch_[index].push_back(min_time > 0.0 ? latency / min_time : 0.0);
  ++total_;
}

void SloAccumulator::report(double target_stretch, SloReport& out) {
  if (!(target_stretch > 0.0)) {
    throw std::invalid_argument(
        "SloAccumulator: target_stretch must be > 0");
  }
  out.lanes.clear();
  out.total_jobs = total_;
  out.target_stretch = target_stretch;
  std::int64_t attained_total = 0;
  for (std::size_t lane = 0; lane < latency_.size(); ++lane) {
    SloLaneReport row;
    row.lane = static_cast<int>(lane);
    row.jobs = static_cast<std::int64_t>(latency_[lane].size());
    double latency_sum = 0.0;
    for (const double l : latency_[lane]) latency_sum += l;
    std::int64_t attained = 0;
    for (const double s : stretch_[lane]) {
      if (s <= target_stretch) ++attained;
    }
    attained_total += attained;
    row.mean_latency =
        row.jobs > 0 ? latency_sum / static_cast<double>(row.jobs) : 0.0;
    row.attainment = row.jobs > 0
                         ? static_cast<double>(attained) /
                               static_cast<double>(row.jobs)
                         : 1.0;
    row.latency = percentiles_of(latency_[lane]);
    row.stretch = percentiles_of(stretch_[lane]);
    out.lanes.push_back(row);
  }
  out.attainment = total_ > 0 ? static_cast<double>(attained_total) /
                                    static_cast<double>(total_)
                              : 1.0;
}

std::string slo_report_json(const SloReport& report, const char* indent) {
  std::string out;
  out += indent;
  out += "[\n";
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const SloLaneReport& row = report.lanes[i];
    out += strfmt(
        "%s  {\"lane\": %d, \"jobs\": %lld, "
        "\"latency\": {\"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g, "
        "\"max\": %.6g, \"mean\": %.6g}, "
        "\"stretch\": {\"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g, "
        "\"max\": %.6g}, \"attainment\": %.4f}%s\n",
        indent, row.lane, static_cast<long long>(row.jobs), row.latency.p50,
        row.latency.p90, row.latency.p99, row.latency.max, row.mean_latency,
        row.stretch.p50, row.stretch.p90, row.stretch.p99, row.stretch.max,
        row.attainment, i + 1 < report.lanes.size() ? "," : "");
  }
  out += indent;
  out += "]";
  return out;
}

}  // namespace moldsched
