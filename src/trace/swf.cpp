#include "trace/swf.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/strfmt.hpp"

namespace moldsched {

namespace {

/// The 18 SWF record fields, parsed as doubles first; integer-typed
/// fields are converted (and validated integral) afterwards.
constexpr std::size_t kSwfFields = 18;
/// A record must at least say who it is, when it arrived, how long it
/// waited, and how long it ran; later fields default to -1.
constexpr std::size_t kSwfMinFields = 4;

[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

[[noreturn]] void fail(std::size_t line, const char* what) {
  throw std::invalid_argument(strfmt("swf: line %zu: %s", line, what));
}

/// Convert a parsed double into an integer field; integral spellings
/// ("3", "3.0", "-1") pass, fractional values are malformed.
[[nodiscard]] std::int64_t to_int_field(double value, std::size_t line) {
  if (std::abs(value) > 9.0e18) fail(line, "integer field out of range");
  const double rounded = std::nearbyint(value);
  if (rounded != value) fail(line, "integer field has a fractional part");
  return static_cast<std::int64_t>(rounded);
}

/// Parse one whitespace-separated numeric token starting at `p` (which
/// must point at a non-space, non-newline byte). Advances `p` past the
/// token. Throws on anything from_chars rejects, trailing garbage inside
/// the token, or a non-finite value.
[[nodiscard]] double parse_token(const char*& p, const char* line_end,
                                 std::size_t line) {
  double value = 0.0;
  const auto [next, ec] = std::from_chars(p, line_end, value);
  if (ec != std::errc{}) fail(line, "field is not a number");
  if (next < line_end && !is_space(*next)) {
    fail(line, "trailing characters after a numeric field");
  }
  if (!std::isfinite(value)) fail(line, "field is not finite");
  p = next;
  return value;
}

/// Parse a `; Key: value` header directive into the trace when the key is
/// one we track. Unknown keys and free-form comments are skipped; a
/// malformed value after a known key is tolerated too (comments are never
/// hard errors — a flipped byte in a header must not reject the log).
void parse_directive(const char* p, const char* line_end, SwfTrace& out) {
  ++p;  // past ';'
  while (p < line_end && is_space(*p)) ++p;
  const auto key_matches = [&](std::string_view key) {
    if (static_cast<std::size_t>(line_end - p) < key.size()) return false;
    return std::string_view(p, key.size()) == key;
  };
  struct Directive {
    std::string_view key;
    std::int64_t SwfTrace::* field;
  };
  static constexpr Directive kDirectives[] = {
      {"MaxProcs:", &SwfTrace::max_procs},
      {"MaxQueues:", &SwfTrace::max_queues},
      {"MaxNodes:", &SwfTrace::max_nodes},
  };
  std::int64_t* target = nullptr;
  std::size_t key_len = 0;
  for (const auto& directive : kDirectives) {
    if (key_matches(directive.key)) {
      target = &(out.*directive.field);
      key_len = directive.key.size();
      break;
    }
  }
  if (target == nullptr) return;
  p += key_len;
  while (p < line_end && is_space(*p)) ++p;
  std::int64_t value = 0;
  const auto [next, ec] = std::from_chars(p, line_end, value);
  if (ec != std::errc{} || value < 0) return;  // tolerated, see above
  (void)next;
  *target = value;
}

}  // namespace

std::int64_t SwfTrace::observed_max_procs() const noexcept {
  std::int64_t best = -1;
  for (const auto& job : jobs) {
    best = std::max({best, job.req_procs, job.used_procs});
  }
  return best;
}

void SwfTrace::clear() {
  jobs.clear();
  max_procs = -1;
  max_queues = -1;
  max_nodes = -1;
  comment_lines = 0;
}

void parse_swf(const char* data, std::size_t size, SwfTrace& out) {
  out.clear();
  if (data == nullptr && size != 0) {
    throw std::invalid_argument("swf: null data with nonzero size");
  }
  const char* p = data;
  const char* const end = data + size;
  std::size_t line = 0;
  double fields[kSwfFields];
  while (p < end) {
    ++line;
    const char* line_end = std::find(p, end, '\n');
    while (p < line_end && is_space(*p)) ++p;
    if (p == line_end) {
      ++out.comment_lines;  // blank line
    } else if (*p == ';') {
      ++out.comment_lines;
      parse_directive(p, line_end, out);
    } else {
      std::size_t count = 0;
      while (p < line_end) {
        if (count == kSwfFields) fail(line, "record has more than 18 fields");
        fields[count++] = parse_token(p, line_end, line);
        while (p < line_end && is_space(*p)) ++p;
      }
      if (count < kSwfMinFields) {
        fail(line, "record has fewer than 4 fields");
      }
      for (std::size_t f = count; f < kSwfFields; ++f) fields[f] = -1.0;
      SwfJob job;
      job.id = to_int_field(fields[0], line);
      job.submit = fields[1];
      job.wait = fields[2];
      job.run_time = fields[3];
      job.used_procs = to_int_field(fields[4], line);
      job.avg_cpu = fields[5];
      job.used_mem = fields[6];
      job.req_procs = to_int_field(fields[7], line);
      job.req_time = fields[8];
      job.req_mem = fields[9];
      job.status = to_int_field(fields[10], line);
      job.user = to_int_field(fields[11], line);
      job.group = to_int_field(fields[12], line);
      job.app = to_int_field(fields[13], line);
      job.queue = to_int_field(fields[14], line);
      job.partition = to_int_field(fields[15], line);
      job.prev_job = to_int_field(fields[16], line);
      job.think_time = fields[17];
      out.jobs.push_back(job);
    }
    p = line_end < end ? line_end + 1 : end;
  }
}

void parse_swf(std::string_view text, SwfTrace& out) {
  parse_swf(text.data(), text.size(), out);
}

void load_swf_file(const std::string& path, SwfTrace& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("swf: cannot open " + path);
  }
  static thread_local std::string buffer;  // pooled across loads
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) {
    throw std::runtime_error("swf: cannot read " + path);
  }
  in.seekg(0, std::ios::beg);
  buffer.resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(buffer.data(), size)) {
    throw std::runtime_error("swf: cannot read " + path);
  }
  parse_swf(buffer.data(), buffer.size(), out);
}

}  // namespace moldsched
