#include "trace/swf_write.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/strfmt.hpp"

namespace moldsched {

namespace {

/// Shortest decimal spelling that parses back to exactly `value`: try
/// increasing precision until the round-trip is bit-exact (%.17g always
/// is; most trace values are integers and stop at %.1f-like forms).
std::string round_trip_double(double value) {
  for (int precision = 6; precision <= 17; ++precision) {
    std::string text = strfmt("%.*g", precision, value);
    if (std::strtod(text.c_str(), nullptr) == value) return text;
  }
  return strfmt("%.17g", value);
}

}  // namespace

void write_swf(const SwfTrace& trace, std::ostream& out) {
  out << "; SWF written by moldsched trace/swf_write\n";
  if (trace.max_procs >= 0) {
    out << strfmt("; MaxProcs: %lld\n",
                  static_cast<long long>(trace.max_procs));
  }
  if (trace.max_queues >= 0) {
    out << strfmt("; MaxQueues: %lld\n",
                  static_cast<long long>(trace.max_queues));
  }
  if (trace.max_nodes >= 0) {
    out << strfmt("; MaxNodes: %lld\n",
                  static_cast<long long>(trace.max_nodes));
  }
  for (const auto& job : trace.jobs) {
    out << strfmt("%lld %s %s %s %lld %s %s %lld %s %s "
                  "%lld %lld %lld %lld %lld %lld %lld %s\n",
                  static_cast<long long>(job.id),
                  round_trip_double(job.submit).c_str(),
                  round_trip_double(job.wait).c_str(),
                  round_trip_double(job.run_time).c_str(),
                  static_cast<long long>(job.used_procs),
                  round_trip_double(job.avg_cpu).c_str(),
                  round_trip_double(job.used_mem).c_str(),
                  static_cast<long long>(job.req_procs),
                  round_trip_double(job.req_time).c_str(),
                  round_trip_double(job.req_mem).c_str(),
                  static_cast<long long>(job.status),
                  static_cast<long long>(job.user),
                  static_cast<long long>(job.group),
                  static_cast<long long>(job.app),
                  static_cast<long long>(job.queue),
                  static_cast<long long>(job.partition),
                  static_cast<long long>(job.prev_job),
                  round_trip_double(job.think_time).c_str());
  }
}

void synthesize_swf(const SynthSwfOptions& options, Rng& rng,
                    SwfTrace& trace) {
  if (options.jobs < 1 || options.max_procs < 1 || options.queues < 1) {
    throw std::invalid_argument(
        "synthesize_swf: jobs, max_procs and queues must be >= 1");
  }
  if (!(options.mean_gap > 0.0) || !(options.run_lo > 0.0) ||
      !(options.run_hi >= options.run_lo)) {
    throw std::invalid_argument(
        "synthesize_swf: need mean_gap > 0 and 0 < run_lo <= run_hi");
  }
  trace.clear();
  trace.max_procs = options.max_procs;
  trace.max_queues = options.queues;
  const double log_lo = std::log(options.run_lo);
  const double log_hi = std::log(options.run_hi);
  double submit = 0.0;
  for (int i = 0; i < options.jobs; ++i) {
    SwfJob job;
    job.id = i + 1;
    // Whole-second submits/runtimes like a real accounting log.
    job.submit = std::floor(submit);
    submit += rng.exponential(options.mean_gap);
    job.run_time =
        std::max(1.0, std::floor(std::exp(rng.uniform(log_lo, log_hi))));
    // Processor requests lean on powers of two, as archive logs do.
    const int log2_cap = static_cast<int>(
        std::floor(std::log2(static_cast<double>(options.max_procs))));
    int procs = 1 << static_cast<int>(rng.uniform_int(0, log2_cap));
    if (rng.uniform() < 0.25) {
      procs = static_cast<int>(rng.uniform_int(1, options.max_procs));
    }
    job.req_procs = procs;
    job.used_procs = procs;
    job.req_time = std::floor(job.run_time * rng.uniform(1.0, 3.0));
    job.wait = std::floor(rng.exponential(options.mean_gap));
    job.user = rng.uniform_int(1, 12);
    job.group = 1 + job.user % 3;
    job.app = rng.uniform_int(1, 8);
    job.queue = rng.uniform_int(0, options.queues - 1);
    job.partition = 1;
    job.status = 1;
    const double pick = rng.uniform();
    if (pick < options.frac_failed) {
      job.status = 0;
    } else if (pick < options.frac_failed + options.frac_cancelled) {
      job.status = 5;
      job.run_time = -1.0;  // cancelled before running
      job.used_procs = -1;
    }
    trace.jobs.push_back(job);
  }
}

}  // namespace moldsched
