/// \file swf_write.hpp
/// SWF emission: the write half of trace/swf.hpp plus a deterministic
/// synthetic-log generator, so tests and benches exercise the full
/// ingest pipeline without ever fetching a real archive log. The bundled
/// mini-trace under tests/data/ is exactly `synthesize_swf` output (the
/// round-trip is regression-gated by tests/test_trace.cpp), and
/// `bench/trace_replay --synth-out` regenerates it.
///
/// write_swf emits doubles with enough digits to round-trip bit-exactly
/// through parse_swf, so parse(write(trace)) == trace field for field.

#pragma once

#include <cstdint>
#include <iosfwd>

#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace moldsched {

/// Write `trace` as SWF text: header directives for every present
/// MaxProcs/MaxQueues/MaxNodes value, then one 18-field record per job in
/// trace order. Round-trips bit-exactly through parse_swf.
void write_swf(const SwfTrace& trace, std::ostream& out);

/// Knobs of the synthetic workload log. The defaults produce the bundled
/// ~200-job mini-trace shape: Poisson submits, log-uniform runtimes over
/// three decades, power-of-two-leaning processor requests, a small queue
/// set, and a realistic sprinkle of failed/cancelled records (which the
/// tape compiler must filter out).
struct SynthSwfOptions {
  int jobs = 200;              ///< records to emit
  int max_procs = 64;          ///< cluster size (MaxProcs header)
  int queues = 3;              ///< queue ids drawn from [0, queues)
  double mean_gap = 90.0;      ///< mean inter-submit gap (s, exponential)
  double run_lo = 10.0;        ///< runtime lower bound (s)
  double run_hi = 10000.0;     ///< runtime upper bound (s, log-uniform)
  double frac_failed = 0.05;   ///< records with status 0 (failed)
  double frac_cancelled = 0.05;///< records with status 5 (cancelled, run -1)
};

/// Generate a synthetic SWF log into `trace` (cleared first).
/// Deterministic in (options, rng state). Throws std::invalid_argument on
/// non-positive jobs/max_procs/queues/mean_gap or an empty runtime range.
void synthesize_swf(const SynthSwfOptions& options, Rng& rng, SwfTrace& trace);

}  // namespace moldsched
