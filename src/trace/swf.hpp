/// \file swf.hpp
/// Parser for the Standard Workload Format (SWF) of the Parallel Workloads
/// Archive — the cluster-log format the moldable-scheduling literature
/// (the paper's evaluation lineage included) benchmarks on. An SWF file is
/// line-oriented: comment lines start with ';' (header comments carry
/// `; Key: value` directives such as MaxProcs), every other non-blank line
/// is one job record of up to 18 whitespace-separated numeric fields, with
/// -1 marking "not available".
///
/// The parser is allocation-conscious and fuzz-hardened like the
/// checkpoint codec (sim/checkpoint.hpp): it streams over a caller-owned
/// byte range with std::from_chars (no per-line string or stream is ever
/// built), all output buffers keep capacity across parses, and any byte
/// mutation of a valid file either parses or throws std::invalid_argument
/// with the offending line number — never undefined behaviour (gated by
/// the per-byte truncation/flip fuzz in tests/test_trace.cpp).
///
/// Tolerance contract: comments and blank lines are skipped; a record may
/// stop early after the first four fields (missing trailing fields default
/// to -1, matching archive practice for logs predating newer fields).
/// Hard errors: a non-numeric or non-finite token, a record with fewer
/// than four or more than eighteen fields. Semantic filtering (dropping
/// cancelled jobs, zero runtimes, ...) is the tape compiler's job
/// (trace/tape.hpp), not the parser's.
///
/// Operator documentation (field mapping, replay pipeline, SLO schema):
/// docs/TRACES.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace moldsched {

/// One SWF job record. Field order and semantics follow the SWF
/// definition; every field is -1 when the log does not provide it.
/// Integer-valued fields accept integral spellings like "3.0" (archives
/// are not consistent) but reject fractional values.
struct SwfJob {
  std::int64_t id = -1;          ///< 1: job number
  double submit = -1.0;          ///< 2: submit time, seconds from log start
  double wait = -1.0;            ///< 3: wait time (s)
  double run_time = -1.0;        ///< 4: run time (s)
  std::int64_t used_procs = -1;  ///< 5: allocated processors
  double avg_cpu = -1.0;         ///< 6: average CPU time used (s)
  double used_mem = -1.0;        ///< 7: used memory (KB)
  std::int64_t req_procs = -1;   ///< 8: requested processors
  double req_time = -1.0;        ///< 9: requested time (s)
  double req_mem = -1.0;         ///< 10: requested memory (KB)
  std::int64_t status = -1;      ///< 11: 1 completed, 0 failed, 5 cancelled
  std::int64_t user = -1;        ///< 12: user id
  std::int64_t group = -1;       ///< 13: group id
  std::int64_t app = -1;         ///< 14: executable/application number
  std::int64_t queue = -1;       ///< 15: queue number
  std::int64_t partition = -1;   ///< 16: partition number
  std::int64_t prev_job = -1;    ///< 17: preceding job number
  double think_time = -1.0;      ///< 18: think time from preceding job (s)
};

/// A parsed SWF log: header directives plus the job records in file
/// order. Buffers keep capacity across parses, so one pooled SwfTrace
/// ingests many files without reallocation once warm.
struct SwfTrace {
  std::vector<SwfJob> jobs;
  std::int64_t max_procs = -1;   ///< `; MaxProcs:` header, -1 when absent
  std::int64_t max_queues = -1;  ///< `; MaxQueues:` header, -1 when absent
  std::int64_t max_nodes = -1;   ///< `; MaxNodes:` header, -1 when absent
  std::size_t comment_lines = 0; ///< comment/blank lines skipped

  /// Largest processor count any record mentions (requested or used) —
  /// the machine-size fallback when no MaxProcs header is present.
  [[nodiscard]] std::int64_t observed_max_procs() const noexcept;

  /// Empty all fields; capacity kept.
  void clear();
};

/// Parse an SWF byte range into `out` (cleared first; capacity kept).
/// Never reads outside [data, data + size). Throws std::invalid_argument
/// naming the 1-based line of the first malformed record (see the file
/// comment for the tolerance contract).
void parse_swf(const char* data, std::size_t size, SwfTrace& out);

/// Convenience form over a string view (same contract).
void parse_swf(std::string_view text, SwfTrace& out);

/// Read `path` into a pooled buffer and parse it. Throws
/// std::runtime_error when the file cannot be read, std::invalid_argument
/// on a malformed record.
void load_swf_file(const std::string& path, SwfTrace& out);

}  // namespace moldsched
