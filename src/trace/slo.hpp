/// \file slo.hpp
/// Per-lane SLO accounting for trace replay: latency (flow time),
/// stretch (flow over fastest possible runtime), and deadline attainment
/// (fraction of jobs whose completion meets release + target_stretch *
/// min_time), aggregated per lane (trace/tape.hpp assigns lanes from SWF
/// queue ids) with p50/p90/p99/max percentiles.
///
/// Allocation contract: `open` sizes every per-lane buffer once from the
/// tape's job count; `record` then appends within capacity — the replay
/// loop adds one sample per decided job without any heap allocation
/// (gated by bench/trace_replay.cpp's allocs/arrival exit check, which
/// runs with an accumulator active). `report` sorts the pooled buffers in
/// place — call it after the replay, not inside it.
///
/// The JSON emitted by slo_report_json is the per-lane block of the
/// BENCH_trace.json schema (docs/BENCHMARKS.md); percentiles use the
/// benches' shared convention (index q * (n - 1) after sorting).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace moldsched {

/// Percentile row of one metric.
struct SloPercentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Aggregated SLO numbers of one lane.
struct SloLaneReport {
  int lane = 0;
  std::int64_t jobs = 0;
  SloPercentiles latency;      ///< completion - release
  SloPercentiles stretch;      ///< latency / min_time
  double mean_latency = 0.0;
  double attainment = 1.0;     ///< fraction with stretch <= target
};

/// Whole-replay SLO report: one row per lane plus machine-wide totals.
struct SloReport {
  std::vector<SloLaneReport> lanes;
  std::int64_t total_jobs = 0;
  double target_stretch = 0.0;  ///< the deadline rule the report used
  double attainment = 1.0;      ///< job-weighted across lanes
};

/// Accumulates (latency, stretch) samples per lane during a replay and
/// reduces them to an SloReport afterwards. Reusable: open() resets
/// counts and keeps capacity.
class SloAccumulator {
 public:
  /// Start a run over `lanes` lanes, reserving room for `expected_jobs`
  /// samples per lane so record() never allocates during the replay.
  /// Throws std::invalid_argument on lanes < 1.
  void open(int lanes, std::size_t expected_jobs);

  /// Add one decided job: lane (clamped into range), its release, its
  /// fastest possible runtime (> 0; the stretch denominator), and its
  /// completion time. Allocation-free within the open() reservation.
  void record(int lane, double release, double min_time, double completion);

  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(latency_.size());
  }
  [[nodiscard]] std::int64_t total_recorded() const noexcept {
    return total_;
  }

  /// Reduce the accumulated samples into `out` using the deadline rule
  /// completion <= release + target_stretch * min_time. Sorts the pooled
  /// sample buffers in place (record() must not run after report() in the
  /// same run). Throws std::invalid_argument on target_stretch <= 0.
  void report(double target_stretch, SloReport& out);

 private:
  std::vector<std::vector<double>> latency_;  ///< per lane
  std::vector<std::vector<double>> stretch_;  ///< per lane, parallel
  std::int64_t total_ = 0;
};

/// Render `report.lanes` as the JSON array of the BENCH_trace.json
/// "slo_lanes" block; every line is prefixed with `indent`.
[[nodiscard]] std::string slo_report_json(const SloReport& report,
                                          const char* indent);

}  // namespace moldsched
