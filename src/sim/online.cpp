#include "sim/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace moldsched {

namespace {

/// Processors whose reservations intersect [start, finish).
std::vector<bool> blocked_procs(int m,
                                const std::vector<NodeReservation>& reservations,
                                double start, double finish) {
  std::vector<bool> blocked(static_cast<std::size_t>(m), false);
  for (const auto& r : reservations) {
    if (r.start < finish && r.finish > start) {
      blocked[static_cast<std::size_t>(r.proc)] = true;
    }
  }
  return blocked;
}

}  // namespace

OnlineResult online_batch_schedule(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations) {
  if (m < 1) throw std::invalid_argument("online_batch_schedule: m < 1");
  if (jobs.empty()) {
    throw std::invalid_argument("online_batch_schedule: no jobs");
  }
  for (const auto& r : reservations) {
    if (r.proc < 0 || r.proc >= m || !(r.finish > r.start)) {
      throw std::invalid_argument("online_batch_schedule: bad reservation");
    }
  }
  const int n = static_cast<int>(jobs.size());
  for (const auto& job : jobs) {
    if (job.release < 0.0) {
      throw std::invalid_argument("online_batch_schedule: negative release");
    }
  }

  // Jobs in release order.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return jobs[static_cast<std::size_t>(a)].release <
           jobs[static_cast<std::size_t>(b)].release;
  });

  OnlineResult result(m, n);
  result.completion.assign(static_cast<std::size_t>(n), 0.0);
  result.flow.assign(static_cast<std::size_t>(n), 0.0);

  std::size_t next = 0;
  double now = 0.0;
  while (next < order.size()) {
    // The batch opens when the machine is idle and at least one job has
    // arrived.
    now = std::max(now, jobs[static_cast<std::size_t>(order[next])].release);
    std::vector<int> batch_jobs;
    while (next < order.size() &&
           jobs[static_cast<std::size_t>(order[next])].release <= now + 1e-12) {
      batch_jobs.push_back(order[next]);
      ++next;
    }

    // Determine the available processors against reservations: start from
    // "everything free", schedule, check which reservations the batch
    // overlaps, remove those processors and retry until stable.
    std::vector<bool> blocked(static_cast<std::size_t>(m), false);
    Schedule batch_schedule(1, 0);
    std::vector<int> free_procs;
    for (int iteration = 0; iteration <= m; ++iteration) {
      free_procs.clear();
      for (int p = 0; p < m; ++p) {
        if (!blocked[static_cast<std::size_t>(p)]) free_procs.push_back(p);
      }
      const int avail = static_cast<int>(free_procs.size());
      if (avail == 0) {
        // Fully reserved at this instant: jump past the earliest blocking
        // reservation end and rebuild the batch window.
        double jump = std::numeric_limits<double>::infinity();
        for (const auto& r : reservations) {
          if (r.finish > now) jump = std::min(jump, r.finish);
        }
        if (!std::isfinite(jump)) {
          throw std::logic_error(
              "online_batch_schedule: machine permanently fully reserved");
        }
        now = jump;
        blocked = blocked_procs(m, reservations, now, now);
        continue;
      }
      // Build the batch instance on the reduced machine.
      Instance batch_instance(avail);
      for (int job_id : batch_jobs) {
        const MoldableTask& task = jobs[static_cast<std::size_t>(job_id)].task;
        if (task.min_procs() > avail) {
          throw std::invalid_argument(
              "online_batch_schedule: job cannot fit on available "
              "processors");
        }
        // Truncate the time vector to the reduced machine width.
        std::vector<double> times(task.times().begin(),
                                  task.times().begin() +
                                      std::min(task.max_procs(), avail));
        batch_instance.add_task(
            MoldableTask(std::move(times), task.weight(), task.min_procs()));
      }
      batch_schedule = offline(batch_instance);
      const double horizon = now + batch_schedule.cmax();
      auto new_blocked = blocked_procs(m, reservations, now, horizon);
      if (new_blocked == blocked) break;  // fixpoint: no new conflicts
      for (std::size_t p = 0; p < new_blocked.size(); ++p) {
        if (new_blocked[p]) blocked[p] = true;  // monotone growth => converges
      }
    }

    // Lift the batch schedule into global time / global processor ids.
    for (std::size_t b = 0; b < batch_jobs.size(); ++b) {
      const int job_id = batch_jobs[b];
      const Placement& p = batch_schedule.placement(static_cast<int>(b));
      std::vector<int> procs;
      procs.reserve(p.procs.size());
      for (int local : p.procs) {
        procs.push_back(free_procs[static_cast<std::size_t>(local)]);
      }
      result.schedule.place(job_id, now + p.start, p.duration, std::move(procs));
      const double completion = now + p.finish();
      result.completion[static_cast<std::size_t>(job_id)] = completion;
      result.flow[static_cast<std::size_t>(job_id)] =
          completion - jobs[static_cast<std::size_t>(job_id)].release;
      result.cmax = std::max(result.cmax, completion);
      const double w = jobs[static_cast<std::size_t>(job_id)].task.weight();
      result.weighted_completion_sum += w * completion;
      result.weighted_flow_sum +=
          w * result.flow[static_cast<std::size_t>(job_id)];
    }
    result.batch_starts.push_back(now);
    ++result.num_batches;
    now += batch_schedule.cmax();
  }
  return result;
}

}  // namespace moldsched
