#include "sim/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace moldsched {

namespace {

/// Shared input validation of both paths (identical checks and messages).
void check_inputs(int m, const std::vector<OnlineJob>& jobs,
                  const std::vector<NodeReservation>& reservations) {
  if (m < 1) throw std::invalid_argument("online_batch_schedule: m < 1");
  if (jobs.empty()) {
    throw std::invalid_argument("online_batch_schedule: no jobs");
  }
  for (const auto& r : reservations) {
    if (r.proc < 0 || r.proc >= m || !(r.finish > r.start)) {
      throw std::invalid_argument("online_batch_schedule: bad reservation");
    }
  }
  for (const auto& job : jobs) {
    if (job.release < 0.0) {
      throw std::invalid_argument("online_batch_schedule: negative release");
    }
  }
}

/// Build the reduced-machine batch instance for the jobs of the open batch
/// (time vectors truncated to the reduced width). Reference path only: the
/// flat path re-fills the pooled ws.batch_instance instead.
Instance build_batch_instance(const std::vector<OnlineJob>& jobs,
                              const std::vector<int>& batch_jobs, int avail) {
  Instance batch_instance(avail);
  for (int job_id : batch_jobs) {
    const MoldableTask& task = jobs[static_cast<std::size_t>(job_id)].task;
    if (task.min_procs() > avail) {
      throw std::invalid_argument(
          "online_batch_schedule: job cannot fit on available "
          "processors");
    }
    std::vector<double> times(task.times().begin(),
                              task.times().begin() +
                                  std::min(task.max_procs(), avail));
    batch_instance.add_task(
        MoldableTask(std::move(times), task.weight(), task.min_procs()));
  }
  return batch_instance;
}

/// Pooled twin of build_batch_instance: identical values, zero heap
/// allocation once the instance's shell pool is warm.
void rebuild_batch_instance(const OnlineJob* jobs,
                            const std::vector<int>& batch_jobs, int avail,
                            Instance& batch_instance) {
  batch_instance.reset(avail);
  for (int job_id : batch_jobs) {
    const MoldableTask& task = jobs[static_cast<std::size_t>(job_id)].task;
    if (task.min_procs() > avail) {
      throw std::invalid_argument(
          "online_batch_schedule: job cannot fit on available "
          "processors");
    }
    batch_instance.add_task_truncated(task, avail);
  }
}

/// Original (pre-refactor) helper of the reference path.
std::vector<bool> blocked_procs(int m,
                                const std::vector<NodeReservation>& reservations,
                                double start, double finish) {
  std::vector<bool> blocked(static_cast<std::size_t>(m), false);
  for (const auto& r : reservations) {
    if (r.start < finish && r.finish > start) {
      blocked[static_cast<std::size_t>(r.proc)] = true;
    }
  }
  return blocked;
}

}  // namespace

void FlatOnlineResult::reset(int num_jobs) {
  schedule.reset(num_jobs);
  completion.assign(static_cast<std::size_t>(num_jobs), 0.0);
  flow.assign(static_cast<std::size_t>(num_jobs), 0.0);
  cmax = 0.0;
  weighted_completion_sum = 0.0;
  weighted_flow_sum = 0.0;
  num_batches = 0;
  batch_starts.clear();
}

void online_blocked_procs_into(
    int m, const std::vector<NodeReservation>& reservations, double start,
    double finish, std::vector<std::uint8_t>& blocked) {
  blocked.assign(static_cast<std::size_t>(m), 0);
  for (const auto& r : reservations) {
    if (r.start < finish && r.finish > start) {
      blocked[static_cast<std::size_t>(r.proc)] = 1;
    }
  }
}

FlatOfflineScheduler wrap_offline(OfflineScheduler offline) {
  return [offline = std::move(offline)](const Instance& batch,
                                        OnlineWorkspace& /*ws*/,
                                        FlatPlacements& out) {
    out.assign_from(offline(batch));
  };
}

FlatOfflineScheduler policy_offline(const SchedulingPolicy& policy,
                                    PolicyWorkspace& ws) {
  const SchedulingPolicy* p = &policy;  // two-pointer capture: stays in SBO
  PolicyWorkspace* w = &ws;
  return [p, w](const Instance& batch, OnlineWorkspace& /*ows*/,
                FlatPlacements& out) { p->schedule_into(batch, *w, out); };
}

void online_settle_batch(int m, const OnlineJob* jobs,
                         const std::vector<NodeReservation>& reservations,
                         const FlatOfflineScheduler& offline,
                         OnlineWorkspace& ws, double& now) {
  // Determine the available processors against reservations: start from
  // "everything free", schedule, check which reservations the batch
  // overlaps, remove those processors and retry until stable — the shared
  // reservation_fixpoint loop, proposing the batch's own makespan as the
  // window. On return ws.batch holds the settled batch-local placements
  // and ws.free_procs the processors the batch may use.
  ws.blocked.assign(static_cast<std::size_t>(m), 0);
  (void)reservation_fixpoint(
      m, reservations, ws, now,
      [&](int avail) {
        rebuild_batch_instance(jobs, ws.batch_jobs, avail, ws.batch_instance);
        offline(ws.batch_instance, ws, ws.batch);
        return ws.batch.cmax();
      },
      "online_batch_schedule");
}

void online_lift_batch(const OnlineJob* jobs, const int* batch_jobs,
                       std::size_t count, const FlatPlacements& batch,
                       const std::vector<int>& free_procs, double clock,
                       FlatOnlineResult& out) {
  // Lift the batch placements into global time / global processor ids.
  for (std::size_t b = 0; b < count; ++b) {
    const int job_id = batch_jobs[b];
    const auto job = static_cast<std::size_t>(job_id);
    out.schedule.start[job] = clock + batch.start[b];
    out.schedule.duration[job] = batch.duration[b];
    out.schedule.proc_begin[job] =
        static_cast<int>(out.schedule.proc_ids.size());
    out.schedule.proc_count[job] = batch.proc_count[b];
    const auto begin = static_cast<std::size_t>(batch.proc_begin[b]);
    const auto pcount = static_cast<std::size_t>(batch.proc_count[b]);
    for (std::size_t p = begin; p < begin + pcount; ++p) {
      out.schedule.proc_ids.push_back(
          free_procs[static_cast<std::size_t>(batch.proc_ids[p])]);
    }
    const double completion = clock + (batch.start[b] + batch.duration[b]);
    out.completion[job] = completion;
    out.flow[job] = completion - jobs[job].release;
    out.cmax = std::max(out.cmax, completion);
    const double w = jobs[job].task.weight();
    out.weighted_completion_sum += w * completion;
    out.weighted_flow_sum += w * out.flow[job];
  }
  out.batch_starts.push_back(clock);
  ++out.num_batches;
}

void online_decide_batch(int m, const OnlineJob* jobs,
                         const std::vector<NodeReservation>& reservations,
                         const FlatOfflineScheduler& offline,
                         OnlineWorkspace& ws, double& now,
                         FlatOnlineResult& out) {
  online_settle_batch(m, jobs, reservations, offline, ws, now);
  online_lift_batch(jobs, ws.batch_jobs.data(), ws.batch_jobs.size(), ws.batch,
                    ws.free_procs, now, out);
  now += ws.batch.cmax();
}

void online_batch_schedule_into(
    int m, const std::vector<OnlineJob>& jobs,
    const FlatOfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations, OnlineWorkspace& ws,
    FlatOnlineResult& out) {
  check_inputs(m, jobs, reservations);
  const int n = static_cast<int>(jobs.size());

  // Jobs in release order; arrival index breaks ties so simultaneous
  // releases keep a well-defined batch order (the same order a stream
  // feeding them one by one produces).
  ws.order.resize(static_cast<std::size_t>(n));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::sort(ws.order.begin(), ws.order.end(), [&](int a, int b) {
    const double ra = jobs[static_cast<std::size_t>(a)].release;
    const double rb = jobs[static_cast<std::size_t>(b)].release;
    if (ra != rb) return ra < rb;
    return a < b;
  });

  out.reset(n);

  std::size_t next = 0;
  double now = 0.0;
  while (next < ws.order.size()) {
    // The batch opens when the machine is idle and at least one job has
    // arrived.
    now = std::max(now, jobs[static_cast<std::size_t>(ws.order[next])].release);
    ws.batch_jobs.clear();
    while (next < ws.order.size() &&
           jobs[static_cast<std::size_t>(ws.order[next])].release <=
               now + kReleaseTieEps) {
      ws.batch_jobs.push_back(ws.order[next]);
      ++next;
    }
    online_decide_batch(m, jobs.data(), reservations, offline, ws, now, out);
  }
}

void online_batch_schedule_into(
    int m, const std::vector<OnlineJob>& jobs, const SchedulingPolicy& policy,
    PolicyWorkspace& policy_ws,
    const std::vector<NodeReservation>& reservations, OnlineWorkspace& ws,
    FlatOnlineResult& out) {
  online_batch_schedule_into(m, jobs, policy_offline(policy, policy_ws),
                             reservations, ws, out);
}

OnlineResult online_batch_schedule(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations) {
  OnlineWorkspace ws;
  FlatOnlineResult flat;
  online_batch_schedule_into(m, jobs, wrap_offline(offline), reservations, ws,
                             flat);
  OnlineResult result(m, static_cast<int>(jobs.size()));
  result.schedule = flat.schedule.to_schedule(m);
  result.completion = std::move(flat.completion);
  result.flow = std::move(flat.flow);
  result.cmax = flat.cmax;
  result.weighted_completion_sum = flat.weighted_completion_sum;
  result.weighted_flow_sum = flat.weighted_flow_sum;
  result.num_batches = flat.num_batches;
  result.batch_starts = std::move(flat.batch_starts);
  return result;
}

OnlineResult online_batch_schedule_reference(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations) {
  check_inputs(m, jobs, reservations);
  const int n = static_cast<int>(jobs.size());

  // Jobs in release order (arrival-index tie-break, matching the flat
  // core so the two paths stay bit-identical on simultaneous releases).
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = jobs[static_cast<std::size_t>(a)].release;
    const double rb = jobs[static_cast<std::size_t>(b)].release;
    if (ra != rb) return ra < rb;
    return a < b;
  });

  OnlineResult result(m, n);
  result.completion.assign(static_cast<std::size_t>(n), 0.0);
  result.flow.assign(static_cast<std::size_t>(n), 0.0);

  std::size_t next = 0;
  double now = 0.0;
  while (next < order.size()) {
    // The batch opens when the machine is idle and at least one job has
    // arrived.
    now = std::max(now, jobs[static_cast<std::size_t>(order[next])].release);
    std::vector<int> batch_jobs;
    while (next < order.size() &&
           jobs[static_cast<std::size_t>(order[next])].release <= now + 1e-12) {
      batch_jobs.push_back(order[next]);
      ++next;
    }

    // Determine the available processors against reservations: start from
    // "everything free", schedule, check which reservations the batch
    // overlaps, remove those processors and retry until stable.
    std::vector<bool> blocked(static_cast<std::size_t>(m), false);
    Schedule batch_schedule(1, 0);
    std::vector<int> free_procs;
    // Same iteration budget as the flat core (the two paths must stay
    // bit-identical, including on inputs that exercise the budget).
    const int max_iterations =
        (static_cast<int>(reservations.size()) + 1) * (m + 2);
    bool settled = false;
    for (int iteration = 0; iteration < max_iterations; ++iteration) {
      free_procs.clear();
      for (int p = 0; p < m; ++p) {
        if (!blocked[static_cast<std::size_t>(p)]) free_procs.push_back(p);
      }
      const int avail = static_cast<int>(free_procs.size());
      if (avail == 0) {
        // Fully reserved at this instant: jump past the earliest blocking
        // reservation end and rebuild the batch window.
        double jump = std::numeric_limits<double>::infinity();
        for (const auto& r : reservations) {
          if (r.finish > now) jump = std::min(jump, r.finish);
        }
        if (!std::isfinite(jump)) {
          throw std::logic_error(
              "online_batch_schedule: machine permanently fully reserved");
        }
        now = jump;
        blocked = blocked_procs(m, reservations, now, now);
        continue;
      }
      // Build the batch instance on the reduced machine.
      const Instance batch_instance =
          build_batch_instance(jobs, batch_jobs, avail);
      batch_schedule = offline(batch_instance);
      const double horizon = now + batch_schedule.cmax();
      auto new_blocked = blocked_procs(m, reservations, now, horizon);
      if (new_blocked == blocked) {  // fixpoint: no new conflicts
        settled = true;
        break;
      }
      for (std::size_t p = 0; p < new_blocked.size(); ++p) {
        if (new_blocked[p]) blocked[p] = true;  // monotone growth => converges
      }
    }
    if (!settled) {
      throw std::logic_error(
          "online_batch_schedule: reservation fixpoint failed to converge");
    }

    // Lift the batch schedule into global time / global processor ids.
    for (std::size_t b = 0; b < batch_jobs.size(); ++b) {
      const int job_id = batch_jobs[b];
      const Placement& p = batch_schedule.placement(static_cast<int>(b));
      std::vector<int> procs;
      procs.reserve(p.procs.size());
      for (int local : p.procs) {
        procs.push_back(free_procs[static_cast<std::size_t>(local)]);
      }
      result.schedule.place(job_id, now + p.start, p.duration, std::move(procs));
      const double completion = now + p.finish();
      result.completion[static_cast<std::size_t>(job_id)] = completion;
      result.flow[static_cast<std::size_t>(job_id)] =
          completion - jobs[static_cast<std::size_t>(job_id)].release;
      result.cmax = std::max(result.cmax, completion);
      const double w = jobs[static_cast<std::size_t>(job_id)].task.weight();
      result.weighted_completion_sum += w * completion;
      result.weighted_flow_sum +=
          w * result.flow[static_cast<std::size_t>(job_id)];
    }
    result.batch_starts.push_back(now);
    ++result.num_batches;
    now += batch_schedule.cmax();
  }
  return result;
}

}  // namespace moldsched
