#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/strfmt.hpp"

namespace moldsched {

namespace {

struct Event {
  double time;
  bool is_finish;  // finishes processed before starts at equal time
  int task;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    // Finish events first so back-to-back placements do not conflict.
    return is_finish < other.is_finish;
  }
};

}  // namespace

SimResult simulate_execution(const Schedule& schedule, const Instance& instance) {
  SimResult result;
  const int n = instance.num_tasks();
  const int m = instance.procs();
  if (schedule.num_tasks() != n || schedule.procs() != m) {
    result.ok = false;
    result.errors.emplace_back("schedule/instance shape mismatch");
    return result;
  }

  result.completion.assign(static_cast<std::size_t>(n), 0.0);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (int i = 0; i < n; ++i) {
    if (!schedule.assigned(i)) {
      result.ok = false;
      result.errors.push_back(strfmt("task %d never starts", i));
      continue;
    }
    const Placement& p = schedule.placement(i);
    const double expected = instance.task(i).time(p.nprocs());
    if (std::abs(expected - p.duration) > 1e-9) {
      result.ok = false;
      result.errors.push_back(
          strfmt("task %d duration %.12g does not match model %.12g", i,
                 p.duration, expected));
    }
    events.push(Event{p.start, false, i});
    events.push(Event{p.finish(), true, i});
  }

  std::vector<int> owner(static_cast<std::size_t>(m), -1);  // running task
  while (!events.empty()) {
    const Event e = events.top();
    events.pop();
    ++result.events;
    const Placement& p = schedule.placement(e.task);
    if (e.is_finish) {
      for (int proc : p.procs) {
        if (owner[static_cast<std::size_t>(proc)] == e.task) {
          owner[static_cast<std::size_t>(proc)] = -1;
        }
      }
      result.completion[static_cast<std::size_t>(e.task)] = e.time;
      result.cmax = std::max(result.cmax, e.time);
      result.busy_area += p.duration * p.nprocs();
      result.weighted_completion_sum +=
          instance.task(e.task).weight() * e.time;
    } else {
      for (int proc : p.procs) {
        const int running = owner[static_cast<std::size_t>(proc)];
        if (running != -1) {
          // Back-to-back placements can disagree by one ulp on when the
          // hand-over happens (start computed as a different floating-point
          // sum than the predecessor's finish); a finish at effectively the
          // same instant is a clean hand-over, not a conflict.
          const double running_finish = schedule.placement(running).finish();
          const double tol = 1e-9 * (1.0 + std::abs(e.time));
          if (running_finish <= e.time + tol) {
            result.completion[static_cast<std::size_t>(running)] =
                running_finish;
            result.cmax = std::max(result.cmax, running_finish);
          } else {
            result.ok = false;
            result.errors.push_back(
                strfmt("t=%.12g: task %d claims processor %d still running "
                       "task %d",
                       e.time, e.task, proc, running));
          }
        }
        owner[static_cast<std::size_t>(proc)] = e.task;
      }
    }
  }
  if (result.cmax > 0.0) {
    result.utilisation = result.busy_area / (static_cast<double>(m) * result.cmax);
  }
  return result;
}

}  // namespace moldsched
