#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/strfmt.hpp"

namespace moldsched {

namespace {

/// Processing order: time ascending, finishes before starts at equal time
/// (so back-to-back placements do not conflict), task id as the final
/// tie-break to keep the replay deterministic.
bool earlier(const SimWorkspace::Event& a,
             const SimWorkspace::Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.is_finish != b.is_finish) return a.is_finish > b.is_finish;
  return a.task < b.task;
}

/// Max-heap comparator whose root is the EARLIEST event.
bool later(const SimWorkspace::Event& a,
           const SimWorkspace::Event& b) noexcept {
  return earlier(b, a);
}

}  // namespace

void simulate_execution(const FlatPlacements& flat, const Instance& instance,
                        SimWorkspace& ws, SimResult& out) {
  out.ok = true;
  out.errors.clear();
  out.cmax = 0.0;
  out.weighted_completion_sum = 0.0;
  out.busy_area = 0.0;
  out.utilisation = 0.0;
  out.events = 0;

  const int n = instance.num_tasks();
  const int m = instance.procs();
  out.completion.assign(static_cast<std::size_t>(n), 0.0);
  if (flat.size() != n) {
    out.ok = false;
    out.errors.emplace_back("schedule/instance shape mismatch");
    return;
  }

  ws.heap.clear();
  for (int i = 0; i < n; ++i) {
    const auto e = static_cast<std::size_t>(i);
    if (!flat.assigned(i)) {
      out.ok = false;
      out.errors.push_back(strfmt("task %d never starts", i));
      continue;
    }
    const double expected = instance.task(i).time(flat.proc_count[e]);
    if (std::abs(expected - flat.duration[e]) > 1e-9) {
      out.ok = false;
      out.errors.push_back(
          strfmt("task %d duration %.12g does not match model %.12g", i,
                 flat.duration[e], expected));
    }
    bool procs_ok = true;
    const auto begin = static_cast<std::size_t>(flat.proc_begin[e]);
    const auto count = static_cast<std::size_t>(flat.proc_count[e]);
    for (std::size_t p = begin; p < begin + count; ++p) {
      if (flat.proc_ids[p] < 0 || flat.proc_ids[p] >= m) {
        out.ok = false;
        procs_ok = false;
        out.errors.push_back(strfmt("task %d uses processor %d outside "
                                    "[0, %d)",
                                    i, flat.proc_ids[p], m));
      }
    }
    if (!procs_ok) continue;
    ws.heap.push_back(SimWorkspace::Event{flat.start[e], i, 0});
    ws.heap.push_back(SimWorkspace::Event{flat.finish(i), i, 1});
  }
  std::make_heap(ws.heap.begin(), ws.heap.end(), later);

  ws.owner.assign(static_cast<std::size_t>(m), -1);
  while (!ws.heap.empty()) {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), later);
    const SimWorkspace::Event e = ws.heap.back();
    ws.heap.pop_back();
    ++out.events;
    const auto entry = static_cast<std::size_t>(e.task);
    const auto begin = static_cast<std::size_t>(flat.proc_begin[entry]);
    const auto count = static_cast<std::size_t>(flat.proc_count[entry]);
    if (e.is_finish) {
      for (std::size_t p = begin; p < begin + count; ++p) {
        const auto proc = static_cast<std::size_t>(flat.proc_ids[p]);
        if (ws.owner[proc] == e.task) ws.owner[proc] = -1;
      }
      out.completion[entry] = e.time;
      out.cmax = std::max(out.cmax, e.time);
      out.busy_area += flat.duration[entry] * static_cast<double>(count);
      out.weighted_completion_sum += instance.task(e.task).weight() * e.time;
    } else {
      for (std::size_t p = begin; p < begin + count; ++p) {
        const auto proc = static_cast<std::size_t>(flat.proc_ids[p]);
        const int running = ws.owner[proc];
        if (running != -1) {
          // Back-to-back placements can disagree by one ulp on when the
          // hand-over happens (start computed as a different floating-point
          // sum than the predecessor's finish); a finish at effectively the
          // same instant is a clean hand-over, not a conflict.
          const double running_finish = flat.finish(running);
          const double tol = 1e-9 * (1.0 + std::abs(e.time));
          if (running_finish <= e.time + tol) {
            out.completion[static_cast<std::size_t>(running)] =
                running_finish;
            out.cmax = std::max(out.cmax, running_finish);
          } else {
            out.ok = false;
            out.errors.push_back(
                strfmt("t=%.12g: task %d claims processor %d still running "
                       "task %d",
                       e.time, e.task, flat.proc_ids[p], running));
          }
        }
        ws.owner[proc] = e.task;
      }
    }
  }
  if (out.cmax > 0.0) {
    out.utilisation = out.busy_area / (static_cast<double>(m) * out.cmax);
  }
}

SimResult simulate_execution(const FlatPlacements& flat,
                             const Instance& instance) {
  SimWorkspace ws;
  SimResult out;
  simulate_execution(flat, instance, ws, out);
  return out;
}

SimResult simulate_execution(const Schedule& schedule,
                             const Instance& instance) {
  SimResult result;
  if (schedule.num_tasks() != instance.num_tasks() ||
      schedule.procs() != instance.procs()) {
    result.ok = false;
    result.errors.emplace_back("schedule/instance shape mismatch");
    return result;
  }
  SimWorkspace ws;
  ws.bridge.assign_from(schedule);
  simulate_execution(ws.bridge, instance, ws, result);
  return result;
}

}  // namespace moldsched
