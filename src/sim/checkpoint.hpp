/// \file checkpoint.hpp
/// Checkpoint/restore for streaming sessions (sim/stream.hpp) — the state
/// a live OnlineStream needs to resume **bit-identically** on another
/// strand, shard, or process: machine clock and watermark, reservations,
/// the undecided (fed, not yet batch-final) arrivals, the divisible
/// residue (remaining work per divisible id, spent entries included so the
/// id space survives), and the running metric totals of the decided
/// prefix. Decisions already delivered are *not* carried — their
/// placements left through StreamDelivery on the old home — so a
/// checkpoint is O(pending state), not O(stream lifetime).
///
/// The flat SoA layout (parallel primitive vectors, one prefix-offset
/// array for the task time vectors) makes the snapshot cheap to take,
/// copy, and serialise. `encode_checkpoint`/`decode_checkpoint` give a
/// versioned little-endian byte form for crossing a process boundary
/// (crash recovery, rolling restarts — ROADMAP); in-process failover
/// (serve/async_scheduler.hpp shard death) hands the struct over
/// directly.
///
/// Resume contract: restore() rebuilds a session whose *future* feeds,
/// finish, and deliveries are bit-identical to the original stream's —
/// gated by tests/test_checkpoint.cpp at every watermark boundary for
/// moldable, rigid, and divisible arrivals. The restored `result()` keeps
/// the running totals (cmax, weighted sums, batch count/starts) but holds
/// zeroed placements for jobs decided before the checkpoint: those were
/// delivered by the old session and are deliberately not duplicated.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/online.hpp"

namespace moldsched {

/// Flat snapshot of one live OnlineStream. Produced by
/// OnlineStream::checkpoint, consumed by OnlineStream::restore; byte form
/// via encode_checkpoint/decode_checkpoint. Buffers keep capacity across
/// reuse, so a pooled checkpoint object re-snapshots without allocation
/// once warm.
struct StreamCheckpoint {
  int m = 1;                ///< machine size
  double now = 0.0;         ///< machine clock (end of last decided batch)
  double watermark = 0.0;   ///< release promise at snapshot time
  bool finished = false;    ///< finish() already ran
  bool broken = false;      ///< an earlier error broke the stream
  std::vector<NodeReservation> reservations;  ///< copied at open

  /// Stream-global id of the first undecided batch job — the decision
  /// frontier. Ids below it were decided (and delivered) before the
  /// snapshot; restore() pads its result arrays to keep the id space.
  std::int64_t jobs_decided = 0;

  // Running totals of the decided prefix (batch jobs only, matching
  // FlatOnlineResult; num_batches == batch_starts.size()).
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  std::vector<double> batch_starts;  ///< open instants of decided batches

  // Pending (fed, undecided) batch jobs in stream order, SoA. Entry i is
  // stream job jobs_decided + i; its time vector is
  // job_times[job_times_begin[i] .. job_times_begin[i + 1]).
  std::vector<double> job_release;
  std::vector<double> job_weight;
  std::vector<std::int32_t> job_min_procs;
  std::vector<std::int64_t> job_times_begin;  ///< size pending_jobs() + 1
  std::vector<double> job_times;              ///< flattened p(k) tables

  // Every divisible entry fed so far (id == index). Spent entries ride
  // along with remaining == 0 so divisible ids in later deliveries match
  // the original stream's.
  std::vector<double> div_remaining;
  std::vector<double> div_weight;
  std::vector<double> div_release;
  /// Weighted completion sum over divisible jobs finished so far.
  double divisible_weighted_completion_sum = 0.0;

  /// Number of undecided batch jobs carried by this snapshot.
  [[nodiscard]] std::size_t pending_jobs() const noexcept {
    return job_release.size();
  }

  /// Empty all fields back to a fresh-session snapshot; capacity kept.
  void clear();
};

/// Serialise `ckpt` into a self-describing little-endian byte image
/// (magic + format version + field payload), appending nothing but the
/// image to a cleared `out`. The image round-trips bit-exactly through
/// decode_checkpoint on any platform with IEEE-754 doubles.
void encode_checkpoint(const StreamCheckpoint& ckpt,
                       std::vector<std::uint8_t>& out);

/// Parse a byte image produced by encode_checkpoint into `ckpt`
/// (cleared first). Throws std::invalid_argument on a truncated image,
/// wrong magic, unsupported version, or inconsistent section sizes.
void decode_checkpoint(const std::uint8_t* bytes, std::size_t size,
                       StreamCheckpoint& ckpt);

}  // namespace moldsched
