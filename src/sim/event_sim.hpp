/// \file event_sim.hpp
/// Discrete-event execution of a schedule on a simulated cluster. The
/// simulator replays start/finish events in time order, tracking processor
/// occupancy dynamically — an independent cross-check of the static
/// validator (the paper's algorithm is deployed on a real cluster; the
/// simulator stands in for that execution substrate, see DESIGN.md).

#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

struct SimResult {
  bool ok = true;
  std::vector<std::string> errors;
  std::vector<double> completion;  ///< per task
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  /// Total processor-time consumed by tasks (area) — utilisation numerator.
  double busy_area = 0.0;
  /// busy_area / (m * cmax); 0 when cmax is 0.
  double utilisation = 0.0;
  std::int64_t events = 0;
};

/// Execute `schedule` against `instance`. Reports conflicts (double-booked
/// processors), duration mismatches, and unassigned tasks as errors rather
/// than throwing, so tests can assert on specifics.
[[nodiscard]] SimResult simulate_execution(const Schedule& schedule,
                                           const Instance& instance);

}  // namespace moldsched
