/// \file event_sim.hpp
/// Discrete-event execution of a schedule on a simulated cluster. The
/// simulator replays start/finish events in time order, tracking processor
/// occupancy dynamically — an independent cross-check of the static
/// validator (the paper's algorithm is deployed on a real cluster; the
/// simulator stands in for that execution substrate, see DESIGN.md).
///
/// The core runs on FlatPlacements with a caller-owned SimWorkspace so
/// repeated simulations (the online simulator, the engine's request loop)
/// reuse the event heap and occupancy buffers instead of allocating a
/// priority queue per call. The Schedule-based entry point is a wrapper
/// that bridges through FlatPlacements::assign_from.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/flat_schedule.hpp"
#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

struct SimResult {
  bool ok = true;
  std::vector<std::string> errors;
  std::vector<double> completion;  ///< per task
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  /// Total processor-time consumed by tasks (area) — utilisation numerator.
  double busy_area = 0.0;
  /// busy_area / (m * cmax); 0 when cmax is 0.
  double utilisation = 0.0;
  std::int64_t events = 0;
};

/// Reusable buffers for repeated simulations: the event heap, the
/// per-processor occupancy array, and a flat bridge for Schedule inputs.
/// One workspace per thread; every buffer is cleared (capacity kept) at the
/// start of a run, so steady-state simulation performs no heap allocation.
struct SimWorkspace {
  struct Event {
    double time = 0.0;
    int task = 0;
    std::uint8_t is_finish = 0;  ///< finishes processed before starts
  };
  std::vector<Event> heap;
  std::vector<int> owner;   ///< per processor: running task or -1
  FlatPlacements bridge;    ///< scratch for the Schedule-based wrapper
};

/// Execute `schedule` against `instance`. Reports conflicts (double-booked
/// processors), duration mismatches, and unassigned tasks as errors rather
/// than throwing, so tests can assert on specifics.
[[nodiscard]] SimResult simulate_execution(const Schedule& schedule,
                                           const Instance& instance);

/// Allocation-free core: execute flat placements (entries indexed like the
/// instance's tasks; duration <= 0 = unassigned) against `instance`,
/// reusing `ws` and writing into `out` (cleared first, capacity kept).
/// Processor ids outside [0, instance.procs()) are reported as errors.
void simulate_execution(const FlatPlacements& flat, const Instance& instance,
                        SimWorkspace& ws, SimResult& out);

/// Convenience flat overload allocating its own workspace and result.
[[nodiscard]] SimResult simulate_execution(const FlatPlacements& flat,
                                           const Instance& instance);

}  // namespace moldsched
