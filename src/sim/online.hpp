/// \file online.hpp
/// On-line scheduling by batches (§2.2 and the framework of Shmoys, Wein &
/// Williamson, the paper's reference [21]): jobs arrive over time; whenever
/// the machine goes idle, every job released so far is scheduled as one
/// off-line batch with a pluggable off-line algorithm. If the off-line
/// algorithm is rho-competitive for Cmax, the batched on-line schedule is
/// 2*rho-competitive.
///
/// Node reservations (paper §5 "reservation of nodes which reduces the size
/// of the cluster") shrink the set of processors a batch may use: a batch
/// starting at time s avoids every processor whose reservation window
/// intersects the batch's execution interval (computed to a fixpoint).
///
/// Two paths share one core:
///
/// * the **flat path** (`online_batch_schedule_into`) runs entirely inside
///   a caller-owned OnlineWorkspace and writes a FlatOnlineResult — no
///   Schedule object is allocated per batch decision, which is what the
///   engine's server loop and the throughput bench call thousands of times;
/// * the **object path** (`online_batch_schedule`) keeps the original
///   Schedule-based API as a thin wrapper over the flat core, and
///   `online_batch_schedule_reference` keeps the pre-refactor
///   Schedule-per-batch implementation (modulo the shared reservation
///   fixpoint-budget fix) as the bit-identical regression oracle.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "tasks/instance.hpp"
#include "tasks/moldable_task.hpp"

namespace moldsched {

struct OnlineJob {
  MoldableTask task;
  double release = 0.0;
};

/// Processor `proc` is unavailable during [start, finish).
struct NodeReservation {
  int proc = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// Off-line scheduler plug-in: full instance in, complete schedule out.
using OfflineScheduler = std::function<Schedule(const Instance&)>;

/// Release-time comparison slack: jobs released within this of the batch
/// open instant join the batch. Shared by the off-line loop and the
/// streaming core (sim/stream.hpp), whose watermark test must use the
/// exact same tolerance to stay bit-identical.
inline constexpr double kReleaseTieEps = 1e-12;

/// Reusable state for repeated on-line simulations (one per engine strand).
/// Every buffer is cleared (capacity kept) per run; after warm-up the
/// simulator machinery performs no heap allocation. The remaining per-batch
/// allocations are the batch Instance handed to the off-line plug-in (its
/// task time vectors must be materialised) and whatever the plug-in itself
/// allocates.
struct OnlineWorkspace {
  ListPassWorkspace list;            ///< scratch for flat off-line plug-ins
  FlatPlacements batch;              ///< off-line output, batch-local ids
  std::vector<int> order;            ///< jobs in release order
  std::vector<int> batch_jobs;       ///< job ids of the open batch
  std::vector<int> free_procs;       ///< unblocked processor ids
  std::vector<std::uint8_t> blocked;      ///< per-processor block flags
  std::vector<std::uint8_t> new_blocked;  ///< fixpoint scratch
  /// Pooled reduced-machine batch instance, re-filled per batch decision
  /// through Instance::reset/add_task_truncated — the flat path performs
  /// no heap allocation at all once the pool is warm.
  Instance batch_instance{1};
};

/// Off-line plug-in for the flat path: schedule `batch` (every task must be
/// placed), writing flat placements into `out`; `ws` offers reusable
/// scratch (`ws.list`) so a plug-in can itself run allocation-free.
using FlatOfflineScheduler = std::function<void(
    const Instance& batch, OnlineWorkspace& ws, FlatPlacements& out)>;

/// Adapt a Schedule-returning off-line scheduler to the flat plug-in form
/// (the Schedule the plug-in allocates is copied verbatim, so results are
/// bit-identical to the object path).
[[nodiscard]] FlatOfflineScheduler wrap_offline(OfflineScheduler offline);

/// Flat-path result; buffers keep capacity across runs when reused.
struct FlatOnlineResult {
  FlatPlacements schedule;          ///< global placements, indexed like jobs
  std::vector<double> completion;   ///< per job
  std::vector<double> flow;         ///< completion - release
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  int num_batches = 0;
  std::vector<double> batch_starts;

  /// Clear to `num_jobs` unassigned jobs and zeroed metrics.
  void reset(int num_jobs);
};

struct OnlineResult {
  /// Global-time placements, indexed like `jobs`.
  Schedule schedule;
  std::vector<double> completion;   ///< per job
  std::vector<double> flow;         ///< completion - release
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  int num_batches = 0;
  std::vector<double> batch_starts;

  explicit OnlineResult(int m, int n) : schedule(m, n) {}
};

/// Mark every processor whose reservation intersects [start, finish) in a
/// reusable flag buffer (resized/zeroed to m). Shared by the off-line
/// loop's reservation fixpoint and the streaming core's divisible drain —
/// one definition so the two paths cannot drift.
void online_blocked_procs_into(
    int m, const std::vector<NodeReservation>& reservations, double start,
    double finish, std::vector<std::uint8_t>& blocked);

/// Advanced hook shared by the flat off-line loop and the streaming core
/// (sim/stream.hpp): decide ONE batch of the framework. On entry
/// `ws.batch_jobs` names the batch's jobs (indices into `jobs`, all with
/// release <= now + kReleaseTieEps) and `now` is the machine-idle instant
/// the batch opens at; `now` may move forward when the machine is fully
/// reserved at that instant. The call runs the reservation fixpoint, the
/// off-line plug-in, and the lift into global time/processor ids, appends
/// placements, metrics and batch bookkeeping to `out` (which must already
/// have entries for every job id in the batch), and advances `now` to the
/// batch's completion. Afterwards `ws.batch` holds the batch-local
/// placements and `ws.free_procs` the processors the batch was allowed to
/// use — exactly what the divisible filler consumes. Throws like
/// online_batch_schedule_into.
void online_decide_batch(int m, const OnlineJob* jobs,
                         const std::vector<NodeReservation>& reservations,
                         const FlatOfflineScheduler& offline,
                         OnlineWorkspace& ws, double& now,
                         FlatOnlineResult& out);

/// Flat core of the batch framework: runs inside `ws`, writes into `out`.
/// Throws std::invalid_argument on an empty job list, negative releases, or
/// a job needing more processors than a batch can ever obtain (m minus
/// permanently reserved).
void online_batch_schedule_into(
    int m, const std::vector<OnlineJob>& jobs,
    const FlatOfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations, OnlineWorkspace& ws,
    FlatOnlineResult& out);

/// Run the batch framework (object path; wrapper over the flat core with
/// identical results). Throws as online_batch_schedule_into.
[[nodiscard]] OnlineResult online_batch_schedule(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations = {});

/// Pre-refactor object-path implementation (allocates a Schedule per batch
/// decision), kept as the independent regression oracle for the flat core
/// (tests assert bit-identical results on every input class).
[[nodiscard]] OnlineResult online_batch_schedule_reference(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations = {});

}  // namespace moldsched
