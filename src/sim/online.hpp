/// \file online.hpp
/// On-line scheduling by batches (§2.2 and the framework of Shmoys, Wein &
/// Williamson, the paper's reference [21]): jobs arrive over time; whenever
/// the machine goes idle, every job released so far is scheduled as one
/// off-line batch with a pluggable off-line algorithm. If the off-line
/// algorithm is rho-competitive for Cmax, the batched on-line schedule is
/// 2*rho-competitive.
///
/// Node reservations (paper §5 "reservation of nodes which reduces the size
/// of the cluster") shrink the set of processors a batch may use: a batch
/// starting at time s avoids every processor whose reservation window
/// intersects the batch's execution interval (computed to a fixpoint).
///
/// Two paths share one core:
///
/// * the **flat path** (`online_batch_schedule_into`) runs entirely inside
///   a caller-owned OnlineWorkspace and writes a FlatOnlineResult — no
///   Schedule object is allocated per batch decision, which is what the
///   engine's server loop and the throughput bench call thousands of times;
/// * the **object path** (`online_batch_schedule`) keeps the original
///   Schedule-based API as a thin wrapper over the flat core, and
///   `online_batch_schedule_reference` keeps the pre-refactor
///   Schedule-per-batch implementation (modulo the shared reservation
///   fixpoint-budget fix) as the bit-identical regression oracle.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "tasks/instance.hpp"
#include "tasks/moldable_task.hpp"

namespace moldsched {

struct OnlineJob {
  MoldableTask task;
  double release = 0.0;
};

/// Processor `proc` is unavailable during [start, finish).
struct NodeReservation {
  int proc = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// Off-line scheduler plug-in: full instance in, complete schedule out.
using OfflineScheduler = std::function<Schedule(const Instance&)>;

/// Release-time comparison slack: jobs released within this of the batch
/// open instant join the batch. Shared by the off-line loop and the
/// streaming core (sim/stream.hpp), whose watermark test must use the
/// exact same tolerance to stay bit-identical.
inline constexpr double kReleaseTieEps = 1e-12;

/// Reusable state for repeated on-line simulations (one per engine strand).
/// Every buffer is cleared (capacity kept) per run; after warm-up the
/// simulator machinery performs no heap allocation. The remaining per-batch
/// allocations are the batch Instance handed to the off-line plug-in (its
/// task time vectors must be materialised) and whatever the plug-in itself
/// allocates.
struct OnlineWorkspace {
  ListPassWorkspace list;            ///< scratch for flat off-line plug-ins
  FlatPlacements batch;              ///< off-line output, batch-local ids
  std::vector<int> order;            ///< jobs in release order
  std::vector<int> batch_jobs;       ///< job ids of the open batch
  std::vector<int> free_procs;       ///< unblocked processor ids
  std::vector<std::uint8_t> blocked;      ///< per-processor block flags
  std::vector<std::uint8_t> new_blocked;  ///< fixpoint scratch
  /// Pooled reduced-machine batch instance, re-filled per batch decision
  /// through Instance::reset/add_task_truncated — the flat path performs
  /// no heap allocation at all once the pool is warm.
  Instance batch_instance{1};
};

/// Off-line plug-in for the flat path: schedule `batch` (every task must be
/// placed), writing flat placements into `out`; `ws` offers reusable
/// scratch (`ws.list`) so a plug-in can itself run allocation-free.
using FlatOfflineScheduler = std::function<void(
    const Instance& batch, OnlineWorkspace& ws, FlatPlacements& out)>;

/// Adapt a Schedule-returning off-line scheduler to the flat plug-in form
/// (the Schedule the plug-in allocates is copied verbatim, so results are
/// bit-identical to the object path).
[[nodiscard]] FlatOfflineScheduler wrap_offline(OfflineScheduler offline);

/// Adapt a SchedulingPolicy (+ a workspace it made) to the flat plug-in
/// form. Captures two pointers, so the returned std::function stays in its
/// small-object storage — adapting a policy per call allocates nothing.
/// Both referents are borrowed for the adapter's lifetime, and `ws` must
/// not be shared with a concurrent call.
[[nodiscard]] FlatOfflineScheduler policy_offline(
    const SchedulingPolicy& policy, PolicyWorkspace& ws);

/// Flat-path result; buffers keep capacity across runs when reused.
struct FlatOnlineResult {
  FlatPlacements schedule;          ///< global placements, indexed like jobs
  std::vector<double> completion;   ///< per job
  std::vector<double> flow;         ///< completion - release
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  int num_batches = 0;
  std::vector<double> batch_starts;

  /// Clear to `num_jobs` unassigned jobs and zeroed metrics.
  void reset(int num_jobs);
};

struct OnlineResult {
  /// Global-time placements, indexed like `jobs`.
  Schedule schedule;
  std::vector<double> completion;   ///< per job
  std::vector<double> flow;         ///< completion - release
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  int num_batches = 0;
  std::vector<double> batch_starts;

  explicit OnlineResult(int m, int n) : schedule(m, n) {}
};

/// Mark every processor whose reservation intersects [start, finish) in a
/// reusable flag buffer (resized/zeroed to m). Shared by the off-line
/// loop's reservation fixpoint and the streaming core's divisible drain —
/// one definition so the two paths cannot drift.
void online_blocked_procs_into(
    int m, const std::vector<NodeReservation>& reservations, double start,
    double finish, std::vector<std::uint8_t>& blocked);

/// Reservation fixpoint shared by the batch decision (`online_decide_batch`)
/// and the streaming divisible drain (sim/stream.cpp): starting from the
/// caller-initialised `ws.blocked` flags, repeatedly build `ws.free_procs`,
/// ask `propose(avail)` for the tentative window length on that free set
/// (the batch path schedules the batch into `ws.batch` and returns its
/// cmax; the drain sizes a divisible-only window), and grow the blocked set
/// by every reservation intersecting [now, now + window) until stable.
/// When the machine is fully reserved at `now`, `now` jumps past the
/// earliest blocking reservation end and the window rebuilds. Returns the
/// settled window; afterwards `ws.free_procs` holds the settled free set
/// and whatever `propose` computed last is valid. The iteration budget is
/// unreachable by the monotone-growth argument (between jumps the blocked
/// set only grows, and every jump passes a distinct reservation end), so
/// exhausting it throws std::logic_error — messages prefixed `who` —
/// rather than letting a caller use a stale proposal.
template <typename ProposeWindow>
double reservation_fixpoint(int m,
                            const std::vector<NodeReservation>& reservations,
                            OnlineWorkspace& ws, double& now,
                            const ProposeWindow& propose, const char* who) {
  const int max_iterations =
      (static_cast<int>(reservations.size()) + 1) * (m + 2);
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    ws.free_procs.clear();
    for (int p = 0; p < m; ++p) {
      if (!ws.blocked[static_cast<std::size_t>(p)]) {
        ws.free_procs.push_back(p);
      }
    }
    const int avail = static_cast<int>(ws.free_procs.size());
    if (avail == 0) {
      // Fully reserved at this instant: jump past the earliest blocking
      // reservation end and rebuild the window.
      double jump = std::numeric_limits<double>::infinity();
      for (const auto& r : reservations) {
        if (r.finish > now) jump = std::min(jump, r.finish);
      }
      if (!std::isfinite(jump)) {
        throw std::logic_error(std::string(who) +
                               ": machine permanently fully reserved");
      }
      now = jump;
      online_blocked_procs_into(m, reservations, now, now, ws.blocked);
      continue;
    }
    const double window = propose(avail);
    online_blocked_procs_into(m, reservations, now, now + window,
                              ws.new_blocked);
    if (ws.new_blocked == ws.blocked) return window;  // fixpoint
    for (std::size_t p = 0; p < ws.new_blocked.size(); ++p) {
      if (ws.new_blocked[p]) ws.blocked[p] = 1;  // monotone => converges
    }
  }
  throw std::logic_error(std::string(who) +
                         ": reservation fixpoint failed to converge");
}

/// Advanced hook shared by the flat off-line loop and the streaming core
/// (sim/stream.hpp): decide ONE batch of the framework. On entry
/// `ws.batch_jobs` names the batch's jobs (indices into `jobs`, all with
/// release <= now + kReleaseTieEps) and `now` is the machine-idle instant
/// the batch opens at; `now` may move forward when the machine is fully
/// reserved at that instant. The call runs the reservation fixpoint, the
/// off-line plug-in, and the lift into global time/processor ids, appends
/// placements, metrics and batch bookkeeping to `out` (which must already
/// have entries for every job id in the batch), and advances `now` to the
/// batch's completion. Afterwards `ws.batch` holds the batch-local
/// placements and `ws.free_procs` the processors the batch was allowed to
/// use — exactly what the divisible filler consumes. Throws like
/// online_batch_schedule_into.
void online_decide_batch(int m, const OnlineJob* jobs,
                         const std::vector<NodeReservation>& reservations,
                         const FlatOfflineScheduler& offline,
                         OnlineWorkspace& ws, double& now,
                         FlatOnlineResult& out);

/// The fixpoint half of online_decide_batch: run the reservation fixpoint
/// and the off-line plug-in for the batch named by `ws.batch_jobs` at clock
/// `now` (which may jump forward when the machine is fully reserved),
/// leaving `ws.batch` / `ws.free_procs` settled exactly as
/// online_decide_batch would just before its lift — but without touching
/// any result. The streaming core (sim/stream.hpp) stages speculative
/// frontier decisions through this entry point.
void online_settle_batch(int m, const OnlineJob* jobs,
                         const std::vector<NodeReservation>& reservations,
                         const FlatOfflineScheduler& offline,
                         OnlineWorkspace& ws, double& now);

/// The lift half of online_decide_batch: write the settled batch-local
/// placements `batch` (whose local processor ids index `free_procs`) for
/// the jobs named by `batch_jobs` into `out` as global rows at clock
/// `clock`, appending the batch bookkeeping (batch_starts, num_batches,
/// metrics). Identical arithmetic to the lift inside online_decide_batch,
/// so a speculative commit that replays a settled fixpoint through this
/// function is bit-identical to deciding the batch fresh.
void online_lift_batch(const OnlineJob* jobs, const int* batch_jobs,
                       std::size_t count, const FlatPlacements& batch,
                       const std::vector<int>& free_procs, double clock,
                       FlatOnlineResult& out);

/// Flat core of the batch framework: runs inside `ws`, writes into `out`.
/// Throws std::invalid_argument on an empty job list, negative releases, or
/// a job needing more processors than a batch can ever obtain (m minus
/// permanently reserved).
void online_batch_schedule_into(
    int m, const std::vector<OnlineJob>& jobs,
    const FlatOfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations, OnlineWorkspace& ws,
    FlatOnlineResult& out);

/// Policy form of the flat core: every batch decision runs
/// `policy.schedule_into` inside `policy_ws` (one workspace per strand,
/// from policy.make_workspace()). Bit-identical to passing the equivalent
/// FlatOfflineScheduler; adds no per-call allocation beyond the plug-in's
/// own.
void online_batch_schedule_into(
    int m, const std::vector<OnlineJob>& jobs, const SchedulingPolicy& policy,
    PolicyWorkspace& policy_ws,
    const std::vector<NodeReservation>& reservations, OnlineWorkspace& ws,
    FlatOnlineResult& out);

/// Run the batch framework (object path; wrapper over the flat core with
/// identical results). Throws as online_batch_schedule_into.
[[nodiscard]] OnlineResult online_batch_schedule(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations = {});

/// Pre-refactor object-path implementation (allocates a Schedule per batch
/// decision), kept as the independent regression oracle for the flat core
/// (tests assert bit-identical results on every input class).
[[nodiscard]] OnlineResult online_batch_schedule_reference(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations = {});

}  // namespace moldsched
