/// \file online.hpp
/// On-line scheduling by batches (§2.2 and the framework of Shmoys, Wein &
/// Williamson, the paper's reference [21]): jobs arrive over time; whenever
/// the machine goes idle, every job released so far is scheduled as one
/// off-line batch with a pluggable off-line algorithm. If the off-line
/// algorithm is rho-competitive for Cmax, the batched on-line schedule is
/// 2*rho-competitive.
///
/// Node reservations (paper §5 "reservation of nodes which reduces the size
/// of the cluster") shrink the set of processors a batch may use: a batch
/// starting at time s avoids every processor whose reservation window
/// intersects the batch's execution interval (computed to a fixpoint).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "tasks/instance.hpp"
#include "tasks/moldable_task.hpp"

namespace moldsched {

struct OnlineJob {
  MoldableTask task;
  double release = 0.0;
};

/// Processor `proc` is unavailable during [start, finish).
struct NodeReservation {
  int proc = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// Off-line scheduler plug-in: full instance in, complete schedule out.
using OfflineScheduler = std::function<Schedule(const Instance&)>;

struct OnlineResult {
  /// Global-time placements, indexed like `jobs`.
  Schedule schedule;
  std::vector<double> completion;   ///< per job
  std::vector<double> flow;         ///< completion - release
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  int num_batches = 0;
  std::vector<double> batch_starts;

  explicit OnlineResult(int m, int n) : schedule(m, n) {}
};

/// Run the batch framework. Throws std::invalid_argument on an empty job
/// list, negative releases, or a job needing more processors than a batch
/// can ever obtain (m minus permanently reserved).
[[nodiscard]] OnlineResult online_batch_schedule(
    int m, const std::vector<OnlineJob>& jobs, const OfflineScheduler& offline,
    const std::vector<NodeReservation>& reservations = {});

}  // namespace moldsched
