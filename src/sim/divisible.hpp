/// \file divisible.hpp
/// Divisible-load extension (paper §5: "the mix of different types of jobs
/// (moldable jobs, rigid jobs, and divisible load jobs)"). A divisible job
/// is a bag of work that can be split into arbitrarily many independent
/// chunks — the classic grid filler workload. Given a finished moldable
/// schedule, the filler pours divisible work into the idle holes without
/// disturbing a single placed task: per-processor idle intervals are
/// collected up to a horizon and filled earliest-first, job by job in
/// Smith order (weight / work decreasing), which minimises the weighted
/// completion sum among sequential-greedy fills.
///
/// Two entry points share one core, mirroring the online simulator:
/// the Schedule-based `fill_idle_with_divisible` (validates, allocates)
/// wraps the flat `fill_idle_with_divisible_into`, which runs entirely
/// inside a caller-owned DivisibleFillWorkspace on a FlatPlacements view —
/// the form the streaming §5 job-mix path (sim/stream.hpp) calls once per
/// batch decision, allocation-free after warm-up.

#pragma once

#include <cstddef>
#include <vector>

#include "sched/flat_schedule.hpp"
#include "sched/schedule.hpp"

namespace moldsched {

struct DivisibleJob {
  double work = 0.0;    ///< total processor-time to deliver
  double weight = 1.0;  ///< priority for the fill order / metrics
};

/// One contiguous piece of a divisible job on one processor.
struct DivisibleChunk {
  int job = -1;
  int proc = 0;
  double start = 0.0;
  double duration = 0.0;

  [[nodiscard]] double finish() const noexcept { return start + duration; }
};

struct DivisibleFillResult {
  std::vector<DivisibleChunk> chunks;
  std::vector<double> completion;      ///< per job; 0 if nothing placed
  std::vector<double> placed_work;     ///< per job, <= job.work
  double weighted_completion_sum = 0.0;///< over fully placed jobs
  bool all_placed = true;              ///< every job fully inside horizon
  double idle_capacity = 0.0;          ///< total idle area in [0, horizon)
};

/// Reusable buffers for repeated flat fills. One workspace per
/// thread/stream; every buffer is cleared (capacity kept) per call, so
/// after warm-up a fill performs no heap allocation. Carries capacity
/// only, never state, between calls.
struct DivisibleFillWorkspace {
  /// One busy stretch of a placed task on one processor.
  struct Busy {
    int proc = 0;
    double start = 0.0;
    double finish = 0.0;
  };
  /// One idle hole; shrinks from the front as jobs consume it.
  struct Hole {
    int proc = 0;
    double start = 0.0;
    double finish = 0.0;
    [[nodiscard]] double length() const noexcept { return finish - start; }
  };
  /// Capacity breakpoint of the water-filling sweep.
  struct Event {
    double time = 0.0;
    int delta = 0;  ///< +1 hole opens, -1 hole closes
  };
  std::vector<Busy> busy;
  std::vector<Hole> idle;
  std::vector<Event> events;
  std::vector<std::size_t> order;  ///< jobs in Smith order
};

/// Fill the idle holes of `schedule` (must be complete on its own tasks)
/// with the divisible jobs, never pushing past `horizon`. Holes are the
/// complement of the schedule's busy intervals on each of its processors,
/// clipped to [0, horizon). Throws std::invalid_argument on a negative
/// horizon, non-positive work, or non-positive weight.
[[nodiscard]] DivisibleFillResult fill_idle_with_divisible(
    const Schedule& schedule, const std::vector<DivisibleJob>& jobs,
    double horizon);

/// Flat core with identical results: holes are the complement of the busy
/// intervals of `placements` (assigned entries only) on each of the `m`
/// processors, clipped to [0, horizon). Runs inside `ws` and re-fills
/// `out` (buffers keep capacity). Skips input validation — callers own
/// the invariants (non-negative horizon, positive work and weight).
void fill_idle_with_divisible_into(const FlatPlacements& placements, int m,
                                   const DivisibleJob* jobs,
                                   std::size_t count, double horizon,
                                   DivisibleFillWorkspace& ws,
                                   DivisibleFillResult& out);

}  // namespace moldsched
