/// \file divisible.hpp
/// Divisible-load extension (paper §5: "the mix of different types of jobs
/// (moldable jobs, rigid jobs, and divisible load jobs)"). A divisible job
/// is a bag of work that can be split into arbitrarily many independent
/// chunks — the classic grid filler workload. Given a finished moldable
/// schedule, the filler pours divisible work into the idle holes without
/// disturbing a single placed task: per-processor idle intervals are
/// collected up to a horizon and filled earliest-first, job by job in
/// Smith order (weight / work decreasing), which minimises the weighted
/// completion sum among sequential-greedy fills.

#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace moldsched {

struct DivisibleJob {
  double work = 0.0;    ///< total processor-time to deliver
  double weight = 1.0;  ///< priority for the fill order / metrics
};

/// One contiguous piece of a divisible job on one processor.
struct DivisibleChunk {
  int job = -1;
  int proc = 0;
  double start = 0.0;
  double duration = 0.0;

  [[nodiscard]] double finish() const noexcept { return start + duration; }
};

struct DivisibleFillResult {
  std::vector<DivisibleChunk> chunks;
  std::vector<double> completion;      ///< per job; 0 if nothing placed
  std::vector<double> placed_work;     ///< per job, <= job.work
  double weighted_completion_sum = 0.0;///< over fully placed jobs
  bool all_placed = true;              ///< every job fully inside horizon
  double idle_capacity = 0.0;          ///< total idle area in [0, horizon)
};

/// Fill the idle holes of `schedule` (must be complete on its own tasks)
/// with the divisible jobs, never pushing past `horizon`. Holes are the
/// complement of the schedule's busy intervals on each of its processors,
/// clipped to [0, horizon). Throws std::invalid_argument on a negative
/// horizon, non-positive work, or non-positive weight.
[[nodiscard]] DivisibleFillResult fill_idle_with_divisible(
    const Schedule& schedule, const std::vector<DivisibleJob>& jobs,
    double horizon);

}  // namespace moldsched
