#include "sim/checkpoint.hpp"

#include <cstring>
#include <stdexcept>

#include "sim/stream.hpp"

namespace moldsched {

void StreamCheckpoint::clear() {
  m = 1;
  now = 0.0;
  watermark = 0.0;
  finished = false;
  broken = false;
  reservations.clear();
  jobs_decided = 0;
  cmax = 0.0;
  weighted_completion_sum = 0.0;
  weighted_flow_sum = 0.0;
  batch_starts.clear();
  job_release.clear();
  job_weight.clear();
  job_min_procs.clear();
  job_times_begin.clear();
  job_times.clear();
  div_remaining.clear();
  div_weight.clear();
  div_release.clear();
  divisible_weighted_completion_sum = 0.0;
}

// ---------------------------------------------------------------------------
// OnlineStream snapshot / resume (member functions live here so the stream
// header stays free of the checkpoint type).

void OnlineStream::checkpoint(StreamCheckpoint& out) const {
  if (!open_) {
    throw std::logic_error("OnlineStream: checkpoint of a closed stream");
  }
  out.clear();
  out.m = m_;
  out.now = now_;
  out.watermark = watermark_;
  out.finished = finished_;
  out.broken = broken_;
  out.reservations = reservations_;
  out.jobs_decided = static_cast<std::int64_t>(next_);
  out.cmax = result_.cmax;
  out.weighted_completion_sum = result_.weighted_completion_sum;
  out.weighted_flow_sum = result_.weighted_flow_sum;
  out.batch_starts = result_.batch_starts;
  out.job_times_begin.push_back(0);
  for (std::size_t j = next_; j < jobs_live_; ++j) {
    const OnlineJob& job = jobs_[j];
    out.job_release.push_back(job.release);
    out.job_weight.push_back(job.task.weight());
    out.job_min_procs.push_back(job.task.min_procs());
    out.job_times.insert(out.job_times.end(), job.task.times().begin(),
                         job.task.times().end());
    out.job_times_begin.push_back(
        static_cast<std::int64_t>(out.job_times.size()));
  }
  for (std::size_t d = 0; d < divisible_live_; ++d) {
    out.div_remaining.push_back(divisible_[d].remaining);
    out.div_weight.push_back(divisible_[d].weight);
    out.div_release.push_back(divisible_[d].release);
  }
  out.divisible_weighted_completion_sum = divisible_wcs_;
}

void OnlineStream::restore(const StreamCheckpoint& ckpt) {
  if (ckpt.m < 1) throw std::invalid_argument("OnlineStream: restore m < 1");
  for (const auto& r : ckpt.reservations) {
    if (r.proc < 0 || r.proc >= ckpt.m || !(r.finish > r.start)) {
      throw std::invalid_argument("OnlineStream: restore bad reservation");
    }
  }
  if (ckpt.jobs_decided < 0) {
    throw std::invalid_argument("OnlineStream: restore negative frontier");
  }
  const std::size_t pending = ckpt.pending_jobs();
  if (ckpt.job_weight.size() != pending ||
      ckpt.job_min_procs.size() != pending ||
      ckpt.job_times_begin.size() != pending + 1 ||
      ckpt.job_times_begin.front() != 0 ||
      ckpt.job_times_begin.back() !=
          static_cast<std::int64_t>(ckpt.job_times.size())) {
    throw std::invalid_argument("OnlineStream: restore inconsistent jobs");
  }
  if (ckpt.div_weight.size() != ckpt.div_remaining.size() ||
      ckpt.div_release.size() != ckpt.div_remaining.size()) {
    throw std::invalid_argument(
        "OnlineStream: restore inconsistent divisible state");
  }
  // A throwing restore (e.g. a malformed pending task rejected by the
  // MoldableTask invariants below) leaves the session closed, never
  // half-resumed.
  open_ = false;
  m_ = ckpt.m;
  now_ = ckpt.now;
  watermark_ = ckpt.watermark;
  finished_ = ckpt.finished;
  broken_ = ckpt.broken;
  reservations_ = ckpt.reservations;

  // Rebuild the accumulated result. The decided prefix was delivered by
  // the original session, so its entries restore as zeroed placeholders —
  // they only exist to keep stream-global job ids (and the append paths
  // that extend these arrays) valid.
  const auto decided = static_cast<std::size_t>(ckpt.jobs_decided);
  result_.reset(static_cast<int>(decided));
  result_.cmax = ckpt.cmax;
  result_.weighted_completion_sum = ckpt.weighted_completion_sum;
  result_.weighted_flow_sum = ckpt.weighted_flow_sum;
  result_.batch_starts = ckpt.batch_starts;
  result_.num_batches = static_cast<int>(ckpt.batch_starts.size());
  next_ = decided;

  jobs_live_ = decided + pending;
  if (jobs_.size() < jobs_live_) jobs_.resize(jobs_live_);
  for (std::size_t i = 0; i < pending; ++i) {
    const auto begin = static_cast<std::size_t>(ckpt.job_times_begin[i]);
    const auto end = static_cast<std::size_t>(ckpt.job_times_begin[i + 1]);
    if (end < begin || end > ckpt.job_times.size()) {
      throw std::invalid_argument("OnlineStream: restore inconsistent jobs");
    }
    OnlineJob& job = jobs_[decided + i];
    job.task = MoldableTask(
        std::vector<double>(ckpt.job_times.begin() +
                                static_cast<std::ptrdiff_t>(begin),
                            ckpt.job_times.begin() +
                                static_cast<std::ptrdiff_t>(end)),
        ckpt.job_weight[i], ckpt.job_min_procs[i]);
    job.release = ckpt.job_release[i];
    // Per-job mirror entries of the accumulated result, exactly as
    // append_batch_job pushed them in the original session.
    result_.schedule.start.push_back(0.0);
    result_.schedule.duration.push_back(0.0);
    result_.schedule.proc_begin.push_back(0);
    result_.schedule.proc_count.push_back(0);
    result_.completion.push_back(0.0);
    result_.flow.push_back(0.0);
  }

  divisible_live_ = ckpt.div_remaining.size();
  if (divisible_.size() < divisible_live_) divisible_.resize(divisible_live_);
  for (std::size_t d = 0; d < divisible_live_; ++d) {
    divisible_[d] = PendingDivisible{ckpt.div_remaining[d],
                                     ckpt.div_weight[d], ckpt.div_release[d]};
  }
  divisible_wcs_ = ckpt.divisible_weighted_completion_sum;

  // Checkpoints carry confirmed state only; staged speculative decisions
  // are pure recomputable staging and restore as "nothing staged". The
  // restored session re-speculates on its next feed if enabled.
  speculate_ = false;
  spec_head_ = 0;
  spec_count_ = 0;
  spec_decided_ = 0;
  spec_committed_ = 0;
  spec_rolled_back_ = 0;
  open_ = true;
}

// ---------------------------------------------------------------------------
// Byte codec: versioned little-endian image.

namespace {

constexpr std::uint32_t kMagic = 0x4D53434Bu;  // "MSCK"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_f64_vec(std::vector<std::uint8_t>& out,
                 const std::vector<double>& v) {
  put_u64(out, v.size());
  for (double x : v) put_f64(out, x);
}

/// Bounds-checked little-endian reader over the image.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t off = 0;

  void need(std::size_t k) const {
    if (off + k > n) {
      throw std::invalid_argument("StreamCheckpoint: truncated image");
    }
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  /// Element count of the next section; refuses counts the remaining
  /// bytes cannot hold (a corrupt image must not provoke a huge resize).
  std::size_t count(std::size_t elem_bytes) {
    const std::uint64_t c = u64();
    if (c > (n - off) / elem_bytes) {
      throw std::invalid_argument("StreamCheckpoint: truncated image");
    }
    return static_cast<std::size_t>(c);
  }
  void f64_vec(std::vector<double>& out) {
    const std::size_t c = count(8);
    out.resize(c);
    for (std::size_t i = 0; i < c; ++i) out[i] = f64();
  }
};

}  // namespace

void encode_checkpoint(const StreamCheckpoint& ckpt,
                       std::vector<std::uint8_t>& out) {
  out.clear();
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(ckpt.m));
  put_f64(out, ckpt.now);
  put_f64(out, ckpt.watermark);
  put_u32(out, (ckpt.finished ? 1u : 0u) | (ckpt.broken ? 2u : 0u));
  put_u64(out, ckpt.reservations.size());
  for (const auto& r : ckpt.reservations) {
    put_u32(out, static_cast<std::uint32_t>(r.proc));
    put_f64(out, r.start);
    put_f64(out, r.finish);
  }
  put_i64(out, ckpt.jobs_decided);
  put_f64(out, ckpt.cmax);
  put_f64(out, ckpt.weighted_completion_sum);
  put_f64(out, ckpt.weighted_flow_sum);
  put_f64_vec(out, ckpt.batch_starts);
  put_f64_vec(out, ckpt.job_release);
  put_f64_vec(out, ckpt.job_weight);
  put_u64(out, ckpt.job_min_procs.size());
  for (std::int32_t v : ckpt.job_min_procs) {
    put_u32(out, static_cast<std::uint32_t>(v));
  }
  put_u64(out, ckpt.job_times_begin.size());
  for (std::int64_t v : ckpt.job_times_begin) put_i64(out, v);
  put_f64_vec(out, ckpt.job_times);
  put_f64_vec(out, ckpt.div_remaining);
  put_f64_vec(out, ckpt.div_weight);
  put_f64_vec(out, ckpt.div_release);
  put_f64(out, ckpt.divisible_weighted_completion_sum);
}

void decode_checkpoint(const std::uint8_t* bytes, std::size_t size,
                       StreamCheckpoint& ckpt) {
  ckpt.clear();
  if (bytes == nullptr && size > 0) {
    throw std::invalid_argument("StreamCheckpoint: null image");
  }
  Reader r{bytes, size};
  if (r.u32() != kMagic) {
    throw std::invalid_argument("StreamCheckpoint: bad magic");
  }
  if (r.u32() != kVersion) {
    throw std::invalid_argument("StreamCheckpoint: unsupported version");
  }
  ckpt.m = static_cast<int>(r.u32());
  ckpt.now = r.f64();
  ckpt.watermark = r.f64();
  const std::uint32_t flags = r.u32();
  ckpt.finished = (flags & 1u) != 0;
  ckpt.broken = (flags & 2u) != 0;
  const std::size_t num_reservations = r.count(20);
  ckpt.reservations.resize(num_reservations);
  for (auto& res : ckpt.reservations) {
    res.proc = static_cast<int>(r.u32());
    res.start = r.f64();
    res.finish = r.f64();
  }
  ckpt.jobs_decided = r.i64();
  ckpt.cmax = r.f64();
  ckpt.weighted_completion_sum = r.f64();
  ckpt.weighted_flow_sum = r.f64();
  r.f64_vec(ckpt.batch_starts);
  r.f64_vec(ckpt.job_release);
  r.f64_vec(ckpt.job_weight);
  const std::size_t num_min_procs = r.count(4);
  ckpt.job_min_procs.resize(num_min_procs);
  for (auto& v : ckpt.job_min_procs) v = static_cast<std::int32_t>(r.u32());
  const std::size_t num_begins = r.count(8);
  ckpt.job_times_begin.resize(num_begins);
  for (auto& v : ckpt.job_times_begin) v = r.i64();
  r.f64_vec(ckpt.job_times);
  r.f64_vec(ckpt.div_remaining);
  r.f64_vec(ckpt.div_weight);
  r.f64_vec(ckpt.div_release);
  ckpt.divisible_weighted_completion_sum = r.f64();
  // A valid image is consumed exactly: trailing bytes mean the caller
  // framed the image wrong (or the image is corrupt) — reject instead of
  // silently ignoring what might be half of the next record.
  if (r.off != r.n) {
    throw std::invalid_argument("StreamCheckpoint: trailing bytes");
  }
}

}  // namespace moldsched
