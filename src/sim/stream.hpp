/// \file stream.hpp
/// Streaming (incremental) form of the on-line batch framework — the
/// paper's §5 job mix served as a live request stream instead of a
/// pre-collected job list.
///
/// The off-line simulator (sim/online.hpp) receives every job up front;
/// OnlineStream receives them as they happen. The caller feeds arrivals in
/// release order together with a **watermark** — a promise that every
/// future arrival is released at or after it. A batch decision is final
/// exactly when the watermark passes the batch's open instant (no future
/// arrival can join it any more), so a stream fed chunk by chunk emits the
/// *same* decisions, bit for bit, as the off-line run on the completed job
/// list: both sides share `online_decide_batch` and the release-order
/// tie-break. `finish()` is an infinite watermark.
///
/// §5 job mix: an arrival is moldable, rigid (a moldable task whose only
/// allowed allotment is its fixed size), or a divisible load. Moldable and
/// rigid arrivals are batch jobs; divisible arrivals are background filler
/// poured into the idle holes of each batch decision via the flat
/// divisible filler (sim/divisible.hpp), never extending the batch window
/// and never touching a reserved processor. Unplaced divisible work
/// carries over to later batches; whatever remains at finish() is drained
/// onto the machine after the last batch (a divisible-only "batch" whose
/// window the same reservation fixpoint clears). Divisible fills never
/// change moldable/rigid decisions, so a moldable-only comparison against
/// the off-line simulator stays exact even in mixed streams.
///
/// Allocation contract: every buffer — fed jobs, accumulated results,
/// batch instance, fill scratch, deliveries — keeps its capacity across
/// open()/feed()/finish() cycles, so a warm stream session (one no larger
/// than a previous session on the same pooled object) processes arrivals
/// without any heap allocation (measured per arrival by
/// bench/online_stream.cpp). Note the flip side: a session retains O(total
/// arrivals) state for its whole life — result() is the accumulated run —
/// so memory for a very long-lived stream grows with it and is reclaimed
/// (as pooled capacity) only at close; compacting delivered prefixes is a
/// candidate extension (ROADMAP).
///
/// Error contract: feed() validates the watermark and every arrival
/// *before* mutating any state — a throwing feed leaves the stream exactly
/// as it was. An error thrown mid-decision (from the off-line plug-in or a
/// job that cannot fit the reduced machine) marks the stream broken;
/// further feeds throw, and finish() closes it quietly with an empty final
/// delivery.
///
/// Operator documentation (lifecycle, ordering/determinism contracts,
/// serving integration, tuning): docs/ONLINE.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/divisible.hpp"
#include "sim/online.hpp"

namespace moldsched {

struct StreamCheckpoint;  // sim/checkpoint.hpp

/// The three job types of the paper's §5 mix.
enum class ArrivalKind {
  Moldable,   ///< allotment chosen by the off-line plug-in
  Rigid,      ///< fixed allotment (min_procs == max_procs)
  Divisible,  ///< bag of work, split arbitrarily into idle holes
};

/// One streamed arrival. `task` carries Moldable/Rigid payloads, `load`
/// carries Divisible payloads; the other member is ignored.
struct StreamArrival {
  ArrivalKind kind = ArrivalKind::Moldable;
  MoldableTask task;
  DivisibleJob load;
  double release = 0.0;
};

/// Convenience constructors for the three arrival kinds.
[[nodiscard]] StreamArrival moldable_arrival(MoldableTask task,
                                             double release);
/// A rigid job runs on exactly `procs` processors for `duration`.
[[nodiscard]] StreamArrival rigid_arrival(int procs, double duration,
                                          double weight, double release);
[[nodiscard]] StreamArrival divisible_arrival(double work, double weight,
                                              double release);

/// Everything one feed/finish call finalised, in stream order. Buffers
/// keep capacity across reuse, so recycling one delivery object through a
/// serving loop is allocation-free.
struct StreamDelivery {
  /// Stream-global id of the first newly decided batch job; entry e of
  /// `placements`/`completion` answers job first_job + e. Batch-job ids
  /// count moldable+rigid arrivals in fed order; divisible arrivals have
  /// their own id space (`divisible_done`).
  int first_job = 0;
  FlatPlacements placements;        ///< global time and processor ids
  std::vector<double> completion;   ///< per newly decided batch job
  std::vector<double> batch_starts; ///< open instants of new batches
  std::vector<DivisibleChunk> chunks;       ///< new divisible chunks (global)
  std::vector<int> divisible_done;          ///< divisible ids now complete
  std::vector<double> divisible_completion; ///< parallel to divisible_done
  bool final_delivery = false;      ///< true for the finish() delivery

  // Running stream totals after this call (batch jobs only, matching
  // FlatOnlineResult; divisible filler tracked separately).
  double cmax = 0.0;
  double weighted_completion_sum = 0.0;
  double weighted_flow_sum = 0.0;
  double divisible_weighted_completion_sum = 0.0;
  int num_batches = 0;

  [[nodiscard]] int num_jobs() const noexcept { return placements.size(); }

  /// Empty all fields; capacity kept.
  void clear();
};

/// One open streaming session. The engine pools OnlineStream objects per
/// strand (EngineWorkspace) and the serving layer pins each session to a
/// shard, so feeds of one stream always execute in order on one thread;
/// the class itself is not thread-safe.
class OnlineStream {
 public:
  /// Start (or restart) a session on an m-processor machine. Reservations
  /// are copied. Throws std::invalid_argument on m < 1 or a bad
  /// reservation. Reopening a live session abandons its state.
  void open(int m, const std::vector<NodeReservation>& reservations);

  /// Feed `count` arrivals and advance the watermark. Arrival releases
  /// must be non-decreasing, >= the previous watermark, and <= the new
  /// one; the watermark must not move backwards. Decisions that became
  /// final are written into `out` (cleared first). Throws
  /// std::invalid_argument on a contract violation (state untouched) and
  /// std::logic_error on a closed/broken stream.
  void feed(const StreamArrival* arrivals, std::size_t count,
            double watermark, const FlatOfflineScheduler& offline,
            StreamDelivery& out);

  /// Policy form of feed: every batch decision runs `policy.schedule_into`
  /// inside `policy_ws` (a workspace the policy made; one per stream
  /// strand). Bit-identical to the plug-in form, allocation-free beyond
  /// what the policy itself allocates.
  void feed(const StreamArrival* arrivals, std::size_t count,
            double watermark, const SchedulingPolicy& policy,
            PolicyWorkspace& policy_ws, StreamDelivery& out);

  /// Close the stream: decide every remaining batch, drain leftover
  /// divisible work, and deliver with final_delivery == true. A broken
  /// stream closes quietly with an empty final delivery.
  void finish(const FlatOfflineScheduler& offline, StreamDelivery& out);

  /// Policy form of finish (see the policy feed overload).
  void finish(const SchedulingPolicy& policy, PolicyWorkspace& policy_ws,
              StreamDelivery& out);

  /// Enable speculative frontier decisions (default off). With speculation
  /// on, batches whose open instant is still ahead of the watermark are
  /// decided anyway and *staged* off to the side; a later watermark that
  /// confirms no late arrival commits the staged decision (replaying the
  /// settled placements — bit-identical to deciding fresh), while an
  /// arrival that would have joined a staged batch rolls the stage back
  /// and the batch is re-decided normally. Deliveries, result(), and
  /// checkpoints carry confirmed state only, so toggling speculation never
  /// changes any observable output — only when the deciding work happens.
  /// Turning it off rolls back anything currently staged.
  void set_speculate(bool on);
  [[nodiscard]] bool speculate() const noexcept { return speculate_; }
  /// Bound the staged frontier: with depth d > 0 at most d batch decisions
  /// are staged ahead of the watermark per frontier advance — once d
  /// stages have been spent without any batch becoming final (committed or
  /// decided fresh), the stream stops re-speculating until the frontier
  /// moves. On a rollback-heavy tape, where every late arrival invalidates
  /// the staged batch and an unbounded stream immediately re-stages the
  /// merged batch, this caps the wasted (rolled-back) work at d decisions
  /// per real batch. 0 (the default) = unlimited. Purely a work bound:
  /// deliveries are bit-identical for every depth. Throws
  /// std::invalid_argument on a negative depth. Lowering the depth below
  /// the live staged count rolls the excess back.
  void set_speculate_depth(int depth);
  [[nodiscard]] int speculate_depth() const noexcept {
    return speculate_depth_;
  }
  /// Batches decided ahead of the watermark this session.
  [[nodiscard]] std::uint64_t speculated_batches() const noexcept {
    return spec_decided_;
  }
  /// Staged decisions the watermark later confirmed.
  [[nodiscard]] std::uint64_t committed_speculations() const noexcept {
    return spec_committed_;
  }
  /// Staged decisions discarded because a late arrival (or a toggle)
  /// invalidated them.
  [[nodiscard]] std::uint64_t rolled_back_speculations() const noexcept {
    return spec_rolled_back_;
  }

  /// True while the stream accepts feeds (open and not yet finished).
  [[nodiscard]] bool is_open() const noexcept { return open_ && !finished_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] bool broken() const noexcept { return broken_; }
  [[nodiscard]] int procs() const noexcept { return m_; }
  [[nodiscard]] double watermark() const noexcept { return watermark_; }
  [[nodiscard]] int batch_jobs_fed() const noexcept {
    return static_cast<int>(jobs_live_);
  }
  [[nodiscard]] int batch_jobs_decided() const noexcept {
    return static_cast<int>(next_);
  }
  [[nodiscard]] int divisible_jobs_fed() const noexcept {
    return static_cast<int>(divisible_live_);
  }
  /// Divisible work fed but not yet poured into a hole.
  [[nodiscard]] double divisible_work_pending() const noexcept;

  /// Accumulated batch-job results so far (indexed by stream job id) —
  /// after finish() this equals what online_batch_schedule_into computes
  /// for the full job list. Valid until the next open().
  [[nodiscard]] const FlatOnlineResult& result() const noexcept {
    return result_;
  }

  /// Snapshot this session's resumable state (clock, watermark,
  /// reservations, undecided arrivals, divisible residue, running totals)
  /// into `out` — see sim/checkpoint.hpp. The session itself is
  /// untouched. Throws std::logic_error on a closed session.
  void checkpoint(StreamCheckpoint& out) const;

  /// Become the session `ckpt` describes: future feeds, finish, and
  /// deliveries are bit-identical to the original stream's (its decided
  /// prefix restores as zeroed result placeholders — already delivered
  /// elsewhere). Any previous state of this object is abandoned. Throws
  /// std::invalid_argument on a malformed checkpoint; a throwing restore
  /// leaves the session closed.
  void restore(const StreamCheckpoint& ckpt);

 private:
  struct PendingDivisible {
    double remaining = 0.0;
    double weight = 0.0;
    double release = 0.0;
  };

  /// One speculative batch decision, staged off to the side. Live stream
  /// state stays confirmed-only: a record holds everything a commit needs
  /// to replay the decision bit-identically (the settled batch-local
  /// placements plus the divisible fill it implies), and a rollback is
  /// simply discarding the record. Records are pooled — the live window is
  /// spec_pool_[spec_head_, spec_count_).
  struct SpecRecord {
    std::size_t first_job = 0;  ///< frontier before the batch
    std::size_t last_job = 0;   ///< frontier after the batch
    double member_open = 0.0;   ///< pre-fixpoint open (membership/finality)
    double clock_open = 0.0;    ///< settled batch start (batch_starts value)
    double clock_after = 0.0;   ///< clock_open + batch makespan
    std::vector<int> batch_jobs;     ///< stream job ids of the batch
    FlatPlacements batch;            ///< settled batch-local placements
    std::vector<int> free_procs;     ///< processors the batch may use
    // Staged divisible fill: chunks in global coordinates plus the
    // per-candidate residue updates the fill implies, applied at commit.
    std::vector<DivisibleChunk> chunks;
    std::vector<int> div_ids;
    std::vector<double> div_remaining_after;
    std::vector<std::uint8_t> div_done;
    std::vector<double> div_completion;
  };

  void append_batch_job(const StreamArrival& arrival);
  void advance(bool finishing, const FlatOfflineScheduler& offline,
               StreamDelivery& out);
  void fill_batch_divisible(double open_time, double horizon,
                            StreamDelivery& out);
  void drain_divisible(StreamDelivery& out);
  void collect_divisible_candidates(double open_time);
  void settle_fill(double open_time, StreamDelivery& out);
  void speculate_ahead(const FlatOfflineScheduler& offline);
  void stage_fill(SpecRecord& rec);
  void commit_record(const SpecRecord& rec, StreamDelivery& out);
  void invalidate_speculation(const StreamArrival* arrivals,
                              std::size_t count);
  void drop_speculation(std::size_t from);

  int m_ = 0;
  double now_ = 0.0;
  double watermark_ = 0.0;
  bool open_ = false;
  bool finished_ = false;
  bool broken_ = false;
  std::vector<NodeReservation> reservations_;

  OnlineWorkspace ws_;
  FlatOnlineResult result_;
  std::vector<OnlineJob> jobs_;  ///< fed batch jobs, pooled shells
  std::size_t jobs_live_ = 0;
  std::size_t next_ = 0;  ///< decision frontier into jobs_

  std::vector<PendingDivisible> divisible_;  ///< pooled, id == index
  std::size_t divisible_live_ = 0;
  double divisible_wcs_ = 0.0;
  std::vector<int> div_candidates_;      ///< ids active for the open fill
  std::vector<DivisibleJob> div_batch_;  ///< their remaining work/weight
  std::vector<double> div_last_finish_;  ///< per candidate, this fill only
  DivisibleFillWorkspace fill_ws_;
  DivisibleFillResult fill_out_;
  FlatPlacements empty_batch_;  ///< zero-entry placements for the drain

  bool speculate_ = false;
  int speculate_depth_ = 0;  ///< staging budget per frontier advance; 0 = unlimited
  std::uint64_t spec_frontier_staged_ = 0;  ///< stages spent at this frontier
  std::vector<SpecRecord> spec_pool_;  ///< pooled records, capacity kept
  std::size_t spec_head_ = 0;   ///< first live staged record
  std::size_t spec_count_ = 0;  ///< one past the last live staged record
  std::vector<double> spec_div_remaining_;  ///< shadow residue for staging
  std::uint64_t spec_decided_ = 0;
  std::uint64_t spec_committed_ = 0;
  std::uint64_t spec_rolled_back_ = 0;
};

}  // namespace moldsched
