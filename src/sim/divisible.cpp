#include "sim/divisible.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace moldsched {

namespace {

/// Complement of the busy intervals on every processor, clipped to
/// [0, horizon), sorted by start time (earliest capacity first). Runs
/// inside `ws` (busy + idle buffers reused).
void idle_intervals_into(const FlatPlacements& placements, int m,
                         double horizon, DivisibleFillWorkspace& ws) {
  ws.busy.clear();
  for (int e = 0; e < placements.size(); ++e) {
    if (!placements.assigned(e)) continue;
    const auto entry = static_cast<std::size_t>(e);
    const double start = placements.start[entry];
    const double finish = start + placements.duration[entry];
    const auto begin = static_cast<std::size_t>(placements.proc_begin[entry]);
    const auto count = static_cast<std::size_t>(placements.proc_count[entry]);
    for (std::size_t p = begin; p < begin + count; ++p) {
      ws.busy.push_back(DivisibleFillWorkspace::Busy{
          placements.proc_ids[p], start, finish});
    }
  }
  // (proc, start, finish) lexicographic == the object path's per-processor
  // (start, finish) sorts, so the two cores stay bit-identical.
  std::sort(ws.busy.begin(), ws.busy.end(),
            [](const DivisibleFillWorkspace::Busy& a,
               const DivisibleFillWorkspace::Busy& b) {
              if (a.proc != b.proc) return a.proc < b.proc;
              if (a.start != b.start) return a.start < b.start;
              return a.finish < b.finish;
            });
  ws.idle.clear();
  std::size_t next = 0;
  for (int proc = 0; proc < m; ++proc) {
    double cursor = 0.0;
    while (next < ws.busy.size() && ws.busy[next].proc == proc) {
      const double start = ws.busy[next].start;
      const double finish = ws.busy[next].finish;
      if (start > cursor + 1e-12 && cursor < horizon) {
        ws.idle.push_back(DivisibleFillWorkspace::Hole{
            proc, cursor, std::min(start, horizon)});
      }
      cursor = std::max(cursor, finish);
      ++next;
    }
    if (cursor < horizon) {
      ws.idle.push_back(DivisibleFillWorkspace::Hole{proc, cursor, horizon});
    }
  }
  std::sort(ws.idle.begin(), ws.idle.end(),
            [](const DivisibleFillWorkspace::Hole& a,
               const DivisibleFillWorkspace::Hole& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.proc < b.proc;
            });
}

}  // namespace

void fill_idle_with_divisible_into(const FlatPlacements& placements, int m,
                                   const DivisibleJob* jobs,
                                   std::size_t count, double horizon,
                                   DivisibleFillWorkspace& ws,
                                   DivisibleFillResult& out) {
  out.chunks.clear();
  out.completion.assign(count, 0.0);
  out.placed_work.assign(count, 0.0);
  out.weighted_completion_sum = 0.0;
  out.all_placed = true;
  out.idle_capacity = 0.0;

  idle_intervals_into(placements, m, horizon, ws);
  for (const auto& hole : ws.idle) out.idle_capacity += hole.length();

  // Smith order over the divisible jobs: weight per unit of work,
  // decreasing. Earliest holes go to the most valuable work.
  ws.order.resize(count);
  std::iota(ws.order.begin(), ws.order.end(), std::size_t{0});
  std::sort(ws.order.begin(), ws.order.end(),
            [&](std::size_t a, std::size_t b) {
              const double ra = jobs[a].weight / jobs[a].work;
              const double rb = jobs[b].weight / jobs[b].work;
              if (ra != rb) return ra > rb;
              return a < b;
            });

  for (std::size_t job_index : ws.order) {
    const double work = jobs[job_index].work;

    // Water-filling: the job finishes earliest at the time T* where the
    // cumulative idle capacity before T* first reaches `work`. Capacity is
    // a piecewise-linear increasing function of T whose slope is the number
    // of holes open at T; sweep its breakpoints.
    ws.events.clear();
    for (const auto& hole : ws.idle) {
      if (hole.length() <= 1e-12) continue;
      ws.events.push_back(DivisibleFillWorkspace::Event{hole.start, +1});
      ws.events.push_back(DivisibleFillWorkspace::Event{hole.finish, -1});
    }
    std::sort(ws.events.begin(), ws.events.end(),
              [](const DivisibleFillWorkspace::Event& a,
                 const DivisibleFillWorkspace::Event& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.delta < b.delta;  // close before open at equal time
              });
    double t_star = -1.0;
    {
      double cap = 0.0, t = 0.0;
      int open = 0;
      for (const auto& event : ws.events) {
        if (open > 0 && cap + open * (event.time - t) >= work - 1e-12) {
          t_star = t + (work - cap) / open;
          break;
        }
        cap += open * (event.time - t);
        t = event.time;
        open += event.delta;
      }
    }

    if (t_star < 0.0) {
      // Not enough capacity in the horizon: consume everything and report
      // the shortfall.
      out.all_placed = false;
      double placed = 0.0;
      for (auto& hole : ws.idle) {
        if (hole.length() <= 1e-12) continue;
        out.chunks.push_back(DivisibleChunk{static_cast<int>(job_index),
                                            hole.proc, hole.start,
                                            hole.length()});
        placed += hole.length();
        hole.start = hole.finish;
      }
      out.placed_work[job_index] = placed;
      continue;
    }

    // Carve every hole up to T*; partially used holes keep their tails for
    // the next (less valuable) job.
    for (auto& hole : ws.idle) {
      if (hole.start >= t_star || hole.length() <= 1e-12) continue;
      const double take = std::min(hole.finish, t_star) - hole.start;
      if (take <= 1e-12) continue;
      out.chunks.push_back(DivisibleChunk{static_cast<int>(job_index),
                                          hole.proc, hole.start, take});
      hole.start += take;
    }
    out.placed_work[job_index] = work;
    out.completion[job_index] = t_star;
    out.weighted_completion_sum += jobs[job_index].weight * t_star;
  }
}

DivisibleFillResult fill_idle_with_divisible(
    const Schedule& schedule, const std::vector<DivisibleJob>& jobs,
    double horizon) {
  if (horizon < 0.0) {
    throw std::invalid_argument("fill_idle_with_divisible: negative horizon");
  }
  for (const auto& job : jobs) {
    if (!(job.work > 0.0)) {
      throw std::invalid_argument(
          "fill_idle_with_divisible: work must be positive");
    }
    if (!(job.weight > 0.0)) {
      throw std::invalid_argument(
          "fill_idle_with_divisible: weight must be positive");
    }
  }

  DivisibleFillWorkspace ws;
  DivisibleFillResult result;
  FlatPlacements flat;
  flat.assign_from(schedule);
  fill_idle_with_divisible_into(flat, schedule.procs(), jobs.data(),
                                jobs.size(), horizon, ws, result);
  return result;
}

}  // namespace moldsched
