#include "sim/divisible.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace moldsched {

namespace {

struct IdleInterval {
  int proc;
  double start, finish;

  [[nodiscard]] double length() const noexcept { return finish - start; }
};

/// Complement of the busy intervals on every processor, clipped to
/// [0, horizon), sorted by start time (earliest capacity first).
std::vector<IdleInterval> idle_intervals(const Schedule& schedule,
                                         double horizon) {
  const int m = schedule.procs();
  std::vector<std::vector<std::pair<double, double>>> busy(
      static_cast<std::size_t>(m));
  for (int i = 0; i < schedule.num_tasks(); ++i) {
    if (!schedule.assigned(i)) continue;
    const Placement& p = schedule.placement(i);
    for (int proc : p.procs) {
      busy[static_cast<std::size_t>(proc)].emplace_back(p.start, p.finish());
    }
  }
  std::vector<IdleInterval> idle;
  for (int proc = 0; proc < m; ++proc) {
    auto& intervals = busy[static_cast<std::size_t>(proc)];
    std::sort(intervals.begin(), intervals.end());
    double cursor = 0.0;
    for (const auto& [start, finish] : intervals) {
      if (start > cursor + 1e-12 && cursor < horizon) {
        idle.push_back(IdleInterval{proc, cursor, std::min(start, horizon)});
      }
      cursor = std::max(cursor, finish);
    }
    if (cursor < horizon) {
      idle.push_back(IdleInterval{proc, cursor, horizon});
    }
  }
  std::sort(idle.begin(), idle.end(),
            [](const IdleInterval& a, const IdleInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.proc < b.proc;
            });
  return idle;
}

}  // namespace

DivisibleFillResult fill_idle_with_divisible(
    const Schedule& schedule, const std::vector<DivisibleJob>& jobs,
    double horizon) {
  if (horizon < 0.0) {
    throw std::invalid_argument("fill_idle_with_divisible: negative horizon");
  }
  for (const auto& job : jobs) {
    if (!(job.work > 0.0)) {
      throw std::invalid_argument(
          "fill_idle_with_divisible: work must be positive");
    }
    if (!(job.weight > 0.0)) {
      throw std::invalid_argument(
          "fill_idle_with_divisible: weight must be positive");
    }
  }

  DivisibleFillResult result;
  result.completion.assign(jobs.size(), 0.0);
  result.placed_work.assign(jobs.size(), 0.0);

  auto idle = idle_intervals(schedule, horizon);
  for (const auto& interval : idle) result.idle_capacity += interval.length();

  // Smith order over the divisible jobs: weight per unit of work,
  // decreasing. Earliest holes go to the most valuable work.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = jobs[a].weight / jobs[a].work;
    const double rb = jobs[b].weight / jobs[b].work;
    if (ra != rb) return ra > rb;
    return a < b;
  });

  for (std::size_t job_index : order) {
    const double work = jobs[job_index].work;

    // Water-filling: the job finishes earliest at the time T* where the
    // cumulative idle capacity before T* first reaches `work`. Capacity is
    // a piecewise-linear increasing function of T whose slope is the number
    // of holes open at T; sweep its breakpoints.
    struct Event {
      double time;
      int delta;  // +1 hole opens, -1 hole closes
    };
    std::vector<Event> events;
    for (const auto& hole : idle) {
      if (hole.length() <= 1e-12) continue;
      events.push_back(Event{hole.start, +1});
      events.push_back(Event{hole.finish, -1});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.delta < b.delta;  // close before open at equal time
              });
    double t_star = -1.0;
    {
      double cap = 0.0, t = 0.0;
      int open = 0;
      for (const auto& event : events) {
        if (open > 0 && cap + open * (event.time - t) >= work - 1e-12) {
          t_star = t + (work - cap) / open;
          break;
        }
        cap += open * (event.time - t);
        t = event.time;
        open += event.delta;
      }
    }

    if (t_star < 0.0) {
      // Not enough capacity in the horizon: consume everything and report
      // the shortfall.
      result.all_placed = false;
      double placed = 0.0;
      for (auto& hole : idle) {
        if (hole.length() <= 1e-12) continue;
        result.chunks.push_back(DivisibleChunk{static_cast<int>(job_index),
                                               hole.proc, hole.start,
                                               hole.length()});
        placed += hole.length();
        hole.start = hole.finish;
      }
      result.placed_work[job_index] = placed;
      continue;
    }

    // Carve every hole up to T*; partially used holes keep their tails for
    // the next (less valuable) job.
    for (auto& hole : idle) {
      if (hole.start >= t_star || hole.length() <= 1e-12) continue;
      const double take = std::min(hole.finish, t_star) - hole.start;
      if (take <= 1e-12) continue;
      result.chunks.push_back(DivisibleChunk{static_cast<int>(job_index),
                                             hole.proc, hole.start, take});
      hole.start += take;
    }
    result.placed_work[job_index] = work;
    result.completion[job_index] = t_star;
    result.weighted_completion_sum += jobs[job_index].weight * t_star;
  }
  return result;
}

}  // namespace moldsched
