#include "sim/stream.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace moldsched {

namespace {

/// Remaining divisible work below this is rounding noise, not pending load.
constexpr double kWorkEps = 1e-9;

}  // namespace

StreamArrival moldable_arrival(MoldableTask task, double release) {
  StreamArrival arrival;
  arrival.kind = ArrivalKind::Moldable;
  arrival.task = std::move(task);
  arrival.release = release;
  return arrival;
}

StreamArrival rigid_arrival(int procs, double duration, double weight,
                            double release) {
  if (procs < 1) {
    throw std::invalid_argument("rigid_arrival: procs must be >= 1");
  }
  // A rigid job is the degenerate moldable task whose only allowed
  // allotment is `procs`: min_procs == max_procs == procs. Entries below
  // procs are filler (never a legal allotment) but must be positive to
  // satisfy the task invariant.
  StreamArrival arrival;
  arrival.kind = ArrivalKind::Rigid;
  arrival.task = MoldableTask(
      std::vector<double>(static_cast<std::size_t>(procs), duration), weight,
      procs);
  arrival.release = release;
  return arrival;
}

StreamArrival divisible_arrival(double work, double weight, double release) {
  StreamArrival arrival;
  arrival.kind = ArrivalKind::Divisible;
  arrival.load = DivisibleJob{work, weight};
  arrival.release = release;
  return arrival;
}

void StreamDelivery::clear() {
  first_job = 0;
  placements.reset(0);
  completion.clear();
  batch_starts.clear();
  chunks.clear();
  divisible_done.clear();
  divisible_completion.clear();
  final_delivery = false;
  cmax = 0.0;
  weighted_completion_sum = 0.0;
  weighted_flow_sum = 0.0;
  divisible_weighted_completion_sum = 0.0;
  num_batches = 0;
}

void OnlineStream::open(int m,
                        const std::vector<NodeReservation>& reservations) {
  if (m < 1) throw std::invalid_argument("OnlineStream: m < 1");
  for (const auto& r : reservations) {
    if (r.proc < 0 || r.proc >= m || !(r.finish > r.start)) {
      throw std::invalid_argument("OnlineStream: bad reservation");
    }
  }
  m_ = m;
  now_ = 0.0;
  watermark_ = 0.0;
  open_ = true;
  finished_ = false;
  broken_ = false;
  reservations_.assign(reservations.begin(), reservations.end());
  result_.reset(0);
  jobs_live_ = 0;
  next_ = 0;
  divisible_live_ = 0;
  divisible_wcs_ = 0.0;
  speculate_ = false;
  speculate_depth_ = 0;
  spec_frontier_staged_ = 0;
  spec_head_ = 0;
  spec_count_ = 0;
  spec_decided_ = 0;
  spec_committed_ = 0;
  spec_rolled_back_ = 0;
}

void OnlineStream::set_speculate(bool on) {
  if (!on && spec_head_ < spec_count_) drop_speculation(spec_head_);
  speculate_ = on;
}

void OnlineStream::set_speculate_depth(int depth) {
  if (depth < 0) {
    throw std::invalid_argument(
        "OnlineStream: speculate depth must be >= 0");
  }
  speculate_depth_ = depth;
  // Shrink an already-staged frontier that exceeds the new cap: the
  // records past the cap are exactly what a stream with this budget from
  // the start would never have staged.
  if (depth > 0) {
    const std::size_t cap = spec_head_ + static_cast<std::size_t>(depth);
    if (spec_count_ > cap) drop_speculation(cap);
  }
}

double OnlineStream::divisible_work_pending() const noexcept {
  double total = 0.0;
  for (std::size_t d = 0; d < divisible_live_; ++d) {
    if (divisible_[d].remaining > kWorkEps) total += divisible_[d].remaining;
  }
  return total;
}

void OnlineStream::append_batch_job(const StreamArrival& arrival) {
  if (jobs_live_ < jobs_.size()) {
    jobs_[jobs_live_].task = arrival.task;  // reuses the shell's capacity
    jobs_[jobs_live_].release = arrival.release;
  } else {
    jobs_.push_back(OnlineJob{arrival.task, arrival.release});
  }
  ++jobs_live_;
  // Mirror the arrival in the accumulated result (unassigned until its
  // batch is decided).
  result_.schedule.start.push_back(0.0);
  result_.schedule.duration.push_back(0.0);
  result_.schedule.proc_begin.push_back(0);
  result_.schedule.proc_count.push_back(0);
  result_.completion.push_back(0.0);
  result_.flow.push_back(0.0);
}

void OnlineStream::feed(const StreamArrival* arrivals, std::size_t count,
                        double watermark, const FlatOfflineScheduler& offline,
                        StreamDelivery& out) {
  out.clear();
  if (!open_ || finished_) {
    throw std::logic_error("OnlineStream: stream is not open");
  }
  if (broken_) {
    throw std::logic_error("OnlineStream: broken by an earlier error");
  }
  if (!(watermark >= watermark_)) {
    throw std::invalid_argument("OnlineStream: watermark moved backwards");
  }
  // Validate everything before touching any state: a rejected feed must
  // leave the stream exactly as it was.
  double prev = watermark_;
  for (std::size_t i = 0; i < count; ++i) {
    const StreamArrival& a = arrivals[i];
    if (!(a.release >= prev)) {
      throw std::invalid_argument(
          "OnlineStream: arrivals must be fed in release order at or after "
          "the previous watermark");
    }
    if (!(a.release <= watermark)) {
      throw std::invalid_argument(
          "OnlineStream: arrival released after the new watermark");
    }
    prev = a.release;
    if (a.kind == ArrivalKind::Divisible) {
      if (!(a.load.work > 0.0) || !(a.load.weight > 0.0)) {
        throw std::invalid_argument(
            "OnlineStream: divisible work and weight must be positive");
      }
    } else {
      if (a.task.max_procs() < 1) {
        throw std::invalid_argument("OnlineStream: arrival without a task");
      }
      if (a.task.min_procs() > m_) {
        throw std::invalid_argument(
            "OnlineStream: job needs more processors than the machine has");
      }
    }
  }

  // A late arrival that would have joined a staged batch (or fed its
  // divisible fill) rolls the stage back before the arrival lands.
  invalidate_speculation(arrivals, count);

  for (std::size_t i = 0; i < count; ++i) {
    const StreamArrival& a = arrivals[i];
    if (a.kind == ArrivalKind::Divisible) {
      if (divisible_live_ < divisible_.size()) {
        divisible_[divisible_live_] =
            PendingDivisible{a.load.work, a.load.weight, a.release};
      } else {
        divisible_.push_back(
            PendingDivisible{a.load.work, a.load.weight, a.release});
      }
      ++divisible_live_;
    } else {
      append_batch_job(a);
    }
  }
  watermark_ = watermark;
  advance(false, offline, out);
  if (speculate_) speculate_ahead(offline);
}

void OnlineStream::feed(const StreamArrival* arrivals, std::size_t count,
                        double watermark, const SchedulingPolicy& policy,
                        PolicyWorkspace& policy_ws, StreamDelivery& out) {
  feed(arrivals, count, watermark, policy_offline(policy, policy_ws), out);
}

void OnlineStream::finish(const SchedulingPolicy& policy,
                          PolicyWorkspace& policy_ws, StreamDelivery& out) {
  finish(policy_offline(policy, policy_ws), out);
}

void OnlineStream::finish(const FlatOfflineScheduler& offline,
                          StreamDelivery& out) {
  out.clear();
  out.final_delivery = true;
  if (!open_ || finished_) {
    throw std::logic_error("OnlineStream: stream is not open");
  }
  finished_ = true;
  if (broken_) return;  // close quietly; state is unusable anyway
  watermark_ = std::numeric_limits<double>::infinity();
  advance(true, offline, out);
}

void OnlineStream::advance(bool finishing, const FlatOfflineScheduler& offline,
                           StreamDelivery& out) {
  const std::size_t first = next_;
  const std::size_t starts_mark = result_.batch_starts.size();
  try {
    // Commit staged speculative decisions that became final. Finality is
    // the same test the fresh loop applies to its open instant, so a
    // committed record is exactly a batch the fresh loop would decide now
    // — and invalidate_speculation already rolled back any record a new
    // arrival could still change. Records are sequential: once the front
    // one is not final, none behind it is either, and the fresh loop below
    // must not run ahead of what is still staged.
    while (spec_head_ < spec_count_) {
      const SpecRecord& rec = spec_pool_[spec_head_];
      if (!finishing && !(watermark_ > rec.member_open + kReleaseTieEps)) {
        break;
      }
      commit_record(rec, out);
      ++spec_head_;
    }
    if (spec_head_ == spec_count_) {
      spec_head_ = 0;
      spec_count_ = 0;
      while (next_ < jobs_live_) {
        const double open_time = std::max(now_, jobs_[next_].release);
        // The batch is final only once no future arrival can join it:
        // every arrival past the watermark has release >= watermark >
        // open + eps.
        if (!finishing && !(watermark_ > open_time + kReleaseTieEps)) break;
        ws_.batch_jobs.clear();
        while (next_ < jobs_live_ &&
               jobs_[next_].release <= open_time + kReleaseTieEps) {
          ws_.batch_jobs.push_back(static_cast<int>(next_));
          ++next_;
        }
        now_ = open_time;
        online_decide_batch(m_, jobs_.data(), reservations_, offline, ws_,
                            now_, result_);
        const double opened = result_.batch_starts.back();
        fill_batch_divisible(opened, now_ - opened, out);
      }
      if (finishing) drain_divisible(out);
    }
  } catch (...) {
    broken_ = true;
    throw;
  }

  // The frontier advanced: newly final batches refresh the speculation
  // budget (spent stages were not wasted, or their waste is already paid).
  if (next_ > first) spec_frontier_staged_ = 0;

  // Copy the newly final range into the delivery.
  out.first_job = static_cast<int>(first);
  const int delivered = static_cast<int>(next_ - first);
  out.placements.reset(delivered);
  for (int e = 0; e < delivered; ++e) {
    const auto job = first + static_cast<std::size_t>(e);
    const auto entry = static_cast<std::size_t>(e);
    out.placements.start[entry] = result_.schedule.start[job];
    out.placements.duration[entry] = result_.schedule.duration[job];
    out.placements.proc_begin[entry] =
        static_cast<int>(out.placements.proc_ids.size());
    out.placements.proc_count[entry] = result_.schedule.proc_count[job];
    const auto begin = static_cast<std::size_t>(result_.schedule.proc_begin[job]);
    const auto n_procs = static_cast<std::size_t>(result_.schedule.proc_count[job]);
    out.placements.proc_ids.insert(
        out.placements.proc_ids.end(),
        result_.schedule.proc_ids.begin() + static_cast<std::ptrdiff_t>(begin),
        result_.schedule.proc_ids.begin() +
            static_cast<std::ptrdiff_t>(begin + n_procs));
  }
  out.completion.assign(
      result_.completion.begin() + static_cast<std::ptrdiff_t>(first),
      result_.completion.begin() + static_cast<std::ptrdiff_t>(next_));
  out.batch_starts.assign(
      result_.batch_starts.begin() + static_cast<std::ptrdiff_t>(starts_mark),
      result_.batch_starts.end());
  out.cmax = result_.cmax;
  out.weighted_completion_sum = result_.weighted_completion_sum;
  out.weighted_flow_sum = result_.weighted_flow_sum;
  out.divisible_weighted_completion_sum = divisible_wcs_;
  out.num_batches = result_.num_batches;
}

void OnlineStream::collect_divisible_candidates(double open_time) {
  div_candidates_.clear();
  div_batch_.clear();
  for (std::size_t d = 0; d < divisible_live_; ++d) {
    const PendingDivisible& job = divisible_[d];
    if (job.remaining > kWorkEps &&
        job.release <= open_time + kReleaseTieEps) {
      div_candidates_.push_back(static_cast<int>(d));
      div_batch_.push_back(DivisibleJob{job.remaining, job.weight});
    }
  }
}

void OnlineStream::settle_fill(double open_time, StreamDelivery& out) {
  div_last_finish_.assign(div_candidates_.size(), 0.0);
  for (const auto& chunk : fill_out_.chunks) {
    const auto candidate = static_cast<std::size_t>(chunk.job);
    out.chunks.push_back(DivisibleChunk{
        div_candidates_[candidate],
        ws_.free_procs[static_cast<std::size_t>(chunk.proc)],
        open_time + chunk.start, chunk.duration});
    div_last_finish_[candidate] =
        std::max(div_last_finish_[candidate], open_time + chunk.finish());
  }
  for (std::size_t i = 0; i < div_candidates_.size(); ++i) {
    PendingDivisible& job =
        divisible_[static_cast<std::size_t>(div_candidates_[i])];
    job.remaining = std::max(0.0, job.remaining - fill_out_.placed_work[i]);
    // Fully placed by this fill — or placed to within rounding noise
    // (the filler's capacity tolerance is tighter than kWorkEps, so a
    // residual below it would otherwise never become a candidate again
    // and the job's completion would never be delivered).
    const bool done_exact = fill_out_.completion[i] > 0.0;
    const bool done_noise = !done_exact && job.remaining <= kWorkEps &&
                            fill_out_.placed_work[i] > 0.0;
    if (done_exact || done_noise) {
      job.remaining = 0.0;
      const double done = done_exact ? open_time + fill_out_.completion[i]
                                     : div_last_finish_[i];
      out.divisible_done.push_back(div_candidates_[i]);
      out.divisible_completion.push_back(done);
      divisible_wcs_ += job.weight * done;
    }
  }
}

void OnlineStream::fill_batch_divisible(double open_time, double horizon,
                                        StreamDelivery& out) {
  if (!(horizon > 0.0)) return;
  collect_divisible_candidates(open_time);
  if (div_candidates_.empty()) return;
  // Holes of the batch-local placements on the batch's free processors:
  // chunks can never collide with a placed task, a reserved node (the
  // fixpoint cleared every free processor for the whole window), or a
  // later batch (which opens at the window's end).
  fill_idle_with_divisible_into(
      ws_.batch, static_cast<int>(ws_.free_procs.size()), div_batch_.data(),
      div_batch_.size(), horizon, fill_ws_, fill_out_);
  settle_fill(open_time, out);
}

void OnlineStream::invalidate_speculation(const StreamArrival* arrivals,
                                          std::size_t count) {
  if (spec_head_ >= spec_count_ || count == 0) return;
  // A batch-job arrival joins a staged batch iff it passes the membership
  // test against the batch's pre-fixpoint open; a divisible arrival feeds
  // its fill iff it passes the candidate test against the settled open.
  // Records are sequential, so the first invalidated one takes every later
  // record (whose clock derives from it) down with it.
  std::size_t keep = spec_count_;
  for (std::size_t i = 0; i < count && keep > spec_head_; ++i) {
    const StreamArrival& a = arrivals[i];
    for (std::size_t r = spec_head_; r < keep; ++r) {
      const SpecRecord& rec = spec_pool_[r];
      const double open = a.kind == ArrivalKind::Divisible ? rec.clock_open
                                                           : rec.member_open;
      if (a.release <= open + kReleaseTieEps) {
        keep = r;
        break;
      }
    }
  }
  if (keep < spec_count_) drop_speculation(keep);
}

void OnlineStream::drop_speculation(std::size_t from) {
  spec_rolled_back_ += static_cast<std::uint64_t>(spec_count_ - from);
  spec_count_ = from;
  if (spec_head_ >= spec_count_) {
    spec_head_ = 0;
    spec_count_ = 0;
  }
}

void OnlineStream::commit_record(const SpecRecord& rec, StreamDelivery& out) {
  // Replay the staged decision through the shared lift — identical
  // arithmetic to deciding the batch fresh at the same clock.
  online_lift_batch(jobs_.data(), rec.batch_jobs.data(),
                    rec.batch_jobs.size(), rec.batch, rec.free_procs,
                    rec.clock_open, result_);
  now_ = rec.clock_after;
  next_ = rec.last_job;
  // Apply the staged divisible fill.
  for (const auto& chunk : rec.chunks) out.chunks.push_back(chunk);
  for (std::size_t i = 0; i < rec.div_ids.size(); ++i) {
    PendingDivisible& job =
        divisible_[static_cast<std::size_t>(rec.div_ids[i])];
    job.remaining = rec.div_remaining_after[i];
    if (rec.div_done[i] != 0) {
      out.divisible_done.push_back(rec.div_ids[i]);
      out.divisible_completion.push_back(rec.div_completion[i]);
      divisible_wcs_ += job.weight * rec.div_completion[i];
    }
  }
  ++spec_committed_;
}

void OnlineStream::speculate_ahead(const FlatOfflineScheduler& offline) {
  std::size_t spec_next =
      spec_head_ < spec_count_ ? spec_pool_[spec_count_ - 1].last_job : next_;
  if (spec_next >= jobs_live_) return;
  // Shadow divisible residue: live remaining overlaid with what staged
  // fills already consumed, so chained speculative batches see the residue
  // their predecessors would leave behind.
  spec_div_remaining_.resize(divisible_live_);
  for (std::size_t d = 0; d < divisible_live_; ++d) {
    spec_div_remaining_[d] = divisible_[d].remaining;
  }
  for (std::size_t r = spec_head_; r < spec_count_; ++r) {
    const SpecRecord& rec = spec_pool_[r];
    for (std::size_t i = 0; i < rec.div_ids.size(); ++i) {
      spec_div_remaining_[static_cast<std::size_t>(rec.div_ids[i])] =
          rec.div_remaining_after[i];
    }
  }
  double clock =
      spec_head_ < spec_count_ ? spec_pool_[spec_count_ - 1].clock_after
                               : now_;
  try {
    while (spec_next < jobs_live_) {
      // Depth budget: stop once speculate_depth_ stages have been spent
      // since the frontier last advanced. Rolled-back stages still count —
      // on a rollback-heavy tape every late arrival invalidates the staged
      // batch, and without the budget the stream would re-stage the merged
      // batch on every feed; with it the waste is bounded at depth
      // decisions per real batch. Never changes any delivery.
      if (speculate_depth_ > 0 &&
          spec_frontier_staged_ >=
              static_cast<std::uint64_t>(speculate_depth_)) {
        break;
      }
      // Same membership rule as the fresh loop; everything still undecided
      // here failed the finality test, which is exactly the speculative
      // frontier.
      const double member_open = std::max(clock, jobs_[spec_next].release);
      ws_.batch_jobs.clear();
      std::size_t last = spec_next;
      while (last < jobs_live_ &&
             jobs_[last].release <= member_open + kReleaseTieEps) {
        ws_.batch_jobs.push_back(static_cast<int>(last));
        ++last;
      }
      double spec_clock = member_open;
      online_settle_batch(m_, jobs_.data(), reservations_, offline, ws_,
                          spec_clock);
      if (spec_count_ >= spec_pool_.size()) spec_pool_.emplace_back();
      SpecRecord& rec = spec_pool_[spec_count_];
      rec.first_job = spec_next;
      rec.last_job = last;
      rec.member_open = member_open;
      rec.clock_open = spec_clock;
      // clock_after mirrors the fresh path's `now_` after the decision
      // (open plus makespan computed at the settled clock), so horizons
      // and later opens reproduce its floating point exactly.
      rec.clock_after = spec_clock + ws_.batch.cmax();
      rec.batch_jobs.assign(ws_.batch_jobs.begin(), ws_.batch_jobs.end());
      rec.batch.copy_from(ws_.batch);
      rec.free_procs.assign(ws_.free_procs.begin(), ws_.free_procs.end());
      stage_fill(rec);
      ++spec_count_;
      ++spec_decided_;
      ++spec_frontier_staged_;
      clock = rec.clock_after;
      spec_next = last;
    }
  } catch (...) {
    // Speculation is best-effort: a failing decision (job cannot fit, a
    // permanently reserved machine) must surface at the *real* decide —
    // the same feed where the speculate-off stream would throw — not
    // break the stream early. The partial stage up to the failure stays
    // valid and committable.
  }
}

void OnlineStream::stage_fill(SpecRecord& rec) {
  rec.chunks.clear();
  rec.div_ids.clear();
  rec.div_remaining_after.clear();
  rec.div_done.clear();
  rec.div_completion.clear();
  // Same horizon expression as the fresh path (`now_ - opened` with now_
  // already advanced past the batch) — not plain cmax, whose rounding can
  // differ.
  const double horizon = rec.clock_after - rec.clock_open;
  if (!(horizon > 0.0)) return;
  div_candidates_.clear();
  div_batch_.clear();
  for (std::size_t d = 0; d < divisible_live_; ++d) {
    if (spec_div_remaining_[d] > kWorkEps &&
        divisible_[d].release <= rec.clock_open + kReleaseTieEps) {
      div_candidates_.push_back(static_cast<int>(d));
      div_batch_.push_back(
          DivisibleJob{spec_div_remaining_[d], divisible_[d].weight});
    }
  }
  if (div_candidates_.empty()) return;
  fill_idle_with_divisible_into(
      ws_.batch, static_cast<int>(ws_.free_procs.size()), div_batch_.data(),
      div_batch_.size(), horizon, fill_ws_, fill_out_);
  // Stage what settle_fill would apply, with identical arithmetic.
  div_last_finish_.assign(div_candidates_.size(), 0.0);
  for (const auto& chunk : fill_out_.chunks) {
    const auto candidate = static_cast<std::size_t>(chunk.job);
    rec.chunks.push_back(DivisibleChunk{
        div_candidates_[candidate],
        ws_.free_procs[static_cast<std::size_t>(chunk.proc)],
        rec.clock_open + chunk.start, chunk.duration});
    div_last_finish_[candidate] = std::max(
        div_last_finish_[candidate], rec.clock_open + chunk.finish());
  }
  for (std::size_t i = 0; i < div_candidates_.size(); ++i) {
    const auto id = static_cast<std::size_t>(div_candidates_[i]);
    double remaining =
        std::max(0.0, spec_div_remaining_[id] - fill_out_.placed_work[i]);
    const bool done_exact = fill_out_.completion[i] > 0.0;
    const bool done_noise = !done_exact && remaining <= kWorkEps &&
                            fill_out_.placed_work[i] > 0.0;
    double done_at = 0.0;
    if (done_exact || done_noise) {
      remaining = 0.0;
      done_at = done_exact ? rec.clock_open + fill_out_.completion[i]
                           : div_last_finish_[i];
    }
    rec.div_ids.push_back(div_candidates_[i]);
    rec.div_remaining_after.push_back(remaining);
    rec.div_done.push_back((done_exact || done_noise) ? 1 : 0);
    rec.div_completion.push_back(done_at);
    spec_div_remaining_[id] = remaining;
  }
}

void OnlineStream::drain_divisible(StreamDelivery& out) {
  // Leftover divisible work at finish(): pour it into dedicated
  // divisible-only windows after the last batch. Each round serves every
  // job already released at the window's start; a window is sized so its
  // free capacity covers the work it serves, and the same reservation
  // fixpoint as a batch clears its processors.
  const int max_rounds =
      static_cast<int>(divisible_live_) +
      static_cast<int>(reservations_.size()) + 8;
  for (int round = 0; round < max_rounds; ++round) {
    double min_release = std::numeric_limits<double>::infinity();
    bool any = false;
    for (std::size_t d = 0; d < divisible_live_; ++d) {
      if (divisible_[d].remaining > kWorkEps) {
        any = true;
        min_release = std::min(min_release, divisible_[d].release);
      }
    }
    if (!any) return;
    if (min_release > now_ + kReleaseTieEps) now_ = min_release;
    collect_divisible_candidates(now_);
    double total = 0.0;
    for (const auto& job : div_batch_) total += job.work;

    // Reservation fixpoint over the drain window [now_, now_ + L) — the
    // same shared loop a batch decision runs, proposing a divisible-only
    // window instead of a batch makespan: L grows as processors drop out,
    // the blocked set only grows, so it converges exactly like a batch.
    // The window is floored at kWorkEps: on a wide machine a tiny
    // remainder could otherwise produce a window below the filler's 1e-12
    // hole-length cutoff, and a zero-progress round would spin the drain
    // to its round budget instead of finishing.
    online_blocked_procs_into(m_, reservations_, now_, now_, ws_.blocked);
    const double window = reservation_fixpoint(
        m_, reservations_, ws_, now_,
        [&](int avail) {
          return std::max(
              total / static_cast<double>(avail) * (1.0 + 1e-9), kWorkEps);
        },
        "OnlineStream");

    empty_batch_.reset(0);
    fill_idle_with_divisible_into(
        empty_batch_, static_cast<int>(ws_.free_procs.size()),
        div_batch_.data(), div_batch_.size(), window, fill_ws_, fill_out_);
    settle_fill(now_, out);
    // The window is spent: later rounds (jobs released mid-drain) must not
    // overlap its chunks.
    now_ += window;
  }
  throw std::logic_error("OnlineStream: divisible drain failed to converge");
}

}  // namespace moldsched
