/// \file instance.hpp
/// A scheduling instance: m identical processors plus a set of moldable
/// tasks, with a plain-text serialization for archiving experiment inputs.

#pragma once

#include <iosfwd>
#include <vector>

#include "tasks/moldable_task.hpp"

namespace moldsched {

class Instance {
 public:
  /// Create an instance for an m-processor cluster. Throws on m < 1.
  explicit Instance(int m);

  /// Append a task. The task's max_procs must not exceed m (every task must
  /// be describable on the whole machine; generators always produce full
  /// vectors). Returns the task's index, which is its identity everywhere
  /// (schedules, LP columns, ...).
  int add_task(MoldableTask task);

  /// Rebuild support for pooled batch instances (the online simulator and
  /// the streaming engine re-fill one Instance per batch decision): drop
  /// every task, moving its heap storage into an internal shell pool, and
  /// re-target the machine size. Throws on m < 1.
  void reset(int m);

  /// Append a copy of `src` with its time vector truncated to at most
  /// `max_procs` (and at most m) entries, drawing storage from the shell
  /// pool when one is available — a warm reset/add_task_truncated cycle
  /// performs no heap allocation. Returns the task's index. Throws
  /// std::invalid_argument when src cannot run on that few processors.
  int add_task_truncated(const MoldableTask& src, int max_procs);

  [[nodiscard]] int procs() const noexcept { return m_; }
  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const MoldableTask& task(int i) const {
    return tasks_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const std::vector<MoldableTask>& tasks() const noexcept {
    return tasks_;
  }

  /// Smallest processing time over all tasks and allotments — the paper's
  /// `tmin`, which fixes the smallest batch size.
  [[nodiscard]] double tmin() const;

  /// Sum over tasks of their cheapest work; `total_min_work() / m` is a
  /// classic makespan lower bound.
  [[nodiscard]] double total_min_work() const noexcept;

  /// Sum of task weights.
  [[nodiscard]] double total_weight() const noexcept;

  /// True when every task is time- and work-monotone.
  [[nodiscard]] bool is_monotone(double tol = 1e-9) const noexcept;

  /// Plain-text round-trip serialization (format documented in instance.cpp).
  void save(std::ostream& out) const;
  [[nodiscard]] static Instance load(std::istream& in);

 private:
  int m_;
  std::vector<MoldableTask> tasks_;
  /// Retired task shells (capacity donors for add_task_truncated).
  std::vector<MoldableTask> pool_;
};

}  // namespace moldsched
