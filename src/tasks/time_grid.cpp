#include "tasks/time_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace moldsched {

TimeGrid::TimeGrid(double cmax_estimate, double tmin)
    : cmax_(cmax_estimate), tmin_(tmin) {
  if (!(cmax_ > 0.0) || !(tmin_ > 0.0)) {
    throw std::invalid_argument("TimeGrid: cmax and tmin must be positive");
  }
  // tmin can exceed the estimate only through rounding slack in the dual
  // search; clamp K at zero so the grid stays well formed.
  k_ = std::max(0, static_cast<int>(std::floor(std::log2(cmax_ / tmin_))));
}

double TimeGrid::t(int j) const {
  if (j < 0) throw std::invalid_argument("TimeGrid::t: negative index");
  return cmax_ * std::exp2(static_cast<double>(j - k_));
}

}  // namespace moldsched
