#include "tasks/moldable_task.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace moldsched {

MoldableTask::MoldableTask(std::vector<double> times, double weight,
                           int min_procs)
    : times_(std::move(times)), weight_(weight), min_procs_(min_procs) {
  if (times_.empty()) {
    throw std::invalid_argument("MoldableTask: empty time vector");
  }
  for (double t : times_) {
    if (!(t > 0.0) || !std::isfinite(t)) {
      throw std::invalid_argument("MoldableTask: times must be positive");
    }
  }
  if (!(weight_ > 0.0) || !std::isfinite(weight_)) {
    throw std::invalid_argument("MoldableTask: weight must be positive");
  }
  if (min_procs_ < 1 || min_procs_ > max_procs()) {
    throw std::invalid_argument("MoldableTask: min_procs out of range");
  }
}

double MoldableTask::time(int k) const {
  if (k < 1 || k > max_procs()) {
    throw std::out_of_range("MoldableTask::time: k out of range");
  }
  return times_[static_cast<std::size_t>(k) - 1];
}

double MoldableTask::min_time() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (int k = min_procs_; k <= max_procs(); ++k) {
    best = std::min(best, times_[static_cast<std::size_t>(k) - 1]);
  }
  return best;
}

double MoldableTask::min_work() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (int k = min_procs_; k <= max_procs(); ++k) {
    best = std::min(best, k * times_[static_cast<std::size_t>(k) - 1]);
  }
  return best;
}

int MoldableTask::min_work_procs() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  int best_k = min_procs_;
  for (int k = min_procs_; k <= max_procs(); ++k) {
    const double w = k * times_[static_cast<std::size_t>(k) - 1];
    if (w < best) {
      best = w;
      best_k = k;
    }
  }
  return best_k;
}

int MoldableTask::canonical_allotment(double deadline) const noexcept {
  for (int k = min_procs_; k <= max_procs(); ++k) {
    if (times_[static_cast<std::size_t>(k) - 1] <= deadline) return k;
  }
  return 0;
}

int MoldableTask::min_work_allotment(double deadline) const noexcept {
  int best_k = 0;
  double best = std::numeric_limits<double>::infinity();
  for (int k = min_procs_; k <= max_procs(); ++k) {
    const double t = times_[static_cast<std::size_t>(k) - 1];
    if (t > deadline) continue;
    if (k * t < best) {
      best = k * t;
      best_k = k;
    }
  }
  return best_k;
}

bool MoldableTask::is_time_monotone(double tol) const noexcept {
  for (int k = min_procs_ + 1; k <= max_procs(); ++k) {
    if (time(k) > time(k - 1) + tol) return false;
  }
  return true;
}

bool MoldableTask::is_work_monotone(double tol) const noexcept {
  for (int k = min_procs_ + 1; k <= max_procs(); ++k) {
    if (work(k) + tol < work(k - 1)) return false;
  }
  return true;
}

void MoldableTask::enforce_monotonicity() {
  for (std::size_t k = 1; k < times_.size(); ++k) {
    const double prev = times_[k - 1];
    // Upper clamp keeps time non-increasing; lower clamp keeps work
    // (k+1)*t_{k+1} >= k*t_k non-decreasing. The interval is non-empty
    // because (k)/(k+1) * prev <= prev.
    const double lo = prev * static_cast<double>(k) / static_cast<double>(k + 1);
    times_[k] = std::clamp(times_[k], lo, prev);
  }
}

void MoldableTask::assign_truncated(const MoldableTask& src, int procs) {
  const int count = std::min(src.max_procs(), procs);
  if (count < src.min_procs_) {
    throw std::invalid_argument(
        "MoldableTask::assign_truncated: fewer processors than min_procs");
  }
  times_.assign(src.times_.begin(), src.times_.begin() + count);
  weight_ = src.weight_;
  min_procs_ = src.min_procs_;
}

MoldableTask MoldableTask::from_speedup(
    double seq_time, int max_procs, double weight,
    const std::function<double(int)>& speedup) {
  if (max_procs < 1) {
    throw std::invalid_argument("from_speedup: max_procs must be >= 1");
  }
  if (!(seq_time > 0.0)) {
    throw std::invalid_argument("from_speedup: seq_time must be positive");
  }
  std::vector<double> times(static_cast<std::size_t>(max_procs));
  for (int k = 1; k <= max_procs; ++k) {
    const double s = speedup(k);
    if (!(s > 0.0)) {
      throw std::invalid_argument("from_speedup: speedup must be positive");
    }
    times[static_cast<std::size_t>(k) - 1] = seq_time / s;
  }
  MoldableTask task(std::move(times), weight);
  task.enforce_monotonicity();
  return task;
}

}  // namespace moldsched
