/// \file moldable_task.hpp
/// The moldable parallel-task model (Feitelson's classification): the
/// scheduler picks the number of processors before execution and it stays
/// fixed until completion. A task is described by a vector of processing
/// times p(k), k = 1..max_procs, plus a weight (priority).
///
/// Rigid tasks are the degenerate case min_procs == max allowed procs; they
/// are supported so the simulator can mix job types (paper §5 future work).

#pragma once

#include <functional>
#include <vector>

namespace moldsched {

class MoldableTask {
 public:
  MoldableTask() = default;

  /// Build from explicit processing times: `times[k-1]` is the execution
  /// time on k processors. `min_procs` restricts the allowed allotments to
  /// [min_procs, times.size()] (1 for fully moldable tasks).
  /// Throws std::invalid_argument on empty/non-positive times, non-positive
  /// weight, or min_procs out of range.
  MoldableTask(std::vector<double> times, double weight, int min_procs = 1);

  /// Processing time on k processors (1-based). Throws std::out_of_range
  /// for k outside [1, max_procs()]; note k < min_procs() is still a valid
  /// *query* (the model knows the value) but not a valid allotment.
  [[nodiscard]] double time(int k) const;

  /// Work (processor-time area) on k processors: k * time(k).
  [[nodiscard]] double work(int k) const { return k * time(k); }

  [[nodiscard]] double weight() const noexcept { return weight_; }
  [[nodiscard]] int max_procs() const noexcept {
    return static_cast<int>(times_.size());
  }
  [[nodiscard]] int min_procs() const noexcept { return min_procs_; }
  [[nodiscard]] bool rigid() const noexcept {
    return min_procs_ == max_procs();
  }

  /// Fastest achievable execution time over allowed allotments.
  [[nodiscard]] double min_time() const noexcept;
  /// Cheapest achievable work over allowed allotments.
  [[nodiscard]] double min_work() const noexcept;
  /// Allotment achieving min_work().
  [[nodiscard]] int min_work_procs() const noexcept;

  /// Canonical allotment: the smallest allowed k with time(k) <= deadline,
  /// or 0 when no allotment meets the deadline. For monotone tasks this is
  /// also the work-minimising deadline-feasible allotment.
  [[nodiscard]] int canonical_allotment(double deadline) const noexcept;

  /// Allotment minimising work among allowed k with time(k) <= deadline,
  /// or 0 when none exists. Equals canonical_allotment for monotone tasks;
  /// differs only on non-monotone inputs, where it is the sound choice for
  /// the lower-bound machinery (the paper's S_{i,j} in §3.3 is exactly
  /// min work subject to the deadline).
  [[nodiscard]] int min_work_allotment(double deadline) const noexcept;

  /// True when time(k) is non-increasing in k over the allowed range.
  [[nodiscard]] bool is_time_monotone(double tol = 1e-9) const noexcept;
  /// True when work(k) is non-decreasing in k over the allowed range.
  [[nodiscard]] bool is_work_monotone(double tol = 1e-9) const noexcept;

  /// Repair tiny monotonicity violations (numerical noise from generator
  /// models): clamps each time(k) into
  /// [ (k-1)/k * time(k-1), time(k-1) ], which enforces both monotonicity
  /// properties simultaneously.
  void enforce_monotonicity();

  /// In-place rebuild reusing this task's time-vector capacity: become a
  /// copy of `src` with the time vector truncated to at most `procs`
  /// entries (the reduced-machine form the online batch builder needs).
  /// The streaming hot path re-fills pooled tasks through this instead of
  /// constructing fresh ones, so a warm pool rebuilds without heap
  /// allocation. Throws std::invalid_argument when src.min_procs() > procs
  /// (the task cannot run on that few processors).
  void assign_truncated(const MoldableTask& src, int procs);

  /// Construct from a sequential time and a speedup function S(k)
  /// (S(1) must be 1): time(k) = seq_time / S(k).
  [[nodiscard]] static MoldableTask from_speedup(
      double seq_time, int max_procs, double weight,
      const std::function<double(int)>& speedup);

  /// Access to the raw time vector (read-only).
  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }

 private:
  std::vector<double> times_;
  double weight_ = 1.0;
  int min_procs_ = 1;
};

}  // namespace moldsched
