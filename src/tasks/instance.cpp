#include "tasks/instance.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

namespace moldsched {

Instance::Instance(int m) : m_(m) {
  if (m < 1) throw std::invalid_argument("Instance: m must be >= 1");
}

int Instance::add_task(MoldableTask task) {
  if (task.max_procs() > m_) {
    throw std::invalid_argument(
        "Instance::add_task: task defined on more processors than the "
        "cluster has");
  }
  tasks_.push_back(std::move(task));
  return static_cast<int>(tasks_.size()) - 1;
}

void Instance::reset(int m) {
  if (m < 1) throw std::invalid_argument("Instance: m must be >= 1");
  m_ = m;
  while (!tasks_.empty()) {
    pool_.push_back(std::move(tasks_.back()));
    tasks_.pop_back();
  }
}

int Instance::add_task_truncated(const MoldableTask& src, int max_procs) {
  MoldableTask shell;
  if (!pool_.empty()) {
    shell = std::move(pool_.back());
    pool_.pop_back();
  }
  shell.assign_truncated(src, std::min(max_procs, m_));
  tasks_.push_back(std::move(shell));
  return static_cast<int>(tasks_.size()) - 1;
}

double Instance::tmin() const {
  if (tasks_.empty()) throw std::logic_error("Instance::tmin: no tasks");
  double best = std::numeric_limits<double>::infinity();
  for (const auto& t : tasks_) best = std::min(best, t.min_time());
  return best;
}

double Instance::total_min_work() const noexcept {
  double sum = 0.0;
  for (const auto& t : tasks_) sum += t.min_work();
  return sum;
}

double Instance::total_weight() const noexcept {
  double sum = 0.0;
  for (const auto& t : tasks_) sum += t.weight();
  return sum;
}

bool Instance::is_monotone(double tol) const noexcept {
  for (const auto& t : tasks_) {
    if (!t.is_time_monotone(tol) || !t.is_work_monotone(tol)) return false;
  }
  return true;
}

// Format:
//   moldsched-instance v1
//   m <procs>
//   n <num_tasks>
//   task <weight> <min_procs> <max_procs> <p(1)> ... <p(max_procs)>   (n lines)
void Instance::save(std::ostream& out) const {
  out << "moldsched-instance v1\n";
  out << "m " << m_ << "\n";
  out << "n " << tasks_.size() << "\n";
  out.precision(17);
  for (const auto& t : tasks_) {
    out << "task " << t.weight() << ' ' << t.min_procs() << ' '
        << t.max_procs();
    for (int k = 1; k <= t.max_procs(); ++k) out << ' ' << t.time(k);
    out << '\n';
  }
}

Instance Instance::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != "moldsched-instance" || version != "v1") {
    throw std::runtime_error("Instance::load: bad header");
  }
  std::string key;
  int m = 0;
  std::size_t n = 0;
  in >> key >> m;
  if (key != "m") throw std::runtime_error("Instance::load: expected 'm'");
  in >> key >> n;
  if (key != "n") throw std::runtime_error("Instance::load: expected 'n'");
  Instance instance(m);
  for (std::size_t i = 0; i < n; ++i) {
    double weight = 0.0;
    int min_procs = 0, max_procs = 0;
    in >> key >> weight >> min_procs >> max_procs;
    if (key != "task" || !in) {
      throw std::runtime_error("Instance::load: bad task record");
    }
    std::vector<double> times(static_cast<std::size_t>(max_procs));
    for (auto& t : times) in >> t;
    if (!in) throw std::runtime_error("Instance::load: truncated task times");
    instance.add_task(MoldableTask(std::move(times), weight, min_procs));
  }
  return instance;
}

}  // namespace moldsched
