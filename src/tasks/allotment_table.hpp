/// \file allotment_table.hpp
/// Binary-searchable per-task allotment tables. The dual-approximation
/// bisection and the DEMT batch loop both keep asking the same two
/// questions for varying deadlines — "smallest allowed k with
/// time(k) <= d" (the canonical allotment) and "work-minimising allowed k
/// with time(k) <= d" — and the task's answers depend only on its fixed
/// time vector. Sorting the allotments once by execution time and
/// attaching prefix argmins turns both queries into O(log max_procs)
/// lookups, replacing the O(max_procs) scans that used to run inside every
/// dual_test call and every batch construction.
///
/// The tables reproduce MoldableTask::canonical_allotment and
/// ::min_work_allotment bit-for-bit (same comparisons, same tie-breaks), so
/// swapping them in cannot change any schedule.

#pragma once

#include <vector>

#include "tasks/instance.hpp"
#include "tasks/moldable_task.hpp"

namespace moldsched {

class AllotmentTable {
 public:
  AllotmentTable() = default;
  explicit AllotmentTable(const MoldableTask& task);

  /// Smallest allowed k with time(k) <= deadline, or 0 when none exists.
  /// Matches MoldableTask::canonical_allotment exactly.
  [[nodiscard]] int canonical(double deadline) const noexcept;

  /// Work-minimising allowed k with time(k) <= deadline (smallest such k on
  /// work ties), or 0. Matches MoldableTask::min_work_allotment exactly.
  [[nodiscard]] int min_work(double deadline) const noexcept;

  /// True when the task is strictly time- and work-monotone (no tolerance):
  /// time(k) non-increasing and work(k) non-decreasing over the allowed
  /// range. For such tasks the shelf-1 Pareto set of the dual test
  /// collapses to the single canonical allotment.
  [[nodiscard]] bool strictly_monotone() const noexcept { return monotone_; }

 private:
  /// Allowed allotments sorted by (time asc, k asc); parallel prefix
  /// argmins answer both queries after an upper_bound on the time.
  std::vector<double> sorted_times_;
  std::vector<int> prefix_min_k_;
  std::vector<int> prefix_min_work_k_;
  bool monotone_ = false;
};

/// All tasks' tables, built once per Instance traversal (one DEMT call, one
/// dual-approximation search) and shared by every stage.
class InstanceAllotments {
 public:
  explicit InstanceAllotments(const Instance& instance);

  [[nodiscard]] const AllotmentTable& table(int task) const {
    return tables_[static_cast<std::size_t>(task)];
  }
  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(tables_.size());
  }

 private:
  std::vector<AllotmentTable> tables_;
};

}  // namespace moldsched
