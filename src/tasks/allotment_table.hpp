/// \file allotment_table.hpp
/// Binary-searchable per-task allotment tables. The dual-approximation
/// bisection and the DEMT batch loop both keep asking the same two
/// questions for varying deadlines — "smallest allowed k with
/// time(k) <= d" (the canonical allotment) and "work-minimising allowed k
/// with time(k) <= d" — and the task's answers depend only on its fixed
/// time vector. Sorting the allotments once by execution time and
/// attaching prefix argmins turns both queries into O(log max_procs)
/// lookups, replacing the O(max_procs) scans that used to run inside every
/// dual_test call and every batch construction.
///
/// The tables reproduce MoldableTask::canonical_allotment and
/// ::min_work_allotment bit-for-bit (same comparisons, same tie-breaks), so
/// swapping them in cannot change any schedule.
///
/// Two representations live here:
///  - AllotmentTable: the original one-vector-per-task form. Kept as the
///    scalar reference the differential suite (test_demt_kernel) checks the
///    flat form against; not used on the serving path anymore.
///  - InstanceAllotments: all tasks' rows packed into contiguous parallel
///    arrays (structure-of-arrays) with a pooled build() so a warm
///    DemtWorkspace rebuilds the tables for a new Instance without touching
///    the allocator. table(t) hands out a lightweight View over the rows.

#pragma once

#include <cstdint>
#include <vector>

#include "tasks/instance.hpp"
#include "tasks/moldable_task.hpp"

namespace moldsched {

/// Scalar reference form: one task, its own vectors. Construction and both
/// queries define the semantics the SoA form must reproduce bit-for-bit.
class AllotmentTable {
 public:
  AllotmentTable() = default;
  explicit AllotmentTable(const MoldableTask& task);

  /// Smallest allowed k with time(k) <= deadline, or 0 when none exists.
  /// Matches MoldableTask::canonical_allotment exactly.
  [[nodiscard]] int canonical(double deadline) const noexcept;

  /// Work-minimising allowed k with time(k) <= deadline (smallest such k on
  /// work ties), or 0. Matches MoldableTask::min_work_allotment exactly.
  [[nodiscard]] int min_work(double deadline) const noexcept;

  /// True when the task is strictly time- and work-monotone (no tolerance):
  /// time(k) non-increasing and work(k) non-decreasing over the allowed
  /// range. For such tasks the shelf-1 Pareto set of the dual test
  /// collapses to the single canonical allotment.
  [[nodiscard]] bool strictly_monotone() const noexcept { return monotone_; }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(sorted_times_.size());
  }
  /// Row access for property tests: the i-th (time asc, k asc) entry.
  [[nodiscard]] double time_at(int i) const noexcept {
    return sorted_times_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int min_k_at(int i) const noexcept {
    return prefix_min_k_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int min_work_k_at(int i) const noexcept {
    return prefix_min_work_k_[static_cast<std::size_t>(i)];
  }

 private:
  /// Allowed allotments sorted by (time asc, k asc); parallel prefix
  /// argmins answer both queries after an upper_bound on the time.
  std::vector<double> sorted_times_;
  std::vector<int> prefix_min_k_;
  std::vector<int> prefix_min_work_k_;
  bool monotone_ = false;
};

/// All tasks' tables, built once per Instance traversal (one DEMT call, one
/// dual-approximation search) and shared by every stage. Rows for all tasks
/// live in four flat parallel arrays indexed through begin_[task]; build()
/// reuses the buffers, so a pooled InstanceAllotments allocates only until
/// its capacity high-water mark is reached.
class InstanceAllotments {
 public:
  /// Non-owning window onto one task's rows. canonical()/min_work() are the
  /// same upper_bound + prefix-argmin lookups as AllotmentTable.
  class View {
   public:
    View(const double* times, const int* min_k, const int* min_work_k,
         int count, bool monotone) noexcept
        : times_(times),
          min_k_(min_k),
          min_work_k_(min_work_k),
          count_(count),
          monotone_(monotone) {}

    [[nodiscard]] int canonical(double deadline) const noexcept;
    [[nodiscard]] int min_work(double deadline) const noexcept;
    [[nodiscard]] bool strictly_monotone() const noexcept { return monotone_; }

    [[nodiscard]] int size() const noexcept { return count_; }
    [[nodiscard]] double time_at(int i) const noexcept { return times_[i]; }
    [[nodiscard]] int min_k_at(int i) const noexcept { return min_k_[i]; }
    [[nodiscard]] int min_work_k_at(int i) const noexcept {
      return min_work_k_[i];
    }

   private:
    const double* times_;
    const int* min_k_;
    const int* min_work_k_;
    int count_;
    bool monotone_;
  };

  InstanceAllotments() = default;
  explicit InstanceAllotments(const Instance& instance) { build(instance); }

  /// Rebuild all rows for `instance`, reusing the flat buffers. Allocation
  /// free once the buffers have grown to the workload's high-water mark.
  void build(const Instance& instance);

  [[nodiscard]] View table(int task) const noexcept {
    const auto t = static_cast<std::size_t>(task);
    const int b = begin_[t];
    return View(times_.data() + b, min_k_.data() + b, min_work_k_.data() + b,
                begin_[t + 1] - b, monotone_[t] != 0);
  }
  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(monotone_.size());
  }

 private:
  std::vector<int> begin_;         ///< row offsets, size num_tasks + 1
  std::vector<double> times_;      ///< all tasks' sorted times, concatenated
  std::vector<int> min_k_;         ///< prefix argmin-k per row
  std::vector<int> min_work_k_;    ///< prefix min-work-k per row
  std::vector<std::uint8_t> monotone_;
  std::vector<int> order_;         ///< build scratch: allotment sort keys
};

}  // namespace moldsched
