/// \file time_grid.hpp
/// The geometric time grid shared by the bi-criteria algorithm (batch
/// boundaries, §3.2) and the minsum LP lower bound (interval boundaries,
/// §3.3):
///
///   K = floor(log2(C*max / tmin)),   t_j = C*max / 2^(K-j)
///
/// so t_0 is the smallest batch in which at least one task fits
/// (tmin <= t_0 < 2*tmin) and t_{K+1} = 2*C*max. The grid extends past K
/// (doubling forever) because the knapsack selection may leave tasks for
/// extra batches.

#pragma once

namespace moldsched {

class TimeGrid {
 public:
  /// Throws std::invalid_argument unless 0 < tmin and 0 < cmax_estimate.
  TimeGrid(double cmax_estimate, double tmin);

  /// Number of paper batches minus one: batches run j = 0..K (and beyond).
  [[nodiscard]] int K() const noexcept { return k_; }

  /// Boundary t_j = C*max * 2^(j-K), defined for every j >= 0.
  [[nodiscard]] double t(int j) const;

  /// Batch j occupies [t(j), t(j+1)), so its length equals t(j).
  [[nodiscard]] double batch_start(int j) const { return t(j); }
  [[nodiscard]] double batch_end(int j) const { return t(j + 1); }
  [[nodiscard]] double batch_length(int j) const { return t(j); }

  [[nodiscard]] double cmax_estimate() const noexcept { return cmax_; }
  [[nodiscard]] double tmin() const noexcept { return tmin_; }

 private:
  double cmax_;
  double tmin_;
  int k_;
};

}  // namespace moldsched
