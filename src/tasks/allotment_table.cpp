#include "tasks/allotment_table.hpp"

#include <algorithm>

namespace moldsched {

AllotmentTable::AllotmentTable(const MoldableTask& task) {
  const int lo = task.min_procs();
  const int hi = task.max_procs();
  const auto count = static_cast<std::size_t>(hi - lo + 1);

  std::vector<int> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = lo + static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ta = task.time(a);
    const double tb = task.time(b);
    if (ta != tb) return ta < tb;
    return a < b;
  });

  sorted_times_.resize(count);
  prefix_min_k_.resize(count);
  prefix_min_work_k_.resize(count);
  int best_k = order[0];
  int best_work_k = order[0];
  double best_work = best_work_k * task.time(best_work_k);
  for (std::size_t i = 0; i < count; ++i) {
    const int k = order[i];
    sorted_times_[i] = task.time(k);
    best_k = std::min(best_k, k);
    const double w = k * task.time(k);
    // Same tie-break as MoldableTask::min_work_allotment's ascending-k scan
    // with a strict `<`: equal work keeps the smaller allotment.
    if (w < best_work || (w == best_work && k < best_work_k)) {
      best_work = w;
      best_work_k = k;
    }
    prefix_min_k_[i] = best_k;
    prefix_min_work_k_[i] = best_work_k;
  }

  monotone_ = task.is_time_monotone(0.0) && task.is_work_monotone(0.0);
}

int AllotmentTable::canonical(double deadline) const noexcept {
  const auto it =
      std::upper_bound(sorted_times_.begin(), sorted_times_.end(), deadline);
  if (it == sorted_times_.begin()) return 0;
  return prefix_min_k_[static_cast<std::size_t>(it - sorted_times_.begin()) -
                       1];
}

int AllotmentTable::min_work(double deadline) const noexcept {
  const auto it =
      std::upper_bound(sorted_times_.begin(), sorted_times_.end(), deadline);
  if (it == sorted_times_.begin()) return 0;
  return prefix_min_work_k_
      [static_cast<std::size_t>(it - sorted_times_.begin()) - 1];
}

InstanceAllotments::InstanceAllotments(const Instance& instance) {
  tables_.reserve(static_cast<std::size_t>(instance.num_tasks()));
  for (const auto& task : instance.tasks()) {
    tables_.emplace_back(task);
  }
}

}  // namespace moldsched
