#include "tasks/allotment_table.hpp"

#include <algorithm>

namespace moldsched {

AllotmentTable::AllotmentTable(const MoldableTask& task) {
  const int lo = task.min_procs();
  const int hi = task.max_procs();
  const auto count = static_cast<std::size_t>(hi - lo + 1);

  std::vector<int> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = lo + static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ta = task.time(a);
    const double tb = task.time(b);
    if (ta != tb) return ta < tb;
    return a < b;
  });

  sorted_times_.resize(count);
  prefix_min_k_.resize(count);
  prefix_min_work_k_.resize(count);
  int best_k = order[0];
  int best_work_k = order[0];
  double best_work = best_work_k * task.time(best_work_k);
  for (std::size_t i = 0; i < count; ++i) {
    const int k = order[i];
    sorted_times_[i] = task.time(k);
    best_k = std::min(best_k, k);
    const double w = k * task.time(k);
    // Same tie-break as MoldableTask::min_work_allotment's ascending-k scan
    // with a strict `<`: equal work keeps the smaller allotment.
    if (w < best_work || (w == best_work && k < best_work_k)) {
      best_work = w;
      best_work_k = k;
    }
    prefix_min_k_[i] = best_k;
    prefix_min_work_k_[i] = best_work_k;
  }

  monotone_ = task.is_time_monotone(0.0) && task.is_work_monotone(0.0);
}

int AllotmentTable::canonical(double deadline) const noexcept {
  const auto it =
      std::upper_bound(sorted_times_.begin(), sorted_times_.end(), deadline);
  if (it == sorted_times_.begin()) return 0;
  return prefix_min_k_[static_cast<std::size_t>(it - sorted_times_.begin()) -
                       1];
}

int AllotmentTable::min_work(double deadline) const noexcept {
  const auto it =
      std::upper_bound(sorted_times_.begin(), sorted_times_.end(), deadline);
  if (it == sorted_times_.begin()) return 0;
  return prefix_min_work_k_
      [static_cast<std::size_t>(it - sorted_times_.begin()) - 1];
}

int InstanceAllotments::View::canonical(double deadline) const noexcept {
  const double* end = times_ + count_;
  const double* it = std::upper_bound(times_, end, deadline);
  if (it == times_) return 0;
  return min_k_[(it - times_) - 1];
}

int InstanceAllotments::View::min_work(double deadline) const noexcept {
  const double* end = times_ + count_;
  const double* it = std::upper_bound(times_, end, deadline);
  if (it == times_) return 0;
  return min_work_k_[(it - times_) - 1];
}

void InstanceAllotments::build(const Instance& instance) {
  const int n = instance.num_tasks();
  begin_.resize(static_cast<std::size_t>(n) + 1);
  monotone_.resize(static_cast<std::size_t>(n));

  int total = 0;
  begin_[0] = 0;
  for (int t = 0; t < n; ++t) {
    const MoldableTask& task = instance.task(t);
    total += task.max_procs() - task.min_procs() + 1;
    begin_[static_cast<std::size_t>(t) + 1] = total;
  }
  times_.resize(static_cast<std::size_t>(total));
  min_k_.resize(static_cast<std::size_t>(total));
  min_work_k_.resize(static_cast<std::size_t>(total));

  for (int t = 0; t < n; ++t) {
    const MoldableTask& task = instance.task(t);
    const int lo = task.min_procs();
    const int base = begin_[static_cast<std::size_t>(t)];
    const int count = begin_[static_cast<std::size_t>(t) + 1] - base;

    // Same sort and prefix scans as AllotmentTable, writing into the shared
    // pools; order_ is reused scratch.
    order_.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) order_[static_cast<std::size_t>(i)] = lo + i;
    std::sort(order_.begin(), order_.end(), [&](int a, int b) {
      const double ta = task.time(a);
      const double tb = task.time(b);
      if (ta != tb) return ta < tb;
      return a < b;
    });

    double* times = times_.data() + base;
    int* min_k = min_k_.data() + base;
    int* min_work_k = min_work_k_.data() + base;
    int best_k = order_[0];
    int best_work_k = order_[0];
    double best_work = best_work_k * task.time(best_work_k);
    for (int i = 0; i < count; ++i) {
      const int k = order_[static_cast<std::size_t>(i)];
      times[i] = task.time(k);
      best_k = std::min(best_k, k);
      const double w = k * task.time(k);
      if (w < best_work || (w == best_work && k < best_work_k)) {
        best_work = w;
        best_work_k = k;
      }
      min_k[i] = best_k;
      min_work_k[i] = best_work_k;
    }

    monotone_[static_cast<std::size_t>(t)] =
        (task.is_time_monotone(0.0) && task.is_work_monotone(0.0)) ? 1 : 0;
  }
}

}  // namespace moldsched
