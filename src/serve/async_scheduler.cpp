#include "serve/async_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/mpmc_queue.hpp"
#include "util/thread_pool.hpp"

namespace moldsched {

namespace {

/// Strand states. A shard's drain task is posted to the shared pool at
/// most once at a time: producers move Idle -> Scheduled (and post), the
/// running drain moves Scheduled -> Running, producers racing a running
/// drain move Running -> Rescheduled, and the drain either retires
/// (Running -> Idle) or loops when it lost that race.
enum StrandState : int { kIdle = 0, kScheduled, kRunning, kRescheduled };

[[nodiscard]] bool is_terminal(TicketStatus status) noexcept {
  return status == TicketStatus::Done || status == TicketStatus::Failed ||
         status == TicketStatus::Cancelled ||
         status == TicketStatus::Rejected || status == TicketStatus::Invalid;
}

[[nodiscard]] std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

AsyncOptions validated(AsyncOptions options) {
  if (options.shards <= 0) {
    throw std::invalid_argument("AsyncScheduler: shards <= 0");
  }
  if (options.max_batch <= 0) {
    throw std::invalid_argument("AsyncScheduler: max_batch <= 0");
  }
  if (options.queue_capacity <= 0) {
    throw std::invalid_argument("AsyncScheduler: queue_capacity <= 0");
  }
  if (options.max_streams <= 0) {
    throw std::invalid_argument("AsyncScheduler: max_streams <= 0");
  }
  if (options.retry.max_attempts < 1) {
    throw std::invalid_argument("AsyncScheduler: retry.max_attempts < 1");
  }
  if (options.retry.base_backoff_ms < 0.0) {
    throw std::invalid_argument("AsyncScheduler: retry.base_backoff_ms < 0");
  }
  return options;
}

/// Policy label for error messages: the configured policy object's name,
/// or the built-in the deprecated enum pair resolves to.
[[nodiscard]] const char* policy_name(const SchedulingPolicy* policy,
                                      EngineAlgorithm algorithm) noexcept {
  if (policy != nullptr) return policy->name();
  return algorithm == EngineAlgorithm::Demt ? "demt" : "flatlist";
}

/// Copy (and validate) the admission policy's lane table; no policy means
/// FifoAdmission — one unbounded FIFO lane, the pre-policy behaviour.
std::vector<LaneSpec> validated_lanes(const AdmissionPolicy* admission) {
  std::vector<LaneSpec> lanes =
      admission != nullptr ? admission->lanes() : FifoAdmission{}.lanes();
  if (lanes.empty()) {
    throw std::invalid_argument("AsyncScheduler: admission policy has no lanes");
  }
  for (const auto& lane : lanes) {
    if (lane.weight < 1) {
      throw std::invalid_argument("AsyncScheduler: lane weight < 1");
    }
  }
  return lanes;
}

/// What a slot carries: a one-shot engine request, one stream feed, or a
/// stream close (the final feed).
enum class SlotKind { OneShot, StreamFeed, StreamClose };

/// High bit of a stream entry's ticket word while its close is in flight.
/// Folding the "closing" state into the ticket makes claiming a close one
/// CAS — verify-ownership-and-claim atomically — so a stale close racing
/// a close + reopen can never disturb the entry's new owner. Ticket ids
/// (scheduler serial << 40, plus a counter) never set this bit themselves.
constexpr std::uint64_t kStreamClosing = 1ULL << 63;

}  // namespace

const char* to_string(TicketStatus status) noexcept {
  switch (status) {
    case TicketStatus::Invalid: return "invalid";
    case TicketStatus::Rejected: return "rejected";
    case TicketStatus::Pending: return "pending";
    case TicketStatus::Running: return "running";
    case TicketStatus::Done: return "done";
    case TicketStatus::Failed: return "failed";
    case TicketStatus::Cancelled: return "cancelled";
    case TicketStatus::TimedOut: return "timed_out";
  }
  return "?";
}

struct AsyncScheduler::Impl {
  /// One pre-allocated request slot; the fixed slot table is the admission
  /// bound. `ticket` + `status` are the only cross-thread handshake; the
  /// payload fields are published by the MPMC ring's release/acquire pair.
  struct Slot {
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<TicketStatus> status{TicketStatus::Invalid};
    std::int64_t submit_ns = 0;
    std::int64_t done_ns = 0;
    SlotKind kind = SlotKind::OneShot;
    std::uint32_t lane = 0;  ///< admission lane; owned with the slot
    /// Attempt count: 1 at commit, +1 per RetryPolicy re-queue. Atomic so
    /// attempts() can read it while the strand retries.
    std::atomic<std::uint32_t> attempts{0};
    /// Cancellation request, keyed by ticket id: cancel(t) stores t.id and
    /// the strand drops the slot at pop time when this matches the slot's
    /// live ticket. Matching by id (not a bool) makes a stale cancel on a
    /// recycled slot harmless — the old id can never match the new owner.
    std::atomic<std::uint64_t> cancel_ticket{0};
    /// Where the slot was routed; wait() force-flushes it. Atomic because
    /// a waiter on a recycled ticket may read it while the slot's new
    /// owner commits (the value read is then irrelevant, but the access
    /// must not be a data race).
    std::atomic<std::uint32_t> shard{0};
    EngineRequest request;    ///< OneShot payload
    EngineResult result;      ///< OneShot result
    // Stream payload: the entry, the stream ticket id it was submitted
    // under, the borrowed arrivals, and the feed's watermark.
    std::uint32_t stream_index = 0;
    std::uint64_t stream_ticket = 0;
    const StreamArrival* arrivals = nullptr;
    std::size_t arrival_count = 0;
    double watermark = 0.0;
    StreamDelivery delivery;  ///< stream result (pooled per slot)
    std::string error;
  };

  /// One open streaming session. The strand-only fields (engine_stream,
  /// engine_open) are touched exclusively by the pinned shard's strand;
  /// `ticket` is the whole cross-thread handshake: 0 = free, the stream's
  /// ticket id = open, id | kStreamClosing = close in flight. `shard` is
  /// atomic because a stale reader (ticket already recycled) may race the
  /// new owner's open_stream write.
  struct StreamEntry {
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::uint32_t> shard{0};
    int m = 1;
    EngineAlgorithm offline_algorithm = EngineAlgorithm::FlatList;
    DemtOptions demt;
    const SchedulingPolicy* policy = nullptr;   ///< borrowed while open
    bool speculate = false;  ///< StreamOptions::speculate, applied at open
    int speculate_depth = 0;  ///< StreamOptions::speculate_depth
    std::uint32_t lane = 0;  ///< every feed/close of the stream rides it
    std::vector<NodeReservation> reservations;  ///< copied at open
    EngineStreamId engine_stream{};
    bool engine_open = false;
    /// Migration hand-off: a failed shard's strand checkpoints the engine
    /// session into `checkpoint` and sets `has_checkpoint` before the
    /// release store that re-pins `shard`; the new shard's strand restores
    /// lazily on the stream's next feed. Ordinary strand-only fields — the
    /// re-pin store / routing load (acquire) publishes them.
    StreamCheckpoint checkpoint;
    bool has_checkpoint = false;
  };

  /// One engine shard: coalescing queue + engine (with its pooled
  /// per-strand workspaces) + reusable batch-assembly buffers. The shard
  /// itself is the PostedTask so dispatching it allocates nothing.
  struct Shard : ThreadPool::PostedTask {
    Shard(Impl& owner, const AsyncOptions& options, std::size_t num_lanes)
        : impl(&owner),
          engine(EngineOptions{1, options.keep_schedules, options.cache}) {
      // One pre-allocated ring per admission lane: FIFO within a lane,
      // weighted-fair pop across lanes. Each ring can hold every slot
      // (admission bounds the total), so a push can only fail transiently.
      pending.reserve(num_lanes);
      for (std::size_t l = 0; l < num_lanes; ++l) {
        pending.push_back(std::make_unique<MpmcQueue<std::uint32_t>>(
            static_cast<std::size_t>(options.queue_capacity)));
      }
    }

    void run() noexcept override {
      // Fresh heartbeat before the watchdog can see kRunning: a stale
      // timestamp from the previous run must not read as a stall.
      heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
      strand_state.store(kRunning, std::memory_order_relaxed);
      for (;;) {
        impl->drain_shard(*this);
        int expected = kRunning;
        if (strand_state.compare_exchange_strong(expected, kIdle)) return;
        // Lost the race with a producer (Rescheduled): drain again instead
        // of a post round-trip.
        strand_state.store(kRunning, std::memory_order_relaxed);
      }
    }

    Impl* impl;
    std::uint32_t index = 0;  ///< position in the shard table
    /// Submitted slot indices, one ring per lane.
    std::vector<std::unique_ptr<MpmcQueue<std::uint32_t>>> pending;
    std::atomic<std::int64_t> pending_count{0};  ///< across all lanes
    std::atomic<std::int64_t> first_pending_ns{0};
    std::atomic<int> strand_state{kIdle};
    /// Failed shards serve nothing: their strand only forwards queued work
    /// to survivors (drain_shard's first check). Sticky once set.
    std::atomic<bool> failed{false};
    /// Liveness signal for the watchdog, refreshed by the strand between
    /// batches; stalls show as a stale value while strand_state is running.
    std::atomic<std::int64_t> heartbeat_ns{0};
    /// Non-empty drain iterations served — the fault oracle's batch index.
    /// Strand-only.
    std::uint64_t batch_counter = 0;
    SchedulerEngine engine;
    std::vector<std::uint32_t> batch_slots;
    std::vector<EngineRequest> batch_requests;
    std::vector<EngineResult> batch_results;
    /// Engine speculation counters already folded into the Impl atomics
    /// (the engine's stats are cumulative and strand-only; these track the
    /// harvested prefix). Strand-only.
    std::uint64_t spec_seen_decided = 0;
    std::uint64_t spec_seen_committed = 0;
    std::uint64_t spec_seen_rolled_back = 0;
  };

  explicit Impl(const AsyncOptions& validated_options)
      : options(validated_options),
        lanes(validated_lanes(options.admission)),
        injector(options.faults),  // validates the plan (throws)
        slots(static_cast<std::size_t>(options.queue_capacity)),
        free_slots(static_cast<std::size_t>(options.queue_capacity)),
        streams(static_cast<std::size_t>(options.max_streams)),
        free_streams(static_cast<std::size_t>(options.max_streams)) {
    // Weighted-fair pop quotas: per round-robin round, lane l pops up to
    // floor(max_batch * w_l / W) slots (at least 1 so a starving weight
    // cannot round to zero service).
    int total_weight = 0;
    for (const auto& lane : lanes) total_weight += lane.weight;
    lane_quota.resize(lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      lane_quota[l] = std::max(
          1, options.max_batch * lanes[l].weight / total_weight);
    }
    lane_in_flight =
        std::make_unique<std::atomic<std::int64_t>[]>(lanes.size());
    lane_submitted =
        std::make_unique<std::atomic<std::uint64_t>[]>(lanes.size());
    lane_rejected =
        std::make_unique<std::atomic<std::uint64_t>[]>(lanes.size());
    lane_completed =
        std::make_unique<std::atomic<std::uint64_t>[]>(lanes.size());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      lane_in_flight[l].store(0, std::memory_order_relaxed);
      lane_submitted[l].store(0, std::memory_order_relaxed);
      lane_rejected[l].store(0, std::memory_order_relaxed);
      lane_completed[l].store(0, std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(options.max_streams); ++i) {
      free_streams.try_push(i);  // ring capacity >= max_streams
    }
    // Per-scheduler ticket-id space (process-wide serial in the high
    // bits): a ticket handed to the wrong AsyncScheduler can never match
    // a slot's ticket id, so it polls Invalid as the header promises.
    static std::atomic<std::uint64_t> scheduler_serial{0};
    next_ticket.store(
        (scheduler_serial.fetch_add(1, std::memory_order_relaxed) << 40) + 1,
        std::memory_order_relaxed);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(options.queue_capacity); ++i) {
      free_slots.try_push(i);  // ring capacity >= queue_capacity
    }
    shards.reserve(static_cast<std::size_t>(options.shards));
    for (int s = 0; s < options.shards; ++s) {
      shards.push_back(std::make_unique<Shard>(*this, options, lanes.size()));
      shards.back()->index = static_cast<std::uint32_t>(s);
    }
    // Retried slots park here between attempts; pre-sized so even the
    // failure path allocates only once the table-bound is exceeded (never).
    retry_queue.reserve(static_cast<std::size_t>(options.queue_capacity));
    retry_scratch.reserve(static_cast<std::size_t>(options.queue_capacity));
    // One background thread covers every periodic duty: deadline flushes,
    // the stall watchdog, and retry release after backoff.
    if (options.flush_after_ms > 0.0 || options.watchdog_ms > 0.0 ||
        options.retry.enabled()) {
      maintenance = std::thread([this] { maintenance_loop(); });
    }
  }

  /// Ensure the shard's drain task will observe its queue: schedule it on
  /// the pool when idle, or flag a running drain to loop once more. True
  /// when this call made a difference (used only for the flush counters).
  bool activate(Shard& shard) {
    for (;;) {
      int state = shard.strand_state.load(std::memory_order_acquire);
      if (state == kIdle) {
        if (shard.strand_state.compare_exchange_weak(state, kScheduled)) {
          shared_thread_pool().post(shard);
          return true;
        }
      } else if (state == kRunning) {
        if (shard.strand_state.compare_exchange_weak(state, kRescheduled)) {
          return true;
        }
      } else {
        return false;  // already Scheduled/Rescheduled
      }
    }
  }

  /// Completion tail shared by every execution path: terminal stamps were
  /// stored by the caller; update the counters and wake waiters.
  /// Status stores before this / waiters load below form a Dekker pair
  /// with wait()'s waiters increment / status read: both sides fence with
  /// seq_cst so at least one side always sees the other's store —
  /// otherwise a completion could skip notify while the waiter sleeps on
  /// the stale status, a lost wakeup with no timeout to save it.
  void publish_done(std::size_t completed, std::size_t failed,
                    std::size_t cancelled = 0) {
    stat_completed.fetch_add(completed, std::memory_order_relaxed);
    stat_failed.fetch_add(failed, std::memory_order_relaxed);
    live_count.fetch_sub(
        static_cast<std::int64_t>(completed + failed + cancelled),
        std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters.load(std::memory_order_relaxed) > 0) {
      const std::lock_guard lock(wait_mutex);
      wait_cv.notify_all();
    }
  }

  /// Reserve one shard-failure token, refusing when taking it would leave
  /// no alive shard — routing and failover may always assume a survivor
  /// exists. True exactly once per shard.
  bool try_declare_failed(Shard& shard) {
    int count = failed_shard_count.load(std::memory_order_relaxed);
    do {
      if (count + 1 >= static_cast<int>(shards.size())) return false;
    } while (!failed_shard_count.compare_exchange_weak(
        count, count + 1, std::memory_order_acq_rel));
    if (shard.failed.exchange(true, std::memory_order_acq_rel)) {
      failed_shard_count.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    stat_shards_failed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// First alive shard scanning from `hint` (wrap-around). Null only if
  /// every shard is failed, which try_declare_failed makes impossible.
  [[nodiscard]] Shard* pick_alive(std::size_t hint) noexcept {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      Shard& cand = *shards[(hint + i) % shards.size()];
      if (!cand.failed.load(std::memory_order_acquire)) return &cand;
    }
    return nullptr;
  }

  /// Round-robin one-shot routing that skips failed shards (free when
  /// nothing has failed — the common case is one relaxed load).
  [[nodiscard]] std::uint32_t route_one_shot(std::uint64_t id) noexcept {
    const auto home = static_cast<std::uint32_t>(id % shards.size());
    if (failed_shard_count.load(std::memory_order_relaxed) == 0) return home;
    Shard* alive = pick_alive(home);
    return alive != nullptr ? alive->index : home;
  }

  /// Hand an already-claimed slot to `target`'s coalescing queue (the
  /// requeue half of failover and retry release). Caller activates.
  void push_to_shard(std::uint32_t slot_index, Shard& target) {
    Slot& slot = slots[slot_index];
    slot.shard.store(target.index, std::memory_order_relaxed);
    std::int64_t no_stamp = 0;
    target.first_pending_ns.compare_exchange_strong(
        no_stamp, now_ns(), std::memory_order_relaxed);
    target.pending_count.fetch_add(1, std::memory_order_relaxed);
    while (!target.pending[slot.lane]->try_push(slot_index)) {
      std::this_thread::yield();  // transient only; ring holds every slot
    }
  }

  /// Complete a stream feed/close that cannot reach a live pinned shard.
  /// `release_entry` only from the failed shard's own strand: a close that
  /// still owns its entry then frees the table slot (the watchdog thread
  /// must never touch entries — they belong to strands).
  void fail_stream_slot(std::uint32_t slot_index, bool release_entry) {
    Slot& slot = slots[slot_index];
    if (release_entry && slot.kind == SlotKind::StreamClose) {
      StreamEntry& entry = streams[slot.stream_index];
      std::uint64_t closing = slot.stream_ticket | kStreamClosing;
      if (entry.ticket.compare_exchange_strong(closing, 0,
                                               std::memory_order_acq_rel)) {
        entry.has_checkpoint = false;
        open_stream_count.fetch_sub(1, std::memory_order_relaxed);
        stat_streams_closed.fetch_add(1, std::memory_order_relaxed);
        while (!free_streams.try_push(slot.stream_index)) {
          std::this_thread::yield();
        }
      }
    }
    slot.delivery.clear();
    slot.error.assign("AsyncScheduler: stream request lost with failed shard");
    slot.done_ns = now_ns();
    lane_completed[slot.lane].fetch_add(1, std::memory_order_relaxed);
    slot.status.store(TicketStatus::Failed, std::memory_order_release);
    publish_done(0, 1);
  }

  /// Complete a popped one-shot as Cancelled (caller's cancel() or a lane
  /// max_queue_ms drop). The caller batches the live-count publish.
  void complete_cancelled(Slot& slot, bool deadline_drop) {
    slot.result.cmax = 0.0;
    slot.result.weighted_completion_sum = 0.0;
    slot.result.has_schedule = false;
    slot.result.diag = DemtDiagnostics{};
    slot.error.assign(deadline_drop
                          ? "AsyncScheduler: dropped after lane max_queue_ms"
                          : "AsyncScheduler: cancelled by caller");
    slot.done_ns = now_ns();
    lane_completed[slot.lane].fetch_add(1, std::memory_order_relaxed);
    (deadline_drop ? stat_dropped : stat_cancelled)
        .fetch_add(1, std::memory_order_relaxed);
    slot.status.store(TicketStatus::Cancelled, std::memory_order_release);
  }

  /// Park a failed slot for its next attempt: ready after an exponential
  /// backoff (`attempt` is the upcoming attempt number, >= 2).
  void schedule_retry(std::uint32_t slot_index, std::int64_t now,
                      std::uint32_t attempt) {
    const auto base_ns = static_cast<std::int64_t>(
        std::llround(std::max(0.0, options.retry.base_backoff_ms) * 1e6));
    const int shift = std::min<int>(attempt >= 2 ? attempt - 2 : 0, 30);
    const std::lock_guard lock(retry_mutex);
    retry_queue.push_back(RetryItem{slot_index, now + (base_ns << shift)});
  }

  /// Maintenance duty: move every backoff-expired retry slot onto an
  /// alive shard's queue.
  void release_retries(std::int64_t now) {
    retry_scratch.clear();
    {
      const std::lock_guard lock(retry_mutex);
      std::size_t keep = 0;
      for (const RetryItem& item : retry_queue) {
        if (item.ready_ns <= now) {
          retry_scratch.push_back(item.slot);
        } else {
          retry_queue[keep++] = item;
        }
      }
      retry_queue.resize(keep);
    }
    for (const std::uint32_t slot_index : retry_scratch) {
      Shard* target = pick_alive(
          failover_rr.fetch_add(1, std::memory_order_relaxed));
      if (target == nullptr) target = shards.front().get();
      push_to_shard(slot_index, *target);
      activate(*target);
    }
  }

  /// Full failover, on the failed shard's own strand (the only owner of
  /// its engine sessions): checkpoint + re-pin every stream still pinned
  /// here, then forward `popped` (claimed but unserved) and everything in
  /// the rings to survivors. Re-entrant — a failed shard's strand stays a
  /// forwarder for slots routed to it by stale entry.shard reads.
  void strand_failover(Shard& shard, const std::uint32_t* popped,
                       std::size_t popped_count) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      StreamEntry& entry = streams[i];
      if (entry.shard.load(std::memory_order_relaxed) != shard.index) continue;
      if (entry.ticket.load(std::memory_order_acquire) == 0) continue;
      Shard* target = pick_alive(shard.index + 1 + i);
      if (target == nullptr || target == &shard) continue;
      if (entry.engine_open) {
        shard.engine.checkpoint_stream(entry.engine_stream, entry.checkpoint);
        shard.engine.abandon_stream(entry.engine_stream);
        entry.engine_open = false;
        entry.has_checkpoint = true;
        stat_streams_migrated.fetch_add(1, std::memory_order_relaxed);
      }
      // Release store: publishes the checkpoint to whoever routes on the
      // new pin (submit_stream's acquire load, then the ring push/pop).
      entry.shard.store(target->index, std::memory_order_release);
    }
    const auto forward = [&](std::uint32_t slot_index) {
      Slot& slot = slots[slot_index];
      if (slot.kind == SlotKind::OneShot) {
        Shard* target = pick_alive(
            failover_rr.fetch_add(1, std::memory_order_relaxed));
        if (target == nullptr) target = &shard;  // unreachable
        push_to_shard(slot_index, *target);
        activate(*target);
        stat_failed_over.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const std::uint32_t pin =
          streams[slot.stream_index].shard.load(std::memory_order_relaxed);
      if (pin != shard.index &&
          !shards[pin]->failed.load(std::memory_order_acquire)) {
        push_to_shard(slot_index, *shards[pin]);
        activate(*shards[pin]);
      } else {
        // Stale slot (stream gone) or multi-failure corner: fail it rather
        // than bounce between dead shards.
        fail_stream_slot(slot_index, /*release_entry=*/true);
      }
    };
    for (std::size_t i = 0; i < popped_count; ++i) forward(popped[i]);
    std::uint32_t index = 0;
    for (auto& ring : shard.pending) {
      while (ring->try_pop(index)) {
        shard.pending_count.fetch_sub(1, std::memory_order_relaxed);
        forward(index);
      }
    }
    shard.first_pending_ns.store(0, std::memory_order_relaxed);
  }

  /// Watchdog-side requeue for a shard whose strand is stuck: reroute the
  /// queued one-shots now; stream work is failed (its engine session is
  /// strand-owned, so only the stuck strand can migrate it — that happens
  /// in strand_failover when it resumes).
  void watchdog_requeue(Shard& shard) {
    std::uint32_t index = 0;
    for (auto& ring : shard.pending) {
      while (ring->try_pop(index)) {
        shard.pending_count.fetch_sub(1, std::memory_order_relaxed);
        Slot& slot = slots[index];
        if (slot.kind == SlotKind::OneShot) {
          Shard* target = pick_alive(
              failover_rr.fetch_add(1, std::memory_order_relaxed));
          if (target == nullptr) target = &shard;  // unreachable
          push_to_shard(index, *target);
          activate(*target);
          stat_failed_over.fetch_add(1, std::memory_order_relaxed);
        } else {
          fail_stream_slot(index, /*release_entry=*/false);
        }
      }
    }
  }

  /// Serve batch_slots[first, last) — all OneShot — as one engine batch.
  /// `inject_throw` fails the whole segment as if the engine threw (the
  /// FaultKind::EngineThrow path). Failed slots with retry budget left go
  /// back to Pending through the retry queue instead of finalising.
  void run_one_shot_segment(Shard& shard, std::size_t first,
                            std::size_t last, bool inject_throw) {
    const std::size_t count = last - first;
    if (shard.batch_requests.size() < count) {
      shard.batch_requests.resize(count);
      shard.batch_results.resize(count);
    }
    for (std::size_t i = 0; i < count; ++i) {
      Slot& slot = slots[shard.batch_slots[first + i]];
      shard.batch_requests[i] = slot.request;
      slot.status.store(TicketStatus::Running, std::memory_order_relaxed);
    }
    bool failed = false;
    if (inject_throw) {
      failed = true;
      for (std::size_t i = 0; i < count; ++i) {
        slots[shard.batch_slots[first + i]].error.assign(
            "AsyncScheduler: injected fault: engine throw");
      }
    } else {
      try {
        shard.engine.schedule_batch_into(shard.batch_requests.data(), count,
                                         shard.batch_results.data());
      } catch (const std::exception& e) {
        failed = true;
        for (std::size_t i = 0; i < count; ++i) {
          slots[shard.batch_slots[first + i]].error.assign(e.what());
        }
      } catch (...) {
        failed = true;
        for (std::size_t i = 0; i < count; ++i) {
          slots[shard.batch_slots[first + i]].error.assign(
              "AsyncScheduler: unknown engine error");
        }
      }
    }
    const std::int64_t done = now_ns();
    std::size_t finalized_done = 0;
    std::size_t finalized_failed = 0;
    for (std::size_t i = 0; i < count; ++i) {
      Slot& slot = slots[shard.batch_slots[first + i]];
      if (failed) {
        const std::uint32_t tried = slot.attempts.load(
            std::memory_order_relaxed);
        if (options.retry.enabled() &&
            tried < static_cast<std::uint32_t>(options.retry.max_attempts)) {
          // Back to Pending: the slot stays live (same ticket, same lane
          // token) and re-queues after backoff, possibly on another shard.
          slot.attempts.store(tried + 1, std::memory_order_relaxed);
          slot.status.store(TicketStatus::Pending, std::memory_order_release);
          stat_retried.fetch_add(1, std::memory_order_relaxed);
          schedule_retry(shard.batch_slots[first + i], done, tried + 1);
          continue;
        }
        slot.result.cmax = 0.0;
        slot.result.weighted_completion_sum = 0.0;
        slot.result.has_schedule = false;
        slot.result.diag = DemtDiagnostics{};
        slot.error += " (policy: ";
        slot.error += policy_name(slot.request.policy,
                                  slot.request.algorithm);
        if (tried > 1) {
          slot.error += ", attempts: ";
          slot.error += std::to_string(tried);
        }
        slot.error += ")";
        ++finalized_failed;
      } else {
        slot.result = std::move(shard.batch_results[i]);
        slot.error.clear();
        ++finalized_done;
      }
      slot.done_ns = done;
      lane_completed[slot.lane].fetch_add(1, std::memory_order_relaxed);
      slot.status.store(failed ? TicketStatus::Failed : TicketStatus::Done,
                        std::memory_order_release);
    }
    stat_batches.fetch_add(1, std::memory_order_relaxed);
    publish_done(finalized_done, finalized_failed);
  }

  /// Execute one stream feed/close slot on the stream's pinned shard.
  void run_stream_slot(Shard& shard, std::uint32_t slot_index) {
    Slot& slot = slots[slot_index];
    StreamEntry& entry = streams[slot.stream_index];
    slot.status.store(TicketStatus::Running, std::memory_order_relaxed);
    bool failed = false;
    // A slot that lost its entry (stale ticket racing a close + reopen)
    // must fail WITHOUT touching the entry — it may belong to a newer
    // stream now. A feed still owns the entry while the stream's own
    // close is marked in flight (feeds queued before the close execute
    // first in FIFO order), hence the mask; the close itself owns the
    // entry exactly when its claim mark is present.
    const std::uint64_t word = entry.ticket.load(std::memory_order_acquire);
    const bool owns_entry =
        slot.kind == SlotKind::StreamClose
            ? word == (slot.stream_ticket | kStreamClosing)
            : (word & ~kStreamClosing) == slot.stream_ticket;
    try {
      if (!owns_entry) {
        throw std::logic_error("AsyncScheduler: stream no longer open");
      }
      if (!entry.engine_open) {
        // Lazy open on the strand: the engine session (and its pooled
        // workspace) belongs to the shard's engine, so no other thread
        // ever touches it. A migrated stream resumes from its checkpoint
        // instead — bit-identically to the tape it left behind.
        StreamConfig config;
        config.m = entry.m;
        config.reservations = &entry.reservations;
        config.offline_algorithm = entry.offline_algorithm;
        config.demt = entry.demt;
        config.policy = entry.policy;
        config.speculate = entry.speculate;
        config.speculate_depth = entry.speculate_depth;
        if (entry.has_checkpoint) {
          entry.engine_stream =
              shard.engine.restore_stream(config, entry.checkpoint);
          entry.has_checkpoint = false;
        } else {
          entry.engine_stream = shard.engine.open_stream(config);
        }
        entry.engine_open = true;
      }
      if (slot.kind == SlotKind::StreamFeed) {
        shard.engine.feed_stream(entry.engine_stream, slot.arrivals,
                                 slot.arrival_count, slot.watermark,
                                 slot.delivery);
      } else {
        shard.engine.close_stream(entry.engine_stream, slot.delivery);
      }
      slot.error.clear();
    } catch (const std::exception& e) {
      failed = true;
      slot.error.assign(e.what());
      slot.delivery.clear();
    } catch (...) {
      failed = true;
      slot.error.assign("AsyncScheduler: unknown stream error");
      slot.delivery.clear();
    }
    if (failed && owns_entry) {
      // Entry fields are safe to read only while we own the entry.
      slot.error += " (policy: ";
      slot.error += policy_name(entry.policy, entry.offline_algorithm);
      slot.error += ")";
    }
    if (slot.kind == SlotKind::StreamClose && owns_entry) {
      // Close is terminal whatever happened inside: free the table entry.
      entry.engine_open = false;
      entry.ticket.store(0, std::memory_order_release);
      open_stream_count.fetch_sub(1, std::memory_order_relaxed);
      stat_streams_closed.fetch_add(1, std::memory_order_relaxed);
      while (!free_streams.try_push(slot.stream_index)) {
        std::this_thread::yield();  // unreachable; table-bounded
      }
    }
    // Fold this shard's engine speculation counters into the serving view
    // (deltas since the last harvest; the engine's stats are strand-only).
    const EngineStats& engine_stats = shard.engine.stats();
    stat_spec_decided.fetch_add(
        engine_stats.spec_decided - shard.spec_seen_decided,
        std::memory_order_relaxed);
    stat_spec_committed.fetch_add(
        engine_stats.spec_committed - shard.spec_seen_committed,
        std::memory_order_relaxed);
    stat_spec_rolled_back.fetch_add(
        engine_stats.spec_rolled_back - shard.spec_seen_rolled_back,
        std::memory_order_relaxed);
    shard.spec_seen_decided = engine_stats.spec_decided;
    shard.spec_seen_committed = engine_stats.spec_committed;
    shard.spec_seen_rolled_back = engine_stats.spec_rolled_back;
    slot.done_ns = now_ns();
    lane_completed[slot.lane].fetch_add(1, std::memory_order_relaxed);
    slot.status.store(failed ? TicketStatus::Failed : TicketStatus::Done,
                      std::memory_order_release);
    publish_done(failed ? 0 : 1, failed ? 1 : 0);
  }

  /// The strand body: pop up to max_batch pending slots, serve maximal
  /// runs of one-shot requests as engine batches and stream feeds/closes
  /// one by one in pop (FIFO) order — which is what keeps per-stream
  /// delivery ordered and the interleaving with batch traffic fair — then
  /// repeat until the queue is empty. Steady state performs no heap
  /// allocation (reused assembly buffers, metrics-only engine path,
  /// in-place result moves, pooled stream sessions and deliveries).
  void drain_shard(Shard& shard) {
    if (shard.failed.load(std::memory_order_acquire)) {
      // A failed shard serves nothing: its strand forwards whatever is
      // (or later lands) in its rings to the survivors.
      strand_failover(shard, nullptr, 0);
      return;
    }
    for (;;) {
      shard.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
      // Weighted-fair pop: round-robin over the lanes, each round granting
      // lane l up to lane_quota[l] pops (quota ∝ its weight), until the
      // batch is full or nothing is pending. Work-conserving — an idle
      // lane's share flows to the backlogged ones — and FIFO within each
      // lane, which is what keeps per-stream delivery ordered.
      shard.batch_slots.clear();
      const auto limit = static_cast<std::size_t>(options.max_batch);
      std::uint32_t index = 0;
      bool progressed = true;
      while (progressed && shard.batch_slots.size() < limit) {
        progressed = false;
        for (std::size_t l = 0;
             l < shard.pending.size() && shard.batch_slots.size() < limit;
             ++l) {
          for (int q = 0; q < lane_quota[l] &&
                          shard.batch_slots.size() < limit &&
                          shard.pending[l]->try_pop(index);
               ++q) {
            shard.batch_slots.push_back(index);
            progressed = true;
          }
        }
      }
      shard.pending_count.fetch_sub(
          static_cast<std::int64_t>(shard.batch_slots.size()),
          std::memory_order_relaxed);
      if (shard.batch_slots.empty()) {
        // Racy with a concurrent submit; the flusher treats a non-empty
        // queue with no timestamp as already overdue, so a lost stamp only
        // costs one tick of latency, never a stall.
        shard.first_pending_ns.store(0, std::memory_order_relaxed);
        return;
      }
      // Fault decision for this non-empty iteration (one hash when chaos
      // is on; the branch is dead when it is off).
      FaultDecision fault{};
      if (injector.enabled()) {
        fault = injector.decide(static_cast<int>(shard.index),
                                shard.batch_counter++);
        if (fault.kind != FaultKind::None) {
          stat_faults_injected.fetch_add(1, std::memory_order_relaxed);
        }
        if (fault.kind == FaultKind::ShardDeath) {
          if (try_declare_failed(shard)) {
            // Die at the batch boundary: nothing popped here was served,
            // so failover forwards it all — no request is lost.
            strand_failover(shard, shard.batch_slots.data(),
                            shard.batch_slots.size());
            return;
          }
          fault = {};  // the last alive shard never dies
        }
      }
      // Cancellation and lane-deadline filter: popped one-shots flagged by
      // cancel() or older than their lane's max_queue_ms complete as
      // Cancelled here, at the single point where ring membership ends.
      // Stream slots pass through — skipping a feed would corrupt the tape.
      const std::int64_t filter_now = now_ns();
      std::size_t kept = 0;
      std::size_t cancelled = 0;
      for (std::size_t i = 0; i < shard.batch_slots.size(); ++i) {
        const std::uint32_t slot_index = shard.batch_slots[i];
        Slot& slot = slots[slot_index];
        if (slot.kind == SlotKind::OneShot) {
          const double max_q = lanes[slot.lane].max_queue_ms;
          const bool drop_deadline =
              max_q > 0.0 &&
              static_cast<double>(filter_now - slot.submit_ns) > max_q * 1e6;
          const bool drop_cancel =
              slot.cancel_ticket.load(std::memory_order_relaxed) ==
              slot.ticket.load(std::memory_order_relaxed);
          if (drop_deadline || drop_cancel) {
            complete_cancelled(slot, drop_deadline && !drop_cancel);
            ++cancelled;
            continue;
          }
        }
        shard.batch_slots[kept++] = slot_index;
      }
      shard.batch_slots.resize(kept);
      if (cancelled > 0) publish_done(0, 0, cancelled);
      if (fault.kind == FaultKind::SlowBatch && fault.stall_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(fault.stall_ms));
      }
      bool pending_throw = fault.kind == FaultKind::EngineThrow;
      const std::size_t count = shard.batch_slots.size();
      std::size_t i = 0;
      while (i < count) {
        shard.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
        if (slots[shard.batch_slots[i]].kind == SlotKind::OneShot) {
          std::size_t j = i + 1;
          while (j < count &&
                 slots[shard.batch_slots[j]].kind == SlotKind::OneShot) {
            ++j;
          }
          run_one_shot_segment(shard, i, j, pending_throw);
          pending_throw = false;  // one segment absorbs the injected throw
          i = j;
        } else {
          run_stream_slot(shard, shard.batch_slots[i]);
          ++i;
        }
      }
      if (shard.failed.load(std::memory_order_acquire)) {
        // The watchdog declared us failed mid-batch (the batch itself
        // completed normally): migrate streams and forward the rest.
        strand_failover(shard, nullptr, 0);
        return;
      }
    }
  }

  /// One background thread, three periodic duties: deadline flushes (the
  /// old flusher), the strand-stall watchdog, and retry release after
  /// backoff. The tick is the tightest duty's cadence, clamped to
  /// [50us, 50ms].
  void maintenance_loop() {
    const auto flush_ns = options.flush_after_ms > 0.0
        ? static_cast<std::int64_t>(std::llround(options.flush_after_ms * 1e6))
        : 0;
    const auto watchdog_ns = options.watchdog_ms > 0.0
        ? static_cast<std::int64_t>(std::llround(options.watchdog_ms * 1e6))
        : 0;
    std::int64_t tick_ns = 50'000'000;
    // Half the flush deadline keeps the old bound: no request waits much
    // past ~1.5 deadlines before dispatch.
    if (flush_ns > 0) tick_ns = std::min(tick_ns, flush_ns / 2);
    // A quarter of the watchdog keeps stall detection prompt relative to
    // the threshold the user asked for.
    if (watchdog_ns > 0) tick_ns = std::min(tick_ns, watchdog_ns / 4);
    if (options.retry.enabled()) {
      tick_ns = std::min(
          tick_ns, static_cast<std::int64_t>(
                       std::llround(options.retry.base_backoff_ms * 1e6)) / 2);
    }
    const auto tick = std::chrono::nanoseconds(
        std::max<std::int64_t>(tick_ns, 50'000));
    std::unique_lock lock(maintenance_mutex);
    while (!maintenance_stop) {
      maintenance_cv.wait_for(lock, tick);
      if (maintenance_stop) break;
      const std::int64_t now = now_ns();
      if (flush_ns > 0) {
        for (auto& shard : shards) {
          if (shard->pending_count.load(std::memory_order_relaxed) <= 0) {
            continue;
          }
          const std::int64_t first =
              shard->first_pending_ns.load(std::memory_order_relaxed);
          if (first == 0 || now - first >= flush_ns) {
            if (activate(*shard)) {
              stat_deadline_flushes.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
      if (watchdog_ns > 0) {
        for (auto& shard : shards) {
          if (shard->failed.load(std::memory_order_acquire)) {
            // Already failed (death or an earlier tick): keep its rings
            // empty while its strand is stuck — late-routed work must not
            // wait for the stall to end.
            if (shard->pending_count.load(std::memory_order_relaxed) > 0) {
              watchdog_requeue(*shard);
            }
            continue;
          }
          const int state = shard->strand_state.load(std::memory_order_acquire);
          if (state != kRunning && state != kRescheduled) continue;
          const std::int64_t beat =
              shard->heartbeat_ns.load(std::memory_order_relaxed);
          if (beat == 0 || now - beat < watchdog_ns) continue;
          if (try_declare_failed(*shard)) {
            watchdog_requeue(*shard);
          }
        }
      }
      if (options.retry.enabled()) release_retries(now);
    }
  }

  /// Clamp a caller- or classifier-chosen lane into the lane table.
  [[nodiscard]] std::uint32_t clamp_lane(int lane) const noexcept {
    if (lane < 0) return 0;
    if (static_cast<std::size_t>(lane) >= lanes.size()) {
      return static_cast<std::uint32_t>(lanes.size() - 1);
    }
    return static_cast<std::uint32_t>(lane);
  }

  /// Per-lane admission: reserve an in-flight token in `lane`, refusing
  /// when the lane's own queue_capacity is reached. The token is released
  /// by take()/take_stream() (or immediately by the caller when a later
  /// admission step fails).
  [[nodiscard]] bool try_enter_lane(std::uint32_t lane) noexcept {
    const int cap = lanes[lane].queue_capacity;
    const std::int64_t in_lane =
        lane_in_flight[lane].fetch_add(1, std::memory_order_relaxed) + 1;
    if (cap > 0 && in_lane > cap) {
      lane_in_flight[lane].fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Count one rejection against `lane` and hand back the tagged refusal.
  Ticket reject(std::uint32_t lane) noexcept {
    stat_rejected.fetch_add(1, std::memory_order_relaxed);
    lane_rejected[lane].fetch_add(1, std::memory_order_relaxed);
    return Ticket{0, 0, lane};
  }

  AsyncOptions options;
  std::vector<LaneSpec> lanes;  ///< copied from the admission policy
  FaultInjector injector;       ///< deterministic chaos oracle (may be off)
  std::vector<int> lane_quota;  ///< weighted-fair pop quota per RR round
  std::unique_ptr<std::atomic<std::int64_t>[]> lane_in_flight;
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_submitted;
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_rejected;
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_completed;
  std::vector<Slot> slots;
  MpmcQueue<std::uint32_t> free_slots;
  std::vector<StreamEntry> streams;
  MpmcQueue<std::uint32_t> free_streams;
  std::vector<std::unique_ptr<Shard>> shards;

  std::atomic<std::uint64_t> next_ticket;  // seeded per scheduler, see ctor
  std::atomic<std::int64_t> in_use_count{0};  ///< accepted, not yet taken
  std::atomic<std::int64_t> live_count{0};    ///< accepted, not yet terminal
  std::atomic<bool> stopping{false};

  std::atomic<std::uint64_t> stat_submitted{0};
  std::atomic<std::uint64_t> stat_rejected{0};
  std::atomic<std::uint64_t> stat_completed{0};
  std::atomic<std::uint64_t> stat_failed{0};
  std::atomic<std::uint64_t> stat_batches{0};
  std::atomic<std::uint64_t> stat_size_flushes{0};
  std::atomic<std::uint64_t> stat_deadline_flushes{0};
  std::atomic<std::uint64_t> stat_forced_flushes{0};
  std::atomic<std::uint64_t> stat_streams_opened{0};
  std::atomic<std::uint64_t> stat_streams_closed{0};
  std::atomic<std::uint64_t> stat_stream_feeds{0};
  std::atomic<std::uint64_t> stat_stream_rejected{0};
  std::atomic<std::int64_t> open_stream_count{0};

  std::atomic<std::uint64_t> stat_cancelled{0};
  std::atomic<std::uint64_t> stat_dropped{0};
  std::atomic<std::uint64_t> stat_retried{0};
  std::atomic<std::uint64_t> stat_failed_over{0};
  std::atomic<std::uint64_t> stat_shards_failed{0};
  std::atomic<std::uint64_t> stat_streams_migrated{0};
  std::atomic<std::uint64_t> stat_faults_injected{0};
  std::atomic<std::uint64_t> stat_spec_decided{0};
  std::atomic<std::uint64_t> stat_spec_committed{0};
  std::atomic<std::uint64_t> stat_spec_rolled_back{0};
  /// Failure-token count; try_declare_failed caps it below shards.size()
  /// so at least one shard is always alive. Doubles as the routing
  /// fast-path guard (0 = skip the alive scan entirely).
  std::atomic<int> failed_shard_count{0};
  std::atomic<std::uint32_t> failover_rr{0};  ///< spread for pick_alive

  /// A retried slot waits here (owned by no ring) until its backoff
  /// deadline; the maintenance thread releases it back to an alive shard.
  struct RetryItem {
    std::uint32_t slot = 0;
    std::int64_t ready_ns = 0;
  };
  std::mutex retry_mutex;
  std::vector<RetryItem> retry_queue;        ///< guarded by retry_mutex
  std::vector<std::uint32_t> retry_scratch;  ///< maintenance-thread only

  std::atomic<int> waiters{0};
  std::mutex wait_mutex;
  std::condition_variable wait_cv;

  std::thread maintenance;
  std::mutex maintenance_mutex;
  std::condition_variable maintenance_cv;
  bool maintenance_stop = false;

  /// Stamp a prepared slot (payload fields already written), route it to a
  /// shard's coalescing queue, and apply the flush policy. Shared tail of
  /// submit/submit_stream/close_stream: one-shots pass `pinned_shard` < 0
  /// (round-robin by ticket id, the pre-stream routing), stream slots pass
  /// their stream's pinned shard.
  Ticket commit_slot(std::uint32_t slot_index, std::int64_t pinned_shard);
};

Ticket AsyncScheduler::Impl::commit_slot(std::uint32_t slot_index,
                                         std::int64_t pinned_shard) {
  Slot& slot = slots[slot_index];
  const std::uint64_t id = next_ticket.fetch_add(1, std::memory_order_relaxed);
  const auto shard_index = pinned_shard >= 0
                               ? static_cast<std::uint32_t>(pinned_shard)
                               : route_one_shot(id);
  slot.shard.store(shard_index, std::memory_order_relaxed);
  slot.submit_ns = now_ns();
  slot.done_ns = 0;
  slot.attempts.store(1, std::memory_order_relaxed);
  slot.ticket.store(id, std::memory_order_relaxed);
  slot.status.store(TicketStatus::Pending, std::memory_order_release);
  in_use_count.fetch_add(1, std::memory_order_relaxed);
  live_count.fetch_add(1, std::memory_order_relaxed);
  stat_submitted.fetch_add(1, std::memory_order_relaxed);
  lane_submitted[slot.lane].fetch_add(1, std::memory_order_relaxed);

  Shard& shard = *shards[shard_index];
  std::int64_t no_stamp = 0;
  shard.first_pending_ns.compare_exchange_strong(no_stamp, slot.submit_ns,
                                                 std::memory_order_relaxed);
  shard.pending_count.fetch_add(1, std::memory_order_relaxed);
  while (!shard.pending[slot.lane]->try_push(slot_index)) {
    // Unreachable by construction (ring capacity >= queue_capacity and at
    // most queue_capacity slots circulate); yield defensively.
    std::this_thread::yield();
  }
  if (shard.pending_count.load(std::memory_order_relaxed) >=
      static_cast<std::int64_t>(options.max_batch)) {
    if (activate(shard)) {
      stat_size_flushes.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (options.flush_after_ms <= 0.0) {
    if (activate(shard)) {
      stat_deadline_flushes.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Ticket{id, slot_index, slot.lane};
}

AsyncScheduler::AsyncScheduler(AsyncOptions options)
    : impl_(std::make_unique<Impl>(validated(options))) {}

AsyncScheduler::~AsyncScheduler() {
  Impl& im = *impl_;
  im.stopping.store(true, std::memory_order_release);
  drain();  // needs the maintenance thread alive: retries drain through it
  if (im.maintenance.joinable()) {
    {
      const std::lock_guard lock(im.maintenance_mutex);
      im.maintenance_stop = true;
    }
    im.maintenance_cv.notify_all();
    im.maintenance.join();
  }
  // Let any still-queued strand activation retire before members die.
  for (auto& shard : im.shards) {
    while (shard->strand_state.load(std::memory_order_acquire) != kIdle) {
      std::this_thread::yield();
    }
  }
}

Ticket AsyncScheduler::submit(const EngineRequest& request) {
  const Impl& im = *impl_;
  return submit(request, im.options.admission != nullptr
                             ? im.options.admission->classify(request)
                             : 0);
}

Ticket AsyncScheduler::submit(const EngineRequest& request, int lane) {
  Impl& im = *impl_;
  if (request.instance == nullptr) {
    throw std::invalid_argument("AsyncScheduler: request without instance");
  }
  const std::uint32_t lane_index = im.clamp_lane(lane);
  if (im.stopping.load(std::memory_order_acquire)) {
    return im.reject(lane_index);
  }
  if (!im.try_enter_lane(lane_index)) {
    return im.reject(lane_index);
  }
  std::uint32_t slot_index = 0;
  if (!im.free_slots.try_pop(slot_index)) {
    im.lane_in_flight[lane_index].fetch_sub(1, std::memory_order_relaxed);
    return im.reject(lane_index);
  }
  Impl::Slot& slot = im.slots[slot_index];
  slot.kind = SlotKind::OneShot;
  slot.lane = lane_index;
  slot.request = request;
  return im.commit_slot(slot_index, -1);
}

int AsyncScheduler::num_lanes() const noexcept {
  return static_cast<int>(impl_->lanes.size());
}

const LaneSpec& AsyncScheduler::lane_spec(int lane) const {
  return impl_->lanes.at(static_cast<std::size_t>(lane));
}

StreamTicket AsyncScheduler::open_stream(const StreamOptions& options) {
  const Impl& im = *impl_;
  return open_stream(options,
                     im.options.admission != nullptr
                         ? im.options.admission->classify_stream(options)
                         : 0);
}

StreamTicket AsyncScheduler::open_stream(const StreamOptions& options,
                                         int lane) {
  Impl& im = *impl_;
  if (options.m < 1) {
    throw std::invalid_argument("AsyncScheduler: stream m < 1");
  }
  if (options.reservations != nullptr) {
    for (const auto& r : *options.reservations) {
      if (r.proc < 0 || r.proc >= options.m || !(r.finish > r.start)) {
        throw std::invalid_argument("AsyncScheduler: bad stream reservation");
      }
    }
  }
  if (im.stopping.load(std::memory_order_acquire)) {
    im.stat_stream_rejected.fetch_add(1, std::memory_order_relaxed);
    return StreamTicket{};
  }
  std::uint32_t index = 0;
  if (!im.free_streams.try_pop(index)) {
    im.stat_stream_rejected.fetch_add(1, std::memory_order_relaxed);
    return StreamTicket{};
  }
  Impl::StreamEntry& entry = im.streams[index];
  const std::uint64_t id =
      im.next_ticket.fetch_add(1, std::memory_order_relaxed);
  entry.shard.store(im.route_one_shot(id), std::memory_order_relaxed);
  entry.has_checkpoint = false;  // recycled entries carry no stale image
  entry.m = options.m;
  entry.offline_algorithm = options.offline_algorithm;
  entry.demt = options.demt;
  entry.policy = options.policy;
  entry.speculate = options.speculate;
  entry.speculate_depth = options.speculate_depth;
  entry.lane = im.clamp_lane(lane);
  entry.reservations.clear();
  if (options.reservations != nullptr) {
    entry.reservations = *options.reservations;
  }
  entry.engine_open = false;
  entry.ticket.store(id, std::memory_order_release);
  im.open_stream_count.fetch_add(1, std::memory_order_relaxed);
  im.stat_streams_opened.fetch_add(1, std::memory_order_relaxed);
  return StreamTicket{id, index, entry.lane};
}

Ticket AsyncScheduler::submit_stream(const StreamTicket& stream,
                                     const StreamArrival* arrivals,
                                     std::size_t count, double watermark) {
  Impl& im = *impl_;
  if (count > 0 && arrivals == nullptr) {
    throw std::invalid_argument("AsyncScheduler: null arrivals");
  }
  if (!stream.accepted() || stream.index >= im.streams.size()) {
    im.stat_rejected.fetch_add(1, std::memory_order_relaxed);
    return Ticket{};
  }
  Impl::StreamEntry& entry = im.streams[stream.index];
  // The lane comes from the caller's ticket (stamped at open_stream), not
  // from the entry: the entry may have been recycled to a new stream, and
  // reading its fields before the ownership check below would race the
  // new owner's open_stream write — and would misattribute this
  // rejection's lane stats to the new stream.
  const std::uint32_t lane = im.clamp_lane(static_cast<int>(stream.lane));
  // A closing entry carries id | kStreamClosing, so this one comparison
  // also refuses feeds behind an in-flight close.
  if (entry.ticket.load(std::memory_order_acquire) != stream.id ||
      im.stopping.load(std::memory_order_acquire)) {
    return im.reject(lane);
  }
  if (!im.try_enter_lane(lane)) {
    return im.reject(lane);
  }
  std::uint32_t slot_index = 0;
  if (!im.free_slots.try_pop(slot_index)) {
    im.lane_in_flight[lane].fetch_sub(1, std::memory_order_relaxed);
    return im.reject(lane);
  }
  Impl::Slot& slot = im.slots[slot_index];
  slot.kind = SlotKind::StreamFeed;
  slot.lane = lane;
  slot.stream_index = stream.index;
  slot.stream_ticket = stream.id;
  slot.arrivals = arrivals;
  slot.arrival_count = count;
  slot.watermark = watermark;
  im.stat_stream_feeds.fetch_add(1, std::memory_order_relaxed);
  // Acquire: a migrated stream's re-pin publishes its checkpoint through
  // this load (then the ring push/pop carries it to the new strand).
  return im.commit_slot(
      slot_index,
      static_cast<std::int64_t>(entry.shard.load(std::memory_order_acquire)));
}

Ticket AsyncScheduler::close_stream(const StreamTicket& stream) {
  Impl& im = *impl_;
  if (!stream.accepted() || stream.index >= im.streams.size() ||
      im.stopping.load(std::memory_order_acquire)) {
    im.stat_rejected.fetch_add(1, std::memory_order_relaxed);
    return Ticket{};
  }
  Impl::StreamEntry& entry = im.streams[stream.index];
  // Ticket-carried lane, not entry.lane — see submit_stream.
  const std::uint32_t lane = im.clamp_lane(static_cast<int>(stream.lane));
  if (!im.try_enter_lane(lane)) {
    return im.reject(lane);
  }
  std::uint32_t slot_index = 0;
  if (!im.free_slots.try_pop(slot_index)) {
    im.lane_in_flight[lane].fetch_sub(1, std::memory_order_relaxed);
    return im.reject(lane);
  }
  // Claim the close: one CAS both verifies we still own the entry and
  // marks it closing, so a stale close racing a close + reopen can never
  // touch the entry's new owner (it simply fails this CAS).
  std::uint64_t expected = stream.id;
  if (!entry.ticket.compare_exchange_strong(expected,
                                            stream.id | kStreamClosing,
                                            std::memory_order_acq_rel)) {
    while (!im.free_slots.try_push(slot_index)) std::this_thread::yield();
    im.lane_in_flight[lane].fetch_sub(1, std::memory_order_relaxed);
    return im.reject(lane);
  }
  Impl::Slot& slot = im.slots[slot_index];
  slot.kind = SlotKind::StreamClose;
  slot.lane = lane;
  slot.stream_index = stream.index;
  slot.stream_ticket = stream.id;
  slot.arrivals = nullptr;
  slot.arrival_count = 0;
  slot.watermark = 0.0;
  return im.commit_slot(
      slot_index,
      static_cast<std::int64_t>(entry.shard.load(std::memory_order_acquire)));
}

TicketStatus AsyncScheduler::poll(const Ticket& ticket) const noexcept {
  if (!ticket.accepted()) return TicketStatus::Rejected;
  if (ticket.slot >= impl_->slots.size()) {
    return TicketStatus::Invalid;  // ticket from another scheduler
  }
  const Impl::Slot& slot = impl_->slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) {
    return TicketStatus::Invalid;
  }
  return slot.status.load(std::memory_order_acquire);
}

TicketStatus AsyncScheduler::wait(const Ticket& ticket) {
  Impl& im = *impl_;
  TicketStatus status = poll(ticket);
  if (is_terminal(status)) return status;
  // Force the ticket's shard out of its coalescing wait: a partial batch
  // must not stall a caller who has declared they want the result now.
  // slot.shard is stable from submit until take; if the slot recycled
  // since the poll above we merely poke a shard needlessly.
  const std::uint32_t shard =
      im.slots[ticket.slot].shard.load(std::memory_order_relaxed);
  if (im.activate(*im.shards[shard])) {
    im.stat_forced_flushes.fetch_add(1, std::memory_order_relaxed);
  }
  im.waiters.fetch_add(1, std::memory_order_relaxed);
  // Second half of the Dekker pair with drain_shard (see there).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  {
    std::unique_lock lock(im.wait_mutex);
    im.wait_cv.wait(lock, [&] {
      status = poll(ticket);
      return is_terminal(status);
    });
  }
  im.waiters.fetch_sub(1, std::memory_order_relaxed);
  return status;
}

TicketStatus AsyncScheduler::wait(const Ticket& ticket, double timeout_ms) {
  Impl& im = *impl_;
  TicketStatus status = poll(ticket);
  if (is_terminal(status)) return status;
  const std::uint32_t shard =
      im.slots[ticket.slot].shard.load(std::memory_order_relaxed);
  if (im.activate(*im.shards[shard])) {
    im.stat_forced_flushes.fetch_add(1, std::memory_order_relaxed);
  }
  if (timeout_ms <= 0.0) {
    status = poll(ticket);
    return is_terminal(status) ? status : TicketStatus::TimedOut;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(
          static_cast<std::int64_t>(std::llround(timeout_ms * 1e6)));
  im.waiters.fetch_add(1, std::memory_order_relaxed);
  // Second half of the Dekker pair with publish_done (see wait()).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  bool terminal = false;
  {
    std::unique_lock lock(im.wait_mutex);
    terminal = im.wait_cv.wait_until(lock, deadline, [&] {
      status = poll(ticket);
      return is_terminal(status);
    });
  }
  im.waiters.fetch_sub(1, std::memory_order_relaxed);
  return terminal ? status : TicketStatus::TimedOut;
}

bool AsyncScheduler::cancel(const Ticket& ticket) {
  Impl& im = *impl_;
  if (!ticket.accepted() || ticket.slot >= im.slots.size()) return false;
  Impl::Slot& slot = im.slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) return false;
  if (slot.kind != SlotKind::OneShot) return false;  // streams: tape safety
  if (is_terminal(slot.status.load(std::memory_order_acquire))) return false;
  // Id-keyed request: a stale store onto a recycled slot can never match
  // the new owner's ticket, so this is race-free without a status CAS.
  slot.cancel_ticket.store(ticket.id, std::memory_order_relaxed);
  // Poke the shard so the drop happens promptly, not at the next flush.
  const std::uint32_t shard = slot.shard.load(std::memory_order_relaxed);
  im.activate(*im.shards[shard]);
  return slot.ticket.load(std::memory_order_acquire) == ticket.id;
}

std::uint32_t AsyncScheduler::attempts(const Ticket& ticket) const noexcept {
  const Impl& im = *impl_;
  if (!ticket.accepted() || ticket.slot >= im.slots.size()) return 0;
  const Impl::Slot& slot = im.slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) return 0;
  return slot.attempts.load(std::memory_order_relaxed);
}

bool AsyncScheduler::take(const Ticket& ticket, EngineResult& out) {
  Impl& im = *impl_;
  if (!ticket.accepted() || ticket.slot >= im.slots.size()) return false;
  Impl::Slot& slot = im.slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) return false;
  if (slot.kind != SlotKind::OneShot) return false;  // take_stream instead
  const TicketStatus status = slot.status.load(std::memory_order_acquire);
  if (status != TicketStatus::Done && status != TicketStatus::Failed &&
      status != TicketStatus::Cancelled) {
    return false;
  }
  out = std::move(slot.result);
  slot.ticket.store(0, std::memory_order_relaxed);
  slot.status.store(TicketStatus::Invalid, std::memory_order_release);
  im.in_use_count.fetch_sub(1, std::memory_order_relaxed);
  im.lane_in_flight[slot.lane].fetch_sub(1, std::memory_order_relaxed);
  while (!im.free_slots.try_push(ticket.slot)) {
    std::this_thread::yield();  // unreachable; see submit()
  }
  return true;
}

bool AsyncScheduler::take_stream(const Ticket& ticket, StreamDelivery& out) {
  Impl& im = *impl_;
  if (!ticket.accepted() || ticket.slot >= im.slots.size()) return false;
  Impl::Slot& slot = im.slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) return false;
  if (slot.kind == SlotKind::OneShot) return false;  // take() instead
  const TicketStatus status = slot.status.load(std::memory_order_acquire);
  if (status != TicketStatus::Done && status != TicketStatus::Failed) {
    return false;
  }
  // Swap, not move: the caller's buffers park in the slot, so a recycled
  // StreamDelivery keeps the take loop allocation-free.
  std::swap(out, slot.delivery);
  slot.ticket.store(0, std::memory_order_relaxed);
  slot.status.store(TicketStatus::Invalid, std::memory_order_release);
  im.in_use_count.fetch_sub(1, std::memory_order_relaxed);
  im.lane_in_flight[slot.lane].fetch_sub(1, std::memory_order_relaxed);
  while (!im.free_slots.try_push(ticket.slot)) {
    std::this_thread::yield();  // unreachable; see submit()
  }
  return true;
}

std::size_t AsyncScheduler::open_streams() const noexcept {
  const std::int64_t open =
      impl_->open_stream_count.load(std::memory_order_relaxed);
  return open > 0 ? static_cast<std::size_t>(open) : 0;
}

std::string AsyncScheduler::error(const Ticket& ticket) const {
  const Impl& im = *impl_;
  if (!ticket.accepted() || ticket.slot >= im.slots.size()) return {};
  const Impl::Slot& slot = im.slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) return {};
  const TicketStatus status = slot.status.load(std::memory_order_acquire);
  if (status != TicketStatus::Failed && status != TicketStatus::Cancelled) {
    return {};
  }
  return slot.error;
}

double AsyncScheduler::latency_seconds(const Ticket& ticket) const noexcept {
  if (!ticket.accepted() || ticket.slot >= impl_->slots.size()) return 0.0;
  const Impl::Slot& slot = impl_->slots[ticket.slot];
  if (slot.ticket.load(std::memory_order_acquire) != ticket.id) return 0.0;
  const TicketStatus status = slot.status.load(std::memory_order_acquire);
  if (status != TicketStatus::Done && status != TicketStatus::Failed &&
      status != TicketStatus::Cancelled) {
    return 0.0;
  }
  return static_cast<double>(slot.done_ns - slot.submit_ns) * 1e-9;
}

void AsyncScheduler::flush() {
  Impl& im = *impl_;
  for (auto& shard : im.shards) {
    if (shard->pending_count.load(std::memory_order_relaxed) <= 0) continue;
    if (im.activate(*shard)) {
      im.stat_forced_flushes.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void AsyncScheduler::drain() {
  Impl& im = *impl_;
  im.waiters.fetch_add(1, std::memory_order_acq_rel);
  std::unique_lock lock(im.wait_mutex);
  while (im.live_count.load(std::memory_order_acquire) != 0) {
    lock.unlock();
    flush();
    lock.lock();
    im.wait_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return im.live_count.load(std::memory_order_acquire) == 0;
    });
  }
  lock.unlock();
  im.waiters.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t AsyncScheduler::in_flight() const noexcept {
  const std::int64_t live = impl_->in_use_count.load(std::memory_order_relaxed);
  return live > 0 ? static_cast<std::size_t>(live) : 0;
}

AsyncStats AsyncScheduler::stats() const {
  const Impl& im = *impl_;
  AsyncStats stats;
  stats.submitted = im.stat_submitted.load(std::memory_order_relaxed);
  stats.rejected = im.stat_rejected.load(std::memory_order_relaxed);
  stats.completed = im.stat_completed.load(std::memory_order_relaxed);
  stats.failed = im.stat_failed.load(std::memory_order_relaxed);
  stats.batches = im.stat_batches.load(std::memory_order_relaxed);
  stats.size_flushes = im.stat_size_flushes.load(std::memory_order_relaxed);
  stats.deadline_flushes =
      im.stat_deadline_flushes.load(std::memory_order_relaxed);
  stats.forced_flushes =
      im.stat_forced_flushes.load(std::memory_order_relaxed);
  stats.streams_opened =
      im.stat_streams_opened.load(std::memory_order_relaxed);
  stats.streams_closed =
      im.stat_streams_closed.load(std::memory_order_relaxed);
  stats.stream_feeds = im.stat_stream_feeds.load(std::memory_order_relaxed);
  stats.stream_rejected =
      im.stat_stream_rejected.load(std::memory_order_relaxed);
  stats.cancelled = im.stat_cancelled.load(std::memory_order_relaxed);
  stats.dropped = im.stat_dropped.load(std::memory_order_relaxed);
  stats.retried = im.stat_retried.load(std::memory_order_relaxed);
  stats.failed_over = im.stat_failed_over.load(std::memory_order_relaxed);
  stats.shards_failed = im.stat_shards_failed.load(std::memory_order_relaxed);
  stats.streams_migrated =
      im.stat_streams_migrated.load(std::memory_order_relaxed);
  stats.faults_injected =
      im.stat_faults_injected.load(std::memory_order_relaxed);
  stats.spec_decided = im.stat_spec_decided.load(std::memory_order_relaxed);
  stats.spec_committed =
      im.stat_spec_committed.load(std::memory_order_relaxed);
  stats.spec_rolled_back =
      im.stat_spec_rolled_back.load(std::memory_order_relaxed);
  if (im.options.cache != nullptr) {
    // The cache keeps its own atomic counters (it may be shared across
    // schedulers); snapshot them into the serving view.
    const DecisionCacheStats cache = im.options.cache->stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_evictions = cache.evictions;
  }
  stats.lanes.resize(im.lanes.size());
  for (std::size_t l = 0; l < im.lanes.size(); ++l) {
    LaneStats& lane = stats.lanes[l];
    lane.name = im.lanes[l].name;
    lane.submitted = im.lane_submitted[l].load(std::memory_order_relaxed);
    lane.rejected = im.lane_rejected[l].load(std::memory_order_relaxed);
    lane.completed = im.lane_completed[l].load(std::memory_order_relaxed);
    const std::int64_t in_flight =
        im.lane_in_flight[l].load(std::memory_order_relaxed);
    lane.in_flight =
        in_flight > 0 ? static_cast<std::uint64_t>(in_flight) : 0;
  }
  return stats;
}

const AsyncOptions& AsyncScheduler::options() const noexcept {
  return impl_->options;
}

}  // namespace moldsched
