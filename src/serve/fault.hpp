/// \file fault.hpp
/// Deterministic fault injection and retry configuration for the async
/// serving layer (serve/async_scheduler.hpp). Chaos testing is only
/// useful when a failing run can be replayed: a FaultInjector is a *pure
/// function* of its FaultPlan — whether a fault fires at (shard, batch)
/// depends only on the plan's seed, rates, and scripted points, never on
/// thread timing — so the same plan reproduces the same fault pattern on
/// every run (what changes between runs is only which requests happen to
/// sit in the affected batches).
///
/// Three fault kinds map to the three failure modes the scheduler
/// recovers from: EngineThrow (a batch fails — retried under the
/// RetryPolicy), SlowBatch (a strand stalls — the watchdog declares the
/// shard failed and surviving shards absorb its queue), and ShardDeath
/// (a shard dies at a batch boundary — its queue fails over and its
/// pinned streams migrate via StreamCheckpoint, resuming bit-identically).
///
/// RetryPolicy bounds the recovery: a faulted or failed-over one-shot
/// batch is re-queued up to max_attempts total attempts with exponential
/// backoff (base_backoff_ms, doubling per retry). The default
/// (max_attempts == 1) disables retry — a failure is final on its first
/// attempt, the pre-fault behaviour, so the no-fault serving path is
/// bit-compatible and allocation-free exactly as before.

#pragma once

#include <cstdint>
#include <vector>

namespace moldsched {

/// What a fault decision makes the shard do.
enum class FaultKind {
  None,         ///< serve the batch normally
  EngineThrow,  ///< fail the batch as if the engine threw (retryable)
  SlowBatch,    ///< stall the strand for stall_ms before serving
  ShardDeath,   ///< mark the shard failed; queue fails over, streams migrate
};

/// One scripted fault: fires when shard `shard` (any shard when < 0)
/// starts its `batch`-th non-empty drain iteration (0-based, counted per
/// shard). Scripted points beat the random rates and are the tool for
/// reproducing a specific scenario ("kill shard 2 at its 5th batch").
struct FaultPoint {
  FaultKind kind = FaultKind::None;
  int shard = -1;            ///< target shard; -1 matches every shard
  std::uint64_t batch = 0;   ///< per-shard non-empty drain iteration index
  double stall_ms = 0.0;     ///< SlowBatch only; <= 0 uses FaultPlan::stall_ms
};

/// Seeded chaos configuration: scripted points plus per-batch random
/// fault rates (each in [0, 1], evaluated from a hash of
/// (seed, shard, batch) — deterministic and replayable). All-zero rates
/// with no points means faults are off; an AsyncScheduler built that way
/// runs the exact pre-fault hot path.
struct FaultPlan {
  std::uint64_t seed = 0;          ///< replay key for the random rates
  std::vector<FaultPoint> points;  ///< scripted faults, first match wins
  double throw_rate = 0.0;         ///< P(EngineThrow) per non-empty batch
  double stall_rate = 0.0;         ///< P(SlowBatch) per non-empty batch
  double death_rate = 0.0;         ///< P(ShardDeath) per non-empty batch
  double stall_ms = 1.0;           ///< default SlowBatch stall length

  [[nodiscard]] bool enabled() const noexcept {
    return !points.empty() || throw_rate > 0.0 || stall_rate > 0.0 ||
           death_rate > 0.0;
  }
};

/// Bounded retry with exponential backoff for faulted or failed-over
/// one-shot work: attempt k (2-based) re-queues after
/// base_backoff_ms * 2^(k-2). max_attempts == 1 means no retry — the
/// first failure is final (pre-fault behaviour).
struct RetryPolicy {
  int max_attempts = 1;        ///< total attempts (first try included), >= 1
  double base_backoff_ms = 0.2;  ///< backoff before the first retry

  [[nodiscard]] bool enabled() const noexcept { return max_attempts > 1; }
};

/// The verdict for one (shard, batch) point: what fires and, for
/// SlowBatch, how long the stall is.
struct FaultDecision {
  FaultKind kind = FaultKind::None;
  double stall_ms = 0.0;
};

/// The deterministic fault oracle. Stateless after construction and
/// safe to query concurrently from every shard strand; `decide` performs
/// no allocation (the serving hot path calls it once per non-empty drain
/// iteration when faults are enabled, never otherwise).
class FaultInjector {
 public:
  FaultInjector() = default;
  /// Validates the plan: rates must lie in [0, 1] and their sum must not
  /// exceed 1 (they partition one uniform draw); throws
  /// std::invalid_argument otherwise.
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// The fault (or None) for shard `shard`'s `batch`-th non-empty drain
  /// iteration. Pure: same plan + arguments => same decision, on every
  /// run and every thread.
  [[nodiscard]] FaultDecision decide(int shard,
                                     std::uint64_t batch) const noexcept;

 private:
  FaultPlan plan_;
  bool enabled_ = false;
};

}  // namespace moldsched
