#include "serve/fault.hpp"

#include <stdexcept>
#include <utility>

namespace moldsched {

namespace {

/// splitmix64 finaliser: a full-avalanche mix so consecutive
/// (shard, batch) points draw statistically independent uniforms.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) from (seed, shard, batch) — the whole source of
/// randomness, so decisions replay exactly under the same plan.
[[nodiscard]] double uniform_at(std::uint64_t seed, int shard,
                                std::uint64_t batch) noexcept {
  std::uint64_t h = mix64(seed ^ 0x6D6F6C64736368ULL);  // "moldsch"
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(shard)));
  h = mix64(h ^ batch);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[nodiscard]] bool valid_rate(double rate) noexcept {
  return rate >= 0.0 && rate <= 1.0;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  if (!valid_rate(plan_.throw_rate) || !valid_rate(plan_.stall_rate) ||
      !valid_rate(plan_.death_rate)) {
    throw std::invalid_argument("FaultPlan: rates must lie in [0, 1]");
  }
  if (plan_.throw_rate + plan_.stall_rate + plan_.death_rate > 1.0) {
    throw std::invalid_argument("FaultPlan: rates must sum to at most 1");
  }
  for (const auto& point : plan_.points) {
    if (point.kind == FaultKind::None) {
      throw std::invalid_argument("FaultPlan: scripted point without a kind");
    }
  }
  enabled_ = plan_.enabled();
}

FaultDecision FaultInjector::decide(int shard,
                                    std::uint64_t batch) const noexcept {
  if (!enabled_) return {};
  for (const auto& point : plan_.points) {
    if ((point.shard < 0 || point.shard == shard) && point.batch == batch) {
      return FaultDecision{
          point.kind,
          point.stall_ms > 0.0 ? point.stall_ms : plan_.stall_ms};
    }
  }
  const double u = uniform_at(plan_.seed, shard, batch);
  if (u < plan_.death_rate) {
    return FaultDecision{FaultKind::ShardDeath, 0.0};
  }
  if (u < plan_.death_rate + plan_.stall_rate) {
    return FaultDecision{FaultKind::SlowBatch, plan_.stall_ms};
  }
  if (u < plan_.death_rate + plan_.stall_rate + plan_.throw_rate) {
    return FaultDecision{FaultKind::EngineThrow, 0.0};
  }
  return {};
}

}  // namespace moldsched
