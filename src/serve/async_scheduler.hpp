/// \file async_scheduler.hpp
/// Asynchronous submit/poll serving layer over sharded SchedulerEngines.
/// The batch engine (engine/engine.hpp) is a blocking call: the caller
/// assembles a whole batch and waits. AsyncScheduler turns it into a
/// server front-end — `submit` returns immediately with a Ticket, requests
/// coalesce into engine batches per shard (flushed when a batch fills or a
/// deadline passes), shard strands execute on the process-wide
/// shared_thread_pool(), and `poll`/`wait`/`take` retrieve results.
///
/// Admission control: the scheduler owns a fixed table of
/// `queue_capacity` request slots. When every slot is in flight
/// (submitted but not yet take()n), submit refuses the request with a
/// rejected Ticket (`poll` == TicketStatus::Rejected) instead of growing
/// a queue without bound. Admission is pluggable (serve/admission.hpp):
/// an AdmissionPolicy defines priority lanes — per-lane weight and
/// optional per-lane in-flight bound, weighted-fair pop across lanes on
/// each shard, FIFO within a lane — and classifies submissions that name
/// no explicit lane. Without a policy the scheduler runs FifoAdmission
/// (one lane), which is exactly the pre-policy behaviour.
///
/// Determinism contract: a request's result is a pure function of the
/// EngineRequest — the engine's per-request determinism (pre-forked
/// shuffle RNG streams, sequential acceptance replay) makes every DEMT
/// call self-contained — so results are bit-identical to the synchronous
/// `SchedulerEngine::schedule_batch` path for any shard count, pool size,
/// batch size, and flush timing. Only latency and throughput change.
///
/// Allocation contract: after warm-up, the submit → coalesce → dispatch →
/// poll/take cycle performs zero heap allocations per request on the
/// metrics-only FlatList path (slot table, MPMC rings, and strand posting
/// are all pre-allocated; measured by bench/serve_throughput.cpp).
///
/// Streams (paper §5 job mix served live): open_stream pins a streaming
/// session to one shard; submit_stream enqueues a feed (arrivals +
/// watermark) as an ordinary admission-controlled request whose Ticket
/// delivers the feed's batch decisions through take_stream; close_stream
/// enqueues the final feed. Feeds of one stream execute in submission
/// order on the pinned shard's strand — FIFO through the same coalescing
/// queue as one-shot requests, interleaved fairly in arrival order — so
/// per-stream delivery is ordered and results are bit-identical to the
/// off-line simulator on the completed arrival list for any shard count
/// and flush timing (gated by bench/online_stream.cpp).
///
/// Fault tolerance (serve/fault.hpp): an optional seeded FaultPlan
/// injects deterministic faults (engine throws, slow batches, shard
/// death) for reproducible chaos runs; a watchdog declares a shard whose
/// strand stops heartbeating failed; a failed shard's queued one-shot
/// work fails over to surviving shards (bounded retry with exponential
/// backoff under RetryPolicy), and its pinned streams migrate via
/// StreamCheckpoint and resume bit-identically on a new shard. Callers
/// can bound their own exposure with wait(ticket, timeout_ms),
/// cancel(ticket), and per-lane queue-age drops (LaneSpec::max_queue_ms).
/// With no plan, no watchdog, and no retry the scheduler runs the exact
/// pre-fault hot path — bit-identical, allocation-free.
///
/// Threading: submit/poll/wait/take/flush are safe from any number of
/// threads. Each Ticket has one consumer: two threads must not wait on,
/// cancel, or take the same Ticket. One stream has one producer:
/// concurrent submit_stream calls to the same stream are delivered in
/// admission order, which only means something if the producers ordered
/// their watermarks themselves. Never call wait/drain from a shared-pool
/// worker thread (the strand you would wait on may be queued behind you).
///
/// Full operator documentation (lifecycle diagram, tuning, failure
/// semantics): docs/SERVING.md; the streaming/job-mix story: docs/ONLINE.md.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.hpp"
#include "serve/admission.hpp"
#include "serve/fault.hpp"

namespace moldsched {

/// Lifecycle of a submitted request. Terminal states: Rejected, Done,
/// Failed, Cancelled — plus Invalid once the ticket's slot has been
/// take()n (or for a ticket this scheduler never issued). TimedOut is
/// never stored: it is the return value of the timed wait overload when
/// the deadline passes first (the ticket itself stays live).
enum class TicketStatus {
  Invalid,   ///< unknown ticket: never issued, already taken, slot reused
  Rejected,  ///< refused at admission: queue_capacity slots already in flight
  Pending,   ///< accepted; waiting in its shard's coalescing queue
  Running,   ///< being served inside an engine batch on a shard strand
  Done,      ///< result available through take()
  Failed,    ///< the engine threw for this batch; error(ticket) explains
  Cancelled, ///< dropped before running: cancel() or a lane max_queue_ms
  TimedOut,  ///< wait(ticket, timeout_ms) deadline passed; ticket still live
};

/// Human-readable status name (stable strings, for logs and benches).
[[nodiscard]] const char* to_string(TicketStatus status) noexcept;

/// Handle to one submitted request. Value type, freely copyable; id 0
/// means the request was rejected at admission. `lane` tags the admission
/// lane the request was classified into (set on rejected tickets too, so
/// a caller can attribute the refusal).
struct Ticket {
  std::uint64_t id = 0;    ///< unique per accepted request; 0 = rejected
  std::uint32_t slot = 0;  ///< slot index inside the scheduler's table
  std::uint32_t lane = 0;  ///< admission lane the request rides
  [[nodiscard]] bool accepted() const noexcept { return id != 0; }
};

struct AsyncOptions {
  /// Engine shards. Each shard owns one SchedulerEngine (and through it a
  /// pooled workspace set) and one coalescing queue; accepted requests are
  /// routed round-robin in submission order. More shards = more batches in
  /// flight concurrently on the shared pool.
  int shards = 1;
  /// Size-triggered flush: a shard dispatches as soon as this many
  /// requests are waiting (a dispatched batch never exceeds this size).
  int max_batch = 16;
  /// Deadline-triggered flush: no accepted request waits in a coalescing
  /// queue longer than about this long before its shard is dispatched,
  /// even when the batch is not full. <= 0 dispatches on every submit
  /// (lowest latency, smallest batches).
  double flush_after_ms = 1.0;
  /// Admission bound: maximum requests in flight (accepted but not yet
  /// take()n). Stream feeds and closes occupy the same slot table as
  /// one-shot requests. Beyond it, submit returns a rejected Ticket.
  int queue_capacity = 1024;
  /// Materialise a Schedule per result (metrics-only serving when false —
  /// the allocation-free path).
  bool keep_schedules = false;
  /// Maximum concurrently open streams; open_stream returns a rejected
  /// StreamTicket beyond it.
  int max_streams = 64;
  /// Admission policy (serve/admission.hpp), borrowed for the scheduler's
  /// whole life: its lane table is copied at construction and its
  /// classify hooks run on every submit without an explicit lane.
  /// nullptr = FifoAdmission (one lane, pure FIFO — the pre-policy
  /// behaviour, bit-compatible).
  const AdmissionPolicy* admission = nullptr;
  /// Deterministic chaos plan (serve/fault.hpp). Default-constructed =
  /// disabled: the drain loop never consults the injector and the serving
  /// path is exactly the pre-fault one. Validated at construction (throws
  /// std::invalid_argument on bad rates or scripted points).
  FaultPlan faults;
  /// Bounded retry with exponential backoff for faulted one-shot batches.
  /// Default (max_attempts == 1) keeps failures final on first attempt.
  /// Throws std::invalid_argument when max_attempts < 1 or
  /// base_backoff_ms < 0.
  RetryPolicy retry;
  /// Liveness watchdog: a shard whose strand has been inside a drain for
  /// longer than about this long without a heartbeat is declared failed —
  /// its queued one-shots fail over to surviving shards and its streams
  /// migrate when the stalled strand resumes. <= 0 disables the watchdog.
  /// Never fails the last alive shard.
  double watchdog_ms = 0.0;
  /// Decision cache for recurring workload shapes
  /// (core/decision_cache.hpp), borrowed for the scheduler's whole life
  /// and shared by every shard's engine. nullptr (default) = no caching,
  /// the exact pre-cache path. With a cache, one-shot requests whose
  /// policy opts in (SchedulingPolicy::cache_key() != 0 and
  /// EngineRequest::bypass_cache unset) replay recurring shapes instead
  /// of re-running the policy — bit-identical results, hit/miss/evict
  /// counters in AsyncStats.
  DecisionCache* cache = nullptr;
};

/// Per-lane cumulative counters (one row per admission lane, in lane
/// order) inside AsyncStats.
struct LaneStats {
  std::string name;              ///< LaneSpec::name
  std::uint64_t submitted = 0;   ///< accepted into this lane
  std::uint64_t rejected = 0;    ///< refused at admission in this lane
  std::uint64_t completed = 0;   ///< reached Done/Failed in this lane
  std::uint64_t in_flight = 0;   ///< accepted, not yet take()n
};

/// Cumulative counters; read through AsyncScheduler::stats().
struct AsyncStats {
  std::uint64_t submitted = 0;         ///< accepted requests
  std::uint64_t rejected = 0;          ///< refused at admission
  std::uint64_t completed = 0;         ///< reached Done
  std::uint64_t failed = 0;            ///< reached Failed
  std::uint64_t batches = 0;           ///< engine batches dispatched
  std::uint64_t size_flushes = 0;  ///< dispatches triggered by max_batch
  /// Dispatches triggered by the deadline policy — the background flusher
  /// when flush_after_ms > 0, submit-time immediate dispatch (deadline 0)
  /// when flush_after_ms <= 0.
  std::uint64_t deadline_flushes = 0;
  std::uint64_t forced_flushes = 0;    ///< dispatches via flush()/wait()/drain()
  std::uint64_t streams_opened = 0;    ///< accepted open_stream calls
  std::uint64_t streams_closed = 0;    ///< executed close_stream requests
  std::uint64_t stream_feeds = 0;      ///< accepted submit_stream calls
  std::uint64_t stream_rejected = 0;   ///< open_stream refusals (table full)
  std::uint64_t cancelled = 0;         ///< reached Cancelled (cancel())
  std::uint64_t dropped = 0;           ///< Cancelled by a lane max_queue_ms
  std::uint64_t retried = 0;           ///< re-queued attempts under RetryPolicy
  std::uint64_t failed_over = 0;       ///< one-shots rerouted off a failed shard
  std::uint64_t shards_failed = 0;     ///< shards declared failed (death/watchdog)
  std::uint64_t streams_migrated = 0;  ///< streams checkpointed onto a new shard
  std::uint64_t faults_injected = 0;   ///< FaultInjector decisions that fired
  std::uint64_t cache_hits = 0;        ///< decision-cache replays (AsyncOptions::cache)
  std::uint64_t cache_misses = 0;      ///< decision-cache lookups that ran fresh
  std::uint64_t cache_evictions = 0;   ///< decision-cache records recycled (CLOCK)
  // Speculative frontier decisions across all streams opened with
  // StreamOptions::speculate (see OnlineStream::set_speculate).
  std::uint64_t spec_decided = 0;      ///< batches decided ahead of watermark
  std::uint64_t spec_committed = 0;    ///< staged decisions later confirmed
  std::uint64_t spec_rolled_back = 0;  ///< staged decisions invalidated
  std::vector<LaneStats> lanes;        ///< per-lane rows, in lane order
};

/// Per-stream configuration for open_stream. The reservations vector is
/// copied at open; everything else is plain data (the policy, when set,
/// is borrowed for the stream's whole life).
struct StreamOptions {
  int m = 1;                  ///< machine size the stream schedules onto
  const std::vector<NodeReservation>* reservations = nullptr;
  /// Deprecated adapter pair, used only while `policy == nullptr`.
  EngineAlgorithm offline_algorithm = EngineAlgorithm::FlatList;
  DemtOptions demt;           ///< options when offline_algorithm == Demt
  /// Per-batch off-line policy of every decision this stream makes;
  /// overrides the enum pair when set.
  const SchedulingPolicy* policy = nullptr;
  /// Decide batches speculatively ahead of the watermark (see
  /// OnlineStream::set_speculate). Off by default; deliveries are
  /// bit-identical either way — speculation trades idle shard time for
  /// lower feed-to-decision latency and shows up in the AsyncStats
  /// spec_* counters.
  bool speculate = false;
  /// Speculation budget per frontier advance for this stream (see
  /// OnlineStream::set_speculate_depth); 0 = unlimited. Bounds the work a
  /// rollback-heavy tape wastes; only meaningful with `speculate` on.
  int speculate_depth = 0;
};

/// Handle to one open stream. Value type, freely copyable; id 0 means
/// open_stream refused (stream table full or scheduler stopping). `lane`
/// is the admission lane every feed/close of the stream rides.
struct StreamTicket {
  std::uint64_t id = 0;     ///< unique per accepted stream; 0 = rejected
  std::uint32_t index = 0;  ///< entry inside the scheduler's stream table
  std::uint32_t lane = 0;   ///< admission lane of the stream's feeds
  [[nodiscard]] bool accepted() const noexcept { return id != 0; }
};

class AsyncScheduler {
 public:
  /// Throws std::invalid_argument on non-positive shards, max_batch, or
  /// queue_capacity.
  explicit AsyncScheduler(AsyncOptions options = {});
  /// Drains in-flight requests, then stops the flusher and strands.
  ~AsyncScheduler();

  AsyncScheduler(const AsyncScheduler&) = delete;
  AsyncScheduler& operator=(const AsyncScheduler&) = delete;

  /// Non-blocking admission into the lane the admission policy picks
  /// (classify; lane 0 without a policy). Returns a rejected Ticket
  /// (accepted() == false) when queue_capacity requests are already in
  /// flight or the lane's own queue_capacity is. The request is copied;
  /// the Instance (and SchedulingPolicy, when set) it points at is
  /// borrowed and must stay alive until the ticket is terminal. Throws
  /// std::invalid_argument on a request without an instance.
  [[nodiscard]] Ticket submit(const EngineRequest& request);

  /// Same, naming the admission lane explicitly (clamped to the lane
  /// table). Explicit lane beats classify.
  [[nodiscard]] Ticket submit(const EngineRequest& request, int lane);

  /// Admission lanes this scheduler serves (>= 1; copied from the policy
  /// at construction).
  [[nodiscard]] int num_lanes() const noexcept;

  /// The lane table entry; throws std::out_of_range on a bad index.
  [[nodiscard]] const LaneSpec& lane_spec(int lane) const;

  /// Non-blocking status check.
  [[nodiscard]] TicketStatus poll(const Ticket& ticket) const noexcept;

  /// Block until the ticket is terminal (forcing its shard to flush so a
  /// partial batch cannot stall the caller); returns the terminal status.
  TicketStatus wait(const Ticket& ticket);

  /// Bounded wait: like wait(), but gives up after about timeout_ms and
  /// returns TicketStatus::TimedOut. A timed-out ticket is NOT consumed —
  /// it stays live, keeps its slot, and may still complete; poll/wait/take
  /// it again later (or cancel it). timeout_ms <= 0 is a flush + poll.
  TicketStatus wait(const Ticket& ticket, double timeout_ms);

  /// Request cancellation of a pending one-shot ticket. Best-effort and
  /// non-blocking: true means the ticket was live and the flag was set —
  /// its shard will complete it as Cancelled when it next pops it, unless
  /// the strand already claimed it for a batch (it then still reaches
  /// Done/Failed). A Cancelled ticket must still be take()n to free its
  /// slot. Stream tickets are not cancellable (returns false): a skipped
  /// feed would corrupt the stream's tape.
  bool cancel(const Ticket& ticket);

  /// Attempt count of a live or terminal ticket: 1 = first attempt, each
  /// RetryPolicy re-queue adds one. 0 for unknown/taken tickets.
  [[nodiscard]] std::uint32_t attempts(const Ticket& ticket) const noexcept;

  /// Move the result out and free the slot for admission. True only when
  /// the ticket was Done (or Failed/Cancelled: `out` is then default
  /// metrics) and names a one-shot request (stream tickets go through
  /// take_stream). After take, the ticket polls as Invalid.
  bool take(const Ticket& ticket, EngineResult& out);

  /// Open a streaming session (paper §5 job mix), pinned to one shard for
  /// its whole life; every feed/close of the stream rides the lane the
  /// admission policy picks (classify_stream). Non-blocking: returns a
  /// rejected StreamTicket when max_streams sessions are open or the
  /// scheduler is stopping. Throws std::invalid_argument on a bad
  /// configuration (m < 1, bad reservation).
  [[nodiscard]] StreamTicket open_stream(const StreamOptions& options);

  /// Same, naming the stream's admission lane explicitly (clamped).
  [[nodiscard]] StreamTicket open_stream(const StreamOptions& options,
                                         int lane);

  /// Enqueue a feed: `count` arrivals plus the stream's new watermark
  /// (same per-stream ordering/validation contract as OnlineStream::feed;
  /// a violating feed completes as Failed and leaves the stream usable).
  /// The arrivals array is borrowed until the returned Ticket is terminal.
  /// Returns a rejected Ticket when the slot table is full, the stream is
  /// unknown or closing, or the scheduler is stopping. Throws
  /// std::invalid_argument on null arrivals with count > 0.
  [[nodiscard]] Ticket submit_stream(const StreamTicket& stream,
                                     const StreamArrival* arrivals,
                                     std::size_t count, double watermark);

  /// Enqueue the final feed: remaining decisions plus the divisible drain
  /// deliver through the returned Ticket with final_delivery == true, and
  /// the stream's table entry frees once the close executes. Returns a
  /// rejected Ticket when the stream is unknown, already closing, or no
  /// slot is free.
  [[nodiscard]] Ticket close_stream(const StreamTicket& stream);

  /// take() for stream tickets: swap the feed's delivery into `out`
  /// (buffer capacity circulates, so a recycled `out` keeps the loop
  /// allocation-free) and free the slot. True only when the ticket was a
  /// Done/Failed stream feed or close; on Failed, `out` is empty and
  /// error(ticket) explained before the take.
  bool take_stream(const Ticket& ticket, StreamDelivery& out);

  /// Streams currently open (accepted, close not yet executed).
  [[nodiscard]] std::size_t open_streams() const noexcept;

  /// Error message of a Failed or Cancelled ticket ("" otherwise). Failed
  /// messages name the failing policy and, under retry, the attempt count.
  /// Valid until take().
  [[nodiscard]] std::string error(const Ticket& ticket) const;

  /// Submit-to-done latency of a Done/Failed/Cancelled ticket, in seconds
  /// (0 while non-terminal). Valid until take().
  [[nodiscard]] double latency_seconds(const Ticket& ticket) const noexcept;

  /// Dispatch every shard's partial batch now (non-blocking).
  void flush();

  /// Block until every accepted request is terminal (Done/Failed). Flushes
  /// as it goes; does not require results to have been take()n. New
  /// submits during drain extend it.
  void drain();

  /// Requests currently in flight (accepted, not yet take()n) — the value
  /// admission compares against queue_capacity.
  [[nodiscard]] std::size_t in_flight() const noexcept;

  [[nodiscard]] AsyncStats stats() const;
  [[nodiscard]] const AsyncOptions& options() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace moldsched
