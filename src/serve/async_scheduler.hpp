/// \file async_scheduler.hpp
/// Asynchronous submit/poll serving layer over sharded SchedulerEngines.
/// The batch engine (engine/engine.hpp) is a blocking call: the caller
/// assembles a whole batch and waits. AsyncScheduler turns it into a
/// server front-end — `submit` returns immediately with a Ticket, requests
/// coalesce into engine batches per shard (flushed when a batch fills or a
/// deadline passes), shard strands execute on the process-wide
/// shared_thread_pool(), and `poll`/`wait`/`take` retrieve results.
///
/// Admission control: the scheduler owns a fixed table of
/// `queue_capacity` request slots. When every slot is in flight
/// (submitted but not yet take()n), submit refuses the request with a
/// rejected Ticket (`poll` == TicketStatus::Rejected) instead of growing
/// a queue without bound.
///
/// Determinism contract: a request's result is a pure function of the
/// EngineRequest — the engine's per-request determinism (pre-forked
/// shuffle RNG streams, sequential acceptance replay) makes every DEMT
/// call self-contained — so results are bit-identical to the synchronous
/// `SchedulerEngine::schedule_batch` path for any shard count, pool size,
/// batch size, and flush timing. Only latency and throughput change.
///
/// Allocation contract: after warm-up, the submit → coalesce → dispatch →
/// poll/take cycle performs zero heap allocations per request on the
/// metrics-only FlatList path (slot table, MPMC rings, and strand posting
/// are all pre-allocated; measured by bench/serve_throughput.cpp).
///
/// Threading: submit/poll/wait/take/flush are safe from any number of
/// threads. Each Ticket has one consumer: two threads must not wait on or
/// take the same Ticket. Never call wait/drain from a shared-pool worker
/// thread (the strand you would wait on may be queued behind you).
///
/// Full operator documentation (lifecycle diagram, tuning, failure
/// semantics): docs/SERVING.md.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.hpp"

namespace moldsched {

/// Lifecycle of a submitted request. Terminal states: Rejected, Done,
/// Failed — plus Invalid once the ticket's slot has been take()n (or for a
/// ticket this scheduler never issued).
enum class TicketStatus {
  Invalid,   ///< unknown ticket: never issued, already taken, slot reused
  Rejected,  ///< refused at admission: queue_capacity slots already in flight
  Pending,   ///< accepted; waiting in its shard's coalescing queue
  Running,   ///< being served inside an engine batch on a shard strand
  Done,      ///< result available through take()
  Failed,    ///< the engine threw for this batch; error(ticket) explains
};

/// Human-readable status name (stable strings, for logs and benches).
[[nodiscard]] const char* to_string(TicketStatus status) noexcept;

/// Handle to one submitted request. Value type, freely copyable; id 0
/// means the request was rejected at admission.
struct Ticket {
  std::uint64_t id = 0;    ///< unique per accepted request; 0 = rejected
  std::uint32_t slot = 0;  ///< slot index inside the scheduler's table
  [[nodiscard]] bool accepted() const noexcept { return id != 0; }
};

struct AsyncOptions {
  /// Engine shards. Each shard owns one SchedulerEngine (and through it a
  /// pooled workspace set) and one coalescing queue; accepted requests are
  /// routed round-robin in submission order. More shards = more batches in
  /// flight concurrently on the shared pool.
  int shards = 1;
  /// Size-triggered flush: a shard dispatches as soon as this many
  /// requests are waiting (a dispatched batch never exceeds this size).
  int max_batch = 16;
  /// Deadline-triggered flush: no accepted request waits in a coalescing
  /// queue longer than about this long before its shard is dispatched,
  /// even when the batch is not full. <= 0 dispatches on every submit
  /// (lowest latency, smallest batches).
  double flush_after_ms = 1.0;
  /// Admission bound: maximum requests in flight (accepted but not yet
  /// take()n). Beyond it, submit returns a rejected Ticket.
  int queue_capacity = 1024;
  /// Materialise a Schedule per result (metrics-only serving when false —
  /// the allocation-free path).
  bool keep_schedules = false;
};

/// Cumulative counters; read through AsyncScheduler::stats().
struct AsyncStats {
  std::uint64_t submitted = 0;         ///< accepted requests
  std::uint64_t rejected = 0;          ///< refused at admission
  std::uint64_t completed = 0;         ///< reached Done
  std::uint64_t failed = 0;            ///< reached Failed
  std::uint64_t batches = 0;           ///< engine batches dispatched
  std::uint64_t size_flushes = 0;  ///< dispatches triggered by max_batch
  /// Dispatches triggered by the deadline policy — the background flusher
  /// when flush_after_ms > 0, submit-time immediate dispatch (deadline 0)
  /// when flush_after_ms <= 0.
  std::uint64_t deadline_flushes = 0;
  std::uint64_t forced_flushes = 0;    ///< dispatches via flush()/wait()/drain()
};

class AsyncScheduler {
 public:
  /// Throws std::invalid_argument on non-positive shards, max_batch, or
  /// queue_capacity.
  explicit AsyncScheduler(AsyncOptions options = {});
  /// Drains in-flight requests, then stops the flusher and strands.
  ~AsyncScheduler();

  AsyncScheduler(const AsyncScheduler&) = delete;
  AsyncScheduler& operator=(const AsyncScheduler&) = delete;

  /// Non-blocking admission. Returns a rejected Ticket (accepted() ==
  /// false) when queue_capacity requests are already in flight. The
  /// request is copied; the Instance it points at is borrowed and must
  /// stay alive until the ticket is terminal. Throws std::invalid_argument
  /// on a request without an instance.
  [[nodiscard]] Ticket submit(const EngineRequest& request);

  /// Non-blocking status check.
  [[nodiscard]] TicketStatus poll(const Ticket& ticket) const noexcept;

  /// Block until the ticket is terminal (forcing its shard to flush so a
  /// partial batch cannot stall the caller); returns the terminal status.
  TicketStatus wait(const Ticket& ticket);

  /// Move the result out and free the slot for admission. True only when
  /// the ticket was Done (or Failed: `out` is then default metrics). After
  /// take, the ticket polls as Invalid.
  bool take(const Ticket& ticket, EngineResult& out);

  /// Error message of a Failed ticket ("" otherwise). Valid until take().
  [[nodiscard]] std::string error(const Ticket& ticket) const;

  /// Submit-to-done latency of a Done/Failed ticket, in seconds (0 while
  /// non-terminal). Valid until take().
  [[nodiscard]] double latency_seconds(const Ticket& ticket) const noexcept;

  /// Dispatch every shard's partial batch now (non-blocking).
  void flush();

  /// Block until every accepted request is terminal (Done/Failed). Flushes
  /// as it goes; does not require results to have been take()n. New
  /// submits during drain extend it.
  void drain();

  /// Requests currently in flight (accepted, not yet take()n) — the value
  /// admission compares against queue_capacity.
  [[nodiscard]] std::size_t in_flight() const noexcept;

  [[nodiscard]] AsyncStats stats() const;
  [[nodiscard]] const AsyncOptions& options() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace moldsched
