/// \file admission.hpp
/// Pluggable admission control for the async serving layer
/// (serve/async_scheduler.hpp). The pre-policy scheduler owned a fixed
/// slot table with one FIFO: every accepted request waited in the same
/// line, and the only knob was the global `queue_capacity`. AdmissionPolicy
/// generalises that into **priority lanes**: a fixed set of lanes (name,
/// weight, optional per-lane in-flight bound), a classification hook that
/// assigns submissions to lanes, and weighted-fair service — each shard
/// pops its pending work across lanes in proportion to the lane weights
/// (work-conserving deficit round-robin), FIFO within a lane.
///
/// What stays true with lanes on:
///  * the global `queue_capacity` slot table still bounds total in-flight
///    work — lanes subdivide it, they never extend it;
///  * results stay bit-identical to the synchronous engine (lanes change
///    *when* a request runs, never *what* it computes);
///  * the steady-state submit → dispatch → take cycle stays allocation-free
///    (lane queues and counters are pre-allocated at construction);
///  * a stream's feeds all ride the stream's lane, so per-stream FIFO
///    order — and therefore ordered stream delivery — is preserved.
///
/// The policy object is borrowed by the AsyncScheduler for its whole life:
/// the lane table is copied at construction, but `classify`/
/// `classify_stream` are consulted on every submit without an explicit
/// lane. A policy must therefore be immutable and thread-safe (the
/// built-ins are stateless). Passing no policy gives `FifoAdmission` —
/// one lane, exactly the pre-policy behaviour.

#pragma once

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace moldsched {

struct StreamOptions;  // serve/async_scheduler.hpp

/// One priority lane of the admission table.
struct LaneSpec {
  std::string name = "default";  ///< stable label (stats, benches, logs)
  /// Weighted-fair share: with backlog everywhere, a shard serves lanes in
  /// proportion to their weights. Must be >= 1.
  int weight = 1;
  /// Per-lane admission bound: maximum requests of this lane in flight
  /// (accepted, not yet taken). <= 0 means no per-lane bound — only the
  /// scheduler-wide queue_capacity applies.
  int queue_capacity = 0;
  /// Deadline-based drop: a one-shot request of this lane that has waited
  /// longer than about this long in its shard's coalescing queue is
  /// completed as Cancelled instead of served (counted in
  /// AsyncStats::dropped; the slot still needs take()). <= 0 disables the
  /// drop. Stream feeds are exempt — skipping one would corrupt the tape.
  double max_queue_ms = 0.0;
};

/// The admission decision surface: which lanes exist and who goes where.
/// Subclass to add lanes or content-based classification; the scheduler
/// copies the lane table at construction and calls classify on every
/// submit that does not name a lane explicitly.
class AdmissionPolicy {
 public:
  AdmissionPolicy() = default;
  virtual ~AdmissionPolicy();
  AdmissionPolicy(const AdmissionPolicy&) = delete;
  AdmissionPolicy& operator=(const AdmissionPolicy&) = delete;

  /// The lane table, size >= 1; lane 0 is the default. Copied once at
  /// scheduler construction — lanes are fixed for the scheduler's life.
  [[nodiscard]] virtual std::vector<LaneSpec> lanes() const = 0;

  /// Lane of a one-shot request submitted without an explicit lane.
  /// Out-of-range returns are clamped to the lane table. Default: lane 0.
  [[nodiscard]] virtual int classify(
      const EngineRequest& request) const noexcept;

  /// Lane of a stream opened without an explicit lane; the stream's feeds
  /// and close all ride this lane. Default: lane 0.
  [[nodiscard]] virtual int classify_stream(
      const StreamOptions& options) const noexcept;
};

/// The pre-policy behaviour: one lane, pure FIFO, global bound only. This
/// is what an AsyncScheduler constructed without a policy uses.
class FifoAdmission final : public AdmissionPolicy {
 public:
  [[nodiscard]] std::vector<LaneSpec> lanes() const override;
};

/// A fixed lane table served weighted-fair. Classification is by explicit
/// lane on submit (or `default_lane` when none is given); subclass
/// AdmissionPolicy directly for content-based routing.
class WeightedLanesAdmission : public AdmissionPolicy {
 public:
  /// Throws std::invalid_argument on an empty table, a weight < 1, or a
  /// default_lane outside the table.
  explicit WeightedLanesAdmission(std::vector<LaneSpec> lanes,
                                  int default_lane = 0);

  [[nodiscard]] std::vector<LaneSpec> lanes() const override;
  [[nodiscard]] int classify(
      const EngineRequest& request) const noexcept override;
  [[nodiscard]] int classify_stream(
      const StreamOptions& options) const noexcept override;

 private:
  std::vector<LaneSpec> lanes_;
  int default_lane_ = 0;
};

}  // namespace moldsched
