#include "serve/admission.hpp"

#include <stdexcept>
#include <utility>

namespace moldsched {

AdmissionPolicy::~AdmissionPolicy() = default;

int AdmissionPolicy::classify(const EngineRequest& /*request*/) const noexcept {
  return 0;
}

int AdmissionPolicy::classify_stream(
    const StreamOptions& /*options*/) const noexcept {
  return 0;
}

std::vector<LaneSpec> FifoAdmission::lanes() const {
  return {LaneSpec{}};  // one unbounded default lane
}

WeightedLanesAdmission::WeightedLanesAdmission(std::vector<LaneSpec> lanes,
                                               int default_lane)
    : lanes_(std::move(lanes)), default_lane_(default_lane) {
  if (lanes_.empty()) {
    throw std::invalid_argument("WeightedLanesAdmission: no lanes");
  }
  for (const auto& lane : lanes_) {
    if (lane.weight < 1) {
      throw std::invalid_argument("WeightedLanesAdmission: weight < 1");
    }
  }
  if (default_lane_ < 0 ||
      default_lane_ >= static_cast<int>(lanes_.size())) {
    throw std::invalid_argument(
        "WeightedLanesAdmission: default_lane out of range");
  }
}

std::vector<LaneSpec> WeightedLanesAdmission::lanes() const { return lanes_; }

int WeightedLanesAdmission::classify(
    const EngineRequest& /*request*/) const noexcept {
  return default_lane_;
}

int WeightedLanesAdmission::classify_stream(
    const StreamOptions& /*options*/) const noexcept {
  return default_lane_;
}

}  // namespace moldsched
