#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace moldsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Reservations are modelled as pseudo-jobs pinned to one processor: the
/// scheduler treats the processor as busy for the interval. They are merged
/// into the event flow by pre-loading the finish-event queue.
struct Event {
  double time;
  std::vector<int> procs;
  bool operator>(const Event& other) const { return time > other.time; }
};

}  // namespace

Schedule list_schedule(int m, int num_tasks, const std::vector<ListJob>& jobs,
                       const ListScheduleOptions& options) {
  Schedule schedule(m, num_tasks);
  std::vector<bool> seen(static_cast<std::size_t>(num_tasks), false);
  for (const auto& job : jobs) {
    if (job.task < 0 || job.task >= num_tasks) {
      throw std::invalid_argument("list_schedule: task index out of range");
    }
    if (seen[static_cast<std::size_t>(job.task)]) {
      throw std::invalid_argument("list_schedule: duplicate task in list");
    }
    seen[static_cast<std::size_t>(job.task)] = true;
    if (job.nprocs < 1 || job.nprocs > m) {
      throw std::invalid_argument("list_schedule: allotment out of range");
    }
    if (!(job.duration > 0.0) || !std::isfinite(job.duration)) {
      throw std::invalid_argument("list_schedule: bad duration");
    }
    if (job.release < 0.0) {
      throw std::invalid_argument("list_schedule: negative release");
    }
  }

  std::vector<bool> idle(static_cast<std::size_t>(m), true);
  int idle_count = m;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> finish_events;

  // Reservations: mark the processor busy now if the interval has begun, or
  // schedule a "steal" at its start. To keep the machinery simple we require
  // reservation intervals not to overlap each other on a processor; the
  // online simulator guarantees this.
  struct PendingReservation {
    double start, finish;
    int proc;
  };
  std::vector<PendingReservation> pending_res;
  pending_res.reserve(options.reservations.size());
  for (const auto& r : options.reservations) {
    if (r.proc < 0 || r.proc >= m || !(r.finish > r.start)) {
      throw std::invalid_argument("list_schedule: bad reservation");
    }
    pending_res.push_back({r.start, r.finish, r.proc});
  }
  std::sort(pending_res.begin(), pending_res.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  std::size_t next_res = 0;

  std::vector<ListJob> pending(jobs.begin(), jobs.end());
  std::vector<bool> done(pending.size(), false);
  std::size_t remaining = pending.size();

  double now = 0.0;
  const double tol = 1e-12;

  auto activate_reservations = [&](double t) {
    while (next_res < pending_res.size() &&
           pending_res[next_res].start <= t + tol) {
      const auto& r = pending_res[next_res];
      // The processor must be idle when the reservation begins; the caller
      // (online simulator) aligns reservations with idle periods.
      if (!idle[static_cast<std::size_t>(r.proc)]) {
        throw std::logic_error(
            "list_schedule: reservation starts on a busy processor");
      }
      idle[static_cast<std::size_t>(r.proc)] = false;
      --idle_count;
      finish_events.push(Event{r.finish, {r.proc}});
      ++next_res;
    }
  };

  activate_reservations(now);

  while (remaining > 0) {
    // Start every pending job that fits, in list order.
    for (std::size_t j = 0; j < pending.size() && idle_count > 0; ++j) {
      if (done[j]) continue;
      const ListJob& job = pending[j];
      if (job.release > now + tol) continue;
      if (job.nprocs > idle_count) continue;
      // Check no reservation begins on a chosen processor before the job
      // would finish: pick the lowest-numbered idle processors that are
      // reservation-free for [now, now + duration).
      std::vector<int> chosen;
      chosen.reserve(static_cast<std::size_t>(job.nprocs));
      const double finish = now + job.duration;
      for (int p = 0; p < m && static_cast<int>(chosen.size()) < job.nprocs;
           ++p) {
        if (!idle[static_cast<std::size_t>(p)]) continue;
        bool blocked = false;
        for (std::size_t r = next_res; r < pending_res.size(); ++r) {
          if (pending_res[r].proc == p && pending_res[r].start < finish - tol) {
            blocked = true;
            break;
          }
        }
        if (!blocked) chosen.push_back(p);
      }
      if (static_cast<int>(chosen.size()) < job.nprocs) continue;
      for (int p : chosen) idle[static_cast<std::size_t>(p)] = false;
      idle_count -= job.nprocs;
      schedule.place(job.task, now, job.duration, chosen);
      finish_events.push(Event{finish, std::move(chosen)});
      done[j] = true;
      --remaining;
    }
    if (remaining == 0) break;

    // Advance time to the next finish event, job release, or reservation
    // start.
    double next_time = kInf;
    if (!finish_events.empty()) next_time = finish_events.top().time;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (!done[j] && pending[j].release > now + tol) {
        next_time = std::min(next_time, pending[j].release);
      }
    }
    if (next_res < pending_res.size()) {
      next_time = std::min(next_time, pending_res[next_res].start);
    }
    if (!std::isfinite(next_time) || next_time <= now + tol) {
      // No event can unblock the remaining jobs: impossible unless a job
      // needs more processors than will ever be simultaneously free.
      throw std::logic_error("list_schedule: deadlock (jobs cannot fit)");
    }
    now = next_time;
    while (!finish_events.empty() && finish_events.top().time <= now + tol) {
      for (int p : finish_events.top().procs) {
        idle[static_cast<std::size_t>(p)] = true;
        ++idle_count;
      }
      finish_events.pop();
    }
    activate_reservations(now);
  }
  return schedule;
}

}  // namespace moldsched
