#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace moldsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = 1e-12;

struct EventLater {
  bool operator()(const ListPassWorkspace::FinishEvent& a,
                  const ListPassWorkspace::FinishEvent& b) const noexcept {
    return a.time > b.time;
  }
};

}  // namespace

void list_schedule_into(int m, int num_entries,
                        const std::vector<BusyInterval>& reservations,
                        ListPassWorkspace& ws, FlatPlacements& out) {
  out.reset(num_entries);
  ws.events.clear();
  ws.idle.assign(static_cast<std::size_t>(m), 1);
  ws.done.assign(ws.jobs.size(), 0);
  int idle_count = m;

  // Reservations, sorted by start and bucketed per processor: chain
  // same-processor intervals so next_res_start[p] always holds the earliest
  // pending (not yet begun) reservation on p — the blocked-processor test
  // in the start loop then costs O(1) per processor instead of a scan over
  // every pending reservation.
  ws.reservations.clear();
  ws.next_res_start.assign(static_cast<std::size_t>(m), kInf);
  for (const auto& r : reservations) {
    if (r.proc < 0 || r.proc >= m || !(r.finish > r.start)) {
      throw std::invalid_argument("list_schedule: bad reservation");
    }
    ws.reservations.push_back({r.start, r.finish, r.proc, -1});
  }
  if (!ws.reservations.empty()) {
    std::sort(ws.reservations.begin(), ws.reservations.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    ws.res_head.assign(static_cast<std::size_t>(m), -1);
    for (std::size_t i = ws.reservations.size(); i-- > 0;) {
      auto& r = ws.reservations[i];
      const auto p = static_cast<std::size_t>(r.proc);
      r.next_on_proc = ws.res_head[p];
      ws.res_head[p] = static_cast<int>(i);
    }
    for (int p = 0; p < m; ++p) {
      const int head = ws.res_head[static_cast<std::size_t>(p)];
      if (head >= 0) {
        ws.next_res_start[static_cast<std::size_t>(p)] =
            ws.reservations[static_cast<std::size_t>(head)].start;
      }
    }
  }

  std::size_t next_res = 0;
  std::size_t remaining = ws.jobs.size();
  double now = 0.0;

  const auto push_event = [&](double time, int entry) {
    ws.events.push_back({time, entry});
    std::push_heap(ws.events.begin(), ws.events.end(), EventLater{});
  };

  const auto activate_reservations = [&](double t) {
    while (next_res < ws.reservations.size() &&
           ws.reservations[next_res].start <= t + kTol) {
      const auto& r = ws.reservations[next_res];
      const auto p = static_cast<std::size_t>(r.proc);
      // The processor must be idle when the reservation begins; the caller
      // (online simulator) aligns reservations with idle periods.
      if (!ws.idle[p]) {
        throw std::logic_error(
            "list_schedule: reservation starts on a busy processor");
      }
      ws.idle[p] = 0;
      --idle_count;
      push_event(r.finish, -1 - r.proc);
      ws.next_res_start[p] = r.next_on_proc >= 0
                                 ? ws.reservations[static_cast<std::size_t>(
                                                       r.next_on_proc)]
                                       .start
                                 : kInf;
      ++next_res;
    }
  };

  activate_reservations(now);

  while (remaining > 0) {
    // Start every pending job that fits, in list order.
    for (std::size_t j = 0; j < ws.jobs.size() && idle_count > 0; ++j) {
      if (ws.done[j]) continue;
      const ListJob& job = ws.jobs[j];
      if (job.release > now + kTol) continue;
      if (job.nprocs > idle_count) continue;
      // Pick the lowest-numbered idle processors that are reservation-free
      // for [now, now + duration).
      ws.chosen.clear();
      const double finish = now + job.duration;
      for (int p = 0; p < m && static_cast<int>(ws.chosen.size()) < job.nprocs;
           ++p) {
        const auto pi = static_cast<std::size_t>(p);
        if (!ws.idle[pi]) continue;
        if (ws.next_res_start[pi] < finish - kTol) continue;  // blocked
        ws.chosen.push_back(p);
      }
      if (static_cast<int>(ws.chosen.size()) < job.nprocs) continue;
      for (int p : ws.chosen) ws.idle[static_cast<std::size_t>(p)] = 0;
      idle_count -= job.nprocs;
      const auto e = static_cast<std::size_t>(job.task);
      out.start[e] = now;
      out.duration[e] = job.duration;
      out.proc_begin[e] = static_cast<int>(out.proc_ids.size());
      out.proc_count[e] = job.nprocs;
      out.proc_ids.insert(out.proc_ids.end(), ws.chosen.begin(),
                          ws.chosen.end());
      push_event(finish, job.task);
      ws.done[j] = 1;
      --remaining;
    }
    if (remaining == 0) break;

    // Advance time to the next finish event, job release, or reservation
    // start.
    double next_time = ws.events.empty() ? kInf : ws.events.front().time;
    for (std::size_t j = 0; j < ws.jobs.size(); ++j) {
      if (!ws.done[j] && ws.jobs[j].release > now + kTol) {
        next_time = std::min(next_time, ws.jobs[j].release);
      }
    }
    if (next_res < ws.reservations.size()) {
      next_time = std::min(next_time, ws.reservations[next_res].start);
    }
    if (!std::isfinite(next_time) || next_time <= now + kTol) {
      // No event can unblock the remaining jobs: impossible unless a job
      // needs more processors than will ever be simultaneously free.
      throw std::logic_error("list_schedule: deadlock (jobs cannot fit)");
    }
    now = next_time;
    while (!ws.events.empty() && ws.events.front().time <= now + kTol) {
      const auto event = ws.events.front();
      std::pop_heap(ws.events.begin(), ws.events.end(), EventLater{});
      ws.events.pop_back();
      if (event.entry >= 0) {
        const auto e = static_cast<std::size_t>(event.entry);
        const auto begin = static_cast<std::size_t>(out.proc_begin[e]);
        const auto count = static_cast<std::size_t>(out.proc_count[e]);
        for (std::size_t i = begin; i < begin + count; ++i) {
          ws.idle[static_cast<std::size_t>(out.proc_ids[i])] = 1;
        }
        idle_count += out.proc_count[e];
      } else {
        ws.idle[static_cast<std::size_t>(-1 - event.entry)] = 1;
        ++idle_count;
      }
    }
    activate_reservations(now);
  }
}

Schedule list_schedule(int m, int num_tasks, const std::vector<ListJob>& jobs,
                       const ListScheduleOptions& options) {
  // Validate here so the allocation-free core can trust its inputs; same
  // checks and messages as the Schedule-based implementation had.
  if (m < 1) throw std::invalid_argument("Schedule: m must be >= 1");
  if (num_tasks < 0) {
    throw std::invalid_argument("Schedule: num_tasks must be >= 0");
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_tasks), false);
  for (const auto& job : jobs) {
    if (job.task < 0 || job.task >= num_tasks) {
      throw std::invalid_argument("list_schedule: task index out of range");
    }
    if (seen[static_cast<std::size_t>(job.task)]) {
      throw std::invalid_argument("list_schedule: duplicate task in list");
    }
    seen[static_cast<std::size_t>(job.task)] = true;
    if (job.nprocs < 1 || job.nprocs > m) {
      throw std::invalid_argument("list_schedule: allotment out of range");
    }
    if (!(job.duration > 0.0) || !std::isfinite(job.duration)) {
      throw std::invalid_argument("list_schedule: bad duration");
    }
    if (job.release < 0.0) {
      throw std::invalid_argument("list_schedule: negative release");
    }
  }
  thread_local ListPassWorkspace ws;
  thread_local FlatPlacements flat;
  ws.jobs.assign(jobs.begin(), jobs.end());
  list_schedule_into(m, num_tasks, options.reservations, ws, flat);
  return flat.to_schedule(m);
}

}  // namespace moldsched
