#include "sched/flat_schedule.hpp"

#include <algorithm>

namespace moldsched {

void FlatPlacements::reset(int num_entries) {
  const auto n = static_cast<std::size_t>(num_entries);
  start.assign(n, 0.0);
  duration.assign(n, 0.0);
  proc_begin.assign(n, 0);
  proc_count.assign(n, 0);
  proc_ids.clear();
}

void FlatPlacements::assign_from(const Schedule& schedule) {
  reset(schedule.num_tasks());
  for (int t = 0; t < schedule.num_tasks(); ++t) {
    if (!schedule.assigned(t)) continue;
    const Placement& p = schedule.placement(t);
    const auto e = static_cast<std::size_t>(t);
    start[e] = p.start;
    duration[e] = p.duration;
    proc_begin[e] = static_cast<int>(proc_ids.size());
    proc_count[e] = p.nprocs();
    proc_ids.insert(proc_ids.end(), p.procs.begin(), p.procs.end());
  }
}

double FlatPlacements::cmax() const noexcept {
  double best = 0.0;
  for (std::size_t e = 0; e < start.size(); ++e) {
    if (duration[e] > 0.0) best = std::max(best, start[e] + duration[e]);
  }
  return best;
}

double FlatPlacements::weighted_completion_sum(
    const Instance& instance) const noexcept {
  double sum = 0.0;
  for (std::size_t e = 0; e < start.size(); ++e) {
    sum += instance.task(static_cast<int>(e)).weight() *
           (start[e] + duration[e]);
  }
  return sum;
}

FlatMetrics FlatPlacements::metrics(const Instance& instance) const noexcept {
  FlatMetrics out;
  const double* s = start.data();
  const double* d = duration.data();
  for (std::size_t e = 0; e < start.size(); ++e) {
    const double finish = s[e] + d[e];
    out.weighted_completion_sum +=
        instance.task(static_cast<int>(e)).weight() * finish;
    // Same guard as cmax(): unassigned entries never raise the max.
    out.cmax = (d[e] > 0.0 && finish > out.cmax) ? finish : out.cmax;
  }
  return out;
}

void FlatPlacements::copy_from(const FlatPlacements& other) {
  start = other.start;
  duration = other.duration;
  proc_begin = other.proc_begin;
  proc_count = other.proc_count;
  proc_ids = other.proc_ids;
}

void FlatPlacements::materialize_into(int m, Schedule& out) const {
  out.reset(m, size());
  for (int e = 0; e < size(); ++e) {
    if (!assigned(e)) continue;
    const auto idx = static_cast<std::size_t>(e);
    out.place_sorted(e, start[idx], duration[idx],
                     proc_ids.data() + proc_begin[idx], proc_count[idx]);
  }
}

Schedule FlatPlacements::to_schedule(int m) const {
  Schedule schedule(m, size());
  std::vector<int> procs;
  for (int e = 0; e < size(); ++e) {
    if (!assigned(e)) continue;
    const auto begin = static_cast<std::size_t>(
        proc_begin[static_cast<std::size_t>(e)]);
    const auto count = static_cast<std::size_t>(
        proc_count[static_cast<std::size_t>(e)]);
    procs.assign(proc_ids.begin() + static_cast<std::ptrdiff_t>(begin),
                 proc_ids.begin() + static_cast<std::ptrdiff_t>(begin + count));
    schedule.place(e, start[static_cast<std::size_t>(e)],
                   duration[static_cast<std::size_t>(e)], procs);
  }
  return schedule;
}

}  // namespace moldsched
