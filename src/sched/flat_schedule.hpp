/// \file flat_schedule.hpp
/// Flat, cache-friendly placement storage for the scheduler hot path.
/// A Schedule keeps one heap-allocated processor vector per task, which is
/// what a candidate-evaluation loop must never do: evaluating a shuffle
/// candidate only needs starts, durations and weights, and the processor
/// sets can live in one shared pool. FlatPlacements is that view — plain
/// parallel arrays plus a processor-id pool into which entries point, so
/// repeated passes reuse the same capacity and the metrics (`cmax`,
/// `weighted_completion_sum`) are branch-light linear scans with no copies.
/// Only the winning candidate is converted into a real Schedule.

#pragma once

#include <vector>

#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

/// Both schedule metrics from one fused scan (see
/// FlatPlacements::metrics).
struct FlatMetrics {
  double weighted_completion_sum = 0.0;
  double cmax = 0.0;
};

struct FlatPlacements {
  /// Per-entry placement; an entry with duration <= 0 is unassigned. The
  /// processor set of entry e is proc_ids[proc_begin[e] .. +proc_count[e]),
  /// always in ascending processor order. Ranges may be shared (every task
  /// of a merged stack aliases its item's range).
  std::vector<double> start;
  std::vector<double> duration;
  std::vector<int> proc_begin;
  std::vector<int> proc_count;
  std::vector<int> proc_ids;

  /// Clear to `num_entries` unassigned entries; keeps buffer capacity.
  void reset(int num_entries);

  /// Copy a Schedule into the flat form, reusing buffer capacity (the
  /// bridge the online simulator and the engine use to run Schedule-based
  /// plug-ins on the flat path). Unassigned tasks stay unassigned entries;
  /// every double is copied verbatim, so metrics computed on the flat copy
  /// are bit-identical to the Schedule's own.
  void assign_from(const Schedule& schedule);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(start.size());
  }
  [[nodiscard]] bool assigned(int e) const noexcept {
    return duration[static_cast<std::size_t>(e)] > 0.0;
  }
  [[nodiscard]] double finish(int e) const noexcept {
    return start[static_cast<std::size_t>(e)] +
           duration[static_cast<std::size_t>(e)];
  }

  /// Max finish over assigned entries (0 when none).
  [[nodiscard]] double cmax() const noexcept;

  /// Sum of weight * finish over all entries; every entry must be assigned
  /// and sizes must match (callers in the hot path guarantee both).
  [[nodiscard]] double weighted_completion_sum(
      const Instance& instance) const noexcept;

  /// Fused min/argmin-style scan: one entry-order pass accumulates the
  /// weighted completion sum and the running max finish together. Per
  /// element it performs the same adds and the same max comparisons in the
  /// same order as the two separate scans above, so both results are
  /// bit-identical to cmax() / weighted_completion_sum() — it just touches
  /// each cache line once. This is the candidate-metric scan of the DEMT
  /// shuffle loop.
  [[nodiscard]] FlatMetrics metrics(const Instance& instance) const noexcept;

  /// Deep-copy `other`, reusing this object's buffer capacity (vector
  /// copy-assign never reallocates when capacity suffices). The winner
  /// bookkeeping of demt_schedule_into uses this instead of to_schedule.
  void copy_from(const FlatPlacements& other);

  /// Materialise into a Schedule on m processors (assigned entries only).
  [[nodiscard]] Schedule to_schedule(int m) const;

  /// to_schedule into a pooled Schedule: `out` is reset to the right
  /// shape (per-task vector capacity kept) and refilled via place_sorted,
  /// so a steady keep_schedules serving loop that reuses its result
  /// objects stops allocating per batch. Same output as to_schedule.
  void materialize_into(int m, Schedule& out) const;
};

}  // namespace moldsched
