/// \file flat_schedule.hpp
/// Flat, cache-friendly placement storage for the scheduler hot path.
/// A Schedule keeps one heap-allocated processor vector per task, which is
/// what a candidate-evaluation loop must never do: evaluating a shuffle
/// candidate only needs starts, durations and weights, and the processor
/// sets can live in one shared pool. FlatPlacements is that view — plain
/// parallel arrays plus a processor-id pool into which entries point, so
/// repeated passes reuse the same capacity and the metrics (`cmax`,
/// `weighted_completion_sum`) are branch-light linear scans with no copies.
/// Only the winning candidate is converted into a real Schedule.

#pragma once

#include <vector>

#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

struct FlatPlacements {
  /// Per-entry placement; an entry with duration <= 0 is unassigned. The
  /// processor set of entry e is proc_ids[proc_begin[e] .. +proc_count[e]),
  /// always in ascending processor order. Ranges may be shared (every task
  /// of a merged stack aliases its item's range).
  std::vector<double> start;
  std::vector<double> duration;
  std::vector<int> proc_begin;
  std::vector<int> proc_count;
  std::vector<int> proc_ids;

  /// Clear to `num_entries` unassigned entries; keeps buffer capacity.
  void reset(int num_entries);

  /// Copy a Schedule into the flat form, reusing buffer capacity (the
  /// bridge the online simulator and the engine use to run Schedule-based
  /// plug-ins on the flat path). Unassigned tasks stay unassigned entries;
  /// every double is copied verbatim, so metrics computed on the flat copy
  /// are bit-identical to the Schedule's own.
  void assign_from(const Schedule& schedule);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(start.size());
  }
  [[nodiscard]] bool assigned(int e) const noexcept {
    return duration[static_cast<std::size_t>(e)] > 0.0;
  }
  [[nodiscard]] double finish(int e) const noexcept {
    return start[static_cast<std::size_t>(e)] +
           duration[static_cast<std::size_t>(e)];
  }

  /// Max finish over assigned entries (0 when none).
  [[nodiscard]] double cmax() const noexcept;

  /// Sum of weight * finish over all entries; every entry must be assigned
  /// and sizes must match (callers in the hot path guarantee both).
  [[nodiscard]] double weighted_completion_sum(
      const Instance& instance) const noexcept;

  /// Materialise into a Schedule on m processors (assigned entries only).
  [[nodiscard]] Schedule to_schedule(int m) const;

  /// to_schedule into a pooled Schedule: `out` is reset to the right
  /// shape (per-task vector capacity kept) and refilled via place_sorted,
  /// so a steady keep_schedules serving loop that reuses its result
  /// objects stops allocating per batch. Same output as to_schedule.
  void materialize_into(int m, Schedule& out) const;
};

}  // namespace moldsched
