#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace moldsched {

Schedule::Schedule(int m, int num_tasks) : m_(m) {
  if (m < 1) throw std::invalid_argument("Schedule: m must be >= 1");
  if (num_tasks < 0) {
    throw std::invalid_argument("Schedule: num_tasks must be >= 0");
  }
  placements_.resize(static_cast<std::size_t>(num_tasks));
  placed_.resize(static_cast<std::size_t>(num_tasks), false);
}

void Schedule::reset(int m, int num_tasks) {
  if (m < 1) throw std::invalid_argument("Schedule: m must be >= 1");
  if (num_tasks < 0) {
    throw std::invalid_argument("Schedule: num_tasks must be >= 0");
  }
  m_ = m;
  const auto n = static_cast<std::size_t>(num_tasks);
  if (placements_.size() > n) placements_.resize(n);
  for (auto& p : placements_) {
    p.start = 0.0;
    p.duration = 0.0;
    p.procs.clear();  // keeps capacity — the point of pooling
  }
  placements_.resize(n);
  placed_.assign(n, false);
}

void Schedule::check_task(int task) const {
  if (task < 0 || task >= num_tasks()) {
    throw std::invalid_argument("Schedule: task index out of range");
  }
}

void Schedule::place(int task, double start, double duration,
                     std::vector<int> procs) {
  check_task(task);
  if (!(start >= 0.0) || !std::isfinite(start)) {
    throw std::invalid_argument("Schedule::place: bad start time");
  }
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    throw std::invalid_argument("Schedule::place: bad duration");
  }
  if (procs.empty()) {
    throw std::invalid_argument("Schedule::place: empty processor set");
  }
  std::vector<int> sorted = procs;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() < 0 || sorted.back() >= m_) {
    throw std::invalid_argument("Schedule::place: processor id out of range");
  }
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Schedule::place: duplicate processor id");
  }
  auto& p = placements_[static_cast<std::size_t>(task)];
  p.start = start;
  p.duration = duration;
  p.procs = std::move(sorted);
  placed_[static_cast<std::size_t>(task)] = true;
}

void Schedule::place_sorted(int task, double start, double duration,
                            const int* procs, int count) {
  check_task(task);
  if (!(start >= 0.0) || !std::isfinite(start)) {
    throw std::invalid_argument("Schedule::place: bad start time");
  }
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    throw std::invalid_argument("Schedule::place: bad duration");
  }
  if (count <= 0 || procs == nullptr) {
    throw std::invalid_argument("Schedule::place: empty processor set");
  }
  if (procs[0] < 0 || procs[count - 1] >= m_) {
    throw std::invalid_argument("Schedule::place: processor id out of range");
  }
  for (int i = 1; i < count; ++i) {
    if (procs[i] <= procs[i - 1]) {
      throw std::invalid_argument(
          "Schedule::place_sorted: processor ids not strictly ascending");
    }
  }
  auto& p = placements_[static_cast<std::size_t>(task)];
  p.start = start;
  p.duration = duration;
  p.procs.assign(procs, procs + count);
  placed_[static_cast<std::size_t>(task)] = true;
}

void Schedule::unplace(int task) {
  check_task(task);
  placements_[static_cast<std::size_t>(task)] = Placement{};
  placed_[static_cast<std::size_t>(task)] = false;
}

bool Schedule::complete() const noexcept {
  return std::all_of(placed_.begin(), placed_.end(),
                     [](bool b) { return b; });
}

const Placement& Schedule::placement(int task) const {
  check_task(task);
  if (!placed_[static_cast<std::size_t>(task)]) {
    throw std::logic_error("Schedule::placement: task not assigned");
  }
  return placements_[static_cast<std::size_t>(task)];
}

double Schedule::completion(int task) const {
  return placement(task).finish();
}

double Schedule::cmax() const {
  double best = 0.0;
  for (int i = 0; i < num_tasks(); ++i) {
    best = std::max(best, completion(i));
  }
  return best;
}

double Schedule::weighted_completion_sum(const Instance& instance) const {
  if (instance.num_tasks() != num_tasks()) {
    throw std::logic_error(
        "weighted_completion_sum: instance/schedule size mismatch");
  }
  double sum = 0.0;
  for (int i = 0; i < num_tasks(); ++i) {
    sum += instance.task(i).weight() * completion(i);
  }
  return sum;
}

double Schedule::completion_sum() const {
  double sum = 0.0;
  for (int i = 0; i < num_tasks(); ++i) sum += completion(i);
  return sum;
}

}  // namespace moldsched
