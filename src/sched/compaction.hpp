/// \file compaction.hpp
/// The paper's first schedule-improvement step: "start a task at an earlier
/// time if all the processors it uses are idle". Tasks keep their processor
/// sets; each is pulled back to the latest finish time of the work that
/// precedes it on those processors. Passes repeat until a fixpoint.

#pragma once

#include <vector>

#include "sched/flat_schedule.hpp"
#include "sched/schedule.hpp"

namespace moldsched {

/// Pull every placed task as early as possible without changing processor
/// assignments. Returns the number of tasks that moved. The result is
/// feasible whenever the input is feasible.
int pull_forward(Schedule& schedule);

/// Reusable buffers for the flat pull-forward (hot path): sort order and a
/// per-processor free-time front.
struct CompactionBuffers {
  std::vector<int> order;
  std::vector<double> proc_free;
};

/// Flat-placement pull-forward used by DEMT's shuffle loop: one sweep in
/// (start, entry) order against a per-processor free-time front, which
/// reaches a fixpoint directly (every entry lands tight against a
/// predecessor's finish or zero) in O(n log n + n * procs) without
/// allocating. Returns the number of entries that moved.
int pull_forward(FlatPlacements& flat, int m, CompactionBuffers& buffers);

/// Compaction + candidate metrics in one call: runs the flat pull-forward
/// sweep, then the fused metric scan over the final starts. The metric
/// scan stays a separate entry-order pass (summation order is part of the
/// bit-identity contract), but both metrics come from a single pass. This
/// is what each DEMT shuffle candidate evaluation calls.
FlatMetrics pull_forward_metrics(FlatPlacements& flat, int m,
                                 CompactionBuffers& buffers,
                                 const Instance& instance);

}  // namespace moldsched
