/// \file compaction.hpp
/// The paper's first schedule-improvement step: "start a task at an earlier
/// time if all the processors it uses are idle". Tasks keep their processor
/// sets; each is pulled back to the latest finish time of the work that
/// precedes it on those processors. Passes repeat until a fixpoint.

#pragma once

#include "sched/schedule.hpp"

namespace moldsched {

/// Pull every placed task as early as possible without changing processor
/// assignments. Returns the number of tasks that moved. The result is
/// feasible whenever the input is feasible.
int pull_forward(Schedule& schedule);

}  // namespace moldsched
