/// \file validator.hpp
/// Full feasibility check of a schedule against its instance. Used by every
/// integration/property test and (in debug builds) by the algorithms
/// themselves before returning.

#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

struct ValidationOptions {
  double tol = 1e-9;          ///< tolerance on time comparisons
  bool check_durations = true;///< duration must equal p(nprocs) of the task
  /// Optional per-task release dates (empty = all zero): start >= release.
  std::vector<double> releases;
};

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
};

/// Checks: every task assigned exactly once; processor ids valid; the
/// allotment size is allowed for the task (>= min_procs); the duration
/// matches the task's processing time for that allotment; no two tasks
/// overlap on any processor; releases respected when provided.
[[nodiscard]] ValidationReport validate_schedule(
    const Schedule& schedule, const Instance& instance,
    const ValidationOptions& options = {});

/// Convenience: throws std::runtime_error with the error list when invalid.
void require_valid(const Schedule& schedule, const Instance& instance,
                   const ValidationOptions& options = {});

}  // namespace moldsched
