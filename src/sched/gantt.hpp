/// \file gantt.hpp
/// ASCII Gantt rendering of small schedules, for the example programs and
/// debugging. One row per processor, time quantised to a fixed character
/// width.

#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace moldsched {

struct GanttOptions {
  int width = 72;       ///< characters for the time axis
  int max_procs = 32;   ///< refuse to render wider clusters (returns summary)
};

/// Render the schedule; task i is drawn with the character for digit
/// i % 36 (0-9a-z), '.' marks idle time.
[[nodiscard]] std::string render_gantt(const Schedule& schedule,
                                       const GanttOptions& options = {});

}  // namespace moldsched
