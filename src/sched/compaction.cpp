#include "sched/compaction.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace moldsched {

namespace {

/// One sweep in increasing start order; returns how many tasks moved.
int pull_forward_pass(Schedule& schedule) {
  const int n = schedule.num_tasks();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (schedule.assigned(i)) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return schedule.placement(a).start < schedule.placement(b).start;
  });

  int moved = 0;
  for (int task : order) {
    const Placement p = schedule.placement(task);
    // Earliest legal start on the same processors: the latest finish among
    // other placements on those processors that currently end at or before
    // this task's start. (Disjointness means every other interval on these
    // processors either ends <= p.start or begins >= p.finish; the latter
    // are unaffected by moving earlier.)
    double earliest = 0.0;
    for (int other = 0; other < n; ++other) {
      if (other == task || !schedule.assigned(other)) continue;
      const Placement& q = schedule.placement(other);
      if (q.finish() > p.start + 1e-12) continue;  // runs after; irrelevant
      const bool shares_proc = std::any_of(
          q.procs.begin(), q.procs.end(), [&](int proc) {
            return std::binary_search(p.procs.begin(), p.procs.end(), proc);
          });
      if (shares_proc) earliest = std::max(earliest, q.finish());
    }
    if (earliest + 1e-12 < p.start) {
      schedule.place(task, earliest, p.duration, p.procs);
      ++moved;
    }
  }
  return moved;
}

}  // namespace

int pull_forward(Schedule& schedule) {
  int total = 0;
  // Each pass strictly decreases some start time; the loop terminates
  // because starts snap onto finish times of predecessors. Bound the pass
  // count defensively anyway.
  for (int pass = 0; pass < schedule.num_tasks() + 1; ++pass) {
    const int moved = pull_forward_pass(schedule);
    total += moved;
    if (moved == 0) break;
  }
  return total;
}

int pull_forward(FlatPlacements& flat, int m, CompactionBuffers& buffers) {
  buffers.order.clear();
  for (int e = 0; e < flat.size(); ++e) {
    if (flat.assigned(e)) buffers.order.push_back(e);
  }
  // Deterministic processing order: by start, entry id breaking ties.
  std::sort(buffers.order.begin(), buffers.order.end(), [&](int a, int b) {
    const double sa = flat.start[static_cast<std::size_t>(a)];
    const double sb = flat.start[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  buffers.proc_free.assign(static_cast<std::size_t>(m), 0.0);

  // Sweep: each entry starts at the latest free time over its processors.
  // Feasibility keeps every predecessor (in start order, on a shared
  // processor) finishing at or before this entry's start, and pulling
  // predecessors earlier only lowers their finish, so the new start never
  // exceeds the old one and disjointness is preserved.
  int moved = 0;
  for (int e : buffers.order) {
    const auto ei = static_cast<std::size_t>(e);
    const auto begin = static_cast<std::size_t>(flat.proc_begin[ei]);
    const auto count = static_cast<std::size_t>(flat.proc_count[ei]);
    double earliest = 0.0;
    for (std::size_t i = begin; i < begin + count; ++i) {
      earliest = std::max(
          earliest,
          buffers.proc_free[static_cast<std::size_t>(flat.proc_ids[i])]);
    }
    if (earliest + 1e-12 < flat.start[ei]) {
      flat.start[ei] = earliest;
      ++moved;
    }
    const double finish = flat.start[ei] + flat.duration[ei];
    for (std::size_t i = begin; i < begin + count; ++i) {
      buffers.proc_free[static_cast<std::size_t>(flat.proc_ids[i])] = finish;
    }
  }
  return moved;
}

FlatMetrics pull_forward_metrics(FlatPlacements& flat, int m,
                                 CompactionBuffers& buffers,
                                 const Instance& instance) {
  (void)pull_forward(flat, m, buffers);
  return flat.metrics(instance);
}

}  // namespace moldsched
