/// \file list_scheduler.hpp
/// Event-driven Graham list scheduling for rigid-allotment jobs (the paper's
/// reference [11]): whenever processors become idle, the pending list is
/// scanned in order and every job that fits is started. Used by
///
/// * the Sequential and List-Graham baselines,
/// * DEMT's final compaction pass ("a list algorithm with the batch
///   ordering"), which re-chooses the processor sets,
/// * the online batch simulator (jobs carry release dates there).
///
/// Two entry points share one implementation: the Schedule-returning
/// `list_schedule` (validates its inputs, allocates the result), and the
/// allocation-free `list_schedule_into`, which runs entirely inside a
/// caller-owned ListPassWorkspace and writes flat placements — the form
/// DEMT's shuffle loop calls thousands of times per instance.

#pragma once

#include <cstdint>
#include <vector>

#include "sched/flat_schedule.hpp"
#include "sched/schedule.hpp"

namespace moldsched {

/// One entry of the priority list. `task` indexes the instance / schedule;
/// `nprocs` is the fixed allotment; `duration` its processing time.
struct ListJob {
  int task = -1;
  int nprocs = 1;
  double duration = 0.0;
  double release = 0.0;
};

/// Per-processor busy interval that pre-exists the scheduling pass (node
/// reservations in the online simulator).
struct BusyInterval {
  int proc = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct ListScheduleOptions {
  /// Busy intervals the scheduler must avoid (default none).
  std::vector<BusyInterval> reservations;
};

/// Reusable buffers for repeated list passes. One workspace per thread;
/// every buffer is cleared (capacity kept) at the start of a pass, so after
/// the first pass at a given problem size no further heap allocation
/// happens. Fill `jobs` with the priority list, then call
/// `list_schedule_into`.
struct ListPassWorkspace {
  /// The priority list for the next pass (caller-filled).
  std::vector<ListJob> jobs;

  // -- internal scheduler state (sized by list_schedule_into) --
  /// Min-heap of finish events; entry >= 0 frees a job's processor range,
  /// entry == -1-p frees reservation-held processor p.
  struct FinishEvent {
    double time = 0.0;
    int entry = 0;
  };
  std::vector<FinishEvent> events;
  std::vector<std::uint8_t> idle;  ///< per processor
  std::vector<std::uint8_t> done;  ///< per job
  std::vector<int> chosen;         ///< processor-picking scratch

  // Reservations, bucketed per processor so the "does a reservation begin
  // on p before this job would finish?" test is O(1) instead of a scan of
  // every pending reservation.
  struct Reservation {
    double start = 0.0, finish = 0.0;
    int proc = 0;
    int next_on_proc = -1;  ///< index of the next reservation on this proc
  };
  std::vector<Reservation> reservations;   ///< sorted by start
  std::vector<double> next_res_start;      ///< per proc; +inf when none
  std::vector<int> res_head;               ///< per-proc chain head scratch
};

/// Schedule `jobs` on m processors into a Schedule with `num_tasks` slots
/// (jobs may cover only a subset of tasks; the rest stay unassigned).
/// Throws std::invalid_argument when a job needs more than m processors,
/// has a non-positive duration, or duplicates a task.
[[nodiscard]] Schedule list_schedule(int m, int num_tasks,
                                     const std::vector<ListJob>& jobs,
                                     const ListScheduleOptions& options = {});

/// Allocation-free core: run the list pass for `ws.jobs` on m processors,
/// writing each job's placement into `out` at index `job.task` (entries in
/// [0, num_entries)). Skips input validation — callers own the invariants
/// (in-range tasks and allotments, positive durations, no duplicates).
/// `reservations` may be empty; intervals on one processor must not
/// overlap.
void list_schedule_into(int m, int num_entries,
                        const std::vector<BusyInterval>& reservations,
                        ListPassWorkspace& ws, FlatPlacements& out);

}  // namespace moldsched
