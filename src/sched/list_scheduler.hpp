/// \file list_scheduler.hpp
/// Event-driven Graham list scheduling for rigid-allotment jobs (the paper's
/// reference [11]): whenever processors become idle, the pending list is
/// scanned in order and every job that fits is started. Used by
///
/// * the Sequential and List-Graham baselines,
/// * DEMT's final compaction pass ("a list algorithm with the batch
///   ordering"), which re-chooses the processor sets,
/// * the online batch simulator (jobs carry release dates there).

#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace moldsched {

/// One entry of the priority list. `task` indexes the instance / schedule;
/// `nprocs` is the fixed allotment; `duration` its processing time.
struct ListJob {
  int task = -1;
  int nprocs = 1;
  double duration = 0.0;
  double release = 0.0;
};

/// Per-processor busy interval that pre-exists the scheduling pass (node
/// reservations in the online simulator).
struct BusyInterval {
  int proc = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct ListScheduleOptions {
  /// Busy intervals the scheduler must avoid (default none).
  std::vector<BusyInterval> reservations;
};

/// Schedule `jobs` on m processors into a Schedule with `num_tasks` slots
/// (jobs may cover only a subset of tasks; the rest stay unassigned).
/// Throws std::invalid_argument when a job needs more than m processors,
/// has a non-positive duration, or duplicates a task.
[[nodiscard]] Schedule list_schedule(int m, int num_tasks,
                                     const std::vector<ListJob>& jobs,
                                     const ListScheduleOptions& options = {});

}  // namespace moldsched
