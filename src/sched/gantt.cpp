#include "sched/gantt.hpp"

#include <algorithm>
#include <vector>

#include "util/strfmt.hpp"

namespace moldsched {

std::string render_gantt(const Schedule& schedule, const GanttOptions& options) {
  const int m = schedule.procs();
  const int n = schedule.num_tasks();
  double horizon = 0.0;
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    if (!schedule.assigned(i)) continue;
    horizon = std::max(horizon, schedule.placement(i).finish());
    ++assigned;
  }
  if (assigned == 0) return "(empty schedule)\n";
  if (m > options.max_procs) {
    return strfmt("(gantt omitted: m=%d > %d; cmax=%.4g, %d tasks)\n", m,
                  options.max_procs, horizon, assigned);
  }

  const int width = std::max(options.width, 8);
  const double scale = static_cast<double>(width) / horizon;
  std::vector<std::string> rows(static_cast<std::size_t>(m),
                                std::string(static_cast<std::size_t>(width), '.'));
  for (int i = 0; i < n; ++i) {
    if (!schedule.assigned(i)) continue;
    const Placement& p = schedule.placement(i);
    auto col0 = static_cast<int>(p.start * scale);
    auto col1 = static_cast<int>(p.finish() * scale);
    col0 = std::clamp(col0, 0, width - 1);
    col1 = std::clamp(col1, col0 + 1, width);
    const int digit = i % 36;
    const char c =
        digit < 10 ? static_cast<char>('0' + digit)
                   : static_cast<char>('a' + digit - 10);
    for (int proc : p.procs) {
      auto& row = rows[static_cast<std::size_t>(proc)];
      for (int col = col0; col < col1; ++col) {
        row[static_cast<std::size_t>(col)] = c;
      }
    }
  }

  std::string out;
  out += strfmt("time 0 .. %.4g (one column = %.4g)\n", horizon,
                horizon / width);
  for (int proc = 0; proc < m; ++proc) {
    out += strfmt("p%02d |", proc);
    out += rows[static_cast<std::size_t>(proc)];
    out += "|\n";
  }
  return out;
}

}  // namespace moldsched
