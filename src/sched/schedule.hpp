/// \file schedule.hpp
/// Non-preemptive schedule of moldable tasks on m identical processors:
/// one placement per task (start time, duration, explicit processor set).
/// This is the common output type of every algorithm in moldsched and the
/// input to the validator, the metrics, and the event simulator.

#pragma once

#include <vector>

#include "tasks/instance.hpp"

namespace moldsched {

/// One task's execution: starts at `start`, runs for `duration` on the
/// processors listed in `procs` (ids in [0, m)).
struct Placement {
  double start = 0.0;
  double duration = 0.0;
  std::vector<int> procs;

  [[nodiscard]] int nprocs() const noexcept {
    return static_cast<int>(procs.size());
  }
  [[nodiscard]] double finish() const noexcept { return start + duration; }
};

class Schedule {
 public:
  /// A schedule for `num_tasks` tasks on `m` processors; all tasks start
  /// unassigned.
  Schedule(int m, int num_tasks);

  /// Rebuild in place for a new shape: every task unassigned, machine size
  /// `m` — like constructing Schedule(m, num_tasks), but the per-task
  /// processor vectors keep their heap capacity, so a pooled result object
  /// refilled via place_sorted allocates nothing once warm (the engine's
  /// keep_schedules path relies on this). Throws like the constructor.
  void reset(int m, int num_tasks);

  /// Assign task `task`. Throws std::invalid_argument on malformed
  /// placements (bad task index, empty/duplicate/out-of-range processors,
  /// negative start, non-positive duration).
  void place(int task, double start, double duration, std::vector<int> procs);

  /// place() for a processor range already in strictly ascending order
  /// (the invariant FlatPlacements maintains): same validation and
  /// errors, but copies into the task's pooled vector instead of
  /// sorting a temporary — no allocation once the placement has capacity.
  void place_sorted(int task, double start, double duration, const int* procs,
                    int count);

  /// Remove a task's placement (used by local-search compaction).
  void unplace(int task);

  [[nodiscard]] bool assigned(int task) const {
    return placed_.at(static_cast<std::size_t>(task));
  }
  [[nodiscard]] bool complete() const noexcept;

  [[nodiscard]] const Placement& placement(int task) const;
  [[nodiscard]] int procs() const noexcept { return m_; }
  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(placements_.size());
  }

  /// Completion time of a task. Throws std::logic_error if unassigned.
  [[nodiscard]] double completion(int task) const;

  /// Makespan: max completion over assigned tasks (0 for an empty schedule).
  /// Throws std::logic_error when some task is unassigned.
  [[nodiscard]] double cmax() const;

  /// Weighted sum of completion times with the instance's weights.
  /// Throws std::logic_error when incomplete or size-mismatched.
  [[nodiscard]] double weighted_completion_sum(const Instance& instance) const;

  /// Unweighted sum of completion times.
  [[nodiscard]] double completion_sum() const;

 private:
  void check_task(int task) const;

  int m_;
  std::vector<Placement> placements_;
  std::vector<bool> placed_;
};

}  // namespace moldsched
