#include "sched/validator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strfmt.hpp"

namespace moldsched {

ValidationReport validate_schedule(const Schedule& schedule,
                                   const Instance& instance,
                                   const ValidationOptions& options) {
  ValidationReport report;
  if (schedule.num_tasks() != instance.num_tasks()) {
    report.fail(strfmt("schedule has %d tasks, instance has %d",
                       schedule.num_tasks(), instance.num_tasks()));
    return report;
  }
  if (schedule.procs() != instance.procs()) {
    report.fail(strfmt("schedule has m=%d, instance has m=%d",
                       schedule.procs(), instance.procs()));
    return report;
  }
  if (!options.releases.empty() &&
      options.releases.size() != static_cast<std::size_t>(instance.num_tasks())) {
    report.fail("releases vector size mismatch");
    return report;
  }

  const int n = instance.num_tasks();
  // Per-processor interval lists for the overlap check.
  struct Interval {
    double start, finish;
    int task;
  };
  std::vector<std::vector<Interval>> per_proc(
      static_cast<std::size_t>(schedule.procs()));

  for (int i = 0; i < n; ++i) {
    if (!schedule.assigned(i)) {
      report.fail(strfmt("task %d is not assigned", i));
      continue;
    }
    const Placement& p = schedule.placement(i);
    const MoldableTask& task = instance.task(i);
    const int k = p.nprocs();
    if (k < task.min_procs() || k > task.max_procs()) {
      report.fail(strfmt("task %d allotment %d outside allowed [%d, %d]", i, k,
                         task.min_procs(), task.max_procs()));
      continue;
    }
    if (options.check_durations &&
        std::abs(p.duration - task.time(k)) > options.tol) {
      report.fail(strfmt("task %d duration %.12g != p(%d) = %.12g", i,
                         p.duration, k, task.time(k)));
    }
    if (!options.releases.empty() &&
        p.start + options.tol < options.releases[static_cast<std::size_t>(i)]) {
      report.fail(strfmt("task %d starts at %.12g before release %.12g", i,
                         p.start,
                         options.releases[static_cast<std::size_t>(i)]));
    }
    for (int proc : p.procs) {
      per_proc[static_cast<std::size_t>(proc)].push_back(
          Interval{p.start, p.finish(), i});
    }
  }

  for (int proc = 0; proc < schedule.procs(); ++proc) {
    auto& intervals = per_proc[static_cast<std::size_t>(proc)];
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (std::size_t j = 1; j < intervals.size(); ++j) {
      if (intervals[j].start + options.tol < intervals[j - 1].finish) {
        report.fail(strfmt(
            "processor %d: task %d [%.12g, %.12g) overlaps task %d [%.12g, %.12g)",
            proc, intervals[j - 1].task, intervals[j - 1].start,
            intervals[j - 1].finish, intervals[j].task, intervals[j].start,
            intervals[j].finish));
      }
    }
  }
  return report;
}

void require_valid(const Schedule& schedule, const Instance& instance,
                   const ValidationOptions& options) {
  const auto report = validate_schedule(schedule, instance, options);
  if (report.ok) return;
  std::string message = "invalid schedule:";
  for (const auto& e : report.errors) {
    message += "\n  " + e;
  }
  throw std::runtime_error(message);
}

}  // namespace moldsched
