/// \file dual_test.hpp
/// Two-shelf dual-approximation test for the moldable makespan problem
/// (Mounié–Rapine–Trystram; the paper's references [7]/[17]).
///
/// Given a makespan guess `lambda`, every task is assigned its canonical
/// allotment for either shelf 1 (deadline lambda) or shelf 2 (deadline
/// lambda/2). A knapsack chooses the partition minimising total work under
/// the constraint that shelf-1 allotments sum to at most m processors
/// (tasks that cannot run within lambda/2 on any allotment are forced to
/// shelf 1). The guess is REJECTED — proving OPT > lambda — when
///
///  * some task cannot run within lambda at all, or
///  * shelf-1 demand cannot fit in m processors, or
///  * the minimised total work exceeds m * lambda.
///
/// Rejection is a certificate (any schedule of length lambda induces a
/// partition satisfying all three conditions), so the largest rejected
/// lambda is a valid makespan lower bound. Acceptance feeds the batch sizes
/// of the bi-criteria algorithm and the allotments of the List-Graham
/// baselines.

#pragma once

#include <vector>

#include "tasks/allotment_table.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

enum class Shelf { Large = 1, Small = 2 };

struct ShelfAssignment {
  Shelf shelf = Shelf::Large;
  int allotment = 0;  ///< processors; 0 = infeasible marker
};

struct DualTestResult {
  bool feasible = false;     ///< guess accepted (not refuted)
  double total_work = 0.0;   ///< minimised total work of the partition
  /// Per-task shelf and allotment; meaningful only when feasible.
  std::vector<ShelfAssignment> assignment;
};

/// Run the dual test for guess `lambda` (> 0).
[[nodiscard]] DualTestResult dual_test(const Instance& instance, double lambda);

/// Same test with precomputed allotment tables: canonical / min-work
/// lookups cost O(log max_procs) instead of O(max_procs), and for strictly
/// monotone tasks the shelf-1 Pareto set collapses to the single canonical
/// allotment without a scan. Produces bit-identical results to the
/// table-free overload — the bisection in estimate_cmax builds the tables
/// once and reuses them across all its calls.
[[nodiscard]] DualTestResult dual_test(const Instance& instance, double lambda,
                                       const InstanceAllotments& tables);

}  // namespace moldsched
