/// \file dual_test.hpp
/// Two-shelf dual-approximation test for the moldable makespan problem
/// (Mounié–Rapine–Trystram; the paper's references [7]/[17]).
///
/// Given a makespan guess `lambda`, every task is assigned its canonical
/// allotment for either shelf 1 (deadline lambda) or shelf 2 (deadline
/// lambda/2). A knapsack chooses the partition minimising total work under
/// the constraint that shelf-1 allotments sum to at most m processors
/// (tasks that cannot run within lambda/2 on any allotment are forced to
/// shelf 1). The guess is REJECTED — proving OPT > lambda — when
///
///  * some task cannot run within lambda at all, or
///  * shelf-1 demand cannot fit in m processors, or
///  * the minimised total work exceeds m * lambda.
///
/// Rejection is a certificate (any schedule of length lambda induces a
/// partition satisfying all three conditions), so the largest rejected
/// lambda is a valid makespan lower bound. Acceptance feeds the batch sizes
/// of the bi-criteria algorithm and the allotments of the List-Graham
/// baselines.

#pragma once

#include <cstdint>
#include <vector>

#include "tasks/allotment_table.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

enum class Shelf { Large = 1, Small = 2 };

struct ShelfAssignment {
  Shelf shelf = Shelf::Large;
  int allotment = 0;  ///< processors; 0 = infeasible marker
};

struct DualTestResult {
  bool feasible = false;     ///< guess accepted (not refuted)
  double total_work = 0.0;   ///< minimised total work of the partition
  /// Per-task shelf and allotment; meaningful only when feasible.
  std::vector<ShelfAssignment> assignment;
};

/// Previous-call dual bounds for warm-starting estimate_cmax_into's
/// bisection (opt-in via DemtOptions::warm_dual_start). `hi` is the last
/// accepted estimate, `lo` the final rejected bracket bound (0 when the
/// combinatorial bound was accepted outright). Consecutive online batches
/// are near-identical, so re-testing these two guesses up front usually
/// proves most of the cold search's probes by monotonicity — the search
/// replays the cold trajectory against inferred outcomes and stays
/// bit-identical, only DemtDiagnostics::dual_tests drops. `valid` is the
/// cold-start fallback: false until a search completes with warm-starting
/// enabled.
struct WarmDualBounds {
  bool enabled = false;  ///< set per call by the owner; off = cold search
  bool valid = false;    ///< true once a previous search recorded bounds
  double lo = 0.0;       ///< last rejected lambda (0 = none rejected)
  double hi = 0.0;       ///< last accepted estimate
};

/// Reusable buffers for repeated dual_test calls: the DP rows, the flat
/// (task x budget) pick matrix, and the per-task shelf choice pools all
/// keep their capacity across calls, so the bisection in estimate_cmax —
/// which runs dozens of tests per schedule — performs no heap allocation
/// after its first test at a given problem size. Reuse never changes
/// results: apart from the opt-in `warm` bounds (which only ever change
/// how many tests run, never what the search returns), the workspace
/// carries capacity, not state, between calls.
struct DualTestWorkspace {
  /// Shelf-1 Pareto options pooled across tasks: task i's options are
  /// opt_procs/opt_work[opt_begin[i] .. opt_begin[i+1]).
  std::vector<int> opt_procs;
  std::vector<double> opt_work;
  std::vector<int> opt_begin;
  std::vector<double> shelf2_work;  ///< per task; +inf when infeasible
  std::vector<int> shelf2_procs;    ///< per task
  std::vector<double> dp;           ///< DP row over the processor budget
  std::vector<double> next;         ///< DP row being built
  std::vector<std::int16_t> pick;   ///< n x (m+1) option picks, row-major
  /// Trial-partition buffer for estimate_cmax_into's accept/reject
  /// rotation; carries capacity only, never state, between calls.
  DualTestResult scratch;
  /// Previous-call bounds for the warm-started bisection (see above).
  WarmDualBounds warm;
};

/// Run the dual test for guess `lambda` (> 0).
[[nodiscard]] DualTestResult dual_test(const Instance& instance, double lambda);

/// Same test with precomputed allotment tables: canonical / min-work
/// lookups cost O(log max_procs) instead of O(max_procs), and for strictly
/// monotone tasks the shelf-1 Pareto set collapses to the single canonical
/// allotment without a scan. Produces bit-identical results to the
/// table-free overload — the bisection in estimate_cmax builds the tables
/// once and reuses them across all its calls.
[[nodiscard]] DualTestResult dual_test(const Instance& instance, double lambda,
                                       const InstanceAllotments& tables);

/// Allocation-free form: identical results to the overloads above, but the
/// test runs entirely inside `ws` and writes into `out` (whose assignment
/// buffer reuses its capacity). This is what estimate_cmax's bisection
/// calls per guess.
void dual_test_into(const Instance& instance, double lambda,
                    const InstanceAllotments& tables, DualTestWorkspace& ws,
                    DualTestResult& out);

/// Original scalar DP (budget-outer loop, per-cell option scan with early
/// break and conditional updates), retained as the bit-identity reference
/// for the vectorized row-sweep kernel behind dual_test/dual_test_into.
/// The table-free overload also uses the original O(max_procs) scan-based
/// allotment lookups, making it a reference for the SoA tables as well.
/// Allocates its own buffers; test/differential use only.
[[nodiscard]] DualTestResult dual_test_reference(const Instance& instance,
                                                 double lambda);
[[nodiscard]] DualTestResult dual_test_reference(
    const Instance& instance, double lambda, const InstanceAllotments& tables);

}  // namespace moldsched
