/// \file cmax_estimator.hpp
/// Binary search over the dual test: produces the C*max estimate that
/// drives the bi-criteria algorithm's batch sizes, the makespan lower bound
/// used to normalise every Cmax measurement in the experiments, and the
/// shelf partition/allotments consumed by the List-Graham baselines.

#pragma once

#include "dualapprox/dual_test.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

struct CmaxEstimate {
  /// Smallest accepted guess — the paper's "approximate C*max".
  double estimate = 0.0;
  /// Valid lower bound on the optimal makespan: the larger of the classic
  /// bounds (total min-work / m, max over tasks of min time) and the
  /// largest refuted guess.
  double lower_bound = 0.0;
  /// Dual-test partition at `estimate` (shelf + allotment per task).
  DualTestResult partition;
  /// Number of dual_test invocations the search performed (regression
  /// anchor: the allotment-table precompute must not change the search
  /// trajectory).
  int dual_tests = 0;
};

/// Runs the search to relative precision `rel_eps` (the interval
/// [lower_bound, estimate] shrinks until estimate - lower_bound <=
/// rel_eps * estimate). Throws std::invalid_argument on an empty instance
/// or non-positive rel_eps.
[[nodiscard]] CmaxEstimate estimate_cmax(const Instance& instance,
                                         double rel_eps = 1e-4);

/// Same search with caller-provided allotment tables (built once, shared
/// with the DEMT batch loop); every dual_test call inside the bisection
/// uses the O(log max_procs) lookups.
[[nodiscard]] CmaxEstimate estimate_cmax(const Instance& instance,
                                         double rel_eps,
                                         const InstanceAllotments& tables);

/// Same search again with a caller-owned dual-test workspace: after the
/// first test call the whole bisection performs no heap allocation (the
/// pick matrix, DP rows and option pools live in `ws`, and the two
/// candidate partitions rotate through reused buffers). Identical results
/// and identical search trajectory — dual_tests is the regression anchor.
/// demt_schedule pools one workspace per strand and calls this form.
[[nodiscard]] CmaxEstimate estimate_cmax(const Instance& instance,
                                         double rel_eps,
                                         const InstanceAllotments& tables,
                                         DualTestWorkspace& ws);

/// Fully pooled form: identical search, but the result lands in `out`
/// whose partition buffer is reused across calls (it doubles as the
/// accepted-guess rotation buffer together with ws.scratch). Zero heap
/// allocation once `ws` and `out` are warm — this is what
/// demt_schedule_into calls per request.
void estimate_cmax_into(const Instance& instance, double rel_eps,
                        const InstanceAllotments& tables,
                        DualTestWorkspace& ws, CmaxEstimate& out);

/// Reference search: same trajectory driven entirely by the scalar
/// dual_test_reference (scan-based lookups, budget-outer DP). The
/// differential suite asserts estimate/lower_bound/partition/dual_tests all
/// match the vectorized search bit-for-bit. Allocates freely; test use
/// only.
[[nodiscard]] CmaxEstimate estimate_cmax_reference(const Instance& instance,
                                                   double rel_eps = 1e-4);

}  // namespace moldsched
