#include "dualapprox/dual_test.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace moldsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::int16_t kShelf2 = -1;
constexpr std::int16_t kUnreachable = -2;

/// Build the per-task shelf choices, pooled flat in `ws`: shelf-1 Pareto
/// options (increasing processor count with strictly decreasing work; for
/// monotone tasks a singleton found by binary search) and the min-work
/// lambda/2 allotment. `tables` may be null (scan-based lookups). Returns
/// false when some task cannot meet lambda at all — an immediate reject.
/// Shared verbatim by the vectorized and reference DPs: the rewrite only
/// touched the DP loop order, not the option construction.
bool build_shelf_options(const Instance& instance, double lambda,
                         const InstanceAllotments* tables,
                         DualTestWorkspace& ws) {
  const int n = instance.num_tasks();
  ws.opt_procs.clear();
  ws.opt_work.clear();
  ws.opt_begin.assign(static_cast<std::size_t>(n) + 1, 0);
  ws.shelf2_work.assign(static_cast<std::size_t>(n), kInf);
  ws.shelf2_procs.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const MoldableTask& task = instance.task(i);
    if (tables != nullptr && tables->table(i).strictly_monotone()) {
      // Monotone fast path: time non-increasing means every allotment from
      // the canonical one up meets lambda, and work non-decreasing means
      // none of them beats the canonical work — the Pareto set is a
      // singleton.
      const int c1 = tables->table(i).canonical(lambda);
      if (c1 == 0) return false;  // cannot meet lambda: reject
      ws.opt_procs.push_back(c1);
      ws.opt_work.push_back(task.work(c1));
    } else {
      const std::size_t begin = ws.opt_procs.size();
      for (int k = task.min_procs(); k <= task.max_procs(); ++k) {
        if (task.time(k) > lambda) continue;
        const double w = task.work(k);
        if (ws.opt_procs.size() > begin && ws.opt_work.back() <= w) continue;
        ws.opt_procs.push_back(k);
        ws.opt_work.push_back(w);
      }
      if (ws.opt_procs.size() == begin) return false;  // reject
    }
    ws.opt_begin[static_cast<std::size_t>(i) + 1] =
        static_cast<int>(ws.opt_procs.size());
    const int g2 = tables != nullptr
                       ? tables->table(i).min_work(lambda / 2.0)
                       : task.min_work_allotment(lambda / 2.0);
    if (g2 > 0) {
      ws.shelf2_work[static_cast<std::size_t>(i)] = task.work(g2);
      ws.shelf2_procs[static_cast<std::size_t>(i)] = g2;
    }
  }
  return true;
}

/// Feasibility check + partition reconstruction from the final DP row and
/// the pick matrix. Identical for both DP variants (they fill the same
/// cells with the same values).
void finish_from_dp(double lambda, int n, int m, DualTestWorkspace& ws,
                    DualTestResult& out) {
  const std::size_t row = static_cast<std::size_t>(m) + 1;
  if (ws.dp[static_cast<std::size_t>(m)] >= kInf) {
    return;  // even ignoring work, shelf-1 demand cannot fit: reject
  }
  out.total_work = ws.dp[static_cast<std::size_t>(m)];
  out.feasible =
      out.total_work <= static_cast<double>(m) * lambda * (1.0 + 1e-12);
  if (!out.feasible) return;

  // Reconstruct the work-minimising partition.
  // Walk budgets backwards: at task i with budget j, the recorded pick
  // tells which option produced dp_i[j]; dp arrays are rebuilt implicitly
  // by the monotone budget walk.
  int j = m;
  for (int i = n - 1; i >= 0; --i) {
    const std::int16_t p =
        ws.pick[static_cast<std::size_t>(i) * row + static_cast<std::size_t>(j)];
    if (p == kUnreachable) {
      throw std::logic_error("dual_test: broken DP reconstruction");
    }
    if (p == kShelf2) {
      out.assignment[static_cast<std::size_t>(i)] = ShelfAssignment{
          Shelf::Small, ws.shelf2_procs[static_cast<std::size_t>(i)]};
    } else {
      const auto o =
          static_cast<std::size_t>(ws.opt_begin[i]) + static_cast<std::size_t>(p);
      out.assignment[static_cast<std::size_t>(i)] =
          ShelfAssignment{Shelf::Large, ws.opt_procs[o]};
      j -= ws.opt_procs[o];
    }
  }
}

/// Vectorized implementation; `tables` may be null. Runs entirely inside
/// `ws` — the only allocations are capacity growth on the first call at a
/// given (n, m) and `out.assignment` growth.
///
/// Soundness of the rejection certificate: any schedule of length lambda
/// induces a partition where "long" tasks (running more than lambda/2) all
/// overlap the midpoint, hence their true allotments sum to <= m, and every
/// "short" task has a lambda/2-feasible allotment. The DP minimises total
/// work over a superset of those partitions, so min-work > m*lambda (or no
/// partition at all) refutes the guess for ANY task structure, monotone or
/// not.
///
/// The DP is the reference recurrence with the loops interchanged: instead
/// of computing each budget cell by scanning its options, each option makes
/// one contiguous row sweep over budgets [cost..m] with select updates.
/// Per cell the comparison sequence is unchanged — shelf-2 seed first, then
/// options in ascending order, each a strict `<` against the running best —
/// so every cell receives the bit-identical value and pick. Infinities
/// stay well-behaved: base = +inf gives candidate = +inf, and +inf < best
/// is false even when best is +inf, matching the reference's explicit
/// finiteness guards (no NaN can arise; work values are finite and
/// non-negative).
void dual_test_vec_impl(const Instance& instance, double lambda,
                        const InstanceAllotments* tables,
                        DualTestWorkspace& ws, DualTestResult& out) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("dual_test: lambda must be positive");
  }
  const int n = instance.num_tasks();
  const int m = instance.procs();
  out.feasible = false;
  out.total_work = 0.0;
  out.assignment.assign(static_cast<std::size_t>(n), ShelfAssignment{});

  if (!build_shelf_options(instance, lambda, tables, ws)) return;

  // DP over the shelf-1 processor budget: dp[j] = min total work when
  // shelf-1 allotments sum to <= j. Option index per (task, budget) for
  // reconstruction; kShelf2 means the task stayed in shelf 2.
  const std::size_t row = static_cast<std::size_t>(m) + 1;
  ws.dp.assign(row, 0.0);
  ws.next.resize(row);
  ws.pick.assign(static_cast<std::size_t>(n) * row, kUnreachable);

  for (int i = 0; i < n; ++i) {
    const auto begin = static_cast<std::size_t>(ws.opt_begin[i]);
    const auto end = static_cast<std::size_t>(ws.opt_begin[i + 1]);
    const double shelf2 = ws.shelf2_work[static_cast<std::size_t>(i)];
    const double* dp = ws.dp.data();
    double* next = ws.next.data();
    std::int16_t* pick_row =
        ws.pick.data() + static_cast<std::size_t>(i) * row;
    // Seed row: the shelf-2 branch for every budget.
    for (std::size_t j = 0; j < row; ++j) {
      const double cand = dp[j] + shelf2;
      const bool ok = cand < kInf;
      next[j] = ok ? cand : kInf;
      pick_row[j] = ok ? kShelf2 : kUnreachable;
    }
    // One row sweep per shelf-1 option, ascending (preserves the
    // reference's option visit order per cell).
    for (std::size_t o = begin; o < end; ++o) {
      const auto cost = static_cast<std::size_t>(ws.opt_procs[o]);
      const double w = ws.opt_work[o];
      const auto id = static_cast<std::int16_t>(o - begin);
      for (std::size_t j = cost; j < row; ++j) {
        const double cand = dp[j - cost] + w;
        const bool better = cand < next[j];
        next[j] = better ? cand : next[j];
        pick_row[j] = better ? id : pick_row[j];
      }
    }
    ws.dp.swap(ws.next);
  }

  finish_from_dp(lambda, n, m, ws, out);
}

/// Original scalar DP (budget-outer, option scan with early break and
/// conditional updates), preserved verbatim as the reference.
void dual_test_reference_impl(const Instance& instance, double lambda,
                              const InstanceAllotments* tables,
                              DualTestWorkspace& ws, DualTestResult& out) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("dual_test: lambda must be positive");
  }
  const int n = instance.num_tasks();
  const int m = instance.procs();
  out.feasible = false;
  out.total_work = 0.0;
  out.assignment.assign(static_cast<std::size_t>(n), ShelfAssignment{});

  if (!build_shelf_options(instance, lambda, tables, ws)) return;

  const std::size_t row = static_cast<std::size_t>(m) + 1;
  ws.dp.assign(row, 0.0);
  ws.next.resize(row);
  ws.pick.assign(static_cast<std::size_t>(n) * row, kUnreachable);

  for (int i = 0; i < n; ++i) {
    const auto begin = static_cast<std::size_t>(ws.opt_begin[i]);
    const auto end = static_cast<std::size_t>(ws.opt_begin[i + 1]);
    const double shelf2 = ws.shelf2_work[static_cast<std::size_t>(i)];
    std::int16_t* pick_row = ws.pick.data() + static_cast<std::size_t>(i) * row;
    for (int j = 0; j <= m; ++j) {
      double best = kInf;
      std::int16_t best_pick = kUnreachable;
      if (ws.dp[static_cast<std::size_t>(j)] < kInf && shelf2 < kInf) {
        best = ws.dp[static_cast<std::size_t>(j)] + shelf2;
        best_pick = kShelf2;
      }
      for (std::size_t o = begin; o < end; ++o) {
        const int cost = ws.opt_procs[o];
        if (cost > j) break;  // options sorted by increasing procs
        const double base = ws.dp[static_cast<std::size_t>(j - cost)];
        if (base >= kInf) continue;
        const double candidate = base + ws.opt_work[o];
        if (candidate < best) {
          best = candidate;
          best_pick = static_cast<std::int16_t>(o - begin);
        }
      }
      ws.next[static_cast<std::size_t>(j)] = best;
      pick_row[static_cast<std::size_t>(j)] = best_pick;
    }
    ws.dp.swap(ws.next);
  }

  finish_from_dp(lambda, n, m, ws, out);
}

}  // namespace

DualTestResult dual_test(const Instance& instance, double lambda) {
  DualTestWorkspace ws;
  DualTestResult result;
  dual_test_vec_impl(instance, lambda, nullptr, ws, result);
  return result;
}

DualTestResult dual_test(const Instance& instance, double lambda,
                         const InstanceAllotments& tables) {
  DualTestWorkspace ws;
  DualTestResult result;
  dual_test_vec_impl(instance, lambda, &tables, ws, result);
  return result;
}

void dual_test_into(const Instance& instance, double lambda,
                    const InstanceAllotments& tables, DualTestWorkspace& ws,
                    DualTestResult& out) {
  dual_test_vec_impl(instance, lambda, &tables, ws, out);
}

DualTestResult dual_test_reference(const Instance& instance, double lambda) {
  DualTestWorkspace ws;
  DualTestResult result;
  dual_test_reference_impl(instance, lambda, nullptr, ws, result);
  return result;
}

DualTestResult dual_test_reference(const Instance& instance, double lambda,
                                   const InstanceAllotments& tables) {
  DualTestWorkspace ws;
  DualTestResult result;
  dual_test_reference_impl(instance, lambda, &tables, ws, result);
  return result;
}

}  // namespace moldsched
