#include "dualapprox/dual_test.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace moldsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Candidate allotment for shelf 1: `procs` processors at `work` area.
struct Option {
  int procs;
  double work;
};

/// Pareto-minimal shelf-1 options of a task for deadline `lambda`:
/// increasing processor count with strictly decreasing work. For monotone
/// tasks this collapses to the single canonical allotment.
std::vector<Option> shelf1_options(const MoldableTask& task, double lambda) {
  std::vector<Option> options;
  for (int k = task.min_procs(); k <= task.max_procs(); ++k) {
    if (task.time(k) > lambda) continue;
    const double w = task.work(k);
    if (!options.empty() && options.back().work <= w) continue;
    options.push_back(Option{k, w});
  }
  return options;
}

/// Shared implementation; `tables` may be null (scan-based lookups).
DualTestResult dual_test_impl(const Instance& instance, double lambda,
                              const InstanceAllotments* tables) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("dual_test: lambda must be positive");
  }
  const int n = instance.num_tasks();
  const int m = instance.procs();
  DualTestResult result;
  result.assignment.assign(static_cast<std::size_t>(n), ShelfAssignment{});

  // Per-task choices. Soundness of the rejection certificate: any schedule
  // of length lambda induces a partition where "long" tasks (running more
  // than lambda/2) all overlap the midpoint, hence their true allotments
  // sum to <= m, and every "short" task has a lambda/2-feasible allotment.
  // Our DP minimises total work over a superset of those partitions, so
  // min-work > m*lambda (or no partition at all) refutes the guess for
  // ANY task structure, monotone or not.
  struct TaskChoices {
    std::vector<Option> shelf1;
    double shelf2_work = kInf;  // min work within lambda/2, +inf if none
    int shelf2_procs = 0;
  };
  std::vector<TaskChoices> choices(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const MoldableTask& task = instance.task(i);
    auto& c = choices[static_cast<std::size_t>(i)];
    if (tables != nullptr && tables->table(i).strictly_monotone()) {
      // Monotone fast path: time non-increasing means every allotment from
      // the canonical one up meets lambda, and work non-decreasing means
      // none of them beats the canonical work — the Pareto set is a
      // singleton, found by binary search.
      const int c1 = tables->table(i).canonical(lambda);
      if (c1 == 0) return result;  // cannot meet lambda: reject
      c.shelf1.push_back(Option{c1, task.work(c1)});
    } else {
      c.shelf1 = shelf1_options(task, lambda);
      if (c.shelf1.empty()) return result;  // cannot meet lambda: reject
    }
    const int g2 = tables != nullptr
                       ? tables->table(i).min_work(lambda / 2.0)
                       : task.min_work_allotment(lambda / 2.0);
    if (g2 > 0) {
      c.shelf2_work = task.work(g2);
      c.shelf2_procs = g2;
    }
  }

  // DP over the shelf-1 processor budget: dp[j] = min total work when
  // shelf-1 allotments sum to <= j. Option index per (task, budget) for
  // reconstruction; kShelf2 means the task stayed in shelf 2.
  constexpr std::int16_t kShelf2 = -1;
  constexpr std::int16_t kUnreachable = -2;
  std::vector<double> dp(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<double> next(static_cast<std::size_t>(m) + 1);
  std::vector<std::vector<std::int16_t>> pick(
      static_cast<std::size_t>(n),
      std::vector<std::int16_t>(static_cast<std::size_t>(m) + 1, kUnreachable));

  for (int i = 0; i < n; ++i) {
    const auto& c = choices[static_cast<std::size_t>(i)];
    for (int j = 0; j <= m; ++j) {
      double best = kInf;
      std::int16_t best_pick = kUnreachable;
      if (dp[static_cast<std::size_t>(j)] < kInf &&
          c.shelf2_work < kInf) {
        best = dp[static_cast<std::size_t>(j)] + c.shelf2_work;
        best_pick = kShelf2;
      }
      for (std::size_t o = 0; o < c.shelf1.size(); ++o) {
        const int cost = c.shelf1[o].procs;
        if (cost > j) break;  // options sorted by increasing procs
        const double base = dp[static_cast<std::size_t>(j - cost)];
        if (base >= kInf) continue;
        const double candidate = base + c.shelf1[o].work;
        if (candidate < best) {
          best = candidate;
          best_pick = static_cast<std::int16_t>(o);
        }
      }
      next[static_cast<std::size_t>(j)] = best;
      pick[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = best_pick;
    }
    dp.swap(next);
  }

  if (dp[static_cast<std::size_t>(m)] >= kInf) {
    return result;  // even ignoring work, shelf-1 demand cannot fit: reject
  }
  result.total_work = dp[static_cast<std::size_t>(m)];
  result.feasible =
      result.total_work <= static_cast<double>(m) * lambda * (1.0 + 1e-12);
  if (!result.feasible) return result;

  // Reconstruct the work-minimising partition.
  // Walk budgets backwards: at task i with budget j, the recorded pick
  // tells which option produced dp_i[j]; dp arrays are rebuilt implicitly
  // by the monotone budget walk.
  int j = m;
  for (int i = n - 1; i >= 0; --i) {
    const auto& c = choices[static_cast<std::size_t>(i)];
    const std::int16_t p = pick[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    if (p == kUnreachable) {
      throw std::logic_error("dual_test: broken DP reconstruction");
    }
    if (p == kShelf2) {
      result.assignment[static_cast<std::size_t>(i)] =
          ShelfAssignment{Shelf::Small, c.shelf2_procs};
    } else {
      const Option& option = c.shelf1[static_cast<std::size_t>(p)];
      result.assignment[static_cast<std::size_t>(i)] =
          ShelfAssignment{Shelf::Large, option.procs};
      j -= option.procs;
    }
  }
  return result;
}

}  // namespace

DualTestResult dual_test(const Instance& instance, double lambda) {
  return dual_test_impl(instance, lambda, nullptr);
}

DualTestResult dual_test(const Instance& instance, double lambda,
                         const InstanceAllotments& tables) {
  return dual_test_impl(instance, lambda, &tables);
}

}  // namespace moldsched
