#include "dualapprox/cmax_estimator.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched {

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  if (!(rel_eps > 0.0)) {
    throw std::invalid_argument("estimate_cmax: rel_eps must be positive");
  }

  CmaxEstimate out;
  const auto test = [&](double lambda) {
    ++out.dual_tests;
    return dual_test(instance, lambda, tables);
  };

  // Combinatorial lower bounds: the machine must absorb the minimal total
  // work, and every task needs at least its fastest execution time.
  double lb = instance.total_min_work() / instance.procs();
  for (const auto& task : instance.tasks()) {
    lb = std::max(lb, task.min_time());
  }

  out.lower_bound = lb;

  // If the dual test already accepts the combinatorial bound, it is also
  // the estimate — no schedule can beat it.
  DualTestResult at_lb = test(lb);
  if (at_lb.feasible) {
    out.estimate = lb;
    out.partition = std::move(at_lb);
    return out;
  }

  // Exponential search for an accepted guess, then bisection. `lo` is
  // always rejected, `hi` always accepted.
  double lo = lb;
  double hi = lb * 2.0;
  DualTestResult at_hi = test(hi);
  while (!at_hi.feasible) {
    lo = hi;
    hi *= 2.0;
    at_hi = test(hi);
    if (hi > lb * 1e9) {
      throw std::logic_error("estimate_cmax: dual test never accepts");
    }
  }

  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    DualTestResult at_mid = test(mid);
    if (at_mid.feasible) {
      hi = mid;
      at_hi = std::move(at_mid);
    } else {
      lo = mid;
    }
  }

  out.estimate = hi;
  out.lower_bound = std::max(lb, lo);
  out.partition = std::move(at_hi);
  return out;
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  const InstanceAllotments tables(instance);
  return estimate_cmax(instance, rel_eps, tables);
}

}  // namespace moldsched
