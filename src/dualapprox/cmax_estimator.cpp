#include "dualapprox/cmax_estimator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace moldsched {
namespace {

void validate_search_args(const Instance& instance, double rel_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  if (!(rel_eps > 0.0)) {
    throw std::invalid_argument("estimate_cmax: rel_eps must be positive");
  }
}

double combinatorial_lower_bound(const Instance& instance) {
  // The machine must absorb the minimal total work, and every task needs at
  // least its fastest execution time.
  double lb = instance.total_min_work() / instance.procs();
  for (const auto& task : instance.tasks()) {
    lb = std::max(lb, task.min_time());
  }
  return lb;
}

/// Warm-started form of the search below: replay the *exact* cold probe
/// trajectory (combinatorial bound, exponential doubling, bisection on
/// `mid = 0.5 * (lo + hi)`) against an outcome oracle seeded by re-testing
/// the previous call's accepted bounds. A probe at or above an accepted
/// lambda is inferred accepted, at or below a rejected lambda inferred
/// rejected (the dual test's monotone structure), and everything else runs
/// a real dual test that extends the oracle. Identical probe sequence →
/// identical bracket arithmetic → bit-identical estimate/lower_bound; on
/// near-identical consecutive instances almost every probe is inferred, so
/// the real dual_test count collapses. The final estimate is always
/// materialised by a real test (the accepted partition must be genuine);
/// if that test refutes an inferred acceptance — a monotonicity violation —
/// the whole search falls back to the cold path, so correctness never
/// rests on the oracle.
void warm_estimate_cmax_into(const Instance& instance, double rel_eps,
                             const InstanceAllotments& tables,
                             DualTestWorkspace& ws, CmaxEstimate& out) {
  double max_rejected = 0.0;  // 0 = nothing rejected yet (lambdas are > 0)
  double min_accepted = std::numeric_limits<double>::infinity();
  double partition_lambda = 0.0;  // lambda out.partition currently holds
  const auto real_test = [&](double lambda) -> bool {
    ++out.dual_tests;
    dual_test_into(instance, lambda, tables, ws, ws.scratch);
    if (ws.scratch.feasible) {
      min_accepted = std::min(min_accepted, lambda);
      std::swap(out.partition, ws.scratch);
      partition_lambda = lambda;
      return true;
    }
    max_rejected = std::max(max_rejected, lambda);
    return false;
  };
  const auto probe = [&](double lambda) -> bool {
    if (lambda >= min_accepted) return true;
    if (lambda <= max_rejected) return false;
    return real_test(lambda);
  };
  const auto record = [&](double final_lo, double final_hi) {
    ws.warm.valid = true;
    ws.warm.lo = final_lo;
    ws.warm.hi = final_hi;
  };
  // Run the cold search with real tests only (the fallback, and the shared
  // tail of both paths once a trajectory is fixed).
  const auto cold_search = [&](double lb) {
    if (real_test(lb)) {
      out.estimate = lb;
      record(0.0, lb);
      return;
    }
    double lo = lb;
    double hi = lb * 2.0;
    while (!real_test(hi)) {
      lo = hi;
      hi *= 2.0;
      if (hi > lb * 1e9 * 2.0) {
        throw std::logic_error("estimate_cmax: dual test never accepts");
      }
    }
    while (hi - lo > rel_eps * hi) {
      const double mid = 0.5 * (lo + hi);
      if (real_test(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    out.estimate = hi;
    out.lower_bound = std::max(lb, lo);
    record(lo, hi);
  };

  const double lb = combinatorial_lower_bound(instance);
  out.lower_bound = lb;

  // Seed the oracle from the previous call's bounds (cold start when none).
  if (ws.warm.valid) {
    if (ws.warm.hi > 0.0 && ws.warm.hi < min_accepted &&
        ws.warm.hi > max_rejected) {
      (void)real_test(ws.warm.hi);
    }
    if (ws.warm.lo > 0.0 && ws.warm.lo < min_accepted &&
        ws.warm.lo > max_rejected) {
      (void)real_test(ws.warm.lo);
    }
  }

  double estimate;
  double final_lo;  // rejected bracket bound; 0 when lb was accepted
  if (probe(lb)) {
    estimate = lb;
    final_lo = 0.0;
  } else {
    double lo = lb;
    double hi = lb * 2.0;
    while (!probe(hi)) {
      lo = hi;
      hi *= 2.0;
      if (hi > lb * 1e9 * 2.0) {
        throw std::logic_error("estimate_cmax: dual test never accepts");
      }
    }
    while (hi - lo > rel_eps * hi) {
      const double mid = 0.5 * (lo + hi);
      if (probe(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    estimate = hi;
    out.lower_bound = std::max(lb, lo);
    final_lo = lo;
  }

  // Materialise the partition at the estimate: the trajectory may have
  // accepted it by inference only, or last swapped the partition at a
  // larger accepted guess.
  if (partition_lambda != estimate) {
    if (!real_test(estimate)) {
      // The oracle inferred an acceptance the real test refutes. Restart
      // cold; the accumulated dual_tests count keeps the wasted probes
      // visible.
      out.lower_bound = lb;
      cold_search(lb);
      return;
    }
  }
  out.estimate = estimate;
  record(final_lo, estimate);
}

}  // namespace

void estimate_cmax_into(const Instance& instance, double rel_eps,
                        const InstanceAllotments& tables,
                        DualTestWorkspace& ws, CmaxEstimate& out) {
  validate_search_args(instance, rel_eps);

  out.estimate = 0.0;
  out.lower_bound = 0.0;
  out.dual_tests = 0;

  if (ws.warm.enabled) {
    warm_estimate_cmax_into(instance, rel_eps, tables, ws, out);
    return;
  }
  // Two rotating partition buffers: ws.scratch receives each test,
  // out.partition keeps the last accepted guess. Swapping (never
  // reallocating) keeps the whole search allocation-free once both buffers
  // are warm.
  const auto test = [&](double lambda) -> DualTestResult& {
    ++out.dual_tests;
    dual_test_into(instance, lambda, tables, ws, ws.scratch);
    return ws.scratch;
  };

  const double lb = combinatorial_lower_bound(instance);
  out.lower_bound = lb;

  // If the dual test already accepts the combinatorial bound, it is also
  // the estimate — no schedule can beat it.
  if (test(lb).feasible) {
    out.estimate = lb;
    std::swap(out.partition, ws.scratch);
    return;
  }

  // Exponential search for an accepted guess, then bisection. `lo` is
  // always rejected, `hi` always accepted.
  double lo = lb;
  double hi = lb * 2.0;
  while (!test(hi).feasible) {
    lo = hi;
    hi *= 2.0;
    if (hi > lb * 1e9 * 2.0) {
      throw std::logic_error("estimate_cmax: dual test never accepts");
    }
  }
  std::swap(out.partition, ws.scratch);

  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    if (test(mid).feasible) {
      hi = mid;
      std::swap(out.partition, ws.scratch);
    } else {
      lo = mid;
    }
  }

  out.estimate = hi;
  out.lower_bound = std::max(lb, lo);
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables,
                           DualTestWorkspace& ws) {
  CmaxEstimate out;
  estimate_cmax_into(instance, rel_eps, tables, ws, out);
  return out;
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables) {
  DualTestWorkspace ws;
  return estimate_cmax(instance, rel_eps, tables, ws);
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  const InstanceAllotments tables(instance);
  return estimate_cmax(instance, rel_eps, tables);
}

CmaxEstimate estimate_cmax_reference(const Instance& instance,
                                     double rel_eps) {
  validate_search_args(instance, rel_eps);

  CmaxEstimate out;
  DualTestResult trial;
  const auto test = [&](double lambda) -> DualTestResult& {
    ++out.dual_tests;
    trial = dual_test_reference(instance, lambda);
    return trial;
  };

  const double lb = combinatorial_lower_bound(instance);
  out.lower_bound = lb;

  if (test(lb).feasible) {
    out.estimate = lb;
    out.partition = std::move(trial);
    return out;
  }

  double lo = lb;
  double hi = lb * 2.0;
  while (!test(hi).feasible) {
    lo = hi;
    hi *= 2.0;
    if (hi > lb * 1e9 * 2.0) {
      throw std::logic_error("estimate_cmax: dual test never accepts");
    }
  }
  out.partition = trial;

  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    if (test(mid).feasible) {
      hi = mid;
      out.partition = trial;
    } else {
      lo = mid;
    }
  }

  out.estimate = hi;
  out.lower_bound = std::max(lb, lo);
  return out;
}

}  // namespace moldsched
