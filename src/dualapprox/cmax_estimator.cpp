#include "dualapprox/cmax_estimator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace moldsched {
namespace {

void validate_search_args(const Instance& instance, double rel_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  if (!(rel_eps > 0.0)) {
    throw std::invalid_argument("estimate_cmax: rel_eps must be positive");
  }
}

double combinatorial_lower_bound(const Instance& instance) {
  // The machine must absorb the minimal total work, and every task needs at
  // least its fastest execution time.
  double lb = instance.total_min_work() / instance.procs();
  for (const auto& task : instance.tasks()) {
    lb = std::max(lb, task.min_time());
  }
  return lb;
}

}  // namespace

void estimate_cmax_into(const Instance& instance, double rel_eps,
                        const InstanceAllotments& tables,
                        DualTestWorkspace& ws, CmaxEstimate& out) {
  validate_search_args(instance, rel_eps);

  out.estimate = 0.0;
  out.lower_bound = 0.0;
  out.dual_tests = 0;
  // Two rotating partition buffers: ws.scratch receives each test,
  // out.partition keeps the last accepted guess. Swapping (never
  // reallocating) keeps the whole search allocation-free once both buffers
  // are warm.
  const auto test = [&](double lambda) -> DualTestResult& {
    ++out.dual_tests;
    dual_test_into(instance, lambda, tables, ws, ws.scratch);
    return ws.scratch;
  };

  const double lb = combinatorial_lower_bound(instance);
  out.lower_bound = lb;

  // If the dual test already accepts the combinatorial bound, it is also
  // the estimate — no schedule can beat it.
  if (test(lb).feasible) {
    out.estimate = lb;
    std::swap(out.partition, ws.scratch);
    return;
  }

  // Exponential search for an accepted guess, then bisection. `lo` is
  // always rejected, `hi` always accepted.
  double lo = lb;
  double hi = lb * 2.0;
  while (!test(hi).feasible) {
    lo = hi;
    hi *= 2.0;
    if (hi > lb * 1e9 * 2.0) {
      throw std::logic_error("estimate_cmax: dual test never accepts");
    }
  }
  std::swap(out.partition, ws.scratch);

  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    if (test(mid).feasible) {
      hi = mid;
      std::swap(out.partition, ws.scratch);
    } else {
      lo = mid;
    }
  }

  out.estimate = hi;
  out.lower_bound = std::max(lb, lo);
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables,
                           DualTestWorkspace& ws) {
  CmaxEstimate out;
  estimate_cmax_into(instance, rel_eps, tables, ws, out);
  return out;
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables) {
  DualTestWorkspace ws;
  return estimate_cmax(instance, rel_eps, tables, ws);
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  const InstanceAllotments tables(instance);
  return estimate_cmax(instance, rel_eps, tables);
}

CmaxEstimate estimate_cmax_reference(const Instance& instance,
                                     double rel_eps) {
  validate_search_args(instance, rel_eps);

  CmaxEstimate out;
  DualTestResult trial;
  const auto test = [&](double lambda) -> DualTestResult& {
    ++out.dual_tests;
    trial = dual_test_reference(instance, lambda);
    return trial;
  };

  const double lb = combinatorial_lower_bound(instance);
  out.lower_bound = lb;

  if (test(lb).feasible) {
    out.estimate = lb;
    out.partition = std::move(trial);
    return out;
  }

  double lo = lb;
  double hi = lb * 2.0;
  while (!test(hi).feasible) {
    lo = hi;
    hi *= 2.0;
    if (hi > lb * 1e9 * 2.0) {
      throw std::logic_error("estimate_cmax: dual test never accepts");
    }
  }
  out.partition = trial;

  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    if (test(mid).feasible) {
      hi = mid;
      out.partition = trial;
    } else {
      lo = mid;
    }
  }

  out.estimate = hi;
  out.lower_bound = std::max(lb, lo);
  return out;
}

}  // namespace moldsched
