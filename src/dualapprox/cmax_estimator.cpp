#include "dualapprox/cmax_estimator.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched {

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables,
                           DualTestWorkspace& ws) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  if (!(rel_eps > 0.0)) {
    throw std::invalid_argument("estimate_cmax: rel_eps must be positive");
  }

  CmaxEstimate out;
  // Two rotating partition buffers: `trial` receives each test, `best`
  // keeps the last accepted guess. Swapping (never reallocating) keeps the
  // whole search allocation-free after the first test sizes the buffers.
  DualTestResult trial;
  DualTestResult best;
  const auto test = [&](double lambda) -> DualTestResult& {
    ++out.dual_tests;
    dual_test_into(instance, lambda, tables, ws, trial);
    return trial;
  };

  // Combinatorial lower bounds: the machine must absorb the minimal total
  // work, and every task needs at least its fastest execution time.
  double lb = instance.total_min_work() / instance.procs();
  for (const auto& task : instance.tasks()) {
    lb = std::max(lb, task.min_time());
  }

  out.lower_bound = lb;

  // If the dual test already accepts the combinatorial bound, it is also
  // the estimate — no schedule can beat it.
  if (test(lb).feasible) {
    out.estimate = lb;
    out.partition = std::move(trial);
    return out;
  }

  // Exponential search for an accepted guess, then bisection. `lo` is
  // always rejected, `hi` always accepted.
  double lo = lb;
  double hi = lb * 2.0;
  while (!test(hi).feasible) {
    lo = hi;
    hi *= 2.0;
    if (hi > lb * 1e9 * 2.0) {
      throw std::logic_error("estimate_cmax: dual test never accepts");
    }
  }
  std::swap(best, trial);

  while (hi - lo > rel_eps * hi) {
    const double mid = 0.5 * (lo + hi);
    if (test(mid).feasible) {
      hi = mid;
      std::swap(best, trial);
    } else {
      lo = mid;
    }
  }

  out.estimate = hi;
  out.lower_bound = std::max(lb, lo);
  out.partition = std::move(best);
  return out;
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps,
                           const InstanceAllotments& tables) {
  DualTestWorkspace ws;
  return estimate_cmax(instance, rel_eps, tables, ws);
}

CmaxEstimate estimate_cmax(const Instance& instance, double rel_eps) {
  if (instance.empty()) {
    throw std::invalid_argument("estimate_cmax: empty instance");
  }
  const InstanceAllotments tables(instance);
  return estimate_cmax(instance, rel_eps, tables);
}

}  // namespace moldsched
