/// \file algorithms.hpp
/// Name -> scheduler registry for the experiment harness. The six entries
/// mirror the curves of the paper's Figures 3-6: DEMT (the contribution),
/// Gang, Sequential, List (shelf order), LPTF (weighted), SAF.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/demt.hpp"
#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

using SchedulerFn = std::function<Schedule(const Instance&)>;

struct AlgorithmSpec {
  std::string name;
  SchedulerFn run;
};

/// All six algorithms of the paper's plots, in plot-legend order.
[[nodiscard]] std::vector<AlgorithmSpec> standard_algorithms(
    const DemtOptions& demt_options = {});

/// Subset by names (throws std::invalid_argument on unknown name).
[[nodiscard]] std::vector<AlgorithmSpec> algorithms_by_name(
    const std::vector<std::string>& names,
    const DemtOptions& demt_options = {});

}  // namespace moldsched
