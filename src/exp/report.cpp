#include "exp/report.hpp"

#include <fstream>
#include <ostream>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/strfmt.hpp"

namespace moldsched {

FigureResult run_figure(const FigureConfig& config) {
  FigureResult result;
  result.config = config;
  ThreadPool pool(config.threads);
  const auto algorithms = standard_algorithms(config.demt);
  for (int n : config.ns) {
    PointConfig point;
    point.family = config.family;
    point.n = n;
    point.m = config.m;
    point.runs = config.runs;
    point.seed = config.seed;
    point.compute_lp_bound = config.compute_lp_bound;
    point.lp_options = config.lp_options;
    log_info(strfmt("%s: n=%d (%d runs)", config.title.c_str(), n,
                    config.runs));
    result.points.push_back(run_point(point, algorithms, &pool));
  }
  return result;
}

namespace {

void print_block(const FigureResult& result, std::ostream& out,
                 bool minsum_block) {
  const auto& order = result.points.front().algorithm_order;
  out << (minsum_block ? "## sum w_i C_i ratio (vs LP lower bound)\n"
                       : "## Cmax ratio (vs dual-approximation lower bound)\n");
  out << strfmt("%6s", "n");
  for (const auto& name : order) {
    out << strfmt("  %-22s", name.c_str());
  }
  out << '\n';
  for (const auto& point : result.points) {
    out << strfmt("%6d", point.config.n);
    for (const auto& name : order) {
      const auto& stats = point.stats.at(name);
      const auto& ratio = minsum_block ? stats.minsum_ratio : stats.cmax_ratio;
      if (ratio.count() == 0) {
        out << strfmt("  %-22s", "-");
      } else {
        out << strfmt("  %5.2f [%5.2f,%6.2f]", ratio.ratio(),
                      ratio.min_ratio(), ratio.max_ratio());
      }
    }
    out << '\n';
  }
  out << '\n';
}

}  // namespace

void print_figure(const FigureResult& result, std::ostream& out) {
  if (result.points.empty()) {
    out << "(no points)\n";
    return;
  }
  out << "# " << result.config.title << '\n';
  out << strfmt("# m=%d processors, %d runs per point, families=%s\n",
                result.config.m, result.config.runs,
                std::string(family_name(result.config.family)).c_str());
  out << "# cell = ratio-of-sums average [per-run min, per-run max]\n\n";
  if (result.config.compute_lp_bound) print_block(result, out, true);
  print_block(result, out, false);

  // Runtime block (the Figure 7 measurement, available for every figure).
  const auto& order = result.points.front().algorithm_order;
  out << "## scheduler wall-clock seconds (mean per call)\n";
  out << strfmt("%6s", "n");
  for (const auto& name : order) out << strfmt("  %-10s", name.c_str());
  out << '\n';
  for (const auto& point : result.points) {
    out << strfmt("%6d", point.config.n);
    for (const auto& name : order) {
      out << strfmt("  %-10.4f", point.stats.at(name).runtime_s.mean());
    }
    out << '\n';
  }
  out << '\n';
}

void write_figure_csv(const FigureResult& result, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"figure", "family", "m", "runs", "n", "algorithm",
              "minsum_ratio_avg", "minsum_ratio_min", "minsum_ratio_max",
              "cmax_ratio_avg", "cmax_ratio_min", "cmax_ratio_max",
              "runtime_mean_s", "lp_bound_mean", "cmax_lb_mean"});
  for (const auto& point : result.points) {
    for (const auto& name : point.algorithm_order) {
      const auto& stats = point.stats.at(name);
      auto ratio_fields = [](const RatioOfSums& r) {
        if (r.count() == 0) {
          return std::vector<std::string>{"", "", ""};
        }
        return std::vector<std::string>{strfmt("%.6f", r.ratio()),
                                        strfmt("%.6f", r.min_ratio()),
                                        strfmt("%.6f", r.max_ratio())};
      };
      const auto ms = ratio_fields(stats.minsum_ratio);
      const auto cm = ratio_fields(stats.cmax_ratio);
      csv.row({result.config.title,
               std::string(family_name(result.config.family)),
               strfmt("%d", point.config.m), strfmt("%d", point.config.runs),
               strfmt("%d", point.config.n), name, ms[0], ms[1], ms[2], cm[0],
               cm[1], cm[2], strfmt("%.6f", stats.runtime_s.mean()),
               strfmt("%.4f", point.lp_bound.mean()),
               strfmt("%.4f", point.cmax_lower_bound.mean())});
    }
  }
}

bool write_figure_gnuplot(const FigureResult& result,
                          const std::string& prefix) {
  if (result.points.empty()) return false;
  const auto& order = result.points.front().algorithm_order;

  std::ofstream dat(prefix + ".dat");
  if (!dat) return false;
  dat << "# n";
  for (const auto& name : order) {
    dat << ' ' << name << "_minsum " << name << "_cmax";
  }
  dat << '\n';
  for (const auto& point : result.points) {
    dat << point.config.n;
    for (const auto& name : order) {
      const auto& stats = point.stats.at(name);
      dat << ' '
          << (stats.minsum_ratio.count() ? stats.minsum_ratio.ratio() : 0.0)
          << ' ' << stats.cmax_ratio.ratio();
    }
    dat << '\n';
  }

  std::ofstream gp(prefix + ".gp");
  if (!gp) return false;
  gp << "# gnuplot reproduction of: " << result.config.title << "\n"
     << "set terminal pngcairo size 900,800\n"
     << "set output '" << prefix << ".png'\n"
     << "set multiplot layout 2,1\n"
     << "set key top right\n"
     << "set xlabel 'Number of tasks'\n";
  // Panel 1: minsum ratio, the paper's axis range [1, 8].
  gp << "set ylabel 'WiCi ratio'\nset yrange [1:8]\nplot";
  for (std::size_t a = 0; a < order.size(); ++a) {
    gp << (a ? ", " : " ") << "'" << prefix << ".dat' using 1:"
       << (2 + 2 * a) << " with linespoints title '" << order[a] << "'";
  }
  gp << "\n";
  // Panel 2: Cmax ratio, the paper's axis range [1, 3.5].
  gp << "set ylabel 'Cmax ratio'\nset yrange [1:3.5]\nplot";
  for (std::size_t a = 0; a < order.size(); ++a) {
    gp << (a ? ", " : " ") << "'" << prefix << ".dat' using 1:"
       << (3 + 2 * a) << " with linespoints title '" << order[a] << "'";
  }
  gp << "\nunset multiplot\n";
  return true;
}

}  // namespace moldsched
