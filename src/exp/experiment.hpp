/// \file experiment.hpp
/// The measurement loop behind Figures 3-7: generate `runs` random
/// instances per (family, n) point, compute both lower bounds, run every
/// algorithm, validate its schedule, and aggregate performance ratios the
/// way the paper does (ratio of sums across runs, min/max envelope).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/algorithms.hpp"
#include "lp/simplex.hpp"
#include "tasks/instance.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workloads/generators.hpp"

namespace moldsched {

struct PointConfig {
  WorkloadFamily family = WorkloadFamily::HighlyParallel;
  int n = 25;           ///< number of tasks
  int m = 200;          ///< processors (the paper's cluster size)
  int runs = 40;        ///< instances per point (paper: 40)
  std::uint64_t seed = 20040627;  ///< base seed (SPAA'04 started June 27)
  bool compute_lp_bound = true;   ///< Fig 7 measures runtime only
  bool validate = true;           ///< validate every schedule produced
  /// Run replicates on the process-wide shared pool when the caller passes
  /// no pool of its own (results never depend on the worker count — every
  /// run owns a pre-forked RNG stream). Set false to force one thread.
  bool parallel_runs = true;
  GeneratorConfig generator;
  SimplexOptions lp_options;
};

struct AlgoPointStats {
  RatioOfSums cmax_ratio;   ///< vs dual-approximation lower bound
  RatioOfSums minsum_ratio; ///< vs LP relaxation lower bound
  /// Wall-clock per scheduling call, measured while replicates run on
  /// however many workers are active — comparable between algorithms in
  /// the same run, but inflated vs. a sequential sweep on a loaded
  /// machine. For clean runtime curves set `parallel_runs = false` (or
  /// use bench/fig7_runtime, which times calls one at a time).
  RunningStats runtime_s;
};

struct PointResult {
  PointConfig config;
  /// Keyed by algorithm name, insertion order preserved separately.
  std::map<std::string, AlgoPointStats> stats;
  std::vector<std::string> algorithm_order;
  RunningStats lp_bound;       ///< LP optimum values across runs
  RunningStats lp_iterations;
  RunningStats cmax_lower_bound;
};

/// Run one experiment point. Runs execute in parallel on `pool` when
/// provided — or on the shared pool when `pool` is null and
/// `config.parallel_runs` is set (each run owns a forked RNG stream, so
/// results do not depend on the worker count or interleaving).
[[nodiscard]] PointResult run_point(const PointConfig& config,
                                    const std::vector<AlgorithmSpec>& algorithms,
                                    ThreadPool* pool = nullptr);

}  // namespace moldsched
