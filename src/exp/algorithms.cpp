#include "exp/algorithms.hpp"

#include <stdexcept>

#include "baselines/baselines.hpp"

namespace moldsched {

std::vector<AlgorithmSpec> standard_algorithms(const DemtOptions& demt_options) {
  std::vector<AlgorithmSpec> algorithms;
  algorithms.push_back({"DEMT", [demt_options](const Instance& instance) {
                          return demt_schedule(instance, demt_options).schedule;
                        }});
  algorithms.push_back({"Gang", [](const Instance& instance) {
                          return gang_schedule(instance);
                        }});
  algorithms.push_back({"Sequential", [](const Instance& instance) {
                          return sequential_lptf_schedule(instance);
                        }});
  algorithms.push_back({"List", [](const Instance& instance) {
                          return list_graham_schedule(instance,
                                                      ListOrder::ShelfOrder);
                        }});
  algorithms.push_back({"LPTF", [](const Instance& instance) {
                          return list_graham_schedule(instance,
                                                      ListOrder::WeightedLptf);
                        }});
  algorithms.push_back({"SAF", [](const Instance& instance) {
                          return list_graham_schedule(
                              instance, ListOrder::SmallestAreaFirst);
                        }});
  return algorithms;
}

std::vector<AlgorithmSpec> algorithms_by_name(
    const std::vector<std::string>& names, const DemtOptions& demt_options) {
  const auto all = standard_algorithms(demt_options);
  std::vector<AlgorithmSpec> out;
  for (const auto& name : names) {
    bool found = false;
    for (const auto& algorithm : all) {
      if (algorithm.name == name) {
        out.push_back(algorithm);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown algorithm: " + name);
    }
  }
  return out;
}

}  // namespace moldsched
