/// \file report.hpp
/// Figure-style reporting: the same series the paper plots (per-algorithm
/// min/avg/max performance ratio against task count, one block per
/// criterion), in aligned text and optional CSV.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace moldsched {

struct FigureConfig {
  std::string title;                    ///< e.g. "Figure 3 - weakly parallel"
  WorkloadFamily family = WorkloadFamily::WeaklyParallel;
  std::vector<int> ns = {25, 50, 100, 150, 200, 250, 300, 350, 400};
  int m = 200;
  int runs = 40;
  std::uint64_t seed = 20040627;
  bool compute_lp_bound = true;
  DemtOptions demt;
  SimplexOptions lp_options;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

struct FigureResult {
  FigureConfig config;
  std::vector<PointResult> points;  ///< one per n, in config order
};

/// Run every point of a figure (prints progress to the log).
[[nodiscard]] FigureResult run_figure(const FigureConfig& config);

/// Paper-style text report: a "sum w_i C_i ratio" block and a "Cmax ratio"
/// block, rows = n, one avg(min..max) column triple per algorithm.
void print_figure(const FigureResult& result, std::ostream& out);

/// Machine-readable CSV: one row per (n, algorithm) with both criteria.
void write_figure_csv(const FigureResult& result, std::ostream& out);

/// Emit a gnuplot reproduction of the paper's two-panel figure: writes
/// `<prefix>.dat` (whitespace table) and `<prefix>.gp` (script producing
/// `<prefix>.png` with the minsum and Cmax panels). Returns false when the
/// files cannot be created.
bool write_figure_gnuplot(const FigureResult& result,
                          const std::string& prefix);

}  // namespace moldsched
