#include "exp/experiment.hpp"

#include <stdexcept>

#include "dualapprox/cmax_estimator.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/validator.hpp"
#include "tasks/time_grid.hpp"
#include "util/timer.hpp"

namespace moldsched {

namespace {

struct RunOutcome {
  double cmax_lb = 0.0;
  double minsum_lb = 0.0;
  std::int64_t lp_iterations = 0;
  std::vector<double> cmax;      // per algorithm
  std::vector<double> minsum;    // per algorithm
  std::vector<double> runtime_s; // per algorithm
};

RunOutcome execute_run(const PointConfig& config,
                       const std::vector<AlgorithmSpec>& algorithms,
                       Rng rng) {
  const Instance instance =
      generate_instance(config.family, config.n, config.m, rng,
                        config.generator);

  RunOutcome outcome;
  const CmaxEstimate estimate = estimate_cmax(instance);
  outcome.cmax_lb = estimate.lower_bound;

  if (config.compute_lp_bound) {
    const TimeGrid grid(estimate.estimate, instance.tmin());
    const MinsumBoundResult bound =
        minsum_lower_bound(instance, grid, config.lp_options);
    outcome.minsum_lb = bound.bound;
    outcome.lp_iterations = bound.iterations;
  }

  outcome.cmax.reserve(algorithms.size());
  outcome.minsum.reserve(algorithms.size());
  outcome.runtime_s.reserve(algorithms.size());
  for (const auto& algorithm : algorithms) {
    WallTimer timer;
    const Schedule schedule = algorithm.run(instance);
    outcome.runtime_s.push_back(timer.seconds());
    if (config.validate) require_valid(schedule, instance);
    outcome.cmax.push_back(schedule.cmax());
    outcome.minsum.push_back(schedule.weighted_completion_sum(instance));
  }
  return outcome;
}

}  // namespace

PointResult run_point(const PointConfig& config,
                      const std::vector<AlgorithmSpec>& algorithms,
                      ThreadPool* pool) {
  if (config.runs < 1) throw std::invalid_argument("run_point: runs < 1");
  if (algorithms.empty()) {
    throw std::invalid_argument("run_point: no algorithms");
  }

  // Decorrelated per-run streams: the fork chain depends only on the seed
  // and the point coordinates, never on thread interleaving.
  Rng root(config.seed);
  Rng point_rng =
      root.fork(static_cast<std::uint64_t>(config.family) * 1000003ULL +
                static_cast<std::uint64_t>(config.n) * 1009ULL +
                static_cast<std::uint64_t>(config.m));
  std::vector<Rng> run_rngs;
  run_rngs.reserve(static_cast<std::size_t>(config.runs));
  for (int r = 0; r < config.runs; ++r) {
    run_rngs.push_back(point_rng.fork(static_cast<std::uint64_t>(r)));
  }

  std::vector<RunOutcome> outcomes(static_cast<std::size_t>(config.runs));
  auto body = [&](std::size_t r) {
    outcomes[r] = execute_run(config, algorithms, run_rngs[r]);
  };
  // Default executor: the shared pool — unless the caller brought a pool,
  // opted out, or this call already runs on a pool worker (submitting and
  // blocking there could deadlock the pool).
  if (pool == nullptr && config.parallel_runs &&
      !ThreadPool::this_thread_is_worker()) {
    pool = &shared_thread_pool();
  }
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, static_cast<std::size_t>(config.runs), body);
  } else {
    for (std::size_t r = 0; r < static_cast<std::size_t>(config.runs); ++r) {
      body(r);
    }
  }

  PointResult result;
  result.config = config;
  for (const auto& algorithm : algorithms) {
    result.algorithm_order.push_back(algorithm.name);
    result.stats.emplace(algorithm.name, AlgoPointStats{});
  }
  for (const auto& outcome : outcomes) {
    result.cmax_lower_bound.add(outcome.cmax_lb);
    if (config.compute_lp_bound) {
      result.lp_bound.add(outcome.minsum_lb);
      result.lp_iterations.add(static_cast<double>(outcome.lp_iterations));
    }
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      auto& stats = result.stats[algorithms[a].name];
      stats.cmax_ratio.add(outcome.cmax[a], outcome.cmax_lb);
      if (config.compute_lp_bound) {
        stats.minsum_ratio.add(outcome.minsum[a], outcome.minsum_lb);
      }
      stats.runtime_s.add(outcome.runtime_s[a]);
    }
  }
  return result;
}

}  // namespace moldsched
