/// \file knapsack.hpp
/// 0/1 knapsack used for the per-batch job selection (§3.2): maximise the
/// total weight of selected items subject to the processor budget. The
/// paper's DP
///
///   W(i, j) = max( W(i-1, j), W(i-1, j - alloc_i) + w_i )
///
/// in O(m n) time, with solution reconstruction.

#pragma once

#include <vector>

namespace moldsched {

struct KnapsackItem {
  int cost = 0;        ///< processors consumed (alloc_i)
  double weight = 0.0; ///< value to maximise (w_i)
};

/// Returns the indices of the selected items (increasing order). Items
/// whose cost exceeds the capacity are never selected; zero-cost items are
/// rejected with std::invalid_argument (the batch selection never produces
/// them and they would make the greedy stages ill-defined).
[[nodiscard]] std::vector<int> max_weight_knapsack(
    const std::vector<KnapsackItem>& items, int capacity);

}  // namespace moldsched
