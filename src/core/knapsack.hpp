/// \file knapsack.hpp
/// 0/1 knapsack used for the per-batch job selection (§3.2): maximise the
/// total weight of selected items subject to the processor budget. The
/// paper's DP
///
///   W(i, j) = max( W(i-1, j), W(i-1, j - alloc_i) + w_i )
///
/// in O(m n) time, with solution reconstruction.

#pragma once

#include <cstdint>
#include <vector>

namespace moldsched {

struct KnapsackItem {
  int cost = 0;        ///< processors consumed (alloc_i)
  double weight = 0.0; ///< value to maximise (w_i)
};

/// Reusable DP buffers: the value row and the flat n x (capacity + 1)
/// decision matrix (replacing the vector-of-vector<bool> the DP used to
/// allocate per call — one allocation per batch per DEMT run).
struct KnapsackWorkspace {
  std::vector<double> dp;
  std::vector<std::uint8_t> taken;
};

/// Returns the indices of the selected items (increasing order). Items
/// whose cost exceeds the capacity are never selected; zero-cost items are
/// rejected with std::invalid_argument (the batch selection never produces
/// them and they would make the greedy stages ill-defined).
[[nodiscard]] std::vector<int> max_weight_knapsack(
    const std::vector<KnapsackItem>& items, int capacity);

/// Same DP with caller-owned buffers (no allocation beyond the returned
/// selection once the workspace is warm). The parameterless overload uses a
/// thread-local workspace.
[[nodiscard]] std::vector<int> max_weight_knapsack(
    const std::vector<KnapsackItem>& items, int capacity,
    KnapsackWorkspace& ws);

}  // namespace moldsched
