/// \file knapsack.hpp
/// 0/1 knapsack used for the per-batch job selection (§3.2): maximise the
/// total weight of selected items subject to the processor budget. The
/// paper's DP
///
///   W(i, j) = max( W(i-1, j), W(i-1, j - alloc_i) + w_i )
///
/// in O(m n) time, with solution reconstruction.
///
/// Two implementations:
///  - max_weight_knapsack_reference: the original backward in-place row
///    update (branchy, one conditional store per cell). Retained as the
///    scalar reference the differential suite checks against.
///  - max_weight_knapsack / max_weight_knapsack_into: ping-pong row sweep.
///    Each item reads the previous row `dp` and writes `next` with select
///    operations only (no data-dependent branches inside the j loop), which
///    is exactly what the backward in-place loop computes — j descends so
///    dp[j - cost] is always a previous-row value — so the results are
///    bit-identical while the loop autovectorizes.

#pragma once

#include <cstdint>
#include <vector>

namespace moldsched {

struct KnapsackItem {
  int cost = 0;        ///< processors consumed (alloc_i)
  double weight = 0.0; ///< value to maximise (w_i)
};

/// Reusable DP buffers: the ping-pong value rows and the flat
/// n x (capacity + 1) decision matrix (replacing the vector-of-vector<bool>
/// the DP used to allocate per call — one allocation per batch per DEMT
/// run). cost_scratch/weight_scratch hold the SoA gather for the
/// KnapsackItem-vector overloads.
struct KnapsackWorkspace {
  std::vector<double> dp;
  std::vector<double> next;
  std::vector<std::uint8_t> taken;
  std::vector<int> cost_scratch;
  std::vector<double> weight_scratch;
};

/// Returns the indices of the selected items (increasing order). Items
/// whose cost exceeds the capacity are never selected; zero-cost items are
/// rejected with std::invalid_argument (the batch selection never produces
/// them and they would make the greedy stages ill-defined).
[[nodiscard]] std::vector<int> max_weight_knapsack(
    const std::vector<KnapsackItem>& items, int capacity);

/// Same DP with caller-owned buffers (no allocation beyond the returned
/// selection once the workspace is warm). The parameterless overload uses a
/// thread-local workspace.
[[nodiscard]] std::vector<int> max_weight_knapsack(
    const std::vector<KnapsackItem>& items, int capacity,
    KnapsackWorkspace& ws);

/// Vectorized row-sweep kernel over parallel cost/weight arrays. Writes the
/// selected indices (increasing order) into `selected`; fully allocation
/// free once `ws` and `selected` are warm. Validation matches the vector
/// overloads (throws std::invalid_argument on negative capacity,
/// non-positive cost, or negative weight).
void max_weight_knapsack_into(const int* costs, const double* weights, int n,
                              int capacity, KnapsackWorkspace& ws,
                              std::vector<int>& selected);

/// Original scalar DP (backward in-place row, conditional stores), kept as
/// the bit-identity reference for the vectorized kernel. Allocates its own
/// buffers; test/differential use only.
[[nodiscard]] std::vector<int> max_weight_knapsack_reference(
    const std::vector<KnapsackItem>& items, int capacity);

}  // namespace moldsched
