#include "core/batching.hpp"

#include <algorithm>

#include "core/knapsack.hpp"

namespace moldsched {

namespace {

std::vector<BatchItem> build_batch_items_impl(
    const Instance& instance, const std::vector<int>& pending, double length,
    const BatchBuildOptions& options, const InstanceAllotments* tables) {
  std::vector<BatchItem> items;
  std::vector<int> small;  // mergeable: can run on 1 proc in <= length/2

  for (int task_id : pending) {
    const MoldableTask& task = instance.task(task_id);
    const int alloc = tables != nullptr
                          ? tables->table(task_id).canonical(length)
                          : task.canonical_allotment(length);
    if (alloc == 0) continue;  // too long for this batch
    if (options.merge_small_tasks && task.min_procs() == 1 &&
        task.time(1) <= length / 2.0) {
      small.push_back(task_id);
      continue;
    }
    BatchItem item;
    item.tasks = {task_id};
    item.procs = alloc;
    item.weight = task.weight();
    item.duration = task.time(alloc);
    items.push_back(std::move(item));
  }

  if (small.empty()) return items;

  // Merge small sequential tasks: decreasing weight, first-fit into stacks
  // bounded by the batch length ("in order to have as much weight as
  // possible, this merge is done by decreasing weight order").
  std::sort(small.begin(), small.end(), [&](int a, int b) {
    const double wa = instance.task(a).weight();
    const double wb = instance.task(b).weight();
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });
  std::vector<BatchItem> stacks;
  for (int task_id : small) {
    const MoldableTask& task = instance.task(task_id);
    const double t1 = task.time(1);
    bool placed = false;
    for (auto& stack : stacks) {
      if (stack.duration + t1 <= length) {
        stack.tasks.push_back(task_id);
        stack.duration += t1;
        stack.weight += task.weight();
        placed = true;
        break;
      }
    }
    if (!placed) {
      BatchItem stack;
      stack.tasks = {task_id};
      stack.procs = 1;
      stack.weight = task.weight();
      stack.duration = t1;
      stacks.push_back(std::move(stack));
    }
  }

  // Inside a stack the tasks run back to back; their internal order only
  // affects the minsum. Smith's rule (weight/time decreasing) is optimal
  // for a fixed single-machine sequence, the paper's literal reading keeps
  // decreasing weight (already the insertion order).
  if (options.smith_order_stacks) {
    for (auto& stack : stacks) {
      std::sort(stack.tasks.begin(), stack.tasks.end(), [&](int a, int b) {
        const MoldableTask& ta = instance.task(a);
        const MoldableTask& tb = instance.task(b);
        const double ra = ta.weight() / ta.time(1);
        const double rb = tb.weight() / tb.time(1);
        if (ra != rb) return ra > rb;
        return a < b;
      });
    }
  }

  items.insert(items.end(), std::make_move_iterator(stacks.begin()),
               std::make_move_iterator(stacks.end()));
  return items;
}

}  // namespace

std::vector<BatchItem> build_batch_items(const Instance& instance,
                                         const std::vector<int>& pending,
                                         double length,
                                         const BatchBuildOptions& options) {
  return build_batch_items_impl(instance, pending, length, options, nullptr);
}

std::vector<BatchItem> build_batch_items(const Instance& instance,
                                         const std::vector<int>& pending,
                                         double length,
                                         const BatchBuildOptions& options,
                                         const InstanceAllotments& tables) {
  return build_batch_items_impl(instance, pending, length, options, &tables);
}

std::vector<int> select_batch(const std::vector<BatchItem>& items, int m) {
  std::vector<KnapsackItem> knapsack_items;
  knapsack_items.reserve(items.size());
  for (const auto& item : items) {
    knapsack_items.push_back(KnapsackItem{item.procs, item.weight});
  }
  // Reference path end to end: pair the AoS build with the scalar DP.
  return max_weight_knapsack_reference(knapsack_items, m);
}

void build_batch_items_into(const Instance& instance,
                            const std::vector<int>& pending, double length,
                            const BatchBuildOptions& options,
                            const InstanceAllotments& tables,
                            BatchBuildWorkspace& ws, FlatBatchItems& out) {
  out.clear();
  ws.small.clear();

  // Candidate filter; same visit order and predicates as the reference.
  for (int task_id : pending) {
    const MoldableTask& task = instance.task(task_id);
    const int alloc = tables.table(task_id).canonical(length);
    if (alloc == 0) continue;  // too long for this batch
    if (options.merge_small_tasks && task.min_procs() == 1 &&
        task.time(1) <= length / 2.0) {
      ws.small.push_back(task_id);
      continue;
    }
    out.push_item(task_id, alloc, task.weight(), task.time(alloc));
  }

  if (ws.small.empty()) return;

  // Merge small sequential tasks: decreasing weight, first-fit into stacks
  // bounded by the batch length ("in order to have as much weight as
  // possible, this merge is done by decreasing weight order").
  std::sort(ws.small.begin(), ws.small.end(), [&](int a, int b) {
    const double wa = instance.task(a).weight();
    const double wb = instance.task(b).weight();
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });

  // First-fit assignment pass: record each small task's stack index and the
  // per-stack accumulators, without building task lists yet.
  ws.small_stack.resize(ws.small.size());
  ws.stack_duration.clear();
  ws.stack_weight.clear();
  for (std::size_t s = 0; s < ws.small.size(); ++s) {
    const int task_id = ws.small[s];
    const MoldableTask& task = instance.task(task_id);
    const double t1 = task.time(1);
    int target = -1;
    const int num_stacks = static_cast<int>(ws.stack_duration.size());
    for (int k = 0; k < num_stacks; ++k) {
      if (ws.stack_duration[static_cast<std::size_t>(k)] + t1 <= length) {
        target = k;
        break;
      }
    }
    if (target < 0) {
      target = num_stacks;
      ws.stack_duration.push_back(0.0);
      ws.stack_weight.push_back(0.0);
    }
    ws.small_stack[s] = target;
    ws.stack_duration[static_cast<std::size_t>(target)] += t1;
    ws.stack_weight[static_cast<std::size_t>(target)] += task.weight();
  }

  // Emit the stacks in creation order. Task slices are reserved first from
  // per-stack counts, then filled by a scatter pass that preserves the
  // assignment (= decreasing weight) order inside each stack — exactly the
  // push_back order the reference produces.
  const int num_stacks = static_cast<int>(ws.stack_duration.size());
  ws.stack_fill.assign(static_cast<std::size_t>(num_stacks), 0);
  for (std::size_t s = 0; s < ws.small.size(); ++s) {
    ++ws.stack_fill[static_cast<std::size_t>(ws.small_stack[s])];
  }
  int cursor = static_cast<int>(out.task_ids.size());
  for (int k = 0; k < num_stacks; ++k) {
    const int count = ws.stack_fill[static_cast<std::size_t>(k)];
    ws.stack_fill[static_cast<std::size_t>(k)] = cursor;  // scatter base
    cursor += count;
    out.task_begin.push_back(cursor);
    out.procs.push_back(1);
    out.weight.push_back(ws.stack_weight[static_cast<std::size_t>(k)]);
    out.duration.push_back(ws.stack_duration[static_cast<std::size_t>(k)]);
  }
  out.task_ids.resize(static_cast<std::size_t>(cursor));
  for (std::size_t s = 0; s < ws.small.size(); ++s) {
    int& fill = ws.stack_fill[static_cast<std::size_t>(ws.small_stack[s])];
    out.task_ids[static_cast<std::size_t>(fill++)] = ws.small[s];
  }

  // Inside a stack the tasks run back to back; their internal order only
  // affects the minsum. Smith's rule (weight/time decreasing) is optimal
  // for a fixed single-machine sequence, the paper's literal reading keeps
  // decreasing weight (already the insertion order).
  if (options.smith_order_stacks) {
    const int first_stack = out.size() - num_stacks;
    for (int item = first_stack; item < out.size(); ++item) {
      const int b = out.tasks_begin(item);
      const int e = b + out.tasks_count(item);
      std::sort(out.task_ids.begin() + b, out.task_ids.begin() + e,
                [&](int a, int c) {
                  const MoldableTask& ta = instance.task(a);
                  const MoldableTask& tc = instance.task(c);
                  const double ra = ta.weight() / ta.time(1);
                  const double rc = tc.weight() / tc.time(1);
                  if (ra != rc) return ra > rc;
                  return a < c;
                });
    }
  }
}

void select_batch_into(const FlatBatchItems& items, int m,
                       KnapsackWorkspace& knap, std::vector<int>& selected) {
  max_weight_knapsack_into(items.procs.data(), items.weight.data(),
                           items.size(), m, knap, selected);
}

}  // namespace moldsched
