#include "core/batching.hpp"

#include <algorithm>

#include "core/knapsack.hpp"

namespace moldsched {

namespace {

std::vector<BatchItem> build_batch_items_impl(
    const Instance& instance, const std::vector<int>& pending, double length,
    const BatchBuildOptions& options, const InstanceAllotments* tables) {
  std::vector<BatchItem> items;
  std::vector<int> small;  // mergeable: can run on 1 proc in <= length/2

  for (int task_id : pending) {
    const MoldableTask& task = instance.task(task_id);
    const int alloc = tables != nullptr
                          ? tables->table(task_id).canonical(length)
                          : task.canonical_allotment(length);
    if (alloc == 0) continue;  // too long for this batch
    if (options.merge_small_tasks && task.min_procs() == 1 &&
        task.time(1) <= length / 2.0) {
      small.push_back(task_id);
      continue;
    }
    BatchItem item;
    item.tasks = {task_id};
    item.procs = alloc;
    item.weight = task.weight();
    item.duration = task.time(alloc);
    items.push_back(std::move(item));
  }

  if (small.empty()) return items;

  // Merge small sequential tasks: decreasing weight, first-fit into stacks
  // bounded by the batch length ("in order to have as much weight as
  // possible, this merge is done by decreasing weight order").
  std::sort(small.begin(), small.end(), [&](int a, int b) {
    const double wa = instance.task(a).weight();
    const double wb = instance.task(b).weight();
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });
  std::vector<BatchItem> stacks;
  for (int task_id : small) {
    const MoldableTask& task = instance.task(task_id);
    const double t1 = task.time(1);
    bool placed = false;
    for (auto& stack : stacks) {
      if (stack.duration + t1 <= length) {
        stack.tasks.push_back(task_id);
        stack.duration += t1;
        stack.weight += task.weight();
        placed = true;
        break;
      }
    }
    if (!placed) {
      BatchItem stack;
      stack.tasks = {task_id};
      stack.procs = 1;
      stack.weight = task.weight();
      stack.duration = t1;
      stacks.push_back(std::move(stack));
    }
  }

  // Inside a stack the tasks run back to back; their internal order only
  // affects the minsum. Smith's rule (weight/time decreasing) is optimal
  // for a fixed single-machine sequence, the paper's literal reading keeps
  // decreasing weight (already the insertion order).
  if (options.smith_order_stacks) {
    for (auto& stack : stacks) {
      std::sort(stack.tasks.begin(), stack.tasks.end(), [&](int a, int b) {
        const MoldableTask& ta = instance.task(a);
        const MoldableTask& tb = instance.task(b);
        const double ra = ta.weight() / ta.time(1);
        const double rb = tb.weight() / tb.time(1);
        if (ra != rb) return ra > rb;
        return a < b;
      });
    }
  }

  items.insert(items.end(), std::make_move_iterator(stacks.begin()),
               std::make_move_iterator(stacks.end()));
  return items;
}

}  // namespace

std::vector<BatchItem> build_batch_items(const Instance& instance,
                                         const std::vector<int>& pending,
                                         double length,
                                         const BatchBuildOptions& options) {
  return build_batch_items_impl(instance, pending, length, options, nullptr);
}

std::vector<BatchItem> build_batch_items(const Instance& instance,
                                         const std::vector<int>& pending,
                                         double length,
                                         const BatchBuildOptions& options,
                                         const InstanceAllotments& tables) {
  return build_batch_items_impl(instance, pending, length, options, &tables);
}

std::vector<int> select_batch(const std::vector<BatchItem>& items, int m) {
  std::vector<KnapsackItem> knapsack_items;
  knapsack_items.reserve(items.size());
  for (const auto& item : items) {
    knapsack_items.push_back(KnapsackItem{item.procs, item.weight});
  }
  return max_weight_knapsack(knapsack_items, m);
}

}  // namespace moldsched
