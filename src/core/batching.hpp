/// \file batching.hpp
/// Batch construction for the bi-criteria algorithm (§3.2): candidate
/// filtering, merging of small sequential tasks into single-processor
/// stacks, and the knapsack selection of the batch content. Factored out of
/// the driver so each stage is independently testable.

#pragma once

#include <vector>

#include "core/knapsack.hpp"
#include "tasks/allotment_table.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

/// One schedulable unit inside a batch: either a single task at a fixed
/// allotment, or a stack of small sequential tasks sharing one processor,
/// executed back to back.
struct BatchItem {
  std::vector<int> tasks;  ///< task indices; >1 entries = merged stack
  int procs = 1;           ///< processors consumed by the item
  double weight = 0.0;     ///< combined weight (knapsack value)
  double duration = 0.0;   ///< occupied time inside the batch

  [[nodiscard]] bool is_stack() const noexcept { return tasks.size() > 1; }
};

struct BatchBuildOptions {
  bool merge_small_tasks = true;
  /// Order tasks inside a stack by Smith's rule (weight / time decreasing),
  /// which is optimal for the stack's own minsum. false = the paper's
  /// literal decreasing-weight order.
  bool smith_order_stacks = true;
};

/// Build the candidate items of a batch of length `length` from the pending
/// tasks. A task is a candidate when some allotment finishes within the
/// batch (the paper's canonical choice: the SMALLEST such allotment). Small
/// sequential candidates (single-processor time at most length/2) are
/// stacked first-fit in decreasing weight order when merging is enabled.
[[nodiscard]] std::vector<BatchItem> build_batch_items(
    const Instance& instance, const std::vector<int>& pending, double length,
    const BatchBuildOptions& options = {});

/// Same construction with precomputed allotment tables (the canonical
/// allotment per candidate becomes an O(log max_procs) lookup). DEMT builds
/// the tables once per call and reuses them for every batch length.
[[nodiscard]] std::vector<BatchItem> build_batch_items(
    const Instance& instance, const std::vector<int>& pending, double length,
    const BatchBuildOptions& options, const InstanceAllotments& tables);

/// Select the weight-maximising subset of items within the processor
/// budget; returns indices into `items`. Together with the BatchItem
/// overloads above this is the scalar reference batch path (it runs the
/// reference knapsack); the serving path uses the SoA forms below.
[[nodiscard]] std::vector<int> select_batch(const std::vector<BatchItem>& items,
                                            int m);

/// Structure-of-arrays batch items: all items' task lists live in one flat
/// pool (`task_ids` sliced by `task_begin`), and procs/weight/duration are
/// parallel arrays the knapsack and placement loops sweep directly. clear()
/// keeps capacity, so a pooled FlatBatchItems makes batch construction
/// allocation-free once warm. Item order and all values are bit-identical
/// to the BatchItem vector the reference build produces.
struct FlatBatchItems {
  std::vector<int> task_ids;    ///< concatenated task lists
  std::vector<int> task_begin;  ///< size() + 1 offsets into task_ids
  std::vector<int> procs;
  std::vector<double> weight;
  std::vector<double> duration;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(procs.size());
  }
  [[nodiscard]] int tasks_begin(int item) const noexcept {
    return task_begin[static_cast<std::size_t>(item)];
  }
  [[nodiscard]] int tasks_count(int item) const noexcept {
    return task_begin[static_cast<std::size_t>(item) + 1] -
           task_begin[static_cast<std::size_t>(item)];
  }
  [[nodiscard]] bool is_stack(int item) const noexcept {
    return tasks_count(item) > 1;
  }

  void clear() {
    task_ids.clear();
    task_begin.assign(1, 0);
    procs.clear();
    weight.clear();
    duration.clear();
  }
  void push_item(int task_id, int alloc, double w, double d) {
    task_ids.push_back(task_id);
    task_begin.push_back(static_cast<int>(task_ids.size()));
    procs.push_back(alloc);
    weight.push_back(w);
    duration.push_back(d);
  }
  /// Append item `src_item` of `src` (including its task slice).
  void append_from(const FlatBatchItems& src, int src_item) {
    const int b = src.tasks_begin(src_item);
    const int e = b + src.tasks_count(src_item);
    for (int t = b; t < e; ++t) task_ids.push_back(src.task_ids[t]);
    task_begin.push_back(static_cast<int>(task_ids.size()));
    procs.push_back(src.procs[static_cast<std::size_t>(src_item)]);
    weight.push_back(src.weight[static_cast<std::size_t>(src_item)]);
    duration.push_back(src.duration[static_cast<std::size_t>(src_item)]);
  }
};

/// Scratch for build_batch_items_into: the small-task list, each small
/// task's stack assignment, and per-stack accumulators. Capacity only,
/// never state, between calls.
struct BatchBuildWorkspace {
  std::vector<int> small;
  std::vector<int> small_stack;     ///< stack index per small task
  std::vector<double> stack_duration;
  std::vector<double> stack_weight;
  std::vector<int> stack_fill;      ///< scatter cursor per stack
};

/// SoA batch construction: same candidate filter, same decreasing-weight
/// first-fit stacking, same Smith ordering as the BatchItem reference —
/// writing straight into pooled flat arrays. Allocation-free once `ws` and
/// `out` are warm; this is what demt_schedule_into calls per batch length.
void build_batch_items_into(const Instance& instance,
                            const std::vector<int>& pending, double length,
                            const BatchBuildOptions& options,
                            const InstanceAllotments& tables,
                            BatchBuildWorkspace& ws, FlatBatchItems& out);

/// Knapsack selection over the flat arrays (vectorized row-sweep DP);
/// writes indices into `selected`. Allocation-free once warm.
void select_batch_into(const FlatBatchItems& items, int m,
                       KnapsackWorkspace& knap, std::vector<int>& selected);

}  // namespace moldsched
