/// \file batching.hpp
/// Batch construction for the bi-criteria algorithm (§3.2): candidate
/// filtering, merging of small sequential tasks into single-processor
/// stacks, and the knapsack selection of the batch content. Factored out of
/// the driver so each stage is independently testable.

#pragma once

#include <vector>

#include "tasks/allotment_table.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

/// One schedulable unit inside a batch: either a single task at a fixed
/// allotment, or a stack of small sequential tasks sharing one processor,
/// executed back to back.
struct BatchItem {
  std::vector<int> tasks;  ///< task indices; >1 entries = merged stack
  int procs = 1;           ///< processors consumed by the item
  double weight = 0.0;     ///< combined weight (knapsack value)
  double duration = 0.0;   ///< occupied time inside the batch

  [[nodiscard]] bool is_stack() const noexcept { return tasks.size() > 1; }
};

struct BatchBuildOptions {
  bool merge_small_tasks = true;
  /// Order tasks inside a stack by Smith's rule (weight / time decreasing),
  /// which is optimal for the stack's own minsum. false = the paper's
  /// literal decreasing-weight order.
  bool smith_order_stacks = true;
};

/// Build the candidate items of a batch of length `length` from the pending
/// tasks. A task is a candidate when some allotment finishes within the
/// batch (the paper's canonical choice: the SMALLEST such allotment). Small
/// sequential candidates (single-processor time at most length/2) are
/// stacked first-fit in decreasing weight order when merging is enabled.
[[nodiscard]] std::vector<BatchItem> build_batch_items(
    const Instance& instance, const std::vector<int>& pending, double length,
    const BatchBuildOptions& options = {});

/// Same construction with precomputed allotment tables (the canonical
/// allotment per candidate becomes an O(log max_procs) lookup). DEMT builds
/// the tables once per call and reuses them for every batch length.
[[nodiscard]] std::vector<BatchItem> build_batch_items(
    const Instance& instance, const std::vector<int>& pending, double length,
    const BatchBuildOptions& options, const InstanceAllotments& tables);

/// Select the weight-maximising subset of items within the processor
/// budget; returns indices into `items`.
[[nodiscard]] std::vector<int> select_batch(const std::vector<BatchItem>& items,
                                            int m);

}  // namespace moldsched
