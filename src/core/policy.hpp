/// \file policy.hpp
/// The pluggable scheduling-policy surface. The paper is about
/// *interchangeable* per-batch algorithms — DEMT's dual-approximation
/// pipeline against list baselines plugged into one online batch framework
/// — and SchedulingPolicy is that interchange point as a first-class
/// object: one small-vtable interface every entry point of the library
/// consumes (`SchedulerEngine` off-line batches, the on-line simulator,
/// `OnlineStream` feeds, and the async serving layer all take a
/// `const SchedulingPolicy&`), instead of a hard-coded algorithm enum.
///
/// A policy is an immutable algorithm description (options frozen at
/// construction) plus a workspace factory: `make_workspace()` creates the
/// scratch the algorithm needs, callers pool one workspace per strand (see
/// `EngineWorkspace`), and `schedule_into` runs one batch inside a pooled
/// workspace writing flat placements — the allocation-free raw-array form
/// the hot paths use. Policies themselves are stateless per call and
/// const: one policy object may serve any number of engines, shards, and
/// streams concurrently, as long as each strand uses its own workspace.
///
/// Built-ins: `DemtPolicy` (the paper's bi-criteria algorithm, §3.2) and
/// `FlatListPolicy` (min-work allotments + one Smith-ordered list pass —
/// the allocation-free serving baseline). A third baseline,
/// `LptRigidPolicy`, lives with the paper baselines
/// (baselines/lpt_policy.hpp) as proof the extension point needs no
/// engine/serve changes. The legacy `EngineAlgorithm` enum + `DemtOptions`
/// pair on requests remains as a deprecated adapter: the engine resolves
/// it to the matching built-in policy, so both spellings are bit-identical
/// (regression-gated by tests/test_policy.cpp).
///
/// Writing a policy:
///  1. subclass PolicyWorkspace with whatever scratch the algorithm reuses
///     across calls (capacity only, never state);
///  2. subclass SchedulingPolicy; `schedule_into` may downcast its
///     workspace argument to the type `make_workspace` returned;
///  3. override `workspace_key()` with a per-class tag when workspaces of
///     different instances are interchangeable (true whenever the
///     workspace carries no per-instance state) so pooled workspaces are
///     shared across temporaries — the built-ins do this, which is what
///     keeps the deprecated enum adapters allocation-free.

#pragma once

#include <cstdint>
#include <memory>

#include "core/demt.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

/// Base of every policy's per-strand scratch. Callers pool one per
/// (strand, workspace_key); a workspace carries capacity, never state,
/// between calls — except `last_diag`, which every `schedule_into` call
/// overwrites (it is how diagnostics travel out of the type-erased hook).
class PolicyWorkspace {
 public:
  PolicyWorkspace() = default;
  virtual ~PolicyWorkspace();
  PolicyWorkspace(const PolicyWorkspace&) = delete;
  PolicyWorkspace& operator=(const PolicyWorkspace&) = delete;

  /// Diagnostics of the most recent schedule_into call in this workspace.
  /// Reset to default by the caller before each call; policies with
  /// something to report (DemtPolicy) overwrite it.
  DemtDiagnostics last_diag;
};

/// A per-batch off-line scheduling algorithm as a pluggable object. See
/// the file comment for the authoring recipe and the pooling contract.
class SchedulingPolicy {
 public:
  SchedulingPolicy() = default;
  virtual ~SchedulingPolicy();
  SchedulingPolicy(const SchedulingPolicy&) = delete;
  SchedulingPolicy& operator=(const SchedulingPolicy&) = delete;

  /// Stable human-readable identifier (logs, benches, reports).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Create the scratch this policy needs. Callers keep one per strand
  /// (keyed by workspace_key()) and hand it back to every schedule_into.
  [[nodiscard]] virtual std::unique_ptr<PolicyWorkspace> make_workspace()
      const = 0;

  /// Schedule `batch` (every task must be placed), writing flat placements
  /// into `out` (reset by the callee; buffer capacity reused). `ws` is
  /// always a workspace this policy's make_workspace created — downcast
  /// freely. Must be safe to call concurrently from multiple strands as
  /// long as each strand passes its own workspace.
  virtual void schedule_into(const Instance& batch, PolicyWorkspace& ws,
                             FlatPlacements& out) const = 0;

  /// Pooling identity: callers share one pooled workspace among all
  /// policies returning the same key. Default = `this` (per-instance,
  /// always safe). Override with a per-class tag when any instance's
  /// workspace serves any other instance of the class — required for the
  /// engine's deprecated enum adapters (stack-constructed per request) to
  /// stay allocation-free.
  [[nodiscard]] virtual const void* workspace_key() const noexcept;

  /// Decision-cache identity (core/decision_cache.hpp). 0 — the default —
  /// means "never cache my decisions" (always safe: unknown policies are
  /// simply not cached). A nonzero key must change whenever any frozen
  /// option that can change the schedule changes, and must be stable
  /// across policy objects built from equal options — it is a *value*
  /// identity, unlike workspace_key()'s class identity, so two DemtPolicy
  /// temporaries with different DemtOptions never share cache entries.
  /// The built-ins override this with option-derived keys.
  [[nodiscard]] virtual std::uint64_t cache_key() const noexcept;
};

/// The paper's bi-criteria DEMT algorithm (§3.2) as a policy. Options are
/// frozen at construction; the workspace wraps a DemtWorkspace and is
/// shared per class (DemtWorkspace carries capacity only).
class DemtPolicy final : public SchedulingPolicy {
 public:
  explicit DemtPolicy(DemtOptions options = {}) : options_(options) {}

  [[nodiscard]] const char* name() const noexcept override { return "demt"; }
  [[nodiscard]] std::unique_ptr<PolicyWorkspace> make_workspace()
      const override;
  void schedule_into(const Instance& batch, PolicyWorkspace& ws,
                     FlatPlacements& out) const override;
  [[nodiscard]] const void* workspace_key() const noexcept override;
  /// Hash of every DemtOptions field that can change the schedule
  /// (shuffle_workers is excluded: the shuffle engine is bit-identical
  /// for every worker count by design).
  [[nodiscard]] std::uint64_t cache_key() const noexcept override;

  [[nodiscard]] const DemtOptions& options() const noexcept {
    return options_;
  }

 private:
  DemtOptions options_;
};

/// Min-work allotments + one Smith-ordered flat list pass: the fast,
/// allocation-free baseline for latency-critical serving. Workspace shared
/// per class.
class FlatListPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "flatlist";
  }
  [[nodiscard]] std::unique_ptr<PolicyWorkspace> make_workspace()
      const override;
  void schedule_into(const Instance& batch, PolicyWorkspace& ws,
                     FlatPlacements& out) const override;
  [[nodiscard]] const void* workspace_key() const noexcept override;
  /// Stateless algorithm: one class-wide constant key.
  [[nodiscard]] std::uint64_t cache_key() const noexcept override;
};

/// Fill `list.jobs` with every task of `instance` on its min-work
/// allotment — the shared first step of the rigid-allotment list policies
/// (FlatListPolicy, LptRigidPolicy); callers order the list and run the
/// pass. Allocation-free once `list` is warm.
void fill_min_work_jobs(const Instance& instance, ListPassWorkspace& list);

/// The FlatList algorithm as a free function: give every task its min-work
/// allotment, order by Smith ratio (weight/duration decreasing, task id
/// tie-break), run one allocation-free list pass into `out`. FlatListPolicy
/// wraps this; exposed for tests and direct flat plug-in use.
void flat_list_schedule(const Instance& instance, ListPassWorkspace& list,
                        FlatPlacements& out);

}  // namespace moldsched
