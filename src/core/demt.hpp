/// \file demt.hpp
/// The paper's contribution: the bi-criteria batch algorithm for moldable
/// jobs, optimising makespan and weighted sum of completion times together.
/// (The evaluation labels it DEMT after the authors — Dutot, Eyraud,
/// Mounié, Trystram; we keep the name.)
///
/// Pipeline (§3.2):
///  1. estimate C*max with the dual-approximation engine;
///  2. geometric batches t_j = C*max / 2^(K-j), K = floor(log2(C*max/tmin));
///  3. per batch: candidate filtering, merging of small sequential tasks,
///     weight-maximising knapsack under the m-processor budget, placement
///     in [t_j, t_{j+1});
///  4. compaction: pull tasks earlier on their own processors, then a full
///     list-scheduling pass in batch order (processor sets re-chosen);
///  5. several randomised shuffles of the batch content ordering; the best
///     compact schedule under the acceptance rule is kept.
///
/// Every stage is switchable through DemtOptions so the ablation bench can
/// measure each design choice.

#pragma once

#include <cstdint>
#include <memory>

#include "sched/flat_schedule.hpp"
#include "sched/schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

struct DemtOptions {
  /// Relative precision of the dual-approximation binary search.
  double dual_eps = 1e-4;

  /// §3.2 "merge the small sequential tasks".
  bool merge_small_tasks = true;
  /// Order within merged stacks: Smith's rule (true) or the paper's literal
  /// decreasing weight (false).
  bool smith_order_stacks = true;

  enum class Compaction {
    None,         ///< tasks start at their batch boundary
    PullForward,  ///< keep processor sets, pull starts earlier
    List,         ///< full list-scheduling pass in batch order (paper final)
  };
  Compaction compaction = Compaction::List;

  /// Local ordering of items inside a batch for the list pass.
  enum class LocalOrder {
    AsSelected,   ///< knapsack output order
    SmithRatio,   ///< weight / duration decreasing
    LongestFirst, ///< duration decreasing (classic LPT)
  };
  LocalOrder local_order = LocalOrder::SmithRatio;

  /// Number of randomised batch-content shuffles ("shuffled several
  /// times"); 0 disables the stage. Only meaningful with Compaction::List.
  int shuffles = 8;
  /// Also permute the batch order itself, not just task order inside each
  /// batch (off by default: batch order is the algorithm's backbone).
  bool shuffle_batch_order = false;
  /// A shuffled schedule is accepted only when it improves the weighted
  /// minsum AND its makespan stays within this factor of the unshuffled
  /// compact schedule's makespan.
  double cmax_budget_factor = 1.0;
  std::uint64_t shuffle_seed = 0x5EEDF00DULL;

  /// Worker threads for the shuffle stage: 1 (default) evaluates candidates
  /// sequentially on the calling thread; 0 uses every worker of the
  /// process-wide shared pool; k > 1 caps the shared-pool strands at k.
  /// The schedule is bit-identical for every setting — candidates draw from
  /// RNG streams pre-forked in candidate order and are accepted by a
  /// sequential replay of the results, so parallelism changes only the
  /// wall-clock. Calls arriving on a pool worker thread (e.g. from the
  /// experiment harness's parallel replicates) always run sequentially to
  /// avoid nested-pool deadlock.
  int shuffle_workers = 1;

  /// Warm-start the Cmax bisection from the previous call's accepted dual
  /// bounds, kept in the workspace's DualTestWorkspace (consecutive online
  /// batches are near-identical, so most probes of the cold search are
  /// proven by monotonicity instead of run). The schedule is bit-identical
  /// to the cold search — only DemtDiagnostics::dual_tests drops — so like
  /// shuffle_workers this flag stays out of DemtPolicy::cache_key(). Off
  /// by default: the first call on a workspace is always a cold start.
  bool warm_dual_start = false;
};

struct DemtDiagnostics {
  double cmax_estimate = 0.0;    ///< dual-approximation C*max
  double cmax_lower_bound = 0.0; ///< certified makespan lower bound
  int grid_k = 0;                ///< K of the geometric grid
  int num_batches = 0;           ///< batches actually used (>= K+1 possible)
  int merged_stacks = 0;         ///< stacks with at least two tasks
  int shuffle_improvements = 0;  ///< accepted shuffle candidates
  int dual_tests = 0;            ///< dual_test calls inside estimate_cmax
  int shuffle_strands = 1;       ///< concurrent strands the shuffle stage used
};

struct DemtResult {
  Schedule schedule;
  DemtDiagnostics diag;
};

/// Reusable buffers for repeated demt_schedule calls: the shuffle/list/
/// compaction workspaces of the hot path plus every per-call scratch vector
/// of the driver (pending sets, batch ranges, candidate RNG streams, ...).
/// One workspace per thread/strand — the engine pools one per strand so a
/// server-style request stream stops re-warming buffers on every request.
/// Reuse never changes results: a workspace only carries capacity, not
/// state, between calls.
class DemtWorkspace {
 public:
  DemtWorkspace();
  ~DemtWorkspace();
  DemtWorkspace(DemtWorkspace&&) noexcept;
  DemtWorkspace& operator=(DemtWorkspace&&) noexcept;

 private:
  friend DemtResult demt_schedule(const Instance& instance,
                                  const DemtOptions& options,
                                  DemtWorkspace& workspace);
  friend void demt_schedule_into(const Instance& instance,
                                 const DemtOptions& options,
                                 DemtWorkspace& workspace,
                                 FlatPlacements& out_placements,
                                 DemtDiagnostics& out_diag);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Schedule the instance. Throws std::invalid_argument on an empty
/// instance. The returned schedule is always complete and feasible.
[[nodiscard]] DemtResult demt_schedule(const Instance& instance,
                                       const DemtOptions& options = {});

/// Same algorithm, reusing a caller-owned workspace across calls (identical
/// results; only the allocation profile changes).
[[nodiscard]] DemtResult demt_schedule(const Instance& instance,
                                       const DemtOptions& options,
                                       DemtWorkspace& workspace);

/// The serving-path entry point: the whole pipeline — allotment tables,
/// dual-approximation search, batch construction, knapsack selection,
/// placement, compaction and the shuffle stage — runs on the
/// structure-of-arrays kernels inside `workspace`, and the winning per-task
/// placements land in `out_placements` (buffers reused). Zero heap
/// allocation once the workspace is warm; results are bit-identical to
/// demt_schedule (which wraps this) and to demt_schedule_reference.
void demt_schedule_into(const Instance& instance, const DemtOptions& options,
                        DemtWorkspace& workspace,
                        FlatPlacements& out_placements,
                        DemtDiagnostics& out_diag);

/// The retained scalar pipeline: array-of-structs batch items, scan-based
/// allotment lookups, the budget-outer dual-test DP, the backward in-place
/// knapsack and Schedule-based placement/compaction, exactly as the driver
/// ran before the SoA rewrite. Allocates freely and always evaluates
/// shuffle candidates sequentially (the replay rule makes worker count
/// irrelevant to the result). The differential suite (test_demt_kernel)
/// locks demt_schedule bit-identical to this.
[[nodiscard]] DemtResult demt_schedule_reference(
    const Instance& instance, const DemtOptions& options = {});

}  // namespace moldsched
