#include "core/policy.hpp"

#include <algorithm>

namespace moldsched {

PolicyWorkspace::~PolicyWorkspace() = default;
SchedulingPolicy::~SchedulingPolicy() = default;

const void* SchedulingPolicy::workspace_key() const noexcept { return this; }

void fill_min_work_jobs(const Instance& instance, ListPassWorkspace& list) {
  const int n = instance.num_tasks();
  list.jobs.clear();
  for (int t = 0; t < n; ++t) {
    const MoldableTask& task = instance.task(t);
    const int k = task.min_work_procs();
    list.jobs.push_back(ListJob{t, k, task.time(k), 0.0});
  }
}

void flat_list_schedule(const Instance& instance, ListPassWorkspace& list,
                        FlatPlacements& out) {
  fill_min_work_jobs(instance, list);
  // Smith ratio decreasing; task id breaks ties so the order (and thus the
  // schedule) is deterministic. std::sort, not stable_sort: the latter may
  // allocate its merge buffer, and the explicit tie-break already pins the
  // order.
  std::sort(list.jobs.begin(), list.jobs.end(),
            [&](const ListJob& a, const ListJob& b) {
              const double ra =
                  instance.task(a.task).weight() / a.duration;
              const double rb =
                  instance.task(b.task).weight() / b.duration;
              if (ra != rb) return ra > rb;
              return a.task < b.task;
            });
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(instance.procs(), instance.num_tasks(), kNoReservations,
                     list, out);
}

namespace {

struct DemtPolicyWorkspace final : PolicyWorkspace {
  DemtWorkspace demt;
};

struct FlatListPolicyWorkspace final : PolicyWorkspace {
  ListPassWorkspace list;
};

}  // namespace

std::unique_ptr<PolicyWorkspace> DemtPolicy::make_workspace() const {
  return std::make_unique<DemtPolicyWorkspace>();
}

void DemtPolicy::schedule_into(const Instance& batch, PolicyWorkspace& ws,
                               FlatPlacements& out) const {
  auto& demt_ws = static_cast<DemtPolicyWorkspace&>(ws);
  DemtResult result = demt_schedule(batch, options_, demt_ws.demt);
  ws.last_diag = result.diag;
  out.assign_from(result.schedule);
}

const void* DemtPolicy::workspace_key() const noexcept {
  static const char kKey = 0;
  return &kKey;
}

std::unique_ptr<PolicyWorkspace> FlatListPolicy::make_workspace() const {
  return std::make_unique<FlatListPolicyWorkspace>();
}

void FlatListPolicy::schedule_into(const Instance& batch, PolicyWorkspace& ws,
                                   FlatPlacements& out) const {
  auto& flat_ws = static_cast<FlatListPolicyWorkspace&>(ws);
  flat_list_schedule(batch, flat_ws.list, out);
}

const void* FlatListPolicy::workspace_key() const noexcept {
  static const char kKey = 0;
  return &kKey;
}

}  // namespace moldsched
