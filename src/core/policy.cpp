#include "core/policy.hpp"

#include <algorithm>
#include <cstring>

namespace moldsched {

PolicyWorkspace::~PolicyWorkspace() = default;
SchedulingPolicy::~SchedulingPolicy() = default;

const void* SchedulingPolicy::workspace_key() const noexcept { return this; }

std::uint64_t SchedulingPolicy::cache_key() const noexcept { return 0; }

namespace {

/// SplitMix64 finalization over (h ^ v) — the same mixer the decision
/// cache's signature uses (util/rng.hpp lineage).
std::uint64_t mix_key(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t z = (h ^ v) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_key(std::uint64_t h, double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return mix_key(h, bits);
}

}  // namespace

void fill_min_work_jobs(const Instance& instance, ListPassWorkspace& list) {
  const int n = instance.num_tasks();
  list.jobs.clear();
  for (int t = 0; t < n; ++t) {
    const MoldableTask& task = instance.task(t);
    const int k = task.min_work_procs();
    list.jobs.push_back(ListJob{t, k, task.time(k), 0.0});
  }
}

void flat_list_schedule(const Instance& instance, ListPassWorkspace& list,
                        FlatPlacements& out) {
  fill_min_work_jobs(instance, list);
  // Smith ratio decreasing; task id breaks ties so the order (and thus the
  // schedule) is deterministic. std::sort, not stable_sort: the latter may
  // allocate its merge buffer, and the explicit tie-break already pins the
  // order.
  std::sort(list.jobs.begin(), list.jobs.end(),
            [&](const ListJob& a, const ListJob& b) {
              const double ra =
                  instance.task(a.task).weight() / a.duration;
              const double rb =
                  instance.task(b.task).weight() / b.duration;
              if (ra != rb) return ra > rb;
              return a.task < b.task;
            });
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(instance.procs(), instance.num_tasks(), kNoReservations,
                     list, out);
}

namespace {

struct DemtPolicyWorkspace final : PolicyWorkspace {
  DemtWorkspace demt;
};

struct FlatListPolicyWorkspace final : PolicyWorkspace {
  ListPassWorkspace list;
};

}  // namespace

std::unique_ptr<PolicyWorkspace> DemtPolicy::make_workspace() const {
  return std::make_unique<DemtPolicyWorkspace>();
}

void DemtPolicy::schedule_into(const Instance& batch, PolicyWorkspace& ws,
                               FlatPlacements& out) const {
  auto& demt_ws = static_cast<DemtPolicyWorkspace&>(ws);
  // Flat end to end: the driver writes the winning per-task placements
  // straight into the engine's pooled FlatPlacements — no intermediate
  // Schedule, no per-request allocation once the workspace is warm.
  demt_schedule_into(batch, options_, demt_ws.demt, out, ws.last_diag);
}

const void* DemtPolicy::workspace_key() const noexcept {
  static const char kKey = 0;
  return &kKey;
}

std::uint64_t DemtPolicy::cache_key() const noexcept {
  // Every schedule-affecting option, by value. shuffle_workers and
  // warm_dual_start stay out: the shuffle engine is bit-identical for any
  // worker count, and the warm-started bisection only changes how many
  // dual tests run, never the schedule.
  std::uint64_t h = 0x44454D5450434B59ULL;  // class tag ("DEMTPCKY")
  h = mix_key(h, options_.dual_eps);
  h = mix_key(h, static_cast<std::uint64_t>(options_.merge_small_tasks));
  h = mix_key(h, static_cast<std::uint64_t>(options_.smith_order_stacks));
  h = mix_key(h, static_cast<std::uint64_t>(options_.compaction));
  h = mix_key(h, static_cast<std::uint64_t>(options_.local_order));
  h = mix_key(h, static_cast<std::uint64_t>(options_.shuffles));
  h = mix_key(h, static_cast<std::uint64_t>(options_.shuffle_batch_order));
  h = mix_key(h, options_.cmax_budget_factor);
  h = mix_key(h, options_.shuffle_seed);
  // mix_key never returns 0 for this tag chain in practice, but the
  // cache treats 0 as "uncacheable" — keep the contract airtight.
  return h != 0 ? h : 1;
}

std::unique_ptr<PolicyWorkspace> FlatListPolicy::make_workspace() const {
  return std::make_unique<FlatListPolicyWorkspace>();
}

void FlatListPolicy::schedule_into(const Instance& batch, PolicyWorkspace& ws,
                                   FlatPlacements& out) const {
  auto& flat_ws = static_cast<FlatListPolicyWorkspace&>(ws);
  flat_list_schedule(batch, flat_ws.list, out);
}

const void* FlatListPolicy::workspace_key() const noexcept {
  static const char kKey = 0;
  return &kKey;
}

std::uint64_t FlatListPolicy::cache_key() const noexcept {
  return 0x464C41544C495354ULL;  // "FLATLIST": stateless, one key per class
}

}  // namespace moldsched
