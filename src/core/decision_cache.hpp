/// \file decision_cache.hpp
/// Decision cache for recurring workload shapes. At millions-of-users
/// scale the same instance shapes arrive constantly; a repeated shape
/// should cost a lookup + allotment replay, not a full DEMT run — the
/// same amortization move as contraction hierarchies in routing engines
/// (heavy precomputation, massive query volume) or a KV/prefix cache in
/// an inference stack.
///
/// Two layers:
///
///  1. **Canonicalization** (`canonical_signature`): an order-free
///     fingerprint of (machine size, task multiset). Each task is hashed
///     from its min_procs, max_procs, weight, and per-allotment times,
///     with every positive magnitude quantized onto the paper's geometric
///     grid (`TimeGrid`, anchored at the instance's own t_0 so the
///     signature is scale-aware): `quantize_steps` sub-steps per grid
///     doubling. Per-task hashes are sorted before mixing, so the
///     signature is invariant under task permutation and under
///     resubmission of the same shape, while perturbations beyond one
///     quantization sub-step (or any processor-count change) produce a
///     different signature (tests/test_decision_cache.cpp fuzzes both
///     properties over thousands of instances).
///
///  2. **DecisionCache**: a sharded, bounded map from
///     (signature, policy cache key, m) to a compact allotment record —
///     the flat placements (`FlatPlacements`-shaped arrays) plus the
///     run's diagnostics. Sharded by signature hash with one mutex and a
///     CLOCK (second-chance) eviction hand per shard; records are pooled,
///     so an eviction recycles the record's buffers in place and a warm
///     hit performs **zero heap allocations** (gated by
///     `serve_throughput --zipf`).
///
/// Bit-identity contract: quantization only *buckets* candidates. A hit
/// is declared only after an exact, in-order comparison of every task
/// descriptor (weights, min_procs, full time vectors, by `==`) against
/// the stored instance, and the replayed placements are the cached run's
/// doubles copied verbatim — so a cache-on run is bit-identical to a
/// cache-off run (differential suite in tests/test_decision_cache.cpp;
/// exit-gated by `serve_throughput --zipf`). A *permuted* resubmission of
/// a cached shape therefore misses exactly once and coexists as its own
/// record under the same signature: replaying across a permutation could
/// legally differ from a fresh run when sort keys tie, and bit-identity
/// wins over hit rate here.
///
/// Policies opt in through `SchedulingPolicy::cache_key()`: 0 (the
/// default) means "never cache me", a nonzero key must change whenever
/// any option that can change the schedule changes. The built-ins
/// (DemtPolicy, FlatListPolicy, LptRigidPolicy) return keys derived from
/// their frozen options, so the deprecated enum adapters — which
/// stack-construct a fresh policy per request — still share cache
/// entries correctly.
///
/// Thread safety: lookup/insert/stats/clear are safe from any number of
/// strands (per-shard mutexes, atomic counters). One DecisionCache may
/// back every shard of an AsyncScheduler (`AsyncOptions::cache`).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/demt.hpp"
#include "sched/flat_schedule.hpp"
#include "tasks/instance.hpp"

namespace moldsched {

/// Order-free fingerprint of (m, task multiset) on the quantization grid.
/// Equal shapes (up to permutation) always collide; unequal shapes
/// collide with hash probability only — which is safe, because lookup
/// verifies descriptors exactly before replaying.
struct InstanceSignature {
  std::uint64_t hash = 0;
  [[nodiscard]] bool operator==(const InstanceSignature& o) const noexcept {
    return hash == o.hash;
  }
};

/// Reusable scratch for canonical_signature (per-task hash buffer); pool
/// one per strand and the pass is allocation-free once warm.
struct SignatureScratch {
  std::vector<std::uint64_t> task_hashes;
};

/// Compute the canonical signature of `instance` with `quantize_steps`
/// sub-steps per geometric-grid doubling (see the file comment). Throws
/// std::invalid_argument when quantize_steps < 1.
[[nodiscard]] InstanceSignature canonical_signature(const Instance& instance,
                                                    int quantize_steps,
                                                    SignatureScratch& scratch);

struct DecisionCacheOptions {
  /// Total records across all shards (>= 1). Eviction is CLOCK
  /// (second-chance) per shard once a shard's share is full.
  std::size_t capacity = 1024;
  /// Lock shards (>= 1; clamped to capacity so every shard owns at least
  /// one record). Signature hash picks the shard.
  int shards = 8;
  /// Sub-steps per grid doubling for canonical_signature. Larger = finer
  /// buckets (fewer shapes share a signature); exactness is unaffected.
  int quantize_steps = 32;
};

/// Cumulative counters; snapshot through DecisionCache::stats().
struct DecisionCacheStats {
  std::uint64_t hits = 0;       ///< lookups replayed from a record
  std::uint64_t misses = 0;     ///< lookups that found no exact record
  std::uint64_t inserts = 0;    ///< records stored (refreshes included)
  std::uint64_t evictions = 0;  ///< records recycled by the CLOCK hand
  std::size_t size = 0;         ///< live records right now
};

/// Sharded, bounded decision cache. See the file comment for the replay
/// and bit-identity contract.
class DecisionCache {
 public:
  /// Throws std::invalid_argument on capacity < 1, shards < 1, or
  /// quantize_steps < 1.
  explicit DecisionCache(DecisionCacheOptions options = {});

  DecisionCache(const DecisionCache&) = delete;
  DecisionCache& operator=(const DecisionCache&) = delete;

  /// Replay the record for (sig, policy_key, instance.procs()) into `out`
  /// and `diag`, verifying the stored task descriptors exactly against
  /// `instance` first. Returns false (and counts a miss) when policy_key
  /// is 0, no record matches, or only inexact bucket-mates exist.
  /// Allocation-free once `out` is warm.
  bool lookup(const InstanceSignature& sig, std::uint64_t policy_key,
              const Instance& instance, FlatPlacements& out,
              DemtDiagnostics& diag);

  /// Store (or refresh) the record for (sig, policy_key, instance):
  /// copies the task descriptors and the flat placements. No-op when
  /// policy_key is 0. Evicts via CLOCK when the shard is full, recycling
  /// the victim's buffers in place.
  void insert(const InstanceSignature& sig, std::uint64_t policy_key,
              const Instance& instance, const FlatPlacements& flat,
              const DemtDiagnostics& diag);

  /// Drop every record (capacity and counters are kept).
  void clear();

  [[nodiscard]] DecisionCacheStats stats() const;
  [[nodiscard]] const DecisionCacheOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One cached decision: the exact task descriptors (for verification)
  /// plus the flat placements and diagnostics (for replay). Buffers are
  /// recycled in place on eviction.
  struct Record {
    std::uint64_t sig = 0;
    std::uint64_t policy_key = 0;
    int m = 0;
    int n = 0;
    bool live = false;
    bool referenced = false;  ///< CLOCK second-chance bit
    // Exact task descriptors, in submission order.
    std::vector<double> weight;
    std::vector<int> min_procs;
    std::vector<int> times_begin;  ///< n+1 offsets into `times`
    std::vector<double> times;
    // Flat placements (FlatPlacements-shaped arrays).
    std::vector<double> start;
    std::vector<double> duration;
    std::vector<int> proc_begin;
    std::vector<int> proc_count;
    std::vector<int> proc_ids;
    DemtDiagnostics diag;
  };

  struct Shard {
    std::mutex mu;
    std::vector<Record> records;  ///< fixed capacity, allocated up front
    std::size_t live = 0;         ///< records ever filled (append cursor)
    std::size_t hand = 0;         ///< CLOCK hand
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) noexcept;
  [[nodiscard]] static bool matches(const Record& r, std::uint64_t sig,
                                    std::uint64_t policy_key,
                                    const Instance& instance) noexcept;

  DecisionCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace moldsched
