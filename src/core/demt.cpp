#include "core/demt.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batching.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "sched/compaction.hpp"
#include "sched/list_scheduler.hpp"
#include "tasks/time_grid.hpp"
#include "util/rng.hpp"

namespace moldsched {

namespace {

/// A selected batch: its grid index plus the items chosen by the knapsack.
struct SelectedBatch {
  int grid_index = 0;
  std::vector<BatchItem> items;
};

/// Naive placement (§3.2 "the first schedule is simple"): every item of
/// batch j starts at t_j; stacks run their tasks back to back on one
/// processor; processors are packed from id 0 upward within the batch.
Schedule naive_placement(const Instance& instance,
                         const std::vector<SelectedBatch>& batches,
                         const TimeGrid& grid) {
  Schedule schedule(instance.procs(), instance.num_tasks());
  for (const auto& batch : batches) {
    const double start = grid.batch_start(batch.grid_index);
    int next_proc = 0;
    for (const auto& item : batch.items) {
      std::vector<int> procs(static_cast<std::size_t>(item.procs));
      for (int p = 0; p < item.procs; ++p) procs[static_cast<std::size_t>(p)] = next_proc + p;
      next_proc += item.procs;
      if (item.is_stack()) {
        double offset = 0.0;
        for (int task_id : item.tasks) {
          const double d = instance.task(task_id).time(1);
          schedule.place(task_id, start + offset, d, procs);
          offset += d;
        }
      } else {
        const int task_id = item.tasks.front();
        schedule.place(task_id, start, item.duration, procs);
      }
    }
  }
  return schedule;
}

/// Expand a list-scheduled set of items back into per-task placements.
Schedule expand_items(const Instance& instance,
                      const std::vector<BatchItem>& items,
                      const Schedule& item_schedule) {
  Schedule schedule(instance.procs(), instance.num_tasks());
  for (std::size_t idx = 0; idx < items.size(); ++idx) {
    const auto& item = items[idx];
    const Placement& p = item_schedule.placement(static_cast<int>(idx));
    if (item.is_stack()) {
      double offset = 0.0;
      for (int task_id : item.tasks) {
        const double d = instance.task(task_id).time(1);
        schedule.place(task_id, p.start + offset, d, p.procs);
        offset += d;
      }
    } else {
      schedule.place(item.tasks.front(), p.start, p.duration, p.procs);
    }
  }
  return schedule;
}

/// Run the event-driven list scheduler over the items in the given order.
Schedule list_pass(const Instance& instance,
                   const std::vector<BatchItem>& items,
                   const std::vector<int>& order) {
  std::vector<ListJob> jobs;
  jobs.reserve(order.size());
  for (int idx : order) {
    const auto& item = items[static_cast<std::size_t>(idx)];
    jobs.push_back(ListJob{idx, item.procs, item.duration, 0.0});
  }
  const Schedule item_schedule =
      list_schedule(instance.procs(), static_cast<int>(items.size()), jobs);
  // Re-order the schedule of items into task placements.
  return expand_items(instance, items, item_schedule);
}

void apply_local_order(const Instance&, std::vector<BatchItem>& items,
                       DemtOptions::LocalOrder order) {
  switch (order) {
    case DemtOptions::LocalOrder::AsSelected:
      return;
    case DemtOptions::LocalOrder::SmithRatio:
      std::stable_sort(items.begin(), items.end(),
                       [](const BatchItem& a, const BatchItem& b) {
                         return a.weight / a.duration > b.weight / b.duration;
                       });
      return;
    case DemtOptions::LocalOrder::LongestFirst:
      std::stable_sort(items.begin(), items.end(),
                       [](const BatchItem& a, const BatchItem& b) {
                         return a.duration > b.duration;
                       });
      return;
  }
}

}  // namespace

DemtResult demt_schedule(const Instance& instance, const DemtOptions& options) {
  if (instance.empty()) {
    throw std::invalid_argument("demt_schedule: empty instance");
  }

  // 1. Dual-approximation makespan estimate and the geometric grid.
  const CmaxEstimate estimate = estimate_cmax(instance, options.dual_eps);
  const TimeGrid grid(estimate.estimate, instance.tmin());

  DemtDiagnostics diag;
  diag.cmax_estimate = estimate.estimate;
  diag.cmax_lower_bound = estimate.lower_bound;
  diag.grid_k = grid.K();

  // 2./3. Batch loop: select content for batches 0, 1, ... until every task
  // is placed. The paper iterates to K; the knapsack may leave tasks over,
  // so we keep opening (doubling) batches — by j >= K every task is a
  // candidate, and each further batch selects at least one task.
  std::vector<int> pending(static_cast<std::size_t>(instance.num_tasks()));
  for (int i = 0; i < instance.num_tasks(); ++i) {
    pending[static_cast<std::size_t>(i)] = i;
  }
  BatchBuildOptions build_options;
  build_options.merge_small_tasks = options.merge_small_tasks;
  build_options.smith_order_stacks = options.smith_order_stacks;

  std::vector<SelectedBatch> batches;
  const int max_batches = grid.K() + 128;  // defensive cap; never reached
  for (int j = 0; !pending.empty(); ++j) {
    if (j > max_batches) {
      throw std::logic_error("demt_schedule: batch loop failed to drain");
    }
    auto items =
        build_batch_items(instance, pending, grid.batch_length(j), build_options);
    if (items.empty()) continue;  // nothing fits yet; batch sizes double
    const std::vector<int> chosen = select_batch(items, instance.procs());
    if (chosen.empty()) continue;

    SelectedBatch batch;
    batch.grid_index = j;
    std::vector<bool> remove(static_cast<std::size_t>(instance.num_tasks()),
                             false);
    for (int idx : chosen) {
      auto& item = items[static_cast<std::size_t>(idx)];
      if (item.is_stack()) ++diag.merged_stacks;
      for (int task_id : item.tasks) {
        remove[static_cast<std::size_t>(task_id)] = true;
      }
      batch.items.push_back(std::move(item));
    }
    apply_local_order(instance, batch.items, options.local_order);
    batches.push_back(std::move(batch));
    std::erase_if(pending,
                  [&](int t) { return remove[static_cast<std::size_t>(t)]; });
  }
  diag.num_batches = static_cast<int>(batches.size());

  // 4. Compaction.
  Schedule best = naive_placement(instance, batches, grid);
  if (options.compaction == DemtOptions::Compaction::None) {
    return DemtResult{std::move(best), diag};
  }
  pull_forward(best);
  if (options.compaction == DemtOptions::Compaction::PullForward) {
    return DemtResult{std::move(best), diag};
  }

  // Full list pass in batch order; the flat item array preserves batch
  // boundaries through index ranges.
  std::vector<BatchItem> flat_items;
  std::vector<std::pair<int, int>> batch_ranges;  // [first, last) into flat
  for (const auto& batch : batches) {
    const int first = static_cast<int>(flat_items.size());
    for (const auto& item : batch.items) flat_items.push_back(item);
    batch_ranges.emplace_back(first, static_cast<int>(flat_items.size()));
  }
  std::vector<int> order(flat_items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  Schedule listed = list_pass(instance, flat_items, order);
  pull_forward(listed);

  // The list pass is the paper's preferred compaction, but it is a
  // heuristic: keep whichever of {pulled naive, listed} dominates on the
  // acceptance rule (minsum first, makespan budget).
  double best_wc = best.weighted_completion_sum(instance);
  double base_cmax = best.cmax();
  {
    const double wc = listed.weighted_completion_sum(instance);
    const double cm = listed.cmax();
    if (wc < best_wc || cm < base_cmax) {
      best = std::move(listed);
      best_wc = wc;
      base_cmax = cm;
    }
  }

  // 5. Shuffle optimisation: randomise the order within batches (optionally
  // the batch order too), rerun the list pass, keep improvements within the
  // makespan budget.
  Rng rng(options.shuffle_seed);
  const double cmax_budget = base_cmax * options.cmax_budget_factor;
  for (int s = 0; s < options.shuffles; ++s) {
    std::vector<std::pair<int, int>> ranges = batch_ranges;
    if (options.shuffle_batch_order) rng.shuffle(ranges);
    std::vector<int> shuffled;
    shuffled.reserve(flat_items.size());
    for (const auto& [first, last] : ranges) {
      std::vector<int> ids;
      ids.reserve(static_cast<std::size_t>(last - first));
      for (int i = first; i < last; ++i) ids.push_back(i);
      rng.shuffle(ids);
      shuffled.insert(shuffled.end(), ids.begin(), ids.end());
    }
    Schedule candidate = list_pass(instance, flat_items, shuffled);
    pull_forward(candidate);
    const double wc = candidate.weighted_completion_sum(instance);
    const double cm = candidate.cmax();
    if (wc < best_wc - 1e-12 && cm <= cmax_budget + 1e-12) {
      best = std::move(candidate);
      best_wc = wc;
      ++diag.shuffle_improvements;
    }
  }

  return DemtResult{std::move(best), diag};
}

}  // namespace moldsched
