#include "core/demt.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batching.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "sched/compaction.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "tasks/allotment_table.hpp"
#include "tasks/time_grid.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace moldsched {

namespace {

/// A selected batch: its grid index plus the items chosen by the knapsack.
struct SelectedBatch {
  int grid_index = 0;
  std::vector<BatchItem> items;
};

/// Naive placement (§3.2 "the first schedule is simple"): every item of
/// batch j starts at t_j; stacks run their tasks back to back on one
/// processor; processors are packed from id 0 upward within the batch.
Schedule naive_placement(const Instance& instance,
                         const std::vector<SelectedBatch>& batches,
                         const TimeGrid& grid) {
  Schedule schedule(instance.procs(), instance.num_tasks());
  for (const auto& batch : batches) {
    const double start = grid.batch_start(batch.grid_index);
    int next_proc = 0;
    for (const auto& item : batch.items) {
      std::vector<int> procs(static_cast<std::size_t>(item.procs));
      for (int p = 0; p < item.procs; ++p) procs[static_cast<std::size_t>(p)] = next_proc + p;
      next_proc += item.procs;
      if (item.is_stack()) {
        double offset = 0.0;
        for (int task_id : item.tasks) {
          const double d = instance.task(task_id).time(1);
          schedule.place(task_id, start + offset, d, procs);
          offset += d;
        }
      } else {
        const int task_id = item.tasks.front();
        schedule.place(task_id, start, item.duration, procs);
      }
    }
  }
  return schedule;
}

void apply_local_order(const Instance&, std::vector<BatchItem>& items,
                       DemtOptions::LocalOrder order) {
  switch (order) {
    case DemtOptions::LocalOrder::AsSelected:
      return;
    case DemtOptions::LocalOrder::SmithRatio:
      std::stable_sort(items.begin(), items.end(),
                       [](const BatchItem& a, const BatchItem& b) {
                         return a.weight / a.duration > b.weight / b.duration;
                       });
      return;
    case DemtOptions::LocalOrder::LongestFirst:
      std::stable_sort(items.begin(), items.end(),
                       [](const BatchItem& a, const BatchItem& b) {
                         return a.duration > b.duration;
                       });
      return;
  }
}

// ---------------------------------------------------------------------
// The shuffle-compaction hot path. Every candidate evaluation runs inside
// one ShuffleWorkspace: the list pass, the item->task expansion, the
// pull-forward compaction and both metrics touch only flat buffers that
// are cleared (capacity kept) per candidate, so after the first candidate
// warms a workspace the loop performs no heap allocation at all.
struct ShuffleWorkspace {
  ListPassWorkspace list;
  FlatPlacements items;             ///< per-item placements from the list pass
  FlatPlacements tasks;             ///< expanded per-task placements
  CompactionBuffers compact;
  std::vector<int> order;           ///< shuffled item order
  std::vector<std::pair<int, int>> ranges;  ///< batch-range scratch
};

/// Run the list pass for the items in `order` and expand into per-task
/// flat placements (stacks share their item's processor range).
void list_pass_flat(const Instance& instance,
                    const std::vector<BatchItem>& flat_items,
                    const std::vector<int>& order, ShuffleWorkspace& ws) {
  ws.list.jobs.clear();
  for (int idx : order) {
    const auto& item = flat_items[static_cast<std::size_t>(idx)];
    ws.list.jobs.push_back(ListJob{idx, item.procs, item.duration, 0.0});
  }
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(instance.procs(),
                     static_cast<int>(flat_items.size()), kNoReservations,
                     ws.list, ws.items);

  ws.tasks.reset(instance.num_tasks());
  for (std::size_t idx = 0; idx < flat_items.size(); ++idx) {
    const auto& item = flat_items[idx];
    const double item_start = ws.items.start[idx];
    const int base = static_cast<int>(ws.tasks.proc_ids.size());
    const auto begin = static_cast<std::size_t>(ws.items.proc_begin[idx]);
    const auto count = static_cast<std::size_t>(ws.items.proc_count[idx]);
    for (std::size_t i = begin; i < begin + count; ++i) {
      ws.tasks.proc_ids.push_back(ws.items.proc_ids[i]);
    }
    double offset = 0.0;
    for (int task_id : item.tasks) {
      const auto t = static_cast<std::size_t>(task_id);
      const double d = item.is_stack() ? instance.task(task_id).time(1)
                                       : item.duration;
      ws.tasks.start[t] = item_start + offset;
      ws.tasks.duration[t] = d;
      ws.tasks.proc_begin[t] = base;
      ws.tasks.proc_count[t] = static_cast<int>(count);
      offset += d;
    }
  }
}

/// Evaluate one shuffle candidate: generate its order from `rng` (taken by
/// value — each candidate owns a pre-forked stream), run the flat list
/// pass + compaction, return (weighted completion sum, cmax). The final
/// task placements stay in `ws.tasks` for the winner's materialisation.
std::pair<double, double> evaluate_shuffle_candidate(
    const Instance& instance, const std::vector<BatchItem>& flat_items,
    const std::vector<std::pair<int, int>>& batch_ranges,
    bool shuffle_batch_order, Rng rng, ShuffleWorkspace& ws) {
  ws.ranges.assign(batch_ranges.begin(), batch_ranges.end());
  if (shuffle_batch_order) rng.shuffle(ws.ranges);
  ws.order.clear();
  for (const auto& [first, last] : ws.ranges) {
    const auto segment_begin = ws.order.size();
    for (int i = first; i < last; ++i) ws.order.push_back(i);
    // Fisher-Yates on the segment in place (same draws as shuffling a
    // per-batch id vector, without one).
    const std::size_t len = ws.order.size() - segment_begin;
    for (std::size_t i = len; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(ws.order[segment_begin + i - 1], ws.order[segment_begin + j]);
    }
  }
  list_pass_flat(instance, flat_items, ws.order, ws);
  pull_forward(ws.tasks, instance.procs(), ws.compact);
  return {ws.tasks.weighted_completion_sum(instance), ws.tasks.cmax()};
}

}  // namespace

/// Every per-call buffer of the driver and the hot path. Reuse carries only
/// capacity between calls — each field is cleared/re-filled before use.
struct DemtWorkspace::Impl {
  std::vector<int> pending;
  std::vector<bool> remove;
  std::vector<SelectedBatch> batches;
  std::vector<BatchItem> flat_items;
  std::vector<std::pair<int, int>> batch_ranges;
  std::vector<int> identity_order;
  std::vector<Rng> candidate_rngs;
  std::vector<double> cand_wc;
  std::vector<double> cand_cm;
  ShuffleWorkspace main_ws;
  std::vector<ShuffleWorkspace> strand_ws;
  DualTestWorkspace dual;  ///< bisection DP/pick buffers (allocation-free)
};

DemtWorkspace::DemtWorkspace() : impl_(std::make_unique<Impl>()) {}
DemtWorkspace::~DemtWorkspace() = default;
DemtWorkspace::DemtWorkspace(DemtWorkspace&&) noexcept = default;
DemtWorkspace& DemtWorkspace::operator=(DemtWorkspace&&) noexcept = default;

DemtResult demt_schedule(const Instance& instance, const DemtOptions& options) {
  DemtWorkspace workspace;
  return demt_schedule(instance, options, workspace);
}

DemtResult demt_schedule(const Instance& instance, const DemtOptions& options,
                         DemtWorkspace& workspace) {
  if (instance.empty()) {
    throw std::invalid_argument("demt_schedule: empty instance");
  }
  DemtWorkspace::Impl& ws = *workspace.impl_;

  // Per-task allotment tables, shared by the dual-approximation search and
  // every batch construction below.
  const InstanceAllotments tables(instance);

  // 1. Dual-approximation makespan estimate and the geometric grid.
  const CmaxEstimate estimate =
      estimate_cmax(instance, options.dual_eps, tables, ws.dual);
  const TimeGrid grid(estimate.estimate, instance.tmin());

  DemtDiagnostics diag;
  diag.cmax_estimate = estimate.estimate;
  diag.cmax_lower_bound = estimate.lower_bound;
  diag.grid_k = grid.K();
  diag.dual_tests = estimate.dual_tests;

  // 2./3. Batch loop: select content for batches 0, 1, ... until every task
  // is placed. The paper iterates to K; the knapsack may leave tasks over,
  // so we keep opening (doubling) batches — by j >= K every task is a
  // candidate, and each further batch selects at least one task.
  std::vector<int>& pending = ws.pending;
  pending.resize(static_cast<std::size_t>(instance.num_tasks()));
  for (int i = 0; i < instance.num_tasks(); ++i) {
    pending[static_cast<std::size_t>(i)] = i;
  }
  BatchBuildOptions build_options;
  build_options.merge_small_tasks = options.merge_small_tasks;
  build_options.smith_order_stacks = options.smith_order_stacks;

  std::vector<SelectedBatch>& batches = ws.batches;
  batches.clear();
  std::vector<bool>& remove = ws.remove;
  remove.assign(static_cast<std::size_t>(instance.num_tasks()), false);
  const int max_batches = grid.K() + 128;  // defensive cap; never reached
  for (int j = 0; !pending.empty(); ++j) {
    if (j > max_batches) {
      throw std::logic_error("demt_schedule: batch loop failed to drain");
    }
    auto items = build_batch_items(instance, pending, grid.batch_length(j),
                                   build_options, tables);
    if (items.empty()) continue;  // nothing fits yet; batch sizes double
    const std::vector<int> chosen = select_batch(items, instance.procs());
    if (chosen.empty()) continue;

    SelectedBatch batch;
    batch.grid_index = j;
    std::fill(remove.begin(), remove.end(), false);
    for (int idx : chosen) {
      auto& item = items[static_cast<std::size_t>(idx)];
      if (item.is_stack()) ++diag.merged_stacks;
      for (int task_id : item.tasks) {
        remove[static_cast<std::size_t>(task_id)] = true;
      }
      batch.items.push_back(std::move(item));
    }
    apply_local_order(instance, batch.items, options.local_order);
    batches.push_back(std::move(batch));
    std::erase_if(pending,
                  [&](int t) { return remove[static_cast<std::size_t>(t)]; });
  }
  diag.num_batches = static_cast<int>(batches.size());

  // 4. Compaction.
  Schedule best = naive_placement(instance, batches, grid);
  if (options.compaction == DemtOptions::Compaction::None) {
    return DemtResult{std::move(best), diag};
  }
  pull_forward(best);
  if (options.compaction == DemtOptions::Compaction::PullForward) {
    return DemtResult{std::move(best), diag};
  }

  // Full list pass in batch order; the flat item array preserves batch
  // boundaries through index ranges.
  std::vector<BatchItem>& flat_items = ws.flat_items;
  flat_items.clear();
  std::vector<std::pair<int, int>>& batch_ranges = ws.batch_ranges;
  batch_ranges.clear();  // [first, last) into flat
  for (const auto& batch : batches) {
    const int first = static_cast<int>(flat_items.size());
    for (const auto& item : batch.items) flat_items.push_back(item);
    batch_ranges.emplace_back(first, static_cast<int>(flat_items.size()));
  }

  ShuffleWorkspace& main_ws = ws.main_ws;
  std::vector<int>& identity_order = ws.identity_order;
  identity_order.resize(flat_items.size());
  for (std::size_t i = 0; i < identity_order.size(); ++i) {
    identity_order[i] = static_cast<int>(i);
  }
  list_pass_flat(instance, flat_items, identity_order, main_ws);
  pull_forward(main_ws.tasks, instance.procs(), main_ws.compact);

  // The list pass is the paper's preferred compaction, but it is a
  // heuristic: keep whichever of {pulled naive, listed} dominates on the
  // acceptance rule (minsum first, makespan budget).
  double best_wc = best.weighted_completion_sum(instance);
  double base_cmax = best.cmax();
  {
    const double wc = main_ws.tasks.weighted_completion_sum(instance);
    const double cm = main_ws.tasks.cmax();
    if (wc < best_wc || cm < base_cmax) {
      best = main_ws.tasks.to_schedule(instance.procs());
      best_wc = wc;
      base_cmax = cm;
    }
  }

  // 5. Shuffle optimisation: randomise the order within batches (optionally
  // the batch order too), rerun the list pass, keep improvements within the
  // makespan budget. Candidates are independent: each owns a stream forked
  // in candidate order from the seed, all of them are evaluated (possibly
  // concurrently, each strand inside its own reusable workspace), and a
  // sequential replay of the (minsum, cmax) pairs applies the paper's
  // acceptance rule — so the result is identical for any worker count.
  const int shuffles = options.shuffles;
  if (shuffles <= 0) return DemtResult{std::move(best), diag};

  Rng rng(options.shuffle_seed);
  std::vector<Rng>& candidate_rngs = ws.candidate_rngs;
  candidate_rngs.clear();
  candidate_rngs.reserve(static_cast<std::size_t>(shuffles));
  for (int s = 0; s < shuffles; ++s) {
    candidate_rngs.push_back(rng.fork(static_cast<std::uint64_t>(s)));
  }
  std::vector<double>& cand_wc = ws.cand_wc;
  cand_wc.assign(static_cast<std::size_t>(shuffles), 0.0);
  std::vector<double>& cand_cm = ws.cand_cm;
  cand_cm.assign(static_cast<std::size_t>(shuffles), 0.0);

  int max_strands = options.shuffle_workers;
  if (max_strands <= 0) {
    max_strands = static_cast<int>(shared_thread_pool().size());
  }
  max_strands = std::min(max_strands, shuffles);
  // Never block on the shared pool from one of its own workers (the
  // experiment harness runs whole replicates on pool threads).
  if (ThreadPool::this_thread_is_worker()) max_strands = 1;

  if (max_strands > 1) {
    ThreadPool& pool = shared_thread_pool();
    std::vector<ShuffleWorkspace>& workspaces = ws.strand_ws;
    workspaces.resize(std::min<std::size_t>(
        pool.size(), static_cast<std::size_t>(max_strands)));
    pool.parallel_for_slots(
        0, static_cast<std::size_t>(shuffles),
        [&](std::size_t slot, std::size_t s) {
          const auto result = evaluate_shuffle_candidate(
              instance, flat_items, batch_ranges, options.shuffle_batch_order,
              candidate_rngs[s], workspaces[slot]);
          cand_wc[s] = result.first;
          cand_cm[s] = result.second;
        },
        static_cast<std::size_t>(max_strands));
    diag.shuffle_strands = static_cast<int>(workspaces.size());
  } else {
    for (int s = 0; s < shuffles; ++s) {
      const auto result = evaluate_shuffle_candidate(
          instance, flat_items, batch_ranges, options.shuffle_batch_order,
          candidate_rngs[static_cast<std::size_t>(s)], main_ws);
      cand_wc[static_cast<std::size_t>(s)] = result.first;
      cand_cm[static_cast<std::size_t>(s)] = result.second;
    }
    diag.shuffle_strands = 1;
  }

  // Sequential replay of the acceptance rule, in candidate order.
  const double cmax_budget = base_cmax * options.cmax_budget_factor;
  int winner = -1;
  for (int s = 0; s < shuffles; ++s) {
    const double wc = cand_wc[static_cast<std::size_t>(s)];
    const double cm = cand_cm[static_cast<std::size_t>(s)];
    if (wc < best_wc - 1e-12 && cm <= cmax_budget + 1e-12) {
      best_wc = wc;
      winner = s;
      ++diag.shuffle_improvements;
    }
  }
  if (winner >= 0) {
    // Re-evaluate the winning candidate (its RNG stream regenerates the
    // same order) and materialise it as the result schedule.
    (void)evaluate_shuffle_candidate(
        instance, flat_items, batch_ranges, options.shuffle_batch_order,
        candidate_rngs[static_cast<std::size_t>(winner)], main_ws);
    best = main_ws.tasks.to_schedule(instance.procs());
  }

  return DemtResult{std::move(best), diag};
}

}  // namespace moldsched
