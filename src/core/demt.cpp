#include "core/demt.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batching.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "sched/compaction.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "tasks/allotment_table.hpp"
#include "tasks/time_grid.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace moldsched {

namespace {

// ---------------------------------------------------------------------
// Scalar reference pipeline pieces (array-of-structs batches, Schedule
// placement). These are what the driver ran before the SoA rewrite; they
// now back demt_schedule_reference, the bit-identity anchor of the
// differential suite.

/// A selected batch: its grid index plus the items chosen by the knapsack.
struct SelectedBatch {
  int grid_index = 0;
  std::vector<BatchItem> items;
};

/// Naive placement (§3.2 "the first schedule is simple"): every item of
/// batch j starts at t_j; stacks run their tasks back to back on one
/// processor; processors are packed from id 0 upward within the batch.
Schedule naive_placement(const Instance& instance,
                         const std::vector<SelectedBatch>& batches,
                         const TimeGrid& grid) {
  Schedule schedule(instance.procs(), instance.num_tasks());
  for (const auto& batch : batches) {
    const double start = grid.batch_start(batch.grid_index);
    int next_proc = 0;
    for (const auto& item : batch.items) {
      std::vector<int> procs(static_cast<std::size_t>(item.procs));
      for (int p = 0; p < item.procs; ++p) procs[static_cast<std::size_t>(p)] = next_proc + p;
      next_proc += item.procs;
      if (item.is_stack()) {
        double offset = 0.0;
        for (int task_id : item.tasks) {
          const double d = instance.task(task_id).time(1);
          schedule.place(task_id, start + offset, d, procs);
          offset += d;
        }
      } else {
        const int task_id = item.tasks.front();
        schedule.place(task_id, start, item.duration, procs);
      }
    }
  }
  return schedule;
}

void apply_local_order(const Instance&, std::vector<BatchItem>& items,
                       DemtOptions::LocalOrder order) {
  switch (order) {
    case DemtOptions::LocalOrder::AsSelected:
      return;
    case DemtOptions::LocalOrder::SmithRatio:
      std::stable_sort(items.begin(), items.end(),
                       [](const BatchItem& a, const BatchItem& b) {
                         return a.weight / a.duration > b.weight / b.duration;
                       });
      return;
    case DemtOptions::LocalOrder::LongestFirst:
      std::stable_sort(items.begin(), items.end(),
                       [](const BatchItem& a, const BatchItem& b) {
                         return a.duration > b.duration;
                       });
      return;
  }
}

// ---------------------------------------------------------------------
// The shuffle-compaction hot path. Every candidate evaluation runs inside
// one ShuffleWorkspace: the list pass, the item->task expansion, the
// pull-forward compaction and the fused metric scan touch only flat
// buffers that are cleared (capacity kept) per candidate, so after the
// first candidate warms a workspace the loop performs no heap allocation
// at all.
struct ShuffleWorkspace {
  ListPassWorkspace list;
  FlatPlacements items;             ///< per-item placements from the list pass
  FlatPlacements tasks;             ///< expanded per-task placements
  CompactionBuffers compact;
  std::vector<int> order;           ///< shuffled item order
  std::vector<std::pair<int, int>> ranges;  ///< batch-range scratch
};

/// Run the list pass for the items in `order` and expand into per-task
/// flat placements (stacks share their item's processor range).
/// AoS-item form, reference pipeline only.
void list_pass_flat(const Instance& instance,
                    const std::vector<BatchItem>& flat_items,
                    const std::vector<int>& order, ShuffleWorkspace& ws) {
  ws.list.jobs.clear();
  for (int idx : order) {
    const auto& item = flat_items[static_cast<std::size_t>(idx)];
    ws.list.jobs.push_back(ListJob{idx, item.procs, item.duration, 0.0});
  }
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(instance.procs(),
                     static_cast<int>(flat_items.size()), kNoReservations,
                     ws.list, ws.items);

  ws.tasks.reset(instance.num_tasks());
  for (std::size_t idx = 0; idx < flat_items.size(); ++idx) {
    const auto& item = flat_items[idx];
    const double item_start = ws.items.start[idx];
    const int base = static_cast<int>(ws.tasks.proc_ids.size());
    const auto begin = static_cast<std::size_t>(ws.items.proc_begin[idx]);
    const auto count = static_cast<std::size_t>(ws.items.proc_count[idx]);
    for (std::size_t i = begin; i < begin + count; ++i) {
      ws.tasks.proc_ids.push_back(ws.items.proc_ids[i]);
    }
    double offset = 0.0;
    for (int task_id : item.tasks) {
      const auto t = static_cast<std::size_t>(task_id);
      const double d = item.is_stack() ? instance.task(task_id).time(1)
                                       : item.duration;
      ws.tasks.start[t] = item_start + offset;
      ws.tasks.duration[t] = d;
      ws.tasks.proc_begin[t] = base;
      ws.tasks.proc_count[t] = static_cast<int>(count);
      offset += d;
    }
  }
}

/// Same list pass + expansion over SoA items — the serving path. Identical
/// values in identical order; only the item storage differs.
void list_pass_flat_soa(const Instance& instance, const FlatBatchItems& items,
                        const std::vector<int>& order, ShuffleWorkspace& ws) {
  ws.list.jobs.clear();
  for (int idx : order) {
    const auto i = static_cast<std::size_t>(idx);
    ws.list.jobs.push_back(ListJob{idx, items.procs[i], items.duration[i], 0.0});
  }
  static const std::vector<BusyInterval> kNoReservations;
  list_schedule_into(instance.procs(), items.size(), kNoReservations, ws.list,
                     ws.items);

  ws.tasks.reset(instance.num_tasks());
  for (int idx = 0; idx < items.size(); ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    const double item_start = ws.items.start[i];
    const int base = static_cast<int>(ws.tasks.proc_ids.size());
    const auto begin = static_cast<std::size_t>(ws.items.proc_begin[i]);
    const auto count = static_cast<std::size_t>(ws.items.proc_count[i]);
    for (std::size_t p = begin; p < begin + count; ++p) {
      ws.tasks.proc_ids.push_back(ws.items.proc_ids[p]);
    }
    const int tb = items.tasks_begin(idx);
    const int tc = items.tasks_count(idx);
    const bool stack = tc > 1;
    double offset = 0.0;
    for (int ti = tb; ti < tb + tc; ++ti) {
      const auto t =
          static_cast<std::size_t>(items.task_ids[static_cast<std::size_t>(ti)]);
      const double d = stack ? instance.task(static_cast<int>(t)).time(1)
                             : items.duration[i];
      ws.tasks.start[t] = item_start + offset;
      ws.tasks.duration[t] = d;
      ws.tasks.proc_begin[t] = base;
      ws.tasks.proc_count[t] = static_cast<int>(count);
      offset += d;
    }
  }
}

/// Generate the candidate's item order from `rng` into ws.order. Shared by
/// both pipelines — the draws, and hence the orders, are identical.
void draw_candidate_order(const std::vector<std::pair<int, int>>& batch_ranges,
                          bool shuffle_batch_order, Rng& rng,
                          ShuffleWorkspace& ws) {
  ws.ranges.assign(batch_ranges.begin(), batch_ranges.end());
  if (shuffle_batch_order) rng.shuffle(ws.ranges);
  ws.order.clear();
  for (const auto& [first, last] : ws.ranges) {
    const auto segment_begin = ws.order.size();
    for (int i = first; i < last; ++i) ws.order.push_back(i);
    // Fisher-Yates on the segment in place (same draws as shuffling a
    // per-batch id vector, without one).
    const std::size_t len = ws.order.size() - segment_begin;
    for (std::size_t i = len; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(ws.order[segment_begin + i - 1], ws.order[segment_begin + j]);
    }
  }
}

/// Evaluate one shuffle candidate (reference AoS pipeline): generate its
/// order from `rng` (taken by value — each candidate owns a pre-forked
/// stream), run the flat list pass + compaction, return (weighted
/// completion sum, cmax). The final task placements stay in `ws.tasks` for
/// the winner's materialisation.
std::pair<double, double> evaluate_shuffle_candidate(
    const Instance& instance, const std::vector<BatchItem>& flat_items,
    const std::vector<std::pair<int, int>>& batch_ranges,
    bool shuffle_batch_order, Rng rng, ShuffleWorkspace& ws) {
  draw_candidate_order(batch_ranges, shuffle_batch_order, rng, ws);
  list_pass_flat(instance, flat_items, ws.order, ws);
  pull_forward(ws.tasks, instance.procs(), ws.compact);
  return {ws.tasks.weighted_completion_sum(instance), ws.tasks.cmax()};
}

/// SoA-item candidate evaluation with the fused metric scan. Same draws,
/// same list pass values, same compaction, same metric accumulation order.
FlatMetrics evaluate_shuffle_candidate_soa(
    const Instance& instance, const FlatBatchItems& items,
    const std::vector<std::pair<int, int>>& batch_ranges,
    bool shuffle_batch_order, Rng rng, ShuffleWorkspace& ws) {
  draw_candidate_order(batch_ranges, shuffle_batch_order, rng, ws);
  list_pass_flat_soa(instance, items, ws.order, ws);
  return pull_forward_metrics(ws.tasks, instance.procs(), ws.compact,
                              instance);
}

/// Stable local ordering of the selected item indices. `order` arrives in
/// knapsack output order (ascending candidate index); sorting with the
/// original index as the tie-break reproduces exactly the permutation
/// std::stable_sort produces on the materialised items — without
/// stable_sort's temporary merge buffer.
void apply_local_order_soa(const FlatBatchItems& items, std::vector<int>& order,
                           DemtOptions::LocalOrder local_order) {
  switch (local_order) {
    case DemtOptions::LocalOrder::AsSelected:
      return;
    case DemtOptions::LocalOrder::SmithRatio:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const double ra = items.weight[static_cast<std::size_t>(a)] /
                          items.duration[static_cast<std::size_t>(a)];
        const double rb = items.weight[static_cast<std::size_t>(b)] /
                          items.duration[static_cast<std::size_t>(b)];
        if (ra != rb) return ra > rb;
        return a < b;
      });
      return;
    case DemtOptions::LocalOrder::LongestFirst:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const double da = items.duration[static_cast<std::size_t>(a)];
        const double db = items.duration[static_cast<std::size_t>(b)];
        if (da != db) return da > db;
        return a < b;
      });
      return;
  }
}

/// Naive placement straight into flat per-task placements: same starts,
/// durations and ascending packed processor ids as the Schedule-based
/// reference, batch by batch.
void naive_placement_flat(const Instance& instance, const FlatBatchItems& items,
                          const std::vector<std::pair<int, int>>& batch_ranges,
                          const std::vector<int>& range_grid,
                          const TimeGrid& grid, FlatPlacements& out) {
  out.reset(instance.num_tasks());
  for (std::size_t r = 0; r < batch_ranges.size(); ++r) {
    const double start = grid.batch_start(range_grid[r]);
    int next_proc = 0;
    for (int item = batch_ranges[r].first; item < batch_ranges[r].second;
         ++item) {
      const auto i = static_cast<std::size_t>(item);
      const int np = items.procs[i];
      const int base = static_cast<int>(out.proc_ids.size());
      for (int p = 0; p < np; ++p) out.proc_ids.push_back(next_proc + p);
      next_proc += np;
      const int tb = items.tasks_begin(item);
      const int tc = items.tasks_count(item);
      const bool stack = tc > 1;
      double offset = 0.0;
      for (int ti = tb; ti < tb + tc; ++ti) {
        const auto t = static_cast<std::size_t>(
            items.task_ids[static_cast<std::size_t>(ti)]);
        const double d = stack ? instance.task(static_cast<int>(t)).time(1)
                               : items.duration[i];
        out.start[t] = start + offset;
        out.duration[t] = d;
        out.proc_begin[t] = base;
        out.proc_count[t] = np;
        offset += d;
      }
    }
  }
}

}  // namespace

/// Every per-call buffer of the driver and the hot path. Reuse carries only
/// capacity between calls — each field is cleared/re-filled before use.
struct DemtWorkspace::Impl {
  std::vector<int> pending;
  std::vector<bool> remove;
  std::vector<std::pair<int, int>> batch_ranges;
  std::vector<int> range_grid;      ///< grid index per batch range
  std::vector<int> identity_order;
  std::vector<Rng> candidate_rngs;
  std::vector<double> cand_wc;
  std::vector<double> cand_cm;
  ShuffleWorkspace main_ws;
  std::vector<ShuffleWorkspace> strand_ws;
  DualTestWorkspace dual;     ///< bisection DP/pick buffers (allocation-free)
  InstanceAllotments tables;  ///< SoA allotment rows, rebuilt per call
  CmaxEstimate estimate;      ///< pooled search result (partition reused)
  BatchBuildWorkspace batch_build;
  KnapsackWorkspace knap;
  FlatBatchItems cand_items;  ///< candidate items of the current batch
  FlatBatchItems flat_soa;    ///< selected items of all batches, flat
  std::vector<int> chosen;
  std::vector<int> order_scratch;
  FlatPlacements naive;
  CompactionBuffers naive_compact;
  FlatPlacements result_flat;  ///< demt_schedule wrapper's out buffer
};

DemtWorkspace::DemtWorkspace() : impl_(std::make_unique<Impl>()) {}
DemtWorkspace::~DemtWorkspace() = default;
DemtWorkspace::DemtWorkspace(DemtWorkspace&&) noexcept = default;
DemtWorkspace& DemtWorkspace::operator=(DemtWorkspace&&) noexcept = default;

DemtResult demt_schedule(const Instance& instance, const DemtOptions& options) {
  DemtWorkspace workspace;
  return demt_schedule(instance, options, workspace);
}

DemtResult demt_schedule(const Instance& instance, const DemtOptions& options,
                         DemtWorkspace& workspace) {
  DemtDiagnostics diag;
  FlatPlacements& flat = workspace.impl_->result_flat;
  demt_schedule_into(instance, options, workspace, flat, diag);
  return DemtResult{flat.to_schedule(instance.procs()), diag};
}

void demt_schedule_into(const Instance& instance, const DemtOptions& options,
                        DemtWorkspace& workspace,
                        FlatPlacements& out_placements,
                        DemtDiagnostics& out_diag) {
  if (instance.empty()) {
    throw std::invalid_argument("demt_schedule: empty instance");
  }
  DemtWorkspace::Impl& ws = *workspace.impl_;
  out_diag = DemtDiagnostics{};

  // Per-task allotment tables (SoA rows rebuilt in place), shared by the
  // dual-approximation search and every batch construction below.
  ws.tables.build(instance);

  // 1. Dual-approximation makespan estimate and the geometric grid.
  ws.dual.warm.enabled = options.warm_dual_start;
  estimate_cmax_into(instance, options.dual_eps, ws.tables, ws.dual,
                     ws.estimate);
  const TimeGrid grid(ws.estimate.estimate, instance.tmin());

  out_diag.cmax_estimate = ws.estimate.estimate;
  out_diag.cmax_lower_bound = ws.estimate.lower_bound;
  out_diag.grid_k = grid.K();
  out_diag.dual_tests = ws.estimate.dual_tests;

  // 2./3. Batch loop: select content for batches 0, 1, ... until every task
  // is placed. The paper iterates to K; the knapsack may leave tasks over,
  // so we keep opening (doubling) batches — by j >= K every task is a
  // candidate, and each further batch selects at least one task.
  std::vector<int>& pending = ws.pending;
  pending.resize(static_cast<std::size_t>(instance.num_tasks()));
  for (int i = 0; i < instance.num_tasks(); ++i) {
    pending[static_cast<std::size_t>(i)] = i;
  }
  BatchBuildOptions build_options;
  build_options.merge_small_tasks = options.merge_small_tasks;
  build_options.smith_order_stacks = options.smith_order_stacks;

  std::vector<bool>& remove = ws.remove;
  remove.assign(static_cast<std::size_t>(instance.num_tasks()), false);
  ws.flat_soa.clear();
  ws.batch_ranges.clear();
  ws.range_grid.clear();
  const int max_batches = grid.K() + 128;  // defensive cap; never reached
  for (int j = 0; !pending.empty(); ++j) {
    if (j > max_batches) {
      throw std::logic_error("demt_schedule: batch loop failed to drain");
    }
    build_batch_items_into(instance, pending, grid.batch_length(j),
                           build_options, ws.tables, ws.batch_build,
                           ws.cand_items);
    if (ws.cand_items.size() == 0) continue;  // nothing fits yet; sizes double
    select_batch_into(ws.cand_items, instance.procs(), ws.knap, ws.chosen);
    if (ws.chosen.empty()) continue;

    ws.order_scratch = ws.chosen;
    apply_local_order_soa(ws.cand_items, ws.order_scratch, options.local_order);

    const int first = ws.flat_soa.size();
    std::fill(remove.begin(), remove.end(), false);
    for (int idx : ws.order_scratch) {
      if (ws.cand_items.is_stack(idx)) ++out_diag.merged_stacks;
      const int tb = ws.cand_items.tasks_begin(idx);
      const int tc = ws.cand_items.tasks_count(idx);
      for (int ti = tb; ti < tb + tc; ++ti) {
        remove[static_cast<std::size_t>(
            ws.cand_items.task_ids[static_cast<std::size_t>(ti)])] = true;
      }
      ws.flat_soa.append_from(ws.cand_items, idx);
    }
    ws.batch_ranges.emplace_back(first, ws.flat_soa.size());
    ws.range_grid.push_back(j);
    std::erase_if(pending,
                  [&](int t) { return remove[static_cast<std::size_t>(t)]; });
  }
  out_diag.num_batches = static_cast<int>(ws.batch_ranges.size());

  // 4. Compaction.
  naive_placement_flat(instance, ws.flat_soa, ws.batch_ranges, ws.range_grid,
                       grid, ws.naive);
  if (options.compaction == DemtOptions::Compaction::None) {
    out_placements.copy_from(ws.naive);
    return;
  }
  pull_forward(ws.naive, instance.procs(), ws.naive_compact);
  if (options.compaction == DemtOptions::Compaction::PullForward) {
    out_placements.copy_from(ws.naive);
    return;
  }

  // Full list pass in batch order; batch boundaries survive as index
  // ranges over the flat SoA item array.
  ShuffleWorkspace& main_ws = ws.main_ws;
  std::vector<int>& identity_order = ws.identity_order;
  identity_order.resize(static_cast<std::size_t>(ws.flat_soa.size()));
  for (std::size_t i = 0; i < identity_order.size(); ++i) {
    identity_order[i] = static_cast<int>(i);
  }
  list_pass_flat_soa(instance, ws.flat_soa, identity_order, main_ws);
  const FlatMetrics listed = pull_forward_metrics(
      main_ws.tasks, instance.procs(), main_ws.compact, instance);

  // The list pass is the paper's preferred compaction, but it is a
  // heuristic: keep whichever of {pulled naive, listed} dominates on the
  // acceptance rule (minsum first, makespan budget).
  const FlatMetrics naive_metrics = ws.naive.metrics(instance);
  double best_wc = naive_metrics.weighted_completion_sum;
  double base_cmax = naive_metrics.cmax;
  if (listed.weighted_completion_sum < best_wc || listed.cmax < base_cmax) {
    out_placements.copy_from(main_ws.tasks);
    best_wc = listed.weighted_completion_sum;
    base_cmax = listed.cmax;
  } else {
    out_placements.copy_from(ws.naive);
  }

  // 5. Shuffle optimisation: randomise the order within batches (optionally
  // the batch order too), rerun the list pass, keep improvements within the
  // makespan budget. Candidates are independent: each owns a stream forked
  // in candidate order from the seed, all of them are evaluated (possibly
  // concurrently, each strand inside its own reusable workspace), and a
  // sequential replay of the (minsum, cmax) pairs applies the paper's
  // acceptance rule — so the result is identical for any worker count.
  const int shuffles = options.shuffles;
  if (shuffles <= 0) return;

  Rng rng(options.shuffle_seed);
  std::vector<Rng>& candidate_rngs = ws.candidate_rngs;
  candidate_rngs.clear();
  candidate_rngs.reserve(static_cast<std::size_t>(shuffles));
  for (int s = 0; s < shuffles; ++s) {
    candidate_rngs.push_back(rng.fork(static_cast<std::uint64_t>(s)));
  }
  std::vector<double>& cand_wc = ws.cand_wc;
  cand_wc.assign(static_cast<std::size_t>(shuffles), 0.0);
  std::vector<double>& cand_cm = ws.cand_cm;
  cand_cm.assign(static_cast<std::size_t>(shuffles), 0.0);

  int max_strands = options.shuffle_workers;
  if (max_strands <= 0) {
    max_strands = static_cast<int>(shared_thread_pool().size());
  }
  max_strands = std::min(max_strands, shuffles);
  // Never block on the shared pool from one of its own workers (the
  // experiment harness runs whole replicates on pool threads).
  if (ThreadPool::this_thread_is_worker()) max_strands = 1;

  if (max_strands > 1) {
    ThreadPool& pool = shared_thread_pool();
    std::vector<ShuffleWorkspace>& workspaces = ws.strand_ws;
    workspaces.resize(std::min<std::size_t>(
        pool.size(), static_cast<std::size_t>(max_strands)));
    pool.parallel_for_slots(
        0, static_cast<std::size_t>(shuffles),
        [&](std::size_t slot, std::size_t s) {
          const FlatMetrics result = evaluate_shuffle_candidate_soa(
              instance, ws.flat_soa, ws.batch_ranges,
              options.shuffle_batch_order, candidate_rngs[s],
              workspaces[slot]);
          cand_wc[s] = result.weighted_completion_sum;
          cand_cm[s] = result.cmax;
        },
        static_cast<std::size_t>(max_strands));
    out_diag.shuffle_strands = static_cast<int>(workspaces.size());
  } else {
    for (int s = 0; s < shuffles; ++s) {
      const FlatMetrics result = evaluate_shuffle_candidate_soa(
          instance, ws.flat_soa, ws.batch_ranges, options.shuffle_batch_order,
          candidate_rngs[static_cast<std::size_t>(s)], main_ws);
      cand_wc[static_cast<std::size_t>(s)] = result.weighted_completion_sum;
      cand_cm[static_cast<std::size_t>(s)] = result.cmax;
    }
    out_diag.shuffle_strands = 1;
  }

  // Sequential replay of the acceptance rule, in candidate order.
  const double cmax_budget = base_cmax * options.cmax_budget_factor;
  int winner = -1;
  for (int s = 0; s < shuffles; ++s) {
    const double wc = cand_wc[static_cast<std::size_t>(s)];
    const double cm = cand_cm[static_cast<std::size_t>(s)];
    if (wc < best_wc - 1e-12 && cm <= cmax_budget + 1e-12) {
      best_wc = wc;
      winner = s;
      ++out_diag.shuffle_improvements;
    }
  }
  if (winner >= 0) {
    // Re-evaluate the winning candidate (its RNG stream regenerates the
    // same order) and keep its task placements as the result.
    (void)evaluate_shuffle_candidate_soa(
        instance, ws.flat_soa, ws.batch_ranges, options.shuffle_batch_order,
        candidate_rngs[static_cast<std::size_t>(winner)], main_ws);
    out_placements.copy_from(main_ws.tasks);
  }
}

DemtResult demt_schedule_reference(const Instance& instance,
                                   const DemtOptions& options) {
  if (instance.empty()) {
    throw std::invalid_argument("demt_schedule: empty instance");
  }

  // 1. Dual-approximation estimate via the scalar reference search
  // (scan-based allotment lookups, budget-outer dual-test DP).
  const CmaxEstimate estimate =
      estimate_cmax_reference(instance, options.dual_eps);
  const TimeGrid grid(estimate.estimate, instance.tmin());

  DemtDiagnostics diag;
  diag.cmax_estimate = estimate.estimate;
  diag.cmax_lower_bound = estimate.lower_bound;
  diag.grid_k = grid.K();
  diag.dual_tests = estimate.dual_tests;

  // 2./3. Batch loop over array-of-structs items, scan-based candidate
  // lookups, scalar knapsack (select_batch).
  std::vector<int> pending(static_cast<std::size_t>(instance.num_tasks()));
  for (int i = 0; i < instance.num_tasks(); ++i) {
    pending[static_cast<std::size_t>(i)] = i;
  }
  BatchBuildOptions build_options;
  build_options.merge_small_tasks = options.merge_small_tasks;
  build_options.smith_order_stacks = options.smith_order_stacks;

  std::vector<SelectedBatch> batches;
  std::vector<bool> remove(static_cast<std::size_t>(instance.num_tasks()),
                           false);
  const int max_batches = grid.K() + 128;
  for (int j = 0; !pending.empty(); ++j) {
    if (j > max_batches) {
      throw std::logic_error("demt_schedule: batch loop failed to drain");
    }
    auto items = build_batch_items(instance, pending, grid.batch_length(j),
                                   build_options);
    if (items.empty()) continue;
    const std::vector<int> chosen = select_batch(items, instance.procs());
    if (chosen.empty()) continue;

    SelectedBatch batch;
    batch.grid_index = j;
    std::fill(remove.begin(), remove.end(), false);
    for (int idx : chosen) {
      auto& item = items[static_cast<std::size_t>(idx)];
      if (item.is_stack()) ++diag.merged_stacks;
      for (int task_id : item.tasks) {
        remove[static_cast<std::size_t>(task_id)] = true;
      }
      batch.items.push_back(std::move(item));
    }
    apply_local_order(instance, batch.items, options.local_order);
    batches.push_back(std::move(batch));
    std::erase_if(pending,
                  [&](int t) { return remove[static_cast<std::size_t>(t)]; });
  }
  diag.num_batches = static_cast<int>(batches.size());

  // 4. Compaction on the Schedule representation (multipass pull-forward).
  Schedule best = naive_placement(instance, batches, grid);
  if (options.compaction == DemtOptions::Compaction::None) {
    return DemtResult{std::move(best), diag};
  }
  pull_forward(best);
  if (options.compaction == DemtOptions::Compaction::PullForward) {
    return DemtResult{std::move(best), diag};
  }

  std::vector<BatchItem> flat_items;
  std::vector<std::pair<int, int>> batch_ranges;
  for (const auto& batch : batches) {
    const int first = static_cast<int>(flat_items.size());
    for (const auto& item : batch.items) flat_items.push_back(item);
    batch_ranges.emplace_back(first, static_cast<int>(flat_items.size()));
  }

  ShuffleWorkspace main_ws;
  std::vector<int> identity_order(flat_items.size());
  for (std::size_t i = 0; i < identity_order.size(); ++i) {
    identity_order[i] = static_cast<int>(i);
  }
  list_pass_flat(instance, flat_items, identity_order, main_ws);
  pull_forward(main_ws.tasks, instance.procs(), main_ws.compact);

  double best_wc = best.weighted_completion_sum(instance);
  double base_cmax = best.cmax();
  {
    const double wc = main_ws.tasks.weighted_completion_sum(instance);
    const double cm = main_ws.tasks.cmax();
    if (wc < best_wc || cm < base_cmax) {
      best = main_ws.tasks.to_schedule(instance.procs());
      best_wc = wc;
      base_cmax = cm;
    }
  }

  // 5. Shuffles, always evaluated sequentially (the replay acceptance rule
  // makes the result independent of evaluation concurrency anyway).
  const int shuffles = options.shuffles;
  if (shuffles <= 0) return DemtResult{std::move(best), diag};

  Rng rng(options.shuffle_seed);
  std::vector<Rng> candidate_rngs;
  candidate_rngs.reserve(static_cast<std::size_t>(shuffles));
  for (int s = 0; s < shuffles; ++s) {
    candidate_rngs.push_back(rng.fork(static_cast<std::uint64_t>(s)));
  }
  std::vector<double> cand_wc(static_cast<std::size_t>(shuffles), 0.0);
  std::vector<double> cand_cm(static_cast<std::size_t>(shuffles), 0.0);
  for (int s = 0; s < shuffles; ++s) {
    const auto result = evaluate_shuffle_candidate(
        instance, flat_items, batch_ranges, options.shuffle_batch_order,
        candidate_rngs[static_cast<std::size_t>(s)], main_ws);
    cand_wc[static_cast<std::size_t>(s)] = result.first;
    cand_cm[static_cast<std::size_t>(s)] = result.second;
  }
  diag.shuffle_strands = 1;

  const double cmax_budget = base_cmax * options.cmax_budget_factor;
  int winner = -1;
  for (int s = 0; s < shuffles; ++s) {
    const double wc = cand_wc[static_cast<std::size_t>(s)];
    const double cm = cand_cm[static_cast<std::size_t>(s)];
    if (wc < best_wc - 1e-12 && cm <= cmax_budget + 1e-12) {
      best_wc = wc;
      winner = s;
      ++diag.shuffle_improvements;
    }
  }
  if (winner >= 0) {
    (void)evaluate_shuffle_candidate(
        instance, flat_items, batch_ranges, options.shuffle_batch_order,
        candidate_rngs[static_cast<std::size_t>(winner)], main_ws);
    best = main_ws.tasks.to_schedule(instance.procs());
  }

  return DemtResult{std::move(best), diag};
}

}  // namespace moldsched
