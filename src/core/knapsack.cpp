#include "core/knapsack.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched {

std::vector<int> max_weight_knapsack(const std::vector<KnapsackItem>& items,
                                     int capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("max_weight_knapsack: negative capacity");
  }
  for (const auto& item : items) {
    if (item.cost <= 0) {
      throw std::invalid_argument("max_weight_knapsack: non-positive cost");
    }
    if (item.weight < 0.0) {
      throw std::invalid_argument("max_weight_knapsack: negative weight");
    }
  }

  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  // dp[j] = best weight with budget j after processing a prefix of items;
  // taken[i][j] records the decision for reconstruction.
  std::vector<double> dp(cap + 1, 0.0);
  std::vector<std::vector<bool>> taken(n, std::vector<bool>(cap + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    const auto cost = static_cast<std::size_t>(items[i].cost);
    if (cost > cap) continue;
    for (std::size_t j = cap; j >= cost; --j) {
      const double candidate = dp[j - cost] + items[i].weight;
      if (candidate > dp[j]) {
        dp[j] = candidate;
        taken[i][j] = true;
      }
    }
  }

  std::vector<int> selected;
  std::size_t j = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (j < taken[i].size() && taken[i][j]) {
      selected.push_back(static_cast<int>(i));
      j -= static_cast<std::size_t>(items[i].cost);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace moldsched
