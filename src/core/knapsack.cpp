#include "core/knapsack.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched {

std::vector<int> max_weight_knapsack(const std::vector<KnapsackItem>& items,
                                     int capacity) {
  thread_local KnapsackWorkspace ws;
  return max_weight_knapsack(items, capacity, ws);
}

std::vector<int> max_weight_knapsack(const std::vector<KnapsackItem>& items,
                                     int capacity, KnapsackWorkspace& ws) {
  if (capacity < 0) {
    throw std::invalid_argument("max_weight_knapsack: negative capacity");
  }
  for (const auto& item : items) {
    if (item.cost <= 0) {
      throw std::invalid_argument("max_weight_knapsack: non-positive cost");
    }
    if (item.weight < 0.0) {
      throw std::invalid_argument("max_weight_knapsack: negative weight");
    }
  }

  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  const std::size_t row = cap + 1;
  // dp[j] = best weight with budget j after processing a prefix of items;
  // taken[i * row + j] records the decision for reconstruction.
  ws.dp.assign(row, 0.0);
  ws.taken.assign(n * row, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cost = static_cast<std::size_t>(items[i].cost);
    if (cost > cap) continue;
    std::uint8_t* taken_row = ws.taken.data() + i * row;
    for (std::size_t j = cap; j >= cost; --j) {
      const double candidate = ws.dp[j - cost] + items[i].weight;
      if (candidate > ws.dp[j]) {
        ws.dp[j] = candidate;
        taken_row[j] = 1;
      }
    }
  }

  std::vector<int> selected;
  std::size_t j = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (ws.taken[i * row + j]) {
      selected.push_back(static_cast<int>(i));
      j -= static_cast<std::size_t>(items[i].cost);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace moldsched
