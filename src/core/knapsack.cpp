#include "core/knapsack.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched {
namespace {

void validate(const int* costs, const double* weights, int n, int capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("max_weight_knapsack: negative capacity");
  }
  for (int i = 0; i < n; ++i) {
    if (costs[i] <= 0) {
      throw std::invalid_argument("max_weight_knapsack: non-positive cost");
    }
    if (weights[i] < 0.0) {
      throw std::invalid_argument("max_weight_knapsack: negative weight");
    }
  }
}

}  // namespace

std::vector<int> max_weight_knapsack(const std::vector<KnapsackItem>& items,
                                     int capacity) {
  thread_local KnapsackWorkspace ws;
  return max_weight_knapsack(items, capacity, ws);
}

std::vector<int> max_weight_knapsack(const std::vector<KnapsackItem>& items,
                                     int capacity, KnapsackWorkspace& ws) {
  const int n = static_cast<int>(items.size());
  ws.cost_scratch.resize(items.size());
  ws.weight_scratch.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    ws.cost_scratch[i] = items[i].cost;
    ws.weight_scratch[i] = items[i].weight;
  }
  std::vector<int> selected;
  max_weight_knapsack_into(ws.cost_scratch.data(), ws.weight_scratch.data(), n,
                           capacity, ws, selected);
  return selected;
}

void max_weight_knapsack_into(const int* costs, const double* weights, int n,
                              int capacity, KnapsackWorkspace& ws,
                              std::vector<int>& selected) {
  validate(costs, weights, n, capacity);

  const auto cap = static_cast<std::size_t>(capacity);
  const std::size_t row = cap + 1;
  // Ping-pong rows: dp is the previous item's row, next the current one.
  // The backward in-place reference only ever reads previous-row values
  // (j descends, j - cost < j), so `next[j] = take ? cand : dp[j]` computes
  // the same cell values; the select form keeps the j loop branch free.
  ws.dp.assign(row, 0.0);
  ws.next.resize(row);
  ws.taken.assign(static_cast<std::size_t>(n) * row, 0);
  for (int i = 0; i < n; ++i) {
    const auto cost = static_cast<std::size_t>(costs[i]);
    if (cost > cap) continue;  // row untouched, decisions stay 0
    const double w = weights[i];
    const double* dp = ws.dp.data();
    double* next = ws.next.data();
    std::uint8_t* taken_row =
        ws.taken.data() + static_cast<std::size_t>(i) * row;
    for (std::size_t j = 0; j < cost; ++j) next[j] = dp[j];
    for (std::size_t j = cost; j <= cap; ++j) {
      const double cand = dp[j - cost] + w;
      const bool take = cand > dp[j];
      next[j] = take ? cand : dp[j];
      taken_row[j] = static_cast<std::uint8_t>(take);
    }
    ws.dp.swap(ws.next);
  }

  selected.clear();
  std::size_t j = cap;
  for (int i = n; i-- > 0;) {
    if (ws.taken[static_cast<std::size_t>(i) * row + j]) {
      selected.push_back(i);
      j -= static_cast<std::size_t>(costs[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
}

std::vector<int> max_weight_knapsack_reference(
    const std::vector<KnapsackItem>& items, int capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("max_weight_knapsack: negative capacity");
  }
  for (const auto& item : items) {
    if (item.cost <= 0) {
      throw std::invalid_argument("max_weight_knapsack: non-positive cost");
    }
    if (item.weight < 0.0) {
      throw std::invalid_argument("max_weight_knapsack: negative weight");
    }
  }

  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  const std::size_t row = cap + 1;
  // dp[j] = best weight with budget j after processing a prefix of items;
  // taken[i * row + j] records the decision for reconstruction.
  std::vector<double> dp(row, 0.0);
  std::vector<std::uint8_t> taken(n * row, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cost = static_cast<std::size_t>(items[i].cost);
    if (cost > cap) continue;
    std::uint8_t* taken_row = taken.data() + i * row;
    for (std::size_t j = cap; j >= cost; --j) {
      const double candidate = dp[j - cost] + items[i].weight;
      if (candidate > dp[j]) {
        dp[j] = candidate;
        taken_row[j] = 1;
      }
    }
  }

  std::vector<int> selected;
  std::size_t j = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (taken[i * row + j]) {
      selected.push_back(static_cast<int>(i));
      j -= static_cast<std::size_t>(items[i].cost);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace moldsched
