#include "core/decision_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tasks/time_grid.hpp"

namespace moldsched {

namespace {

/// One SplitMix64 finalization round over (h ^ v): cheap, well-mixed, and
/// already the project's canonical bit mixer (util/rng.hpp).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t z = (h ^ v) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Bucket a positive magnitude onto the geometric grid: sub-step index of
/// v relative to `anchor` (the instance's t_0), `steps` sub-steps per grid
/// doubling. floor, not round: a bucket is a half-open interval, so the
/// "same bucket" property tests can construct mid-bucket values that
/// tolerate perturbation in either direction.
std::int64_t quantize(double v, double anchor, int steps) noexcept {
  return static_cast<std::int64_t>(
      std::floor(std::log2(v / anchor) * steps));
}

}  // namespace

InstanceSignature canonical_signature(const Instance& instance,
                                      int quantize_steps,
                                      SignatureScratch& scratch) {
  if (quantize_steps < 1) {
    throw std::invalid_argument("canonical_signature: quantize_steps < 1");
  }
  const int n = instance.num_tasks();
  std::uint64_t h = mix(0x6D6F6C6473636864ULL,  // "moldschd"
                        static_cast<std::uint64_t>(instance.procs()));
  h = mix(h, static_cast<std::uint64_t>(n));
  if (n == 0) return InstanceSignature{h};

  // Anchor on the instance's own t_0 (TimeGrid with cmax_estimate == tmin
  // puts t_0 at exactly tmin), then mix the anchor's absolute bucket in so
  // globally rescaled instances do not alias.
  const TimeGrid grid(instance.tmin(), instance.tmin());
  const double anchor = grid.t(0);
  h = mix(h, static_cast<std::uint64_t>(
                 quantize(anchor, 1.0, quantize_steps)));

  scratch.task_hashes.clear();
  for (int t = 0; t < n; ++t) {
    const MoldableTask& task = instance.task(t);
    std::uint64_t th = mix(0x7461736B0000ULL,  // "task"
                           static_cast<std::uint64_t>(task.min_procs()));
    th = mix(th, static_cast<std::uint64_t>(task.max_procs()));
    // Weight is a free scale (no tmin relation): bucket it absolutely.
    th = mix(th, static_cast<std::uint64_t>(
                     quantize(task.weight(), 1.0, quantize_steps)));
    for (int k = 1; k <= task.max_procs(); ++k) {
      th = mix(th, static_cast<std::uint64_t>(
                       quantize(task.time(k), anchor, quantize_steps)));
    }
    scratch.task_hashes.push_back(th);
  }
  // Sorting the per-task hashes makes the signature a multiset
  // fingerprint: permutation- and resubmission-invariant.
  std::sort(scratch.task_hashes.begin(), scratch.task_hashes.end());
  for (const std::uint64_t th : scratch.task_hashes) h = mix(h, th);
  return InstanceSignature{h};
}

DecisionCache::DecisionCache(DecisionCacheOptions options)
    : options_(options) {
  if (options_.capacity < 1) {
    throw std::invalid_argument("DecisionCache: capacity < 1");
  }
  if (options_.shards < 1) {
    throw std::invalid_argument("DecisionCache: shards < 1");
  }
  if (options_.quantize_steps < 1) {
    throw std::invalid_argument("DecisionCache: quantize_steps < 1");
  }
  const std::size_t shard_count =
      std::min(static_cast<std::size_t>(options_.shards), options_.capacity);
  shards_.reserve(shard_count);
  const std::size_t base = options_.capacity / shard_count;
  const std::size_t extra = options_.capacity % shard_count;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->records.resize(base + (s < extra ? 1 : 0));
    shards_.push_back(std::move(shard));
  }
}

DecisionCache::Shard& DecisionCache::shard_for(std::uint64_t hash) noexcept {
  // High bits pick the shard; low bits already drove record comparison.
  const std::size_t index =
      static_cast<std::size_t>(hash >> 32) % shards_.size();
  return *shards_[index];
}

bool DecisionCache::matches(const Record& r, std::uint64_t sig,
                            std::uint64_t policy_key,
                            const Instance& instance) noexcept {
  if (!r.live || r.sig != sig || r.policy_key != policy_key) return false;
  if (r.m != instance.procs() || r.n != instance.num_tasks()) return false;
  // Exact in-order descriptor verification: quantization buckets, it never
  // decides. A permuted resubmission fails here by design (see header).
  for (int t = 0; t < r.n; ++t) {
    const MoldableTask& task = instance.task(t);
    const auto e = static_cast<std::size_t>(t);
    if (r.weight[e] != task.weight()) return false;
    if (r.min_procs[e] != task.min_procs()) return false;
    const auto begin = static_cast<std::size_t>(r.times_begin[e]);
    const auto end = static_cast<std::size_t>(r.times_begin[e + 1]);
    const std::vector<double>& times = task.times();
    if (end - begin != times.size()) return false;
    for (std::size_t k = 0; k < times.size(); ++k) {
      if (r.times[begin + k] != times[k]) return false;
    }
  }
  return true;
}

bool DecisionCache::lookup(const InstanceSignature& sig,
                           std::uint64_t policy_key, const Instance& instance,
                           FlatPlacements& out, DemtDiagnostics& diag) {
  if (policy_key == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_for(sig.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::size_t i = 0; i < shard.live; ++i) {
      Record& r = shard.records[i];
      if (!matches(r, sig.hash, policy_key, instance)) continue;
      r.referenced = true;
      // Replay: the cached doubles verbatim — bit-identical to the run
      // that produced them. assign() reuses `out`'s capacity.
      out.start.assign(r.start.begin(), r.start.end());
      out.duration.assign(r.duration.begin(), r.duration.end());
      out.proc_begin.assign(r.proc_begin.begin(), r.proc_begin.end());
      out.proc_count.assign(r.proc_count.begin(), r.proc_count.end());
      out.proc_ids.assign(r.proc_ids.begin(), r.proc_ids.end());
      diag = r.diag;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void DecisionCache::insert(const InstanceSignature& sig,
                           std::uint64_t policy_key, const Instance& instance,
                           const FlatPlacements& flat,
                           const DemtDiagnostics& diag) {
  if (policy_key == 0) return;
  Shard& shard = shard_for(sig.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  Record* victim = nullptr;
  for (std::size_t i = 0; i < shard.live; ++i) {
    Record& r = shard.records[i];
    if (matches(r, sig.hash, policy_key, instance)) {
      victim = &r;  // refresh in place (two strands raced on the miss)
      break;
    }
  }
  if (victim == nullptr) {
    if (shard.live < shard.records.size()) {
      victim = &shard.records[shard.live++];
    } else {
      // CLOCK: sweep the hand, clearing second-chance bits, until a
      // record without one comes up. Terminates within two sweeps.
      for (;;) {
        Record& r = shard.records[shard.hand];
        shard.hand = (shard.hand + 1) % shard.records.size();
        if (r.referenced) {
          r.referenced = false;
          continue;
        }
        victim = &r;
        evictions_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  Record& r = *victim;
  r.sig = sig.hash;
  r.policy_key = policy_key;
  r.m = instance.procs();
  r.n = instance.num_tasks();
  // Descriptors: clear + push_back recycles the victim's capacity.
  r.weight.clear();
  r.min_procs.clear();
  r.times_begin.clear();
  r.times.clear();
  for (int t = 0; t < r.n; ++t) {
    const MoldableTask& task = instance.task(t);
    r.weight.push_back(task.weight());
    r.min_procs.push_back(task.min_procs());
    r.times_begin.push_back(static_cast<int>(r.times.size()));
    const std::vector<double>& times = task.times();
    r.times.insert(r.times.end(), times.begin(), times.end());
  }
  r.times_begin.push_back(static_cast<int>(r.times.size()));
  r.start.assign(flat.start.begin(), flat.start.end());
  r.duration.assign(flat.duration.begin(), flat.duration.end());
  r.proc_begin.assign(flat.proc_begin.begin(), flat.proc_begin.end());
  r.proc_count.assign(flat.proc_count.begin(), flat.proc_count.end());
  r.proc_ids.assign(flat.proc_ids.begin(), flat.proc_ids.end());
  r.diag = diag;
  r.live = true;
  r.referenced = true;
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void DecisionCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (Record& r : shard->records) {
      r.live = false;
      r.referenced = false;
    }
    shard->live = 0;
    shard->hand = 0;
  }
}

DecisionCacheStats DecisionCache::stats() const {
  DecisionCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (std::size_t i = 0; i < shard->live; ++i) {
      if (shard->records[i].live) ++out.size;
    }
  }
  return out;
}

}  // namespace moldsched
