/// \file log.hpp
/// Leveled stderr logging. Quiet by default (Warn); bench harnesses raise
/// verbosity with --verbose. Thread-safe.

#pragma once

#include <string_view>

namespace moldsched {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::Debug, m); }
inline void log_info(std::string_view m) { log(LogLevel::Info, m); }
inline void log_warn(std::string_view m) { log(LogLevel::Warn, m); }
inline void log_error(std::string_view m) { log(LogLevel::Error, m); }

}  // namespace moldsched
