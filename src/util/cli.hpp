/// \file cli.hpp
/// Tiny command-line parser shared by the bench harnesses and examples.
/// Supports `--key value`, `--key=value` and boolean `--flag` forms.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace moldsched {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True when `--name` was given (with or without a value).
  [[nodiscard]] bool has(std::string_view name) const;

  /// True when `--help` (or `-h` as a positional) was given. Every bench
  /// binary checks this first and prints its usage text, including the
  /// schema of any JSON report it writes, before doing work.
  [[nodiscard]] bool help_requested() const;

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string def) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(std::string_view name, double def) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool def) const;

  /// Comma-separated integer list, e.g. `--sizes 25,50,100`.
  [[nodiscard]] std::vector<int> get_int_list(std::string_view name,
                                              std::vector<int> def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(std::string_view name) const;

  std::string program_;
  std::map<std::string, std::string, std::less<>> options_;
  std::vector<std::string> positional_;
};

}  // namespace moldsched
