#include "util/thread_pool.hpp"

#include <atomic>

namespace moldsched {

namespace {
thread_local bool t_is_pool_worker = false;
}  // namespace

bool ThreadPool::this_thread_is_worker() noexcept { return t_is_pool_worker; }

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::post(PostedTask& task) {
  task.next_ = nullptr;
  {
    const std::lock_guard lock(mutex_);
    if (posted_tail_ == nullptr) {
      posted_head_ = &task;
    } else {
      posted_tail_->next_ = &task;
    }
    posted_tail_ = &task;
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& f) {
  parallel_for_slots(begin, end,
                     [&f](std::size_t, std::size_t i) { f(i); });
}

void ThreadPool::parallel_for_slots(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t slot, std::size_t i)>& f,
    std::size_t max_strands) {
  if (begin >= end) return;
  // Nested call from a pool worker: blocking on the pool from one of its
  // own tasks would deadlock once every worker waits, so run the loop
  // inline on the caller instead (slot 0 — callers still get a valid,
  // unshared workspace index).
  if (this_thread_is_worker()) {
    for (std::size_t i = begin; i < end; ++i) f(0, i);
    return;
  }
  // Dynamic scheduling through a shared atomic index: run durations vary a
  // lot (the LP solve dominates some runs), so static chunking would idle
  // workers. Each submitted strand keeps its slot for all indices it pulls.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  std::size_t n_workers = std::min<std::size_t>(size(), end - begin);
  if (max_strands > 0) n_workers = std::min(n_workers, max_strands);
  std::vector<std::future<void>> futures;
  futures.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    futures.push_back(submit([next, end, w, &f] {
      for (std::size_t i = next->fetch_add(1); i < end;
           i = next->fetch_add(1)) {
        f(w, i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& shared_thread_pool() {
  static ThreadPool pool;  // workers join at program exit
  return pool;
}

void ThreadPool::worker_loop() {
  t_is_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    PostedTask* posted = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || posted_head_ != nullptr;
      });
      if (posted_head_ != nullptr) {
        // Unlink before run(): the node is free to be re-posted (by any
        // thread, including its own run()) the moment we drop the lock.
        posted = posted_head_;
        posted_head_ = posted->next_;
        if (posted_head_ == nullptr) posted_tail_ = nullptr;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stopping_ and both queues drained
      }
    }
    if (posted != nullptr) {
      posted->run();  // noexcept by contract
    } else {
      task();  // exceptions captured by the packaged_task
    }
  }
}

}  // namespace moldsched
