#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace moldsched {

void RunningStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RatioOfSums::add(double value, double reference) {
  if (reference <= 0.0) {
    throw std::invalid_argument("RatioOfSums: reference must be positive");
  }
  numerator_ += value;
  denominator_ += reference;
  per_run_.add(value / reference);
}

void RatioOfSums::merge(const RatioOfSums& other) noexcept {
  numerator_ += other.numerator_;
  denominator_ += other.denominator_;
  per_run_.merge(other.per_run_);
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace moldsched
