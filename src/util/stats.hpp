/// \file stats.hpp
/// Streaming statistics and the ratio-of-sums aggregate used throughout the
/// experimental evaluation.

#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace moldsched {

/// Numerically-stable streaming moments (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ratio-of-sums performance aggregate, following Jain ("The Art of Computer
/// Systems Performance Analysis", the paper's reference [15]): the average
/// competitive ratio over a set of runs is sum(values) / sum(lower bounds),
/// not the mean of per-run ratios. Per-run ratios are still tracked to
/// report the min/max envelope the paper plots.
class RatioOfSums {
 public:
  void add(double value, double reference);

  [[nodiscard]] double ratio() const noexcept {
    return denominator_ > 0.0 ? numerator_ / denominator_ : 0.0;
  }
  [[nodiscard]] double min_ratio() const noexcept { return per_run_.min(); }
  [[nodiscard]] double max_ratio() const noexcept { return per_run_.max(); }
  [[nodiscard]] std::size_t count() const noexcept { return per_run_.count(); }
  [[nodiscard]] const RunningStats& per_run() const noexcept { return per_run_; }

  void merge(const RatioOfSums& other) noexcept;

 private:
  double numerator_ = 0.0;
  double denominator_ = 0.0;
  RunningStats per_run_;
};

/// Quantile of a sample (linear interpolation between order statistics).
/// `q` in [0,1]; the input vector is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace moldsched
