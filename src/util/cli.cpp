#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace moldsched {

namespace {

/// A token usable as an option value: anything except another option
/// (`--x`) or a short flag like `-h`. Negative numbers (`-5`, `-.5`)
/// still count as values.
bool looks_like_value(std::string_view token) {
  if (token.rfind("--", 0) == 0) return false;
  if (token.size() >= 2 && token[0] == '-') {
    return (token[1] >= '0' && token[1] <= '9') || token[1] == '.';
  }
  return true;
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      options_.emplace(std::string(arg.substr(0, eq)),
                       std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--key value` when the next token is not itself an option or a short
    // flag; otherwise a bare boolean flag.
    if (i + 1 < argc && looks_like_value(argv[i + 1])) {
      options_.emplace(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      options_.emplace(std::string(arg), std::string());
    }
  }
}

std::optional<std::string> ArgParser::raw(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

bool ArgParser::has(std::string_view name) const {
  return options_.find(name) != options_.end();
}

bool ArgParser::help_requested() const {
  if (has("help")) return true;
  for (const auto& p : positional_) {
    if (p == "-h") return true;
  }
  return false;
}

std::string ArgParser::get_string(std::string_view name, std::string def) const {
  auto v = raw(name);
  return v ? *v : def;
}

std::int64_t ArgParser::get_int(std::string_view name, std::int64_t def) const {
  auto v = raw(name);
  if (!v || v->empty()) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double ArgParser::get_double(std::string_view name, double def) const {
  auto v = raw(name);
  if (!v || v->empty()) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool ArgParser::get_bool(std::string_view name, bool def) const {
  auto v = raw(name);
  if (!v) return def;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on")
    return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("bad boolean for --" + std::string(name) + ": " +
                              *v);
}

std::vector<int> ArgParser::get_int_list(std::string_view name,
                                         std::vector<int> def) const {
  auto v = raw(name);
  if (!v || v->empty()) return def;
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < v->size()) {
    auto comma = v->find(',', pos);
    if (comma == std::string::npos) comma = v->size();
    out.push_back(std::atoi(v->substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

}  // namespace moldsched
