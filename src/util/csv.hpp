/// \file csv.hpp
/// Minimal RFC-4180-style CSV writer used by the experiment harness to dump
/// figure series for external plotting.

#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace moldsched {

/// Streams rows to an std::ostream, quoting fields when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row; each element becomes one field.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header row.
  void header(const std::vector<std::string>& names) { row(names); }

  /// Quote a single field per RFC 4180 (exposed for testing).
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  std::ostream& out_;
};

}  // namespace moldsched
