/// \file strfmt.hpp
/// printf-style std::string formatting (libstdc++ 12 has no std::format).

#pragma once

#include <string>

namespace moldsched {

/// Format into a std::string using printf semantics.
[[nodiscard]] std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace moldsched
