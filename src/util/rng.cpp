#include "util/rng.hpp"

#include <cmath>

namespace moldsched {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire's method: multiply-shift with a rejection step for exactness.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller: generate a pair, keep one as spare.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();  // log(0) guard
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double two_pi = 6.283185307179586476925286766559;
  spare_ = r * std::sin(two_pi * u2);
  has_spare_ = true;
  return r * std::cos(two_pi * u2);
}

double Rng::truncated_gaussian(double mean, double sd, double lo,
                               double hi) noexcept {
  // Rejection sampling, exactly as the paper describes. For the paper's
  // parameters (e.g. N(0.9, 0.2) on [0,1]) acceptance is high; the iteration
  // cap is a safety net for degenerate arguments and falls back to clamping.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double x = gaussian(mean, sd);
    if (x >= lo && x <= hi) return x;
  }
  const double x = gaussian(mean, sd);
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace moldsched
