/// \file thread_pool.hpp
/// Fixed-size worker pool with a blocking parallel_for. The experiment
/// harness runs the 40 simulation runs of each figure point concurrently;
/// each run owns a forked RNG stream so results are independent of the
/// worker count.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace moldsched {

class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to the hardware concurrency, at
  /// least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future reports completion and re-throws any
  /// exception the task raised.
  std::future<void> submit(std::function<void()> task);

  /// Pre-allocated fire-and-forget work item for `post`: the node embeds
  /// its own queue link, so posting performs no heap allocation — the
  /// primitive behind the async serving layer's shard strands, whose
  /// steady-state dispatch must not allocate per batch. Contract: the node
  /// must outlive its run() call and must not be re-posted while still
  /// queued; the worker unlinks the node *before* calling run(), so run()
  /// itself may re-post the node (the strand re-arm pattern). run() must
  /// not throw — there is no future to carry the exception.
  class PostedTask {
   public:
    PostedTask() = default;
    virtual ~PostedTask() = default;
    PostedTask(const PostedTask&) = delete;
    PostedTask& operator=(const PostedTask&) = delete;

    virtual void run() noexcept = 0;

   private:
    friend class ThreadPool;
    PostedTask* next_ = nullptr;
  };

  /// Allocation-free fire-and-forget submission: link `task` into the
  /// intrusive FIFO and wake one worker. No completion handle — callers
  /// that need one use submit().
  void post(PostedTask& task);

  /// Run f(i) for i in [begin, end) across the pool and wait. Exceptions
  /// from the body are collected and the first one re-thrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f);

  /// Like parallel_for, but the body also receives a stable slot index in
  /// [0, min(size(), end - begin, max_strands)): two concurrent invocations
  /// never share a slot, so callers can hand each strand its own reusable
  /// workspace. `max_strands` == 0 means "as many as the pool has". Called
  /// from a pool worker thread (of any pool), the loop runs inline on the
  /// caller with slot 0 instead of blocking on pool work — nested parallel
  /// stages degrade to sequential rather than deadlocking.
  void parallel_for_slots(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t slot, std::size_t i)>& f,
      std::size_t max_strands = 0);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is a worker of ANY ThreadPool. Blocking
  /// on pool work from inside a pool worker can deadlock; nested parallel
  /// stages use this to fall back to sequential execution instead.
  [[nodiscard]] static bool this_thread_is_worker() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  PostedTask* posted_head_ = nullptr;
  PostedTask* posted_tail_ = nullptr;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool (hardware-concurrency workers), created on first use.
/// Used as the default executor for DEMT's shuffle candidates and for
/// experiment replicates when the caller does not supply a pool. Never
/// submit to this pool from inside one of its own tasks (the caller would
/// block a worker while waiting for workers).
[[nodiscard]] ThreadPool& shared_thread_pool();

}  // namespace moldsched
