/// \file thread_pool.hpp
/// Fixed-size worker pool with a blocking parallel_for. The experiment
/// harness runs the 40 simulation runs of each figure point concurrently;
/// each run owns a forked RNG stream so results are independent of the
/// worker count.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace moldsched {

class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to the hardware concurrency, at
  /// least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future reports completion and re-throws any
  /// exception the task raised.
  std::future<void> submit(std::function<void()> task);

  /// Run f(i) for i in [begin, end) across the pool and wait. Exceptions
  /// from the body are collected and the first one re-thrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace moldsched
