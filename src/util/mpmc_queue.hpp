/// \file mpmc_queue.hpp
/// Bounded lock-free multi-producer/multi-consumer FIFO (Vyukov ring
/// buffer). This is the submission queue of the async serving layer: every
/// push/pop is one CAS plus one release store on a pre-allocated cell, so
/// the steady-state submit/poll path performs no heap allocation and takes
/// no lock. Capacity is fixed at construction (rounded up to a power of
/// two); a full queue fails the push instead of growing, which is exactly
/// the admission-control behaviour the serving layer wants.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace moldsched {

/// Fixed-capacity MPMC FIFO. T must be default-constructible and movable.
/// try_push/try_pop are safe from any number of threads concurrently;
/// FIFO order holds per producer (interleaving across producers follows
/// the ticket order of the internal counters).
template <typename T>
class MpmcQueue {
 public:
  /// Capacity is `min_capacity` rounded up to a power of two (at least 2).
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t capacity = 2;
    while (capacity < min_capacity) capacity <<= 1;
    cells_ = std::vector<Cell>(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    mask_ = capacity - 1;
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// False when the queue is full. Never blocks, never allocates.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = push_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (push_pos_.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = push_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty. Never blocks, never allocates.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = pop_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (pop_pos_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = pop_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy size estimate (push counter minus pop counter); exact only when
  /// no operation is in flight. Used for flush heuristics, never for
  /// correctness.
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t pushed = push_pos_.load(std::memory_order_relaxed);
    const std::size_t popped = pop_pos_.load(std::memory_order_relaxed);
    return pushed >= popped ? pushed - popped : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> push_pos_{0};
  alignas(64) std::atomic<std::size_t> pop_pos_{0};
};

}  // namespace moldsched
