/// \file rng.hpp
/// Deterministic, cross-platform random number generation.
///
/// The standard library's distributions are implementation-defined, which
/// would make experiment outputs differ between standard libraries. All
/// generators and distributions used by moldsched are therefore implemented
/// here from first principles: a SplitMix64 seeder, a xoshiro256++ engine,
/// and explicit uniform / gaussian / truncated-gaussian samplers.

#pragma once

#include <cstdint>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

namespace moldsched {

/// SplitMix64: tiny 64-bit generator used to expand a single seed into the
/// 256-bit state of xoshiro256++ (as recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator, so it can also feed <random> if ever
/// needed. Period 2^256 - 1.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Convenience sampling layer over Xoshiro256pp. Every experiment in
/// moldsched draws randomness exclusively through an Rng so that a single
/// (seed, stream) pair reproduces a run bit-for-bit on any platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) noexcept : engine_(seed) {}

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the inclusive range [lo, hi], unbiased
  /// (Lemire's nearly-divisionless method).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via the Box–Muller transform (caches the spare value).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double sd) noexcept {
    return mean + sd * gaussian();
  }

  /// Normal restricted to [lo, hi] by rejection, as the paper specifies for
  /// its parallelism-degree draws ("any random value smaller than 0 and
  /// larger than 1 are ignored and recomputed").
  double truncated_gaussian(double mean, double sd, double lo, double hi) noexcept;

  /// Exponential with the given mean — the inter-arrival gaps of a
  /// Poisson process at rate 1/mean (what the streaming bench and the
  /// stream-server example drive their open-loop arrivals with).
  /// uniform() < 1 keeps the log argument positive, so the result is
  /// always finite and >= 0.
  double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream. Mixing the parent's raw output with
  /// the stream id through SplitMix64 keeps children decorrelated, so
  /// parallel experiment runs can each own a private stream.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept {
    SplitMix64 sm(next_u64() ^ (0xA24BAED4963EE407ULL * (stream_id + 1)));
    return Rng(sm.next());
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  Xoshiro256pp engine_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace moldsched
