/// \file timer.hpp
/// Wall-clock stopwatch for the Figure-7 runtime measurements.

#pragma once

#include <chrono>

namespace moldsched {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace moldsched
