# Documentation completeness check, run as a CTest (`docs_check`):
# every public header under src/ must be mentioned (by file name) in
# docs/API.md, so the API reference cannot silently rot as headers are
# added. Invoke: cmake -DREPO=<repo root> -P cmake/docs_check.cmake
if(NOT DEFINED REPO)
  message(FATAL_ERROR "docs_check.cmake: pass -DREPO=<repository root>")
endif()

set(api_md "${REPO}/docs/API.md")
if(NOT EXISTS "${api_md}")
  message(FATAL_ERROR "docs_check: ${api_md} does not exist")
endif()
file(READ "${api_md}" api_text)

file(GLOB_RECURSE headers RELATIVE "${REPO}" "${REPO}/src/*.hpp")
list(SORT headers)

set(missing "")
foreach(header ${headers})
  get_filename_component(name "${header}" NAME)
  string(FIND "${api_text}" "${name}" found)
  if(found EQUAL -1)
    list(APPEND missing "${header}")
  endif()
endforeach()

list(LENGTH headers total)
if(missing)
  list(JOIN missing "\n  " missing_pretty)
  message(FATAL_ERROR
          "docs_check: docs/API.md does not mention these public headers:\n"
          "  ${missing_pretty}\n"
          "Add them to the header index (or a deep section) in docs/API.md.")
endif()
message(STATUS "docs_check: all ${total} public headers covered by docs/API.md")
