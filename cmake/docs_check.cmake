# Documentation completeness check, run as a CTest (`docs_check`):
#  1. every public header under src/ must be mentioned (by file name) in
#     docs/API.md, so the API reference cannot silently rot as headers
#     are added;
#  2. every public symbol declared at namespace scope in a src/serve/
#     header (class/struct/enum and free functions) must be mentioned in
#     docs/SERVING.md — the serving handbook ships with the code, not
#     after it;
#  3. docs/ARCHITECTURE.md must exist and cover every source layer it
#     promises (core/, sched/, sim/, engine/, serve/);
#  4. docs/BENCHMARKS.md must exist and document every BENCH_*.json
#     report the benches emit.
# Invoke: cmake -DREPO=<repo root> -P cmake/docs_check.cmake
if(NOT DEFINED REPO)
  message(FATAL_ERROR "docs_check.cmake: pass -DREPO=<repository root>")
endif()

set(api_md "${REPO}/docs/API.md")
if(NOT EXISTS "${api_md}")
  message(FATAL_ERROR "docs_check: ${api_md} does not exist")
endif()
file(READ "${api_md}" api_text)

file(GLOB_RECURSE headers RELATIVE "${REPO}" "${REPO}/src/*.hpp")
list(SORT headers)

set(missing "")
foreach(header ${headers})
  get_filename_component(name "${header}" NAME)
  string(FIND "${api_text}" "${name}" found)
  if(found EQUAL -1)
    list(APPEND missing "${header}")
  endif()
endforeach()

list(LENGTH headers total)
if(missing)
  list(JOIN missing "\n  " missing_pretty)
  message(FATAL_ERROR
          "docs_check: docs/API.md does not mention these public headers:\n"
          "  ${missing_pretty}\n"
          "Add them to the header index (or a deep section) in docs/API.md.")
endif()
message(STATUS "docs_check: all ${total} public headers covered by docs/API.md")

# --- serve layer: docs/SERVING.md must cover every public symbol --------
set(serving_md "${REPO}/docs/SERVING.md")
if(NOT EXISTS "${serving_md}")
  message(FATAL_ERROR "docs_check: ${serving_md} does not exist")
endif()
file(READ "${serving_md}" serving_text)

file(GLOB_RECURSE serve_headers "${REPO}/src/serve/*.hpp")
list(SORT serve_headers)
set(serve_symbols "")
foreach(header ${serve_headers})
  file(STRINGS "${header}" lines)
  foreach(line ${lines})
    # Type declarations at namespace scope (methods are indented).
    if(line MATCHES "^(class|struct|enum[ \t]+class)[ \t]+([A-Za-z_][A-Za-z0-9_]*)")
      list(APPEND serve_symbols "${CMAKE_MATCH_2}")
    # Free-function declarations at namespace scope: an unindented line
    # whose first identifier-followed-by-( is the function name (return
    # type keywords and attributes contain no "name(").
    elseif(line MATCHES "^[A-Za-z_[]" AND line MATCHES "([A-Za-z_][A-Za-z0-9_]*)[ \t]*\\(")
      list(APPEND serve_symbols "${CMAKE_MATCH_1}")
    endif()
  endforeach()
endforeach()
list(REMOVE_DUPLICATES serve_symbols)

set(serve_missing "")
foreach(symbol ${serve_symbols})
  string(FIND "${serving_text}" "${symbol}" found)
  if(found EQUAL -1)
    list(APPEND serve_missing "${symbol}")
  endif()
endforeach()
list(LENGTH serve_symbols serve_total)
if(serve_missing)
  list(JOIN serve_missing "\n  " serve_missing_pretty)
  message(FATAL_ERROR
          "docs_check: docs/SERVING.md does not mention these public "
          "src/serve/ symbols:\n  ${serve_missing_pretty}\n"
          "Document them in docs/SERVING.md (the serving handbook must "
          "cover the whole public surface).")
endif()
message(STATUS
        "docs_check: all ${serve_total} serve symbols covered by docs/SERVING.md")

# --- architecture + benchmark docs --------------------------------------
set(architecture_md "${REPO}/docs/ARCHITECTURE.md")
if(NOT EXISTS "${architecture_md}")
  message(FATAL_ERROR "docs_check: ${architecture_md} does not exist")
endif()
file(READ "${architecture_md}" architecture_text)
foreach(layer core sched sim engine serve)
  string(FIND "${architecture_text}" "${layer}/" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "docs_check: docs/ARCHITECTURE.md does not cover the "
            "${layer}/ layer")
  endif()
endforeach()

set(benchmarks_md "${REPO}/docs/BENCHMARKS.md")
if(NOT EXISTS "${benchmarks_md}")
  message(FATAL_ERROR "docs_check: ${benchmarks_md} does not exist")
endif()
file(READ "${benchmarks_md}" benchmarks_text)
foreach(report BENCH_demt.json BENCH_demt_micro.json BENCH_engine.json
        BENCH_serve.json)
  string(FIND "${benchmarks_text}" "${report}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "docs_check: docs/BENCHMARKS.md does not document ${report}")
  endif()
endforeach()
message(STATUS "docs_check: architecture and benchmark docs present")
