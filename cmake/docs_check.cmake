# Documentation completeness check, run as a CTest (`docs_check`):
#  1. every public header under src/ must be mentioned (by file name) in
#     docs/API.md, so the API reference cannot silently rot as headers
#     are added;
#  2. every public symbol declared at namespace scope in a src/serve/
#     header (class/struct/enum and free functions) must be mentioned in
#     docs/SERVING.md — the serving handbook ships with the code, not
#     after it;
#  3. every public symbol of the online/streaming simulator headers
#     (src/sim/online.hpp, src/sim/stream.hpp, src/sim/divisible.hpp,
#     src/sim/checkpoint.hpp) must be mentioned in docs/ONLINE.md —
#     same rule for the streaming handbook;
#  3b. every public symbol of the scheduling-policy surface
#     (src/core/policy.hpp and src/baselines/lpt_policy.hpp) and of the
#     decision cache (src/core/decision_cache.hpp) must be mentioned in
#     docs/API.md — the policy objects are the library's primary
#     extension point and the cache is their serving-side companion, so
#     the API reference must cover both;
#  4. docs/ARCHITECTURE.md must exist and cover every source layer it
#     promises (core/, sched/, sim/, engine/, serve/);
#  5. docs/BENCHMARKS.md must exist and document every BENCH_*.json
#     report the benches emit.
# Invoke: cmake -DREPO=<repo root> -P cmake/docs_check.cmake

# Extract public symbols (type declarations and free functions at
# namespace scope) from the ${headers} files and fail unless each one
# appears in ${doc_text}; ${doc_name} names the document in the error
# message. Lines are read via file(READ) with semicolons escaped and
# square brackets stripped before splitting — file(STRINGS) +
# foreach() silently merges every line between an unbalanced "[" in a
# comment and the next "]", which used to hide whole declarations from
# the check.
function(check_symbol_coverage headers doc_text doc_name)
  set(symbols "")
  foreach(header ${headers})
    file(READ "${header}" content)
    string(REPLACE ";" "\\;" content "${content}")
    string(REPLACE "[" "" content "${content}")
    string(REPLACE "]" "" content "${content}")
    string(REPLACE "\n" ";" lines "${content}")
    foreach(line IN LISTS lines)
      # Type declarations at namespace scope (methods are indented).
      if(line MATCHES "^(class|struct|enum[ \t]+class)[ \t]+([A-Za-z_][A-Za-z0-9_]*)")
        list(APPEND symbols "${CMAKE_MATCH_2}")
      # Free-function declarations at namespace scope: an unindented line
      # (attributes like nodiscard keep their word after bracket
      # stripping) whose first identifier-followed-by-( is the function
      # name (return type keywords and attributes contain no "name(").
      elseif(line MATCHES "^[A-Za-z_]" AND line MATCHES "([A-Za-z_][A-Za-z0-9_]*)[ \t]*\\(")
        list(APPEND symbols "${CMAKE_MATCH_1}")
      endif()
    endforeach()
  endforeach()
  list(REMOVE_DUPLICATES symbols)
  # Type aliases read as functions by the heuristic (e.g. "using F =
  # std::function<...>(...)") still name a public symbol — keep them.
  list(REMOVE_ITEM symbols using)

  set(missing "")
  foreach(symbol ${symbols})
    string(FIND "${doc_text}" "${symbol}" found)
    if(found EQUAL -1)
      list(APPEND missing "${symbol}")
    endif()
  endforeach()
  list(LENGTH symbols total)
  if(missing)
    list(JOIN missing "\n  " missing_pretty)
    message(FATAL_ERROR
            "docs_check: ${doc_name} does not mention these public "
            "symbols:\n  ${missing_pretty}\n"
            "Document them in ${doc_name} (the handbook must cover the "
            "whole public surface).")
  endif()
  message(STATUS
          "docs_check: all ${total} symbols covered by ${doc_name}")
endfunction()
if(NOT DEFINED REPO)
  message(FATAL_ERROR "docs_check.cmake: pass -DREPO=<repository root>")
endif()

set(api_md "${REPO}/docs/API.md")
if(NOT EXISTS "${api_md}")
  message(FATAL_ERROR "docs_check: ${api_md} does not exist")
endif()
file(READ "${api_md}" api_text)

file(GLOB_RECURSE headers RELATIVE "${REPO}" "${REPO}/src/*.hpp")
list(SORT headers)

set(missing "")
foreach(header ${headers})
  get_filename_component(name "${header}" NAME)
  string(FIND "${api_text}" "${name}" found)
  if(found EQUAL -1)
    list(APPEND missing "${header}")
  endif()
endforeach()

list(LENGTH headers total)
if(missing)
  list(JOIN missing "\n  " missing_pretty)
  message(FATAL_ERROR
          "docs_check: docs/API.md does not mention these public headers:\n"
          "  ${missing_pretty}\n"
          "Add them to the header index (or a deep section) in docs/API.md.")
endif()
message(STATUS "docs_check: all ${total} public headers covered by docs/API.md")

# --- serve layer: docs/SERVING.md must cover every public symbol --------
set(serving_md "${REPO}/docs/SERVING.md")
if(NOT EXISTS "${serving_md}")
  message(FATAL_ERROR "docs_check: ${serving_md} does not exist")
endif()
file(READ "${serving_md}" serving_text)

file(GLOB_RECURSE serve_headers "${REPO}/src/serve/*.hpp")
list(SORT serve_headers)
check_symbol_coverage("${serve_headers}" "${serving_text}" "docs/SERVING.md")

# --- policy surface: docs/API.md must cover every policy symbol ---------
set(policy_headers
    "${REPO}/src/core/policy.hpp"
    "${REPO}/src/core/decision_cache.hpp"
    "${REPO}/src/baselines/lpt_policy.hpp")
check_symbol_coverage("${policy_headers}" "${api_text}" "docs/API.md")

# --- SoA kernel layer: docs/API.md must cover every kernel symbol -------
# The vectorized kernels, their *_into serving forms and their scalar
# *_reference twins are the performance contract of the library; the API
# reference must name each one (see "The SoA kernel layer" section).
set(kernel_headers
    "${REPO}/src/core/demt.hpp"
    "${REPO}/src/core/knapsack.hpp"
    "${REPO}/src/core/batching.hpp"
    "${REPO}/src/dualapprox/dual_test.hpp"
    "${REPO}/src/dualapprox/cmax_estimator.hpp"
    "${REPO}/src/tasks/allotment_table.hpp"
    "${REPO}/src/sched/flat_schedule.hpp"
    "${REPO}/src/sched/compaction.hpp")
check_symbol_coverage("${kernel_headers}" "${api_text}" "docs/API.md")

# --- trace layer: docs/API.md must cover every trace symbol -------------
# SWF ingestion, the tape compiler and the SLO accumulator are a public
# subsystem (src/trace/); the API reference must name each symbol, and the
# trace handbook must exist (format mapping and SLO schema live there).
file(GLOB_RECURSE trace_headers "${REPO}/src/trace/*.hpp")
list(SORT trace_headers)
check_symbol_coverage("${trace_headers}" "${api_text}" "docs/API.md")
if(NOT EXISTS "${REPO}/docs/TRACES.md")
  message(FATAL_ERROR "docs_check: docs/TRACES.md does not exist")
endif()

# --- online/streaming layer: docs/ONLINE.md covers the sim surface -------
set(online_md "${REPO}/docs/ONLINE.md")
if(NOT EXISTS "${online_md}")
  message(FATAL_ERROR "docs_check: ${online_md} does not exist")
endif()
file(READ "${online_md}" online_text)

set(online_headers
    "${REPO}/src/sim/online.hpp"
    "${REPO}/src/sim/stream.hpp"
    "${REPO}/src/sim/divisible.hpp"
    "${REPO}/src/sim/checkpoint.hpp")
check_symbol_coverage("${online_headers}" "${online_text}" "docs/ONLINE.md")

# --- architecture + benchmark docs --------------------------------------
set(architecture_md "${REPO}/docs/ARCHITECTURE.md")
if(NOT EXISTS "${architecture_md}")
  message(FATAL_ERROR "docs_check: ${architecture_md} does not exist")
endif()
file(READ "${architecture_md}" architecture_text)
foreach(layer core sched sim engine serve trace)
  string(FIND "${architecture_text}" "${layer}/" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "docs_check: docs/ARCHITECTURE.md does not cover the "
            "${layer}/ layer")
  endif()
endforeach()

set(benchmarks_md "${REPO}/docs/BENCHMARKS.md")
if(NOT EXISTS "${benchmarks_md}")
  message(FATAL_ERROR "docs_check: ${benchmarks_md} does not exist")
endif()
file(READ "${benchmarks_md}" benchmarks_text)
foreach(report BENCH_demt.json BENCH_demt_micro.json BENCH_engine.json
        BENCH_serve.json BENCH_online.json BENCH_trace.json)
  string(FIND "${benchmarks_text}" "${report}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "docs_check: docs/BENCHMARKS.md does not document ${report}")
  endif()
endforeach()
message(STATUS "docs_check: architecture and benchmark docs present")
