/// Async serving bench for the submit/poll layer: verifies the async path
/// is bit-identical to the synchronous SchedulerEngine for shard counts
/// {1, 2, 4} — through both the deprecated enum spelling and the
/// SchedulingPolicy-object API — sweeps throughput and submit-to-done
/// latency percentiles over the shard counts, exercises admission control
/// (including weighted priority lanes: per-lane latency percentiles and a
/// per-lane-capacity rejection report), and counts steady-state heap
/// allocations per request on the metrics-only FlatList path with >= 2
/// priority lanes active, using a global operator-new hook (must be 0.00;
/// the process exits non-zero otherwise, same as on a determinism
/// failure).
///
/// Run `serve_throughput --help` for flags; all BENCH_*.json schemas are
/// documented centrally in docs/BENCHMARKS.md.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "alloc_hook.hpp"
#include "core/decision_cache.hpp"
#include "engine/engine.hpp"
#include "serve/async_scheduler.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "util/cli.hpp"
#include "util/strfmt.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

// Allocation counting uses the shared operator-new hook in
// alloc_hook.hpp, counting every heap allocation in the process (all
// threads — shard strands and the flusher included, which is the point:
// the whole serving cycle must be clean). Under AddressSanitizer the
// hook is compiled out; the sanitized CI job still gates determinism +
// admission while the allocation contract is enforced by the plain
// Release build (reported as -1 here).

namespace {

using namespace moldsched;

constexpr const char* kHelp = R"(serve_throughput -- async submit/poll serving bench

Serves a fixed request set through the sharded AsyncScheduler and compares
against the synchronous SchedulerEngine path.

Flags
  --requests N      requests per round                         [96]
  --n N             tasks per instance                         [60]
  --m N             processors per instance                    [32]
  --reps N          timed rounds per shard setting             [5]
  --shards a,b,c    shard counts to sweep                      [1,2,4]
  --max-batch N     coalescing batch bound                     [16]
  --flush-ms X      deadline flush (ms; 0 = every submit)      [0.5]
  --capacity N      admission bound (in-flight tickets)        [4096]
  --lanes a,b,c     priority-lane weights (>= 2 lanes)         [3,1]
  --shuffles N      DEMT shuffle candidates per request        [8]
  --seed S          base RNG seed                              [20040627]
  --faults S        chaos-smoke fault-plan seed                [= --seed]
  --quick           small preset (24 requests, 2 reps)
  --zipf            decision-cache section: Zipf recurring shapes
  --speculate       stream-speculation section: sparse-watermark tape
  --json PATH       JSON report path ("" disables)             [BENCH_serve.json]
  --help            this text

The BENCH_serve.json schema (and every other BENCH_*.json schema) is
documented in docs/BENCHMARKS.md; the serving architecture and its
determinism/allocation contracts in docs/SERVING.md.

The chaos-smoke section always runs: a seeded FaultPlan (engine throws,
slow batches, shard deaths — scripted points plus random rates keyed by
--faults) over one-shot traffic with bounded retry and two live streams.
Every accepted ticket must reach a terminal state and be taken exactly
once (nothing lost, nothing duplicated), and each stream's deliveries —
including any migrated via checkpoint off a dead shard — must replay the
off-line simulator bit-identically.

With --zipf, a decision-cache section (core/decision_cache.hpp) also
runs: a Zipf(s = 1.1) request mix over a fixed shape catalog is served
with an AsyncOptions::cache attached, and the run exit-gates three cache
contracts — cache-on results bit-identical to the cache-off synchronous
reference for every shard count, steady-state hit rate >= 0.80, and 0.00
allocs/request on the pure-hit DEMT metrics-only path — while reporting
the cache-off vs cache-on throughput delta.

With --speculate, a stream-speculation section (StreamOptions::speculate)
also runs: a sparse-watermark DEMT stream — every feed carries one batch
of arrivals with the watermark held exactly at the batch's open instant,
so each decision becomes final only at the *next* feed — is served twice,
speculation off and on, and the run exit-gates three contracts:
speculate-on deliveries bit-identical to speculate-off, speculation
actually firing (staged + committed decisions > 0), and 0.00
allocs/feed at steady state with speculation on. It reports the
feed-to-decision latency percentiles of both modes (the latency of the
feeds that deliver finalised batch decisions): with speculation the
confirming feed only replays the staged decision, so its p99 drops.

Exit status: non-zero when any async result differs from the synchronous
reference (enum or policy-object path), when the chaos-smoke run loses,
duplicates, or mis-delivers a request or stream feed, when a --zipf
cache gate fails (identity, hit rate, or hit-path allocations), when a
--speculate gate fails (identity, speculation counters, or steady-state
feed allocations), or when the steady-state metrics-only FlatList path
with priority lanes active allocates (allocation counting is compiled
out under AddressSanitizer and reported as -1: sanitized builds gate
determinism and admission only; the same applies to the --zipf hit-path
and --speculate allocation gates).
)";

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const auto last = samples.size() - 1;
    const auto index = static_cast<std::size_t>(q * static_cast<double>(last));
    return samples[std::min(index, last)];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

bool results_identical(const EngineResult& a, const EngineResult& b) {
  if (a.cmax != b.cmax ||
      a.weighted_completion_sum != b.weighted_completion_sum ||
      a.has_schedule != b.has_schedule) {
    return false;
  }
  if (!a.has_schedule) return true;
  const Schedule& sa = a.schedule;
  const Schedule& sb = b.schedule;
  if (sa.num_tasks() != sb.num_tasks()) return false;
  for (int t = 0; t < sa.num_tasks(); ++t) {
    const Placement& pa = sa.placement(t);
    const Placement& pb = sb.placement(t);
    if (pa.start != pb.start || pa.duration != pb.duration ||
        pa.procs != pb.procs) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout << kHelp;
    return 0;
  }
  int num_requests = static_cast<int>(args.get_int("requests", 96));
  const int n = static_cast<int>(args.get_int("n", 60));
  const int m = static_cast<int>(args.get_int("m", 32));
  int reps = static_cast<int>(args.get_int("reps", 5));
  if (args.has("quick")) {
    num_requests = 24;
    reps = 2;
  }
  const std::vector<int> shard_settings = args.get_int_list("shards", {1, 2, 4});
  const int max_batch = static_cast<int>(args.get_int("max-batch", 16));
  const double flush_ms = args.get_double("flush-ms", 0.5);
  const int capacity = static_cast<int>(args.get_int("capacity", 4096));
  const std::vector<int> lane_weights = args.get_int_list("lanes", {3, 1});
  const int shuffles = static_cast<int>(args.get_int("shuffles", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  // The priority-lane table every lane-aware section serves: weights from
  // --lanes, no per-lane bound by default (the weighted-admission report
  // adds one).
  std::vector<LaneSpec> lane_specs;
  lane_specs.reserve(lane_weights.size());
  for (std::size_t l = 0; l < lane_weights.size(); ++l) {
    LaneSpec spec;
    spec.name = "lane" + std::to_string(l);
    spec.weight = std::max(1, lane_weights[l]);
    lane_specs.push_back(spec);
  }
  const WeightedLanesAdmission lanes_admission(lane_specs);
  const int num_lanes = static_cast<int>(lane_specs.size());

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  DemtOptions demt_options;
  demt_options.shuffles = shuffles;
  const DemtPolicy demt_policy(demt_options);
  const FlatListPolicy flat_policy;
  std::vector<EngineRequest> demt_requests(instances.size());
  std::vector<EngineRequest> flat_requests(instances.size());
  std::vector<EngineRequest> demt_policy_requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    demt_requests[i].instance = &instances[i];
    demt_requests[i].algorithm = EngineAlgorithm::Demt;
    demt_requests[i].demt = demt_options;
    flat_requests[i] = demt_requests[i];
    flat_requests[i].algorithm = EngineAlgorithm::FlatList;
    demt_policy_requests[i].instance = &instances[i];
    demt_policy_requests[i].policy = &demt_policy;
  }

  std::cout << strfmt(
      "# serve_throughput: %d requests (n=%d, m=%d, %d shuffles), %d reps, "
      "max_batch=%d, flush=%.2fms, capacity=%d, pool=%zu workers\n\n",
      num_requests, n, m, shuffles, reps, max_batch, flush_ms, capacity,
      shared_thread_pool().size());

  bool all_ok = true;

  // --- determinism: async vs synchronous engine, schedules kept, via
  // --- both the deprecated enum spelling and the policy-object API (the
  // --- policy run also spreads submissions across the priority lanes:
  // --- lanes must never change a result, only its timing) ------------
  struct DeterminismRow {
    int shards = 0;
    bool identical = true;        ///< enum adapter path
    bool policy_identical = true; ///< SchedulingPolicy path, lanes active
  };
  std::vector<DeterminismRow> determinism_rows;
  {
    SchedulerEngine sync(EngineOptions{1, true});
    std::vector<EngineResult> reference;
    sync.schedule_batch(demt_requests, reference);
    std::cout << strfmt("%-10s %10s %18s\n", "shards", "identical",
                        "policy+lanes");
    for (int shards : shard_settings) {
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = std::max(capacity, num_requests);
      options.keep_schedules = true;
      DeterminismRow row;
      row.shards = shards;
      {
        AsyncScheduler async(options);
        std::vector<Ticket> tickets;
        tickets.reserve(demt_requests.size());
        for (const auto& request : demt_requests) {
          tickets.push_back(async.submit(request));
        }
        async.drain();
        EngineResult result;
        for (std::size_t i = 0; i < tickets.size(); ++i) {
          row.identical &= async.take(tickets[i], result) &&
                           results_identical(result, reference[i]);
        }
      }
      {
        options.admission = &lanes_admission;
        AsyncScheduler async(options);
        std::vector<Ticket> tickets;
        tickets.reserve(demt_policy_requests.size());
        for (std::size_t i = 0; i < demt_policy_requests.size(); ++i) {
          tickets.push_back(async.submit(demt_policy_requests[i],
                                         static_cast<int>(i) % num_lanes));
        }
        async.drain();
        EngineResult result;
        for (std::size_t i = 0; i < tickets.size(); ++i) {
          row.policy_identical &= async.take(tickets[i], result) &&
                                  results_identical(result, reference[i]);
        }
      }
      determinism_rows.push_back(row);
      all_ok &= row.identical && row.policy_identical;
      std::cout << strfmt("%-10d %10s %18s\n", shards,
                          row.identical ? "yes" : "NO",
                          row.policy_identical ? "yes" : "NO");
    }
  }

  // --- throughput + latency sweep -------------------------------------
  struct ThroughputRow {
    int shards = 0;
    std::string algorithm;
    double per_s = 0.0;
    Percentiles latency;
  };
  std::vector<ThroughputRow> throughput_rows;
  std::cout << strfmt("\n%-10s %-10s %14s %10s %10s %10s %10s\n", "shards",
                      "algorithm", "requests/s", "p50 ms", "p90 ms",
                      "p99 ms", "max ms");
  for (int shards : shard_settings) {
    for (const bool flat : {true, false}) {
      const auto& requests = flat ? flat_requests : demt_requests;
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = std::max(capacity, num_requests);
      options.keep_schedules = false;
      AsyncScheduler async(options);
      std::vector<Ticket> tickets;
      tickets.reserve(requests.size());
      std::vector<double> latencies;
      latencies.reserve(requests.size() * static_cast<std::size_t>(reps));
      EngineResult result;
      // Warm-up round (not measured).
      for (const auto& request : requests) {
        tickets.push_back(async.submit(request));
      }
      async.drain();
      for (const Ticket& ticket : tickets) (void)async.take(ticket, result);
      WallTimer timer;
      for (int r = 0; r < reps; ++r) {
        tickets.clear();
        for (const auto& request : requests) {
          tickets.push_back(async.submit(request));
        }
        async.drain();
        for (const Ticket& ticket : tickets) {
          latencies.push_back(async.latency_seconds(ticket) * 1e3);
          (void)async.take(ticket, result);
        }
      }
      const double elapsed = timer.seconds();
      ThroughputRow row;
      row.shards = shards;
      row.algorithm = flat ? "flatlist" : "demt";
      row.per_s =
          static_cast<double>(requests.size()) * reps / elapsed;
      row.latency = percentiles(latencies);
      throughput_rows.push_back(row);
      std::cout << strfmt("%-10d %-10s %14.1f %10.3f %10.3f %10.3f %10.3f\n",
                          row.shards, row.algorithm.c_str(), row.per_s,
                          row.latency.p50, row.latency.p90, row.latency.p99,
                          row.latency.max);
    }
  }

  // --- admission control under overload -------------------------------
  struct AdmissionReport {
    int capacity = 0;
    int offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  AdmissionReport admission;
  {
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = 1e6;  // hold everything: pure admission test
    options.queue_capacity = std::max(8, num_requests / 4);
    AsyncScheduler async(options);
    std::vector<Ticket> tickets;
    tickets.reserve(flat_requests.size());
    for (const auto& request : flat_requests) {
      tickets.push_back(async.submit(request));
    }
    async.drain();
    EngineResult result;
    for (const Ticket& ticket : tickets) {
      if (ticket.accepted()) (void)async.take(ticket, result);
    }
    const AsyncStats stats = async.stats();
    admission.capacity = options.queue_capacity;
    admission.offered = num_requests;
    admission.accepted = stats.submitted;
    admission.rejected = stats.rejected;
    std::cout << strfmt(
        "\n# admission: capacity %d, offered %d -> accepted %llu, "
        "rejected %llu (completed %llu)\n",
        admission.capacity, admission.offered,
        static_cast<unsigned long long>(admission.accepted),
        static_cast<unsigned long long>(admission.rejected),
        static_cast<unsigned long long>(stats.completed));
  }

  // --- priority lanes: per-lane latency + weighted-admission report ----
  struct LaneLatencyRow {
    std::string name;
    int weight = 1;
    std::uint64_t served = 0;
    Percentiles latency;
  };
  std::vector<LaneLatencyRow> lane_rows;
  struct LaneAdmissionRow {
    std::string name;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  int per_lane_capacity = 0;
  std::vector<LaneAdmissionRow> lane_admission_rows;
  {
    // Latency per lane under weighted-fair service: one shard, every lane
    // loaded round-robin with the FlatList mix, reps rounds.
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = flush_ms;
    options.queue_capacity = std::max(capacity, num_requests);
    options.keep_schedules = false;
    options.admission = &lanes_admission;
    AsyncScheduler async(options);
    std::vector<Ticket> tickets;
    std::vector<std::vector<double>> lane_latencies(
        static_cast<std::size_t>(num_lanes));
    EngineResult result;
    for (int r = 0; r < reps + 1; ++r) {
      tickets.clear();
      for (std::size_t i = 0; i < flat_requests.size(); ++i) {
        tickets.push_back(async.submit(flat_requests[i],
                                       static_cast<int>(i) % num_lanes));
      }
      async.drain();
      for (const Ticket& ticket : tickets) {
        if (r > 0) {  // round 0 is warm-up
          lane_latencies[ticket.lane].push_back(
              async.latency_seconds(ticket) * 1e3);
        }
        (void)async.take(ticket, result);
      }
    }
    const AsyncStats stats = async.stats();
    std::cout << strfmt("\n%-10s %8s %10s %10s %10s %10s %10s\n", "lane",
                        "weight", "served", "p50 ms", "p90 ms", "p99 ms",
                        "max ms");
    for (int l = 0; l < num_lanes; ++l) {
      LaneLatencyRow row;
      row.name = lane_specs[static_cast<std::size_t>(l)].name;
      row.weight = lane_specs[static_cast<std::size_t>(l)].weight;
      row.served = stats.lanes[static_cast<std::size_t>(l)].completed;
      row.latency = percentiles(lane_latencies[static_cast<std::size_t>(l)]);
      lane_rows.push_back(row);
      std::cout << strfmt("%-10s %8d %10llu %10.3f %10.3f %10.3f %10.3f\n",
                          row.name.c_str(), row.weight,
                          static_cast<unsigned long long>(row.served),
                          row.latency.p50, row.latency.p90, row.latency.p99,
                          row.latency.max);
    }
  }
  {
    // Weighted admission under overload: every lane gets the same tight
    // per-lane bound and the same offered load; rejections land per lane.
    per_lane_capacity = std::max(4, num_requests / (4 * num_lanes));
    std::vector<LaneSpec> bounded = lane_specs;
    for (auto& spec : bounded) spec.queue_capacity = per_lane_capacity;
    const WeightedLanesAdmission bounded_admission(bounded);
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = 1e6;  // hold everything: pure admission test
    options.queue_capacity = std::max(capacity, num_requests);
    options.admission = &bounded_admission;
    AsyncScheduler async(options);
    std::vector<Ticket> tickets;
    for (std::size_t i = 0; i < flat_requests.size(); ++i) {
      tickets.push_back(async.submit(flat_requests[i],
                                     static_cast<int>(i) % num_lanes));
    }
    async.drain();
    EngineResult result;
    for (const Ticket& ticket : tickets) {
      if (ticket.accepted()) (void)async.take(ticket, result);
    }
    const AsyncStats stats = async.stats();
    std::cout << strfmt(
        "\n# weighted admission: per-lane capacity %d, offered %d across %d "
        "lanes\n",
        per_lane_capacity, num_requests, num_lanes);
    for (int l = 0; l < num_lanes; ++l) {
      LaneAdmissionRow row;
      row.name = bounded[static_cast<std::size_t>(l)].name;
      row.accepted = stats.lanes[static_cast<std::size_t>(l)].submitted;
      row.rejected = stats.lanes[static_cast<std::size_t>(l)].rejected;
      lane_admission_rows.push_back(row);
      std::cout << strfmt(
          "#   %-8s accepted %llu, rejected %llu\n", row.name.c_str(),
          static_cast<unsigned long long>(row.accepted),
          static_cast<unsigned long long>(row.rejected));
    }
  }

  // --- chaos smoke: seeded faults, retry, failover, stream migration ---
  // A deterministic FaultPlan over one-shot traffic plus two pinned
  // streams. The gate is loss accounting: every accepted ticket reaches a
  // terminal state and is taken exactly once, and every stream replays
  // the off-line simulator bit-identically even when its shard dies
  // mid-tape and the session migrates via checkpoint. The watchdog stays
  // off here on purpose — watchdog failover sheds queued stream feeds (a
  // stuck strand owns the engine session), which is a documented
  // degradation, not the loss-free death-failover path this gate pins.
  struct FaultRecoveryReport {
    std::uint64_t chaos_seed = 0;
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t retried = 0;
    std::uint64_t failed_over = 0;
    std::uint64_t shards_failed = 0;
    std::uint64_t streams_migrated = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t lost = 0;
    std::uint64_t duplicated = 0;
    bool streams_identical = true;
  };
  FaultRecoveryReport chaos;
  {
    chaos.chaos_seed = static_cast<std::uint64_t>(
        args.get_int("faults", static_cast<std::int64_t>(seed)));
    constexpr int kChaosShards = 4;
    constexpr int kChaosStreams = 2;
    const std::size_t chunk = 4;

    // Per-stream tapes (reps chunks each) and their off-line references.
    const OfflineScheduler offline = [](const Instance& batch) {
      ListPassWorkspace list;
      FlatPlacements flat;
      flat_list_schedule(batch, list, flat);
      return flat.to_schedule(batch.procs());
    };
    std::vector<std::vector<OnlineJob>> tapes(kChaosStreams);
    std::vector<OnlineResult> stream_reference;
    Rng stream_rng(chaos.chaos_seed ^ 0x53545245414DULL);  // "STREAM"
    for (int s = 0; s < kChaosStreams; ++s) {
      double release = 0.0;
      for (std::size_t j = 0; j < chunk * static_cast<std::size_t>(reps);
           ++j) {
        Instance tmp =
            generate_instance(WorkloadFamily::Mixed, 1, m, stream_rng);
        tapes[static_cast<std::size_t>(s)].push_back(
            OnlineJob{tmp.task(0), release});
        release += stream_rng.uniform(0.05, 1.0);
      }
      stream_reference.push_back(online_batch_schedule_reference(
          m, tapes[static_cast<std::size_t>(s)], offline));
    }

    AsyncOptions options;
    options.shards = kChaosShards;
    options.max_batch = max_batch;
    options.flush_after_ms = flush_ms;
    options.queue_capacity = std::max(capacity, num_requests);
    options.keep_schedules = false;
    options.retry = RetryPolicy{4, 0.1};
    options.faults.seed = chaos.chaos_seed;
    options.faults.throw_rate = 0.10;
    options.faults.stall_rate = 0.03;
    options.faults.death_rate = 0.02;
    options.faults.stall_ms = 2.0;
    // Scripted floor under the random rates: at least one throw, one
    // stall, and one death fire every run, whatever the seed draws.
    options.faults.points.push_back(
        FaultPoint{FaultKind::EngineThrow, -1, 0, 0.0});
    options.faults.points.push_back(
        FaultPoint{FaultKind::SlowBatch, 2, 1, 2.0});
    options.faults.points.push_back(
        FaultPoint{FaultKind::ShardDeath, 1, 2, 0.0});
    AsyncScheduler async(options);

    std::vector<StreamTicket> chaos_streams;
    std::vector<std::vector<double>> completions(kChaosStreams);
    std::vector<int> next_job(kChaosStreams, 0);
    for (int s = 0; s < kChaosStreams; ++s) {
      StreamOptions stream_options;
      stream_options.m = m;
      chaos_streams.push_back(async.open_stream(stream_options));
      if (!chaos_streams.back().accepted()) chaos.streams_identical = false;
    }
    StreamDelivery delivery;
    EngineResult result;
    std::vector<Ticket> tickets;
    for (int r = 0; r < reps; ++r) {
      // One feed per stream per round (waited, so per-stream ordering and
      // the loss accounting stay exact), then a full one-shot round.
      for (int s = 0; s < kChaosStreams; ++s) {
        const auto& jobs = tapes[static_cast<std::size_t>(s)];
        const std::size_t first = static_cast<std::size_t>(r) * chunk;
        const std::size_t last = std::min(jobs.size(), first + chunk);
        std::vector<StreamArrival> arrivals;
        for (std::size_t j = first; j < last; ++j) {
          arrivals.push_back(moldable_arrival(jobs[j].task, jobs[j].release));
        }
        const double watermark =
            last < jobs.size() ? jobs[last].release : jobs.back().release;
        const Ticket feed =
            async.submit_stream(chaos_streams[static_cast<std::size_t>(s)],
                                arrivals.data(), arrivals.size(), watermark);
        if (!feed.accepted() || async.wait(feed) != TicketStatus::Done ||
            !async.take_stream(feed, delivery)) {
          ++chaos.lost;
          continue;
        }
        if (delivery.first_job != next_job[static_cast<std::size_t>(s)]) {
          chaos.streams_identical = false;
        }
        next_job[static_cast<std::size_t>(s)] += delivery.num_jobs();
        auto& got = completions[static_cast<std::size_t>(s)];
        got.insert(got.end(), delivery.completion.begin(),
                   delivery.completion.end());
      }
      tickets.clear();
      for (const auto& request : flat_requests) {
        const Ticket ticket = async.submit(request);
        if (ticket.accepted()) tickets.push_back(ticket);
      }
      for (const Ticket& ticket : tickets) {
        const TicketStatus status = async.wait(ticket, 30000.0);
        if (status == TicketStatus::Done) {
          ++chaos.done;
        } else if (status == TicketStatus::Failed) {
          ++chaos.failed;  // retry exhausted: terminal and accounted, not lost
        } else {
          ++chaos.lost;
          continue;
        }
        if (!async.take(ticket, result)) ++chaos.lost;
        if (async.take(ticket, result) ||
            async.poll(ticket) != TicketStatus::Invalid) {
          ++chaos.duplicated;
        }
      }
    }
    for (int s = 0; s < kChaosStreams; ++s) {
      const Ticket close =
          async.close_stream(chaos_streams[static_cast<std::size_t>(s)]);
      if (!close.accepted() || async.wait(close) != TicketStatus::Done ||
          !async.take_stream(close, delivery)) {
        ++chaos.lost;
        continue;
      }
      next_job[static_cast<std::size_t>(s)] += delivery.num_jobs();
      auto& got = completions[static_cast<std::size_t>(s)];
      got.insert(got.end(), delivery.completion.begin(),
                 delivery.completion.end());
      const OnlineResult& ref = stream_reference[static_cast<std::size_t>(s)];
      if (next_job[static_cast<std::size_t>(s)] !=
              static_cast<int>(tapes[static_cast<std::size_t>(s)].size()) ||
          got != ref.completion || delivery.cmax != ref.cmax ||
          delivery.weighted_completion_sum != ref.weighted_completion_sum) {
        chaos.streams_identical = false;
      }
    }
    const AsyncStats stats = async.stats();
    chaos.submitted = stats.submitted;
    chaos.retried = stats.retried;
    chaos.failed_over = stats.failed_over;
    chaos.shards_failed = stats.shards_failed;
    chaos.streams_migrated = stats.streams_migrated;
    chaos.faults_injected = stats.faults_injected;
    const bool chaos_ok =
        chaos.lost == 0 && chaos.duplicated == 0 && chaos.streams_identical;
    all_ok &= chaos_ok;
    std::cout << strfmt(
        "\n# chaos smoke (seed %llu, %d shards): %llu faults injected, "
        "%llu shard deaths, %llu streams migrated, %llu retried, "
        "%llu failed over\n"
        "#   one-shots: %llu done, %llu failed | lost %llu, duplicated "
        "%llu | streams bit-identical: %s -> %s\n",
        static_cast<unsigned long long>(chaos.chaos_seed), kChaosShards,
        static_cast<unsigned long long>(chaos.faults_injected),
        static_cast<unsigned long long>(chaos.shards_failed),
        static_cast<unsigned long long>(chaos.streams_migrated),
        static_cast<unsigned long long>(chaos.retried),
        static_cast<unsigned long long>(chaos.failed_over),
        static_cast<unsigned long long>(chaos.done),
        static_cast<unsigned long long>(chaos.failed),
        static_cast<unsigned long long>(chaos.lost),
        static_cast<unsigned long long>(chaos.duplicated),
        chaos.streams_identical ? "yes" : "NO", chaos_ok ? "ok" : "FAIL");
  }

  // --- steady-state allocations: metrics-only FlatList path with the
  // --- priority lanes active (the acceptance gate: lanes must not cost
  // --- an allocation) -------------------------------------------------
  double allocs_per_request = -1.0;  // -1 = not measured (sanitizer build)
  if (kAllocHookEnabled) {
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = flush_ms;
    options.queue_capacity = std::max(capacity, num_requests);
    options.keep_schedules = false;
    options.admission = &lanes_admission;
    AsyncScheduler async(options);
    std::vector<Ticket> tickets;
    tickets.reserve(flat_requests.size());
    EngineResult result;
    const auto round = [&] {
      tickets.clear();
      for (std::size_t i = 0; i < flat_requests.size(); ++i) {
        tickets.push_back(async.submit(flat_requests[i],
                                       static_cast<int>(i) % num_lanes));
      }
      for (const Ticket& ticket : tickets) {
        (void)async.wait(ticket);
        (void)async.take(ticket, result);
      }
    };
    round();  // warm-up: grows slot buffers, assembly vectors, workspaces
    round();
    const std::uint64_t before = g_alloc_count.load();
    for (int r = 0; r < reps; ++r) round();
    allocs_per_request =
        static_cast<double>(g_alloc_count.load() - before) /
        static_cast<double>(flat_requests.size() * static_cast<std::size_t>(reps));
    std::cout << strfmt(
        "\n# steady-state allocations (1 shard, metrics-only flatlist, "
        "%d lanes): %.2f allocs/request\n",
        num_lanes, allocs_per_request);
    if (allocs_per_request != 0.0) {
      std::cerr << "ERROR: steady-state serving path allocated\n";
      all_ok = false;
    }
  } else {
    std::cout << "\n# steady-state allocations: not measured "
                 "(operator-new hook disabled under AddressSanitizer)\n";
  }

  // --- decision cache under a Zipf recurring-shape mix (--zipf) --------
  // A fixed shape catalog served under Zipf(s = 1.1) popularity — the
  // recurring-workload regime the decision cache targets. Three exit
  // gates: (1) cache-on serving is bit-identical to the cache-off
  // synchronous reference for every shard count; (2) steady-state hit
  // rate >= 0.80; (3) the pure-hit DEMT metrics-only path performs 0.00
  // allocs/request (plain Release builds only; -1 under ASan).
  struct ZipfReport {
    bool ran = false;
    int shapes = 0;
    int requests = 0;
    double exponent = 1.1;
    std::vector<std::pair<int, bool>> identical;  ///< per shard count
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_rate = 0.0;
    double off_per_s = 0.0;
    double on_per_s = 0.0;
    double allocs_per_request_on_hit = -1.0;
  };
  ZipfReport zipf;
  if (args.has("zipf")) {
    zipf.ran = true;
    zipf.shapes = args.has("quick") ? 16 : 32;
    zipf.requests = zipf.shapes * 8;

    // Shape catalog + Zipf(s) inverse-CDF request mix, seeded.
    Rng zipf_rng(seed ^ 0x5A495046ULL);  // "ZIPF"
    std::vector<Instance> catalog;
    catalog.reserve(static_cast<std::size_t>(zipf.shapes));
    for (int i = 0; i < zipf.shapes; ++i) {
      catalog.push_back(generate_instance(
          families[static_cast<std::size_t>(i) % families.size()], n, m,
          zipf_rng));
    }
    std::vector<double> cdf(static_cast<std::size_t>(zipf.shapes));
    double mass = 0.0;
    for (int k = 0; k < zipf.shapes; ++k) {
      mass += 1.0 / std::pow(static_cast<double>(k + 1), zipf.exponent);
      cdf[static_cast<std::size_t>(k)] = mass;
    }
    std::vector<EngineRequest> zipf_requests(
        static_cast<std::size_t>(zipf.requests));
    for (auto& request : zipf_requests) {
      const double u = zipf_rng.uniform(0.0, mass);
      const auto shape = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      request.instance = &catalog[std::min(
          shape, static_cast<std::size_t>(zipf.shapes - 1))];
      request.policy = &demt_policy;
    }

    // Gate 1: cache-on async serving, schedules kept, vs the cache-off
    // synchronous reference — bit-identical for every shard count.
    SchedulerEngine sync(EngineOptions{1, true});
    std::vector<EngineResult> reference;
    sync.schedule_batch(zipf_requests, reference);
    bool zipf_identical = true;
    for (int shards : shard_settings) {
      DecisionCache cache(DecisionCacheOptions{
          static_cast<std::size_t>(zipf.shapes) * 8, 4, 32});
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = std::max(capacity, zipf.requests);
      options.keep_schedules = true;
      options.cache = &cache;
      AsyncScheduler async(options);
      std::vector<Ticket> tickets;
      tickets.reserve(zipf_requests.size());
      for (const auto& request : zipf_requests) {
        tickets.push_back(async.submit(request));
      }
      async.drain();
      EngineResult result;
      bool identical = true;
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        identical &= async.take(tickets[i], result) &&
                     results_identical(result, reference[i]);
      }
      zipf.identical.emplace_back(shards, identical);
      zipf_identical &= identical;
    }

    // Gates 2 + 3 and the throughput delta: one shard, metrics-only,
    // timed reps rounds cache-off then cache-on (fresh cache, one
    // warm-up round each), then pure-hit rounds under the alloc hook.
    DecisionCache cache(DecisionCacheOptions{
        static_cast<std::size_t>(zipf.shapes) * 8, 4, 32});
    for (const bool cached : {false, true}) {
      AsyncOptions options;
      options.shards = 1;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = std::max(capacity, zipf.requests);
      options.keep_schedules = false;
      if (cached) options.cache = &cache;
      AsyncScheduler async(options);
      std::vector<Ticket> tickets;
      tickets.reserve(zipf_requests.size());
      EngineResult result;
      const auto round = [&] {
        tickets.clear();
        for (const auto& request : zipf_requests) {
          tickets.push_back(async.submit(request));
        }
        async.drain();
        for (const Ticket& ticket : tickets) (void)async.take(ticket, result);
      };
      round();  // warm-up (cold misses fill the cache here)
      WallTimer timer;
      for (int r = 0; r < reps; ++r) round();
      const double elapsed = timer.seconds();
      const double per_s = static_cast<double>(zipf_requests.size()) * reps /
                           elapsed;
      if (!cached) {
        zipf.off_per_s = per_s;
        continue;
      }
      zipf.on_per_s = per_s;
      if (kAllocHookEnabled) {
        round();  // settle any remaining warm-up effects
        const std::uint64_t before = g_alloc_count.load();
        for (int r = 0; r < reps; ++r) round();
        zipf.allocs_per_request_on_hit =
            static_cast<double>(g_alloc_count.load() - before) /
            static_cast<double>(zipf_requests.size() *
                                static_cast<std::size_t>(reps));
      }
      const DecisionCacheStats stats = cache.stats();
      zipf.hits = stats.hits;
      zipf.misses = stats.misses;
      zipf.evictions = stats.evictions;
      zipf.hit_rate = stats.hits + stats.misses == 0
                          ? 0.0
                          : static_cast<double>(stats.hits) /
                                static_cast<double>(stats.hits + stats.misses);
    }

    const bool hit_rate_ok = zipf.hit_rate >= 0.80;
    const bool allocs_ok = !kAllocHookEnabled ||
                           zipf.allocs_per_request_on_hit == 0.0;
    std::cout << strfmt(
        "\n# zipf decision cache (s=%.1f, %d shapes, %d requests/round):\n",
        zipf.exponent, zipf.shapes, zipf.requests);
    for (const auto& [shards, identical] : zipf.identical) {
      std::cout << strfmt("#   shards %d: cache-on identical to cache-off: "
                          "%s\n",
                          shards, identical ? "yes" : "NO");
    }
    std::cout << strfmt(
        "#   hit rate %.3f (%llu hits, %llu misses, %llu evictions) -> %s\n"
        "#   demt metrics-only: %.1f req/s cache-off, %.1f req/s cache-on "
        "(%.2fx)\n"
        "#   allocs/request on pure hits: %.2f -> %s\n",
        zipf.hit_rate, static_cast<unsigned long long>(zipf.hits),
        static_cast<unsigned long long>(zipf.misses),
        static_cast<unsigned long long>(zipf.evictions),
        hit_rate_ok ? "ok" : "FAIL", zipf.off_per_s, zipf.on_per_s,
        zipf.off_per_s > 0.0 ? zipf.on_per_s / zipf.off_per_s : 0.0,
        zipf.allocs_per_request_on_hit,
        allocs_ok ? "ok" : "FAIL");
    if (!zipf_identical) {
      std::cerr << "ERROR: cache-on results differ from cache-off\n";
    }
    if (!hit_rate_ok) {
      std::cerr << "ERROR: zipf steady-state hit rate below 0.80\n";
    }
    if (!allocs_ok) {
      std::cerr << "ERROR: decision-cache hit path allocated\n";
    }
    all_ok &= zipf_identical && hit_rate_ok && allocs_ok;
  }

  // --- stream speculation on a sparse-watermark tape (--speculate) -----
  // Every feed carries one DEMT batch of arrivals with the watermark held
  // exactly at the batch's open instant, so the decision becomes final
  // only at the next feed. Speculation decides the batch during the feed
  // that delivered its arrivals; the confirming feed then just replays
  // the staged placements, so the feed-to-decision latency (latency of
  // the feeds that deliver finalised decisions) drops. Exit gates:
  // deliveries bit-identical off vs on, speculation firing for real
  // (decided + committed > 0), and 0.00 allocs/feed at steady state with
  // speculation on.
  struct SpeculationReport {
    bool ran = false;
    int batches = 0;
    int per_batch = 0;
    bool identical = true;
    std::uint64_t decided = 0;
    std::uint64_t committed = 0;
    std::uint64_t rolled_back = 0;
    Percentiles off_ms;  ///< feed-to-decision, speculation off
    Percentiles on_ms;   ///< feed-to-decision, speculation on
    double allocs_per_feed = -1.0;
  };
  SpeculationReport spec;
  if (args.has("speculate")) {
    spec.ran = true;
    spec.batches = args.has("quick") ? 6 : 12;
    spec.per_batch = args.has("quick") ? 48 : 96;

    // The tape: per_batch moldable arrivals at each batch instant, one
    // feed per instant, watermark pinned to the instant itself (sparse).
    struct SpecFeed {
      std::vector<StreamArrival> arrivals;
      double watermark = 0.0;
    };
    Rng spec_rng(seed ^ 0x53504543ULL);  // "SPEC"
    std::vector<SpecFeed> tape(static_cast<std::size_t>(spec.batches));
    for (int b = 0; b < spec.batches; ++b) {
      const double release = 10.0 * b;
      auto& feed = tape[static_cast<std::size_t>(b)];
      feed.watermark = release;
      for (int j = 0; j < spec.per_batch; ++j) {
        Instance tmp = generate_instance(
            families[static_cast<std::size_t>(j) % families.size()], 1, m,
            spec_rng);
        feed.arrivals.push_back(moldable_arrival(tmp.task(0), release));
      }
    }

    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = 0.0;  // dispatch every feed immediately
    options.queue_capacity = 8;    // small slot ring: warm-up visits every slot
    options.max_streams = 4;
    AsyncScheduler async(options);

    // One tape pass: open, feed each instant (waited, so the latency is
    // pure decide time, not queueing), close. Feeds whose delivery holds
    // newly finalised batch jobs are the decision points the client
    // waits on — their latency is what speculation is meant to cut.
    StreamDelivery delivery;
    const auto run_tape = [&](bool speculate,
                              std::vector<StreamDelivery>* deliveries,
                              std::vector<double>* decision_ms) {
      StreamOptions stream_options;
      stream_options.m = m;
      stream_options.offline_algorithm = EngineAlgorithm::Demt;
      stream_options.demt = demt_options;
      stream_options.speculate = speculate;
      const StreamTicket stream = async.open_stream(stream_options);
      if (!stream.accepted()) return false;
      bool ok = true;
      for (const SpecFeed& feed : tape) {
        const Ticket ticket =
            async.submit_stream(stream, feed.arrivals.data(),
                                feed.arrivals.size(), feed.watermark);
        ok &= ticket.accepted() && async.wait(ticket) == TicketStatus::Done;
        const double ms = async.latency_seconds(ticket) * 1e3;  // pre-take
        ok &= async.take_stream(ticket, delivery);
        if (decision_ms != nullptr && delivery.num_jobs() > 0) {
          decision_ms->push_back(ms);
        }
        if (deliveries != nullptr) deliveries->push_back(delivery);
      }
      const Ticket close = async.close_stream(stream);
      ok &= close.accepted() && async.wait(close) == TicketStatus::Done;
      const double close_ms = async.latency_seconds(close) * 1e3;
      ok &= async.take_stream(close, delivery);
      if (decision_ms != nullptr && delivery.num_jobs() > 0) {
        decision_ms->push_back(close_ms);
      }
      if (deliveries != nullptr) deliveries->push_back(delivery);
      return ok;
    };

    // Bit-identity: one pass per mode, every delivery field compared.
    std::vector<StreamDelivery> off_deliveries;
    std::vector<StreamDelivery> on_deliveries;
    spec.identical &= run_tape(false, &off_deliveries, nullptr);
    spec.identical &= run_tape(true, &on_deliveries, nullptr);
    spec.identical &= off_deliveries.size() == on_deliveries.size();
    if (spec.identical) {
      for (std::size_t d = 0; d < off_deliveries.size(); ++d) {
        const StreamDelivery& a = off_deliveries[d];
        const StreamDelivery& b = on_deliveries[d];
        spec.identical &=
            a.first_job == b.first_job &&
            a.placements.start == b.placements.start &&
            a.placements.duration == b.placements.duration &&
            a.placements.proc_begin == b.placements.proc_begin &&
            a.placements.proc_count == b.placements.proc_count &&
            a.placements.proc_ids == b.placements.proc_ids &&
            a.completion == b.completion &&
            a.batch_starts == b.batch_starts &&
            a.cmax == b.cmax &&
            a.weighted_completion_sum == b.weighted_completion_sum &&
            a.weighted_flow_sum == b.weighted_flow_sum &&
            a.num_batches == b.num_batches &&
            a.final_delivery == b.final_delivery;
      }
    }

    // Feed-to-decision latency, reps passes per mode (warm-up pass each).
    std::vector<double> off_ms;
    std::vector<double> on_ms;
    off_ms.reserve(static_cast<std::size_t>(spec.batches * reps));
    on_ms.reserve(static_cast<std::size_t>(spec.batches * reps));
    (void)run_tape(false, nullptr, nullptr);
    for (int r = 0; r < reps; ++r) (void)run_tape(false, nullptr, &off_ms);
    (void)run_tape(true, nullptr, nullptr);
    for (int r = 0; r < reps; ++r) (void)run_tape(true, nullptr, &on_ms);
    spec.off_ms = percentiles(off_ms);
    spec.on_ms = percentiles(on_ms);
    const AsyncStats stats = async.stats();
    spec.decided = stats.spec_decided;
    spec.committed = stats.spec_committed;
    spec.rolled_back = stats.spec_rolled_back;

    // Steady-state allocations with speculation on: after warm-up rounds
    // that cycle every pooled slot and session (same tape size each round,
    // so the staged-record pool, fill scratch and delivery buffers are all
    // sized), further passes must not touch the allocator.
    if (kAllocHookEnabled) {
      for (int r = 0; r < 16; ++r) (void)run_tape(true, nullptr, nullptr);
      const std::uint64_t before = g_alloc_count.load();
      for (int r = 0; r < reps; ++r) (void)run_tape(true, nullptr, nullptr);
      spec.allocs_per_feed =
          static_cast<double>(g_alloc_count.load() - before) /
          static_cast<double>((spec.batches + 1) * reps);
    }

    const bool spec_fired = spec.decided > 0 && spec.committed > 0;
    const bool spec_allocs_ok =
        !kAllocHookEnabled || spec.allocs_per_feed == 0.0;
    std::cout << strfmt(
        "\n# speculation (sparse watermark, %d batches x %d jobs, demt):\n"
        "#   deliveries identical off vs on: %s\n"
        "#   staged %llu, committed %llu, rolled back %llu -> %s\n"
        "#   feed-to-decision p50/p99 ms: off %.3f/%.3f, on %.3f/%.3f\n"
        "#   allocs/feed at steady state (speculate on): %.2f -> %s\n",
        spec.batches, spec.per_batch, spec.identical ? "yes" : "NO",
        static_cast<unsigned long long>(spec.decided),
        static_cast<unsigned long long>(spec.committed),
        static_cast<unsigned long long>(spec.rolled_back),
        spec_fired ? "ok" : "FAIL", spec.off_ms.p50, spec.off_ms.p99,
        spec.on_ms.p50, spec.on_ms.p99, spec.allocs_per_feed,
        spec_allocs_ok ? "ok" : "FAIL");
    if (!spec.identical) {
      std::cerr << "ERROR: speculate-on deliveries differ from "
                   "speculate-off\n";
    }
    if (!spec_fired) {
      std::cerr << "ERROR: speculation never staged/committed a decision "
                   "on the sparse-watermark tape\n";
    }
    if (!spec_allocs_ok) {
      std::cerr << "ERROR: speculative stream serving allocated at steady "
                   "state\n";
    }
    all_ok &= spec.identical && spec_fired && spec_allocs_ok;
  }

  const std::string json_path = args.get_string("json", "BENCH_serve.json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << strfmt(
        "{\n  \"benchmark\": \"serve_throughput\",\n"
        "  \"requests\": %d,\n  \"n\": %d,\n  \"m\": %d,\n  \"reps\": %d,\n"
        "  \"shuffles\": %d,\n  \"max_batch\": %d,\n"
        "  \"flush_after_ms\": %.3f,\n  \"queue_capacity\": %d,\n"
        "  \"pool_workers\": %zu,\n",
        num_requests, n, m, reps, shuffles, max_batch, flush_ms, capacity,
        shared_thread_pool().size());
    out << "  \"lane_weights\": [";
    for (int l = 0; l < num_lanes; ++l) {
      out << strfmt("%d%s", lane_specs[static_cast<std::size_t>(l)].weight,
                    l + 1 < num_lanes ? ", " : "");
    }
    out << "],\n";
    out << "  \"determinism\": [\n";
    for (std::size_t i = 0; i < determinism_rows.size(); ++i) {
      const auto& row = determinism_rows[i];
      out << strfmt(
          "    {\"shards\": %d, \"identical_to_sync\": %s, "
          "\"policy_lanes_identical_to_sync\": %s}%s\n",
          row.shards, row.identical ? "true" : "false",
          row.policy_identical ? "true" : "false",
          i + 1 < determinism_rows.size() ? "," : "");
    }
    out << "  ],\n  \"throughput\": [\n";
    for (std::size_t i = 0; i < throughput_rows.size(); ++i) {
      const auto& row = throughput_rows[i];
      out << strfmt(
          "    {\"shards\": %d, \"algorithm\": \"%s\", "
          "\"requests_per_s\": %.1f, \"latency_ms\": {\"p50\": %.3f, "
          "\"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f}}%s\n",
          row.shards, row.algorithm.c_str(), row.per_s, row.latency.p50,
          row.latency.p90, row.latency.p99, row.latency.max,
          i + 1 < throughput_rows.size() ? "," : "");
    }
    out << strfmt(
        "  ],\n  \"admission\": {\"capacity\": %d, \"offered\": %d, "
        "\"accepted\": %llu, \"rejected\": %llu},\n",
        admission.capacity, admission.offered,
        static_cast<unsigned long long>(admission.accepted),
        static_cast<unsigned long long>(admission.rejected));
    out << "  \"lane_latency\": [\n";
    for (std::size_t l = 0; l < lane_rows.size(); ++l) {
      const auto& row = lane_rows[l];
      out << strfmt(
          "    {\"lane\": \"%s\", \"weight\": %d, \"served\": %llu, "
          "\"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
          "\"max\": %.3f}}%s\n",
          row.name.c_str(), row.weight,
          static_cast<unsigned long long>(row.served), row.latency.p50,
          row.latency.p90, row.latency.p99, row.latency.max,
          l + 1 < lane_rows.size() ? "," : "");
    }
    out << strfmt(
        "  ],\n  \"weighted_admission\": {\"per_lane_capacity\": %d, "
        "\"offered\": %d, \"lanes\": [\n",
        per_lane_capacity, num_requests);
    for (std::size_t l = 0; l < lane_admission_rows.size(); ++l) {
      const auto& row = lane_admission_rows[l];
      out << strfmt(
          "    {\"lane\": \"%s\", \"accepted\": %llu, \"rejected\": "
          "%llu}%s\n",
          row.name.c_str(), static_cast<unsigned long long>(row.accepted),
          static_cast<unsigned long long>(row.rejected),
          l + 1 < lane_admission_rows.size() ? "," : "");
    }
    out << "  ]},\n";
    out << strfmt(
        "  \"fault_recovery\": {\"seed\": %llu, \"submitted\": %llu, "
        "\"done\": %llu, \"failed\": %llu, \"retried\": %llu, "
        "\"failed_over\": %llu, \"shards_failed\": %llu, "
        "\"streams_migrated\": %llu, \"faults_injected\": %llu, "
        "\"lost\": %llu, \"duplicated\": %llu, "
        "\"streams_identical\": %s},\n",
        static_cast<unsigned long long>(chaos.chaos_seed),
        static_cast<unsigned long long>(chaos.submitted),
        static_cast<unsigned long long>(chaos.done),
        static_cast<unsigned long long>(chaos.failed),
        static_cast<unsigned long long>(chaos.retried),
        static_cast<unsigned long long>(chaos.failed_over),
        static_cast<unsigned long long>(chaos.shards_failed),
        static_cast<unsigned long long>(chaos.streams_migrated),
        static_cast<unsigned long long>(chaos.faults_injected),
        static_cast<unsigned long long>(chaos.lost),
        static_cast<unsigned long long>(chaos.duplicated),
        chaos.streams_identical ? "true" : "false");
    if (zipf.ran) {
      out << strfmt(
          "  \"zipf_cache\": {\"exponent\": %.1f, \"shapes\": %d, "
          "\"requests\": %d,\n    \"identical\": [\n",
          zipf.exponent, zipf.shapes, zipf.requests);
      for (std::size_t i = 0; i < zipf.identical.size(); ++i) {
        out << strfmt(
            "      {\"shards\": %d, \"identical_to_uncached\": %s}%s\n",
            zipf.identical[i].first,
            zipf.identical[i].second ? "true" : "false",
            i + 1 < zipf.identical.size() ? "," : "");
      }
      out << strfmt(
          "    ],\n    \"hits\": %llu, \"misses\": %llu, "
          "\"evictions\": %llu, \"hit_rate\": %.3f,\n"
          "    \"cache_off_requests_per_s\": %.1f, "
          "\"cache_on_requests_per_s\": %.1f,\n"
          "    \"allocs_per_request_on_hit\": %.2f},\n",
          static_cast<unsigned long long>(zipf.hits),
          static_cast<unsigned long long>(zipf.misses),
          static_cast<unsigned long long>(zipf.evictions), zipf.hit_rate,
          zipf.off_per_s, zipf.on_per_s, zipf.allocs_per_request_on_hit);
    }
    if (spec.ran) {
      out << strfmt(
          "  \"speculation\": {\"batches\": %d, \"per_batch\": %d, "
          "\"identical\": %s,\n"
          "    \"decided\": %llu, \"committed\": %llu, "
          "\"rolled_back\": %llu,\n"
          "    \"feed_to_decision_ms_off\": {\"p50\": %.3f, \"p90\": %.3f, "
          "\"p99\": %.3f, \"max\": %.3f},\n"
          "    \"feed_to_decision_ms_on\": {\"p50\": %.3f, \"p90\": %.3f, "
          "\"p99\": %.3f, \"max\": %.3f},\n"
          "    \"allocs_per_feed\": %.2f},\n",
          spec.batches, spec.per_batch, spec.identical ? "true" : "false",
          static_cast<unsigned long long>(spec.decided),
          static_cast<unsigned long long>(spec.committed),
          static_cast<unsigned long long>(spec.rolled_back), spec.off_ms.p50,
          spec.off_ms.p90, spec.off_ms.p99, spec.off_ms.max, spec.on_ms.p50,
          spec.on_ms.p90, spec.on_ms.p99, spec.on_ms.max,
          spec.allocs_per_feed);
    }
    out << strfmt(
        "  \"allocs\": [\n    {\"path\": \"serve_flatlist_metrics_only\", "
        "\"lanes_active\": %d, \"allocs_per_request\": %.2f}\n  ]\n}\n",
        num_lanes, allocs_per_request);
    std::cout << "# json written to " << json_path << "\n";
  }

  if (!all_ok) {
    std::cerr << "ERROR: serve_throughput contract violated (see above)\n";
    return 1;
  }
  return 0;
}
