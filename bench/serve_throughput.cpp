/// Async serving bench for the submit/poll layer: verifies the async path
/// is bit-identical to the synchronous SchedulerEngine for shard counts
/// {1, 2, 4}, sweeps throughput and submit-to-done latency percentiles
/// over the shard counts, exercises admission control, and counts
/// steady-state heap allocations per request on the metrics-only FlatList
/// path with a global operator-new hook (must be 0.00; the process exits
/// non-zero otherwise, same as on a determinism failure).
///
/// Run `serve_throughput --help` for flags; all BENCH_*.json schemas are
/// documented centrally in docs/BENCHMARKS.md.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "engine/engine.hpp"
#include "serve/async_scheduler.hpp"
#include "util/cli.hpp"
#include "util/strfmt.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

// Allocation counting uses the shared operator-new hook in
// alloc_hook.hpp, counting every heap allocation in the process (all
// threads — shard strands and the flusher included, which is the point:
// the whole serving cycle must be clean). Under AddressSanitizer the
// hook is compiled out; the sanitized CI job still gates determinism +
// admission while the allocation contract is enforced by the plain
// Release build (reported as -1 here).

namespace {

using namespace moldsched;

constexpr const char* kHelp = R"(serve_throughput -- async submit/poll serving bench

Serves a fixed request set through the sharded AsyncScheduler and compares
against the synchronous SchedulerEngine path.

Flags
  --requests N      requests per round                         [96]
  --n N             tasks per instance                         [60]
  --m N             processors per instance                    [32]
  --reps N          timed rounds per shard setting             [5]
  --shards a,b,c    shard counts to sweep                      [1,2,4]
  --max-batch N     coalescing batch bound                     [16]
  --flush-ms X      deadline flush (ms; 0 = every submit)      [0.5]
  --capacity N      admission bound (in-flight tickets)        [4096]
  --shuffles N      DEMT shuffle candidates per request        [8]
  --seed S          base RNG seed                              [20040627]
  --quick           small preset (24 requests, 2 reps)
  --json PATH       JSON report path ("" disables)             [BENCH_serve.json]
  --help            this text

The BENCH_serve.json schema (and every other BENCH_*.json schema) is
documented in docs/BENCHMARKS.md; the serving architecture and its
determinism/allocation contracts in docs/SERVING.md.

Exit status: non-zero when any async result differs from the synchronous
reference, or when the steady-state metrics-only FlatList path allocates
(allocation counting is compiled out under AddressSanitizer and reported
as -1: sanitized builds gate determinism and admission only).
)";

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const auto last = samples.size() - 1;
    const auto index = static_cast<std::size_t>(q * static_cast<double>(last));
    return samples[std::min(index, last)];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

bool results_identical(const EngineResult& a, const EngineResult& b) {
  if (a.cmax != b.cmax ||
      a.weighted_completion_sum != b.weighted_completion_sum ||
      a.has_schedule != b.has_schedule) {
    return false;
  }
  if (!a.has_schedule) return true;
  const Schedule& sa = a.schedule;
  const Schedule& sb = b.schedule;
  if (sa.num_tasks() != sb.num_tasks()) return false;
  for (int t = 0; t < sa.num_tasks(); ++t) {
    const Placement& pa = sa.placement(t);
    const Placement& pb = sb.placement(t);
    if (pa.start != pb.start || pa.duration != pb.duration ||
        pa.procs != pb.procs) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout << kHelp;
    return 0;
  }
  int num_requests = static_cast<int>(args.get_int("requests", 96));
  const int n = static_cast<int>(args.get_int("n", 60));
  const int m = static_cast<int>(args.get_int("m", 32));
  int reps = static_cast<int>(args.get_int("reps", 5));
  if (args.has("quick")) {
    num_requests = 24;
    reps = 2;
  }
  const std::vector<int> shard_settings = args.get_int_list("shards", {1, 2, 4});
  const int max_batch = static_cast<int>(args.get_int("max-batch", 16));
  const double flush_ms = args.get_double("flush-ms", 0.5);
  const int capacity = static_cast<int>(args.get_int("capacity", 4096));
  const int shuffles = static_cast<int>(args.get_int("shuffles", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  DemtOptions demt_options;
  demt_options.shuffles = shuffles;
  std::vector<EngineRequest> demt_requests(instances.size());
  std::vector<EngineRequest> flat_requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    demt_requests[i].instance = &instances[i];
    demt_requests[i].algorithm = EngineAlgorithm::Demt;
    demt_requests[i].demt = demt_options;
    flat_requests[i] = demt_requests[i];
    flat_requests[i].algorithm = EngineAlgorithm::FlatList;
  }

  std::cout << strfmt(
      "# serve_throughput: %d requests (n=%d, m=%d, %d shuffles), %d reps, "
      "max_batch=%d, flush=%.2fms, capacity=%d, pool=%zu workers\n\n",
      num_requests, n, m, shuffles, reps, max_batch, flush_ms, capacity,
      shared_thread_pool().size());

  bool all_ok = true;

  // --- determinism: async vs synchronous engine, schedules kept -------
  struct DeterminismRow {
    int shards = 0;
    bool identical = true;
  };
  std::vector<DeterminismRow> determinism_rows;
  {
    SchedulerEngine sync(EngineOptions{1, true});
    std::vector<EngineResult> reference;
    sync.schedule_batch(demt_requests, reference);
    std::cout << strfmt("%-10s %10s\n", "shards", "identical");
    for (int shards : shard_settings) {
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = std::max(capacity, num_requests);
      options.keep_schedules = true;
      AsyncScheduler async(options);
      std::vector<Ticket> tickets;
      tickets.reserve(demt_requests.size());
      for (const auto& request : demt_requests) {
        tickets.push_back(async.submit(request));
      }
      async.drain();
      bool identical = true;
      EngineResult result;
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        identical &= async.take(tickets[i], result) &&
                     results_identical(result, reference[i]);
      }
      determinism_rows.push_back(DeterminismRow{shards, identical});
      all_ok &= identical;
      std::cout << strfmt("%-10d %10s\n", shards, identical ? "yes" : "NO");
    }
  }

  // --- throughput + latency sweep -------------------------------------
  struct ThroughputRow {
    int shards = 0;
    std::string algorithm;
    double per_s = 0.0;
    Percentiles latency;
  };
  std::vector<ThroughputRow> throughput_rows;
  std::cout << strfmt("\n%-10s %-10s %14s %10s %10s %10s %10s\n", "shards",
                      "algorithm", "requests/s", "p50 ms", "p90 ms",
                      "p99 ms", "max ms");
  for (int shards : shard_settings) {
    for (const bool flat : {true, false}) {
      const auto& requests = flat ? flat_requests : demt_requests;
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = std::max(capacity, num_requests);
      options.keep_schedules = false;
      AsyncScheduler async(options);
      std::vector<Ticket> tickets;
      tickets.reserve(requests.size());
      std::vector<double> latencies;
      latencies.reserve(requests.size() * static_cast<std::size_t>(reps));
      EngineResult result;
      // Warm-up round (not measured).
      for (const auto& request : requests) {
        tickets.push_back(async.submit(request));
      }
      async.drain();
      for (const Ticket& ticket : tickets) (void)async.take(ticket, result);
      WallTimer timer;
      for (int r = 0; r < reps; ++r) {
        tickets.clear();
        for (const auto& request : requests) {
          tickets.push_back(async.submit(request));
        }
        async.drain();
        for (const Ticket& ticket : tickets) {
          latencies.push_back(async.latency_seconds(ticket) * 1e3);
          (void)async.take(ticket, result);
        }
      }
      const double elapsed = timer.seconds();
      ThroughputRow row;
      row.shards = shards;
      row.algorithm = flat ? "flatlist" : "demt";
      row.per_s =
          static_cast<double>(requests.size()) * reps / elapsed;
      row.latency = percentiles(latencies);
      throughput_rows.push_back(row);
      std::cout << strfmt("%-10d %-10s %14.1f %10.3f %10.3f %10.3f %10.3f\n",
                          row.shards, row.algorithm.c_str(), row.per_s,
                          row.latency.p50, row.latency.p90, row.latency.p99,
                          row.latency.max);
    }
  }

  // --- admission control under overload -------------------------------
  struct AdmissionReport {
    int capacity = 0;
    int offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  AdmissionReport admission;
  {
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = 1e6;  // hold everything: pure admission test
    options.queue_capacity = std::max(8, num_requests / 4);
    AsyncScheduler async(options);
    std::vector<Ticket> tickets;
    tickets.reserve(flat_requests.size());
    for (const auto& request : flat_requests) {
      tickets.push_back(async.submit(request));
    }
    async.drain();
    EngineResult result;
    for (const Ticket& ticket : tickets) {
      if (ticket.accepted()) (void)async.take(ticket, result);
    }
    const AsyncStats stats = async.stats();
    admission.capacity = options.queue_capacity;
    admission.offered = num_requests;
    admission.accepted = stats.submitted;
    admission.rejected = stats.rejected;
    std::cout << strfmt(
        "\n# admission: capacity %d, offered %d -> accepted %llu, "
        "rejected %llu (completed %llu)\n",
        admission.capacity, admission.offered,
        static_cast<unsigned long long>(admission.accepted),
        static_cast<unsigned long long>(admission.rejected),
        static_cast<unsigned long long>(stats.completed));
  }

  // --- steady-state allocations on the metrics-only FlatList path -----
  double allocs_per_request = -1.0;  // -1 = not measured (sanitizer build)
  if (kAllocHookEnabled) {
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = flush_ms;
    options.queue_capacity = std::max(capacity, num_requests);
    options.keep_schedules = false;
    AsyncScheduler async(options);
    std::vector<Ticket> tickets;
    tickets.reserve(flat_requests.size());
    EngineResult result;
    const auto round = [&] {
      tickets.clear();
      for (const auto& request : flat_requests) {
        tickets.push_back(async.submit(request));
      }
      for (const Ticket& ticket : tickets) {
        (void)async.wait(ticket);
        (void)async.take(ticket, result);
      }
    };
    round();  // warm-up: grows slot buffers, assembly vectors, workspaces
    round();
    const std::uint64_t before = g_alloc_count.load();
    for (int r = 0; r < reps; ++r) round();
    allocs_per_request =
        static_cast<double>(g_alloc_count.load() - before) /
        static_cast<double>(flat_requests.size() * static_cast<std::size_t>(reps));
    std::cout << strfmt(
        "\n# steady-state allocations (1 shard, metrics-only flatlist): "
        "%.2f allocs/request\n",
        allocs_per_request);
    if (allocs_per_request != 0.0) {
      std::cerr << "ERROR: steady-state serving path allocated\n";
      all_ok = false;
    }
  } else {
    std::cout << "\n# steady-state allocations: not measured "
                 "(operator-new hook disabled under AddressSanitizer)\n";
  }

  const std::string json_path = args.get_string("json", "BENCH_serve.json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << strfmt(
        "{\n  \"benchmark\": \"serve_throughput\",\n"
        "  \"requests\": %d,\n  \"n\": %d,\n  \"m\": %d,\n  \"reps\": %d,\n"
        "  \"shuffles\": %d,\n  \"max_batch\": %d,\n"
        "  \"flush_after_ms\": %.3f,\n  \"queue_capacity\": %d,\n"
        "  \"pool_workers\": %zu,\n",
        num_requests, n, m, reps, shuffles, max_batch, flush_ms, capacity,
        shared_thread_pool().size());
    out << "  \"determinism\": [\n";
    for (std::size_t i = 0; i < determinism_rows.size(); ++i) {
      const auto& row = determinism_rows[i];
      out << strfmt("    {\"shards\": %d, \"identical_to_sync\": %s}%s\n",
                    row.shards, row.identical ? "true" : "false",
                    i + 1 < determinism_rows.size() ? "," : "");
    }
    out << "  ],\n  \"throughput\": [\n";
    for (std::size_t i = 0; i < throughput_rows.size(); ++i) {
      const auto& row = throughput_rows[i];
      out << strfmt(
          "    {\"shards\": %d, \"algorithm\": \"%s\", "
          "\"requests_per_s\": %.1f, \"latency_ms\": {\"p50\": %.3f, "
          "\"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f}}%s\n",
          row.shards, row.algorithm.c_str(), row.per_s, row.latency.p50,
          row.latency.p90, row.latency.p99, row.latency.max,
          i + 1 < throughput_rows.size() ? "," : "");
    }
    out << strfmt(
        "  ],\n  \"admission\": {\"capacity\": %d, \"offered\": %d, "
        "\"accepted\": %llu, \"rejected\": %llu},\n",
        admission.capacity, admission.offered,
        static_cast<unsigned long long>(admission.accepted),
        static_cast<unsigned long long>(admission.rejected));
    out << strfmt(
        "  \"allocs\": [\n    {\"path\": \"serve_flatlist_metrics_only\", "
        "\"allocs_per_request\": %.2f}\n  ]\n}\n",
        allocs_per_request);
    std::cout << "# json written to " << json_path << "\n";
  }

  if (!all_ok) {
    std::cerr << "ERROR: serve_throughput contract violated (see above)\n";
    return 1;
  }
  return 0;
}
