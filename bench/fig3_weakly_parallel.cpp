/// Figure 3 reproduction: performance ratios on 200 processors, weakly
/// parallel tasks (uniform(1,10) sequential times, recurrence X~N(0.1,0.2)).
/// Expected shape: DEMT is the weakest of the list family here (ratio <= ~2
/// on both criteria), all list baselines sit near 1.5 on Cmax, Gang is off
/// the chart on Cmax.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  moldsched::FigureConfig config;
  config.title = "Figure 3 - weakly parallel";
  config.family = moldsched::WorkloadFamily::WeaklyParallel;
  return moldsched::run_figure_main(argc, argv, config);
}
