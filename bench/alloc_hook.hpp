/// \file alloc_hook.hpp
/// Shared global operator-new hook for the allocation-counting benches
/// (micro_components, engine_throughput, serve_throughput): counts every
/// heap allocation in the process so steady-state allocs-per-call deltas
/// can be measured, one definition instead of a divergent copy per bench.
/// Include from exactly one translation unit — the bench's own.
///
/// Compiled out under AddressSanitizer: replacing operator new with a
/// malloc-based version breaks ASan's alloc/dealloc pairing. Benches must
/// check kAllocHookEnabled and report "not measured" (-1) when false.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define MOLDSCHED_BENCH_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MOLDSCHED_BENCH_ALLOC_HOOK 0
#else
#define MOLDSCHED_BENCH_ALLOC_HOOK 1
#endif
#else
#define MOLDSCHED_BENCH_ALLOC_HOOK 1
#endif

inline std::atomic<std::uint64_t> g_alloc_count{0};
inline constexpr bool kAllocHookEnabled = MOLDSCHED_BENCH_ALLOC_HOOK != 0;

#if MOLDSCHED_BENCH_ALLOC_HOOK
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// Aligned overloads: over-aligned types (SoA buffers with alignas, SIMD
// payloads) route through operator new(size, align_val_t), which the plain
// hook above never sees — without these, such allocations would be
// invisible to the alloc gates. std::aligned_alloc requires the size to be
// a multiple of the alignment, so round up; std::free releases both kinds.
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // MOLDSCHED_BENCH_ALLOC_HOOK
