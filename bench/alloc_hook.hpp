/// \file alloc_hook.hpp
/// Shared global operator-new hook for the allocation-counting benches
/// (micro_components, engine_throughput, serve_throughput): counts every
/// heap allocation in the process so steady-state allocs-per-call deltas
/// can be measured, one definition instead of a divergent copy per bench.
/// Include from exactly one translation unit — the bench's own.
///
/// Compiled out under AddressSanitizer: replacing operator new with a
/// malloc-based version breaks ASan's alloc/dealloc pairing. Benches must
/// check kAllocHookEnabled and report "not measured" (-1) when false.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define MOLDSCHED_BENCH_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MOLDSCHED_BENCH_ALLOC_HOOK 0
#else
#define MOLDSCHED_BENCH_ALLOC_HOOK 1
#endif
#else
#define MOLDSCHED_BENCH_ALLOC_HOOK 1
#endif

inline std::atomic<std::uint64_t> g_alloc_count{0};
inline constexpr bool kAllocHookEnabled = MOLDSCHED_BENCH_ALLOC_HOOK != 0;

#if MOLDSCHED_BENCH_ALLOC_HOOK
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // MOLDSCHED_BENCH_ALLOC_HOOK
