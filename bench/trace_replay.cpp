/// Trace-driven workload replay: parses an SWF cluster log (trace/swf.hpp),
/// compiles it onto the streaming machinery (trace/tape.hpp), and replays
/// the tape through OnlineStream directly and through AsyncScheduler stream
/// sessions for shard counts {1, 2, 4} — exit-gated bit-identical to the
/// off-line batch simulator on the same tape for every policy (DEMT,
/// FlatList, LPT) and every path. Per-lane SLO percentiles (latency,
/// stretch, deadline attainment; trace/slo.hpp) are reported with the
/// baseline policies as columns next to DEMT, and the steady-state stream
/// path is gated at 0.00 heap allocations per arrival with the global
/// operator-new hook while an SLO accumulator is live.
///
/// Run `trace_replay --help` for flags; the BENCH_trace.json schema is
/// documented in docs/BENCHMARKS.md, the trace pipeline in docs/TRACES.md.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "baselines/lpt_policy.hpp"
#include "core/policy.hpp"
#include "serve/async_scheduler.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "trace/slo.hpp"
#include "trace/swf.hpp"
#include "trace/swf_write.hpp"
#include "trace/tape.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"
#include "util/timer.hpp"

namespace {

using namespace moldsched;

constexpr const char* kHelp = R"(trace_replay -- SWF trace replay bench

Parses an SWF workload log, compiles it into a StreamArrival tape, and
replays the tape through OnlineStream and through AsyncScheduler stream
sessions, comparing every decision against the off-line batch simulator
(online_batch_schedule_reference) for DEMT, FlatList, and LPT.

Flags
  --trace PATH      SWF log to replay (bundled mini-trace when absent)
  --synth-out PATH  write the deterministic synthetic SWF log and exit
  --synth-jobs N    jobs in the synthetic log                   [200]
  --m N             machine size (0 = the log's MaxProcs)       [0]
  --scale X         time compression divisor                    [1]
  --stride N        keep every stride-th usable job             [1]
  --max-jobs N      cap on kept jobs (0 = all)                  [0]
  --moldable        compile moldable Downey tasks, not rigid
  --sigma X         Downey sigma for --moldable                 [1.0]
  --quantize N      runtime grid sub-steps per doubling (0=off) [0]
  --lanes N         SLO lanes (queue id mod lanes)              [4]
  --target-stretch X  deadline rule: stretch <= X               [10]
  --shards a,b,c    shard counts to sweep                       [1,2,4]
  --chunk N         max arrivals per feed                       [8]
  --max-batch N     coalescing batch bound                      [8]
  --flush-ms X      deadline flush (ms; 0 = every submit)       [0.5]
  --shuffles N      DEMT shuffle candidates per batch decision  [4]
  --reps N          alloc-gate measurement rounds               [3]
  --seed S          RNG seed (synthesis and chunk sizes)        [20040627]
  --quick           small preset (--max-jobs 80, 2 reps)
  --json PATH       JSON report path ("" disables)              [BENCH_trace.json]
  --help            this text

Exit status: non-zero when any replay path differs from the off-line
reference on any policy, or the steady-state stream path allocates per
arrival (allocation counting is compiled out under AddressSanitizer and
reported as -1).
)";

/// A stream result assembled from its deliveries, for comparison.
struct AssembledStream {
  std::vector<double> start, duration, completion;
  std::vector<std::vector<int>> procs;
  std::vector<double> batch_starts;
  double cmax = 0.0, wcs = 0.0, wfs = 0.0;
  int num_batches = 0;
  bool contiguous = true;  ///< deliveries arrived in stream order
};

void absorb(AssembledStream& acc, const StreamDelivery& delivery) {
  if (delivery.first_job != static_cast<int>(acc.start.size())) {
    acc.contiguous = false;
  }
  for (int e = 0; e < delivery.num_jobs(); ++e) {
    const auto entry = static_cast<std::size_t>(e);
    acc.start.push_back(delivery.placements.start[entry]);
    acc.duration.push_back(delivery.placements.duration[entry]);
    acc.completion.push_back(delivery.completion[entry]);
    const auto begin =
        static_cast<std::size_t>(delivery.placements.proc_begin[entry]);
    const auto count =
        static_cast<std::size_t>(delivery.placements.proc_count[entry]);
    acc.procs.emplace_back(
        delivery.placements.proc_ids.begin() +
            static_cast<std::ptrdiff_t>(begin),
        delivery.placements.proc_ids.begin() +
            static_cast<std::ptrdiff_t>(begin + count));
  }
  acc.batch_starts.insert(acc.batch_starts.end(),
                          delivery.batch_starts.begin(),
                          delivery.batch_starts.end());
  acc.cmax = delivery.cmax;
  acc.wcs = delivery.weighted_completion_sum;
  acc.wfs = delivery.weighted_flow_sum;
  acc.num_batches = delivery.num_batches;
}

bool identical_to_reference(const AssembledStream& acc,
                            const OnlineResult& reference,
                            std::size_t num_jobs) {
  if (!acc.contiguous) return false;
  if (acc.start.size() != num_jobs) return false;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    const Placement& p = reference.schedule.placement(static_cast<int>(j));
    if (acc.start[j] != p.start || acc.duration[j] != p.duration ||
        acc.procs[j] != p.procs ||
        acc.completion[j] != reference.completion[j]) {
      return false;
    }
  }
  return acc.batch_starts == reference.batch_starts &&
         acc.cmax == reference.cmax &&
         acc.wcs == reference.weighted_completion_sum &&
         acc.wfs == reference.weighted_flow_sum &&
         acc.num_batches == reference.num_batches;
}

/// Object-path off-line oracle running `policy` (shared workspace keeps the
/// std::function copyable).
OfflineScheduler make_oracle(const SchedulingPolicy& policy) {
  std::shared_ptr<PolicyWorkspace> ws(policy.make_workspace());
  return [&policy, ws](const Instance& batch) {
    FlatPlacements out;
    policy.schedule_into(batch, *ws, out);
    return out.to_schedule(batch.procs());
  };
}

/// Replay the tape through a bare OnlineStream in chunked feeds; the chunk
/// sizes come from `rng` so feed boundaries never align with batches.
void replay_online_stream(const Tape& tape, const SchedulingPolicy& policy,
                          Rng& rng, int max_chunk, AssembledStream& acc) {
  OnlineStream stream;
  stream.open(tape.m, {});
  const std::unique_ptr<PolicyWorkspace> ws = policy.make_workspace();
  StreamDelivery delivery;
  std::size_t fed = 0;
  while (fed < tape.arrivals.size()) {
    const auto chunk = std::min<std::size_t>(
        tape.arrivals.size() - fed,
        static_cast<std::size_t>(
            rng.uniform_int(1, std::max(1, max_chunk))));
    const std::size_t next = fed + chunk;
    const double watermark = next < tape.arrivals.size()
                                 ? tape.arrivals[next].release
                                 : tape.arrivals.back().release;
    stream.feed(tape.arrivals.data() + fed, chunk, watermark, policy, *ws,
                delivery);
    absorb(acc, delivery);
    fed = next;
  }
  stream.finish(policy, *ws, delivery);
  absorb(acc, delivery);
}

/// Replay the tape through one AsyncScheduler stream session.
bool replay_async(AsyncScheduler& async, const Tape& tape,
                  const SchedulingPolicy& policy, int chunk,
                  AssembledStream& acc) {
  StreamOptions options;
  options.m = tape.m;
  options.policy = &policy;
  const StreamTicket stream = async.open_stream(options);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < tape.arrivals.size();
       i += static_cast<std::size_t>(chunk)) {
    const auto count =
        std::min<std::size_t>(static_cast<std::size_t>(chunk),
                              tape.arrivals.size() - i);
    const double watermark = i + count < tape.arrivals.size()
                                 ? tape.arrivals[i + count].release
                                 : tape.arrivals.back().release;
    const Ticket ticket = async.submit_stream(
        stream, tape.arrivals.data() + i, count, watermark);
    if (!ticket.accepted()) return false;
    // Feeds of one stream run in order; waiting keeps the ticket list
    // small and the borrowed arrival window valid semantics simple.
    (void)async.wait(ticket);
    tickets.push_back(ticket);
  }
  tickets.push_back(async.close_stream(stream));
  async.drain();
  bool ok = true;
  StreamDelivery delivery;
  for (const Ticket& ticket : tickets) {
    if (!ticket.accepted() || async.poll(ticket) != TicketStatus::Done ||
        !async.take_stream(ticket, delivery)) {
      ok = false;
      continue;
    }
    absorb(acc, delivery);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout << kHelp;
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));
  const int synth_jobs = static_cast<int>(args.get_int("synth-jobs", 200));

  // --synth-out: regenerate the deterministic synthetic log and exit. The
  // bundled tests/data/mini_trace.swf is exactly this output.
  const std::string synth_out = args.get_string("synth-out", "");
  if (!synth_out.empty()) {
    SynthSwfOptions synth;
    synth.jobs = synth_jobs;
    Rng rng(seed);
    SwfTrace trace;
    synthesize_swf(synth, rng, trace);
    std::ofstream out(synth_out);
    if (!out) {
      std::cerr << "ERROR: cannot write " << synth_out << "\n";
      return 1;
    }
    write_swf(trace, out);
    std::cout << strfmt("# wrote %d-job synthetic SWF log to %s\n",
                        synth.jobs, synth_out.c_str());
    return 0;
  }

  TapeOptions tape_options;
  tape_options.m = static_cast<int>(args.get_int("m", 0));
  tape_options.time_scale = args.get_double("scale", 1.0);
  tape_options.stride = static_cast<int>(args.get_int("stride", 1));
  tape_options.max_jobs = static_cast<int>(args.get_int("max-jobs", 0));
  tape_options.moldable = args.has("moldable");
  tape_options.downey_sigma = args.get_double("sigma", 1.0);
  tape_options.quantize_steps = static_cast<int>(args.get_int("quantize", 0));
  tape_options.lanes = static_cast<int>(args.get_int("lanes", 4));
  int reps = static_cast<int>(args.get_int("reps", 3));
  if (args.has("quick")) {
    if (tape_options.max_jobs == 0) tape_options.max_jobs = 80;
    reps = 2;
  }
  const double target_stretch = args.get_double("target-stretch", 10.0);
  const std::vector<int> shard_settings =
      args.get_int_list("shards", {1, 2, 4});
  const int chunk = static_cast<int>(args.get_int("chunk", 8));
  const int max_batch = static_cast<int>(args.get_int("max-batch", 8));
  const double flush_ms = args.get_double("flush-ms", 0.5);
  const int shuffles = static_cast<int>(args.get_int("shuffles", 4));

  // --- load (or synthesize) the log ------------------------------------
  std::string trace_path = args.get_string("trace", "");
  const bool explicit_trace = !trace_path.empty();
  if (!explicit_trace) {
    trace_path = MOLDSCHED_SOURCE_DIR "/tests/data/mini_trace.swf";
  }
  SwfTrace trace;
  try {
    load_swf_file(trace_path, trace);
  } catch (const std::exception& error) {
    if (explicit_trace) {
      std::cerr << "ERROR: " << error.what() << "\n";
      return 1;
    }
    // No bundled file (source tree not at hand): the bundled trace is the
    // deterministic synthetic log, so synthesize the identical one.
    SynthSwfOptions synth;
    synth.jobs = synth_jobs;
    Rng rng(seed);
    synthesize_swf(synth, rng, trace);
    trace_path = "<synthetic>";
  }

  Tape tape;
  try {
    compile_tape(trace, tape_options, tape);
  } catch (const std::exception& error) {
    std::cerr << "ERROR: " << error.what() << "\n";
    return 1;
  }
  std::cout << strfmt(
      "# trace_replay: %s\n"
      "# %lld records -> %lld arrivals (m=%d, %s, scale=%.3g, stride=%d, "
      "quantize=%d, lanes=%d), span %.1f\n\n",
      trace_path.c_str(), static_cast<long long>(tape.jobs_in_trace),
      static_cast<long long>(tape.jobs_kept()), tape.m,
      tape_options.moldable ? "moldable" : "rigid", tape_options.time_scale,
      tape_options.stride, tape_options.quantize_steps, tape_options.lanes,
      tape.span);

  DemtOptions demt_options;
  demt_options.shuffles = shuffles;
  const DemtPolicy demt_policy(demt_options);
  const FlatListPolicy flat_policy;
  const LptRigidPolicy lpt_policy;
  const std::vector<const SchedulingPolicy*> policies = {
      &demt_policy, &flat_policy, &lpt_policy};

  // The off-line reference treats the tape as a job list received up
  // front (a rigid arrival is the degenerate moldable task).
  std::vector<OnlineJob> jobs;
  jobs.reserve(tape.arrivals.size());
  for (const StreamArrival& arrival : tape.arrivals) {
    jobs.push_back(OnlineJob{arrival.task, arrival.release});
  }

  bool all_ok = true;

  // --- determinism + SLO per policy ------------------------------------
  struct DeterminismRow {
    std::string policy;
    std::string path;  ///< "online_stream" or "async_shards_N"
    bool identical = true;
  };
  struct PolicyRow {
    std::string policy;
    double cmax = 0.0;
    double weighted_flow_sum = 0.0;
    SloReport slo;
  };
  std::vector<DeterminismRow> determinism_rows;
  std::vector<PolicyRow> policy_rows;

  std::cout << strfmt("%-10s %-16s %10s\n", "policy", "path", "identical");
  for (const SchedulingPolicy* policy : policies) {
    const OnlineResult reference = online_batch_schedule_reference(
        tape.m, jobs, make_oracle(*policy));

    // Bare OnlineStream, randomized chunk boundaries.
    AssembledStream direct;
    Rng chunk_rng(seed ^ 0xC0FFEEULL);
    replay_online_stream(tape, *policy, chunk_rng, chunk, direct);
    const bool direct_ok =
        identical_to_reference(direct, reference, jobs.size());
    determinism_rows.push_back(
        DeterminismRow{policy->name(), "online_stream", direct_ok});
    all_ok &= direct_ok;
    std::cout << strfmt("%-10s %-16s %10s\n", policy->name(),
                        "online_stream", direct_ok ? "yes" : "NO");

    for (const int shards : shard_settings) {
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = 4096;
      options.max_streams = 8;
      AsyncScheduler async(options);
      AssembledStream acc;
      const bool fed_ok = replay_async(async, tape, *policy, chunk, acc);
      const bool ok =
          fed_ok && identical_to_reference(acc, reference, jobs.size());
      determinism_rows.push_back(DeterminismRow{
          policy->name(), strfmt("async_shards_%d", shards), ok});
      all_ok &= ok;
      std::cout << strfmt("%-10s %-16s %10s\n", policy->name(),
                          strfmt("async_shards_%d", shards).c_str(),
                          ok ? "yes" : "NO");
    }

    // SLO report from the replayed completions (identical on every path).
    PolicyRow row;
    row.policy = policy->name();
    row.cmax = direct.cmax;
    row.weighted_flow_sum = direct.wfs;
    if (direct.completion.size() == tape.info.size()) {
      SloAccumulator slo;
      slo.open(tape_options.lanes, tape.info.size());
      for (std::size_t j = 0; j < tape.info.size(); ++j) {
        slo.record(tape.info[j].lane, tape.info[j].release,
                   tape.info[j].min_time, direct.completion[j]);
      }
      slo.report(target_stretch, row.slo);
    }
    policy_rows.push_back(std::move(row));
  }

  // --- SLO summary: DEMT next to the baselines -------------------------
  std::cout << strfmt("\n%-10s %10s %14s %12s %12s %12s\n", "policy",
                      "cmax", "wt_flow_sum", "latency_p50", "stretch_p99",
                      "attainment");
  for (const PolicyRow& row : policy_rows) {
    // Job-weighted whole-machine percentile view: lane rows are in the
    // JSON; the console shows the worst lane for a quick read.
    double latency_p50 = 0.0, stretch_p99 = 0.0;
    for (const SloLaneReport& lane : row.slo.lanes) {
      latency_p50 = std::max(latency_p50, lane.latency.p50);
      stretch_p99 = std::max(stretch_p99, lane.stretch.p99);
    }
    std::cout << strfmt("%-10s %10.1f %14.1f %12.1f %12.2f %12.4f\n",
                        row.policy.c_str(), row.cmax, row.weighted_flow_sum,
                        latency_p50, stretch_p99, row.slo.attainment);
  }
  std::cout << strfmt(
      "# worst-lane latency p50 / stretch p99; deadline rule: stretch <= "
      "%.3g\n",
      target_stretch);

  // --- steady-state allocations per arrival (FlatList stream path) -----
  double allocs_per_arrival = -1.0;  // -1 = not measured (sanitizer build)
  if (kAllocHookEnabled) {
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = flush_ms;
    options.queue_capacity = 8;  // small slot ring: warm-up visits every slot
    options.max_streams = 4;
    AsyncScheduler async(options);
    StreamOptions stream_options;
    stream_options.m = tape.m;
    stream_options.policy = &flat_policy;
    StreamDelivery delivery;
    SloAccumulator slo;
    SloReport report;
    const auto round = [&] {
      // One full replay round with a live accumulator: open resets the
      // pooled sample buffers, record runs once per decided job.
      slo.open(tape_options.lanes, tape.info.size());
      const StreamTicket stream = async.open_stream(stream_options);
      std::size_t decided = 0;
      for (std::size_t i = 0; i < tape.arrivals.size();
           i += static_cast<std::size_t>(chunk)) {
        const auto count =
            std::min<std::size_t>(static_cast<std::size_t>(chunk),
                                  tape.arrivals.size() - i);
        const double watermark = i + count < tape.arrivals.size()
                                     ? tape.arrivals[i + count].release
                                     : tape.arrivals.back().release;
        const Ticket feed = async.submit_stream(
            stream, tape.arrivals.data() + i, count, watermark);
        (void)async.wait(feed);
        (void)async.take_stream(feed, delivery);
        for (int e = 0; e < delivery.num_jobs(); ++e) {
          const std::size_t j =
              static_cast<std::size_t>(delivery.first_job + e);
          slo.record(tape.info[j].lane, tape.info[j].release,
                     tape.info[j].min_time,
                     delivery.completion[static_cast<std::size_t>(e)]);
          ++decided;
        }
      }
      const Ticket close = async.close_stream(stream);
      (void)async.wait(close);
      (void)async.take_stream(close, delivery);
      for (int e = 0; e < delivery.num_jobs(); ++e) {
        const std::size_t j =
            static_cast<std::size_t>(delivery.first_job + e);
        slo.record(tape.info[j].lane, tape.info[j].release,
                   tape.info[j].min_time,
                   delivery.completion[static_cast<std::size_t>(e)]);
        ++decided;
      }
      (void)decided;
    };
    // Warm-up: cycle the slot and stream rings until every pooled buffer
    // hosted the tape.
    for (int r = 0; r < 16; ++r) round();
    const std::uint64_t before = g_alloc_count.load();
    for (int r = 0; r < reps; ++r) round();
    allocs_per_arrival =
        static_cast<double>(g_alloc_count.load() - before) /
        static_cast<double>(tape.arrivals.size() *
                            static_cast<std::size_t>(reps));
    slo.report(target_stretch, report);  // post-measurement reduction
    std::cout << strfmt(
        "\n# steady-state allocations (1 shard, flatlist stream + SLO "
        "accumulator): %.2f allocs/arrival\n",
        allocs_per_arrival);
    if (allocs_per_arrival != 0.0) {
      std::cerr << "ERROR: steady-state trace replay allocated\n";
      all_ok = false;
    }
  } else {
    std::cout << "\n# steady-state allocations: not measured "
                 "(operator-new hook disabled under AddressSanitizer)\n";
  }

  // --- JSON report ------------------------------------------------------
  const std::string json_path = args.get_string("json", "BENCH_trace.json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << strfmt(
        "{\n  \"benchmark\": \"trace_replay\",\n"
        "  \"trace\": \"%s\",\n"
        "  \"jobs_in_trace\": %lld,\n  \"jobs_kept\": %lld,\n"
        "  \"jobs_skipped\": %lld,\n  \"jobs_sampled_out\": %lld,\n"
        "  \"m\": %d,\n  \"moldable\": %s,\n  \"time_scale\": %.6g,\n"
        "  \"stride\": %d,\n  \"quantize_steps\": %d,\n  \"lanes\": %d,\n"
        "  \"span\": %.6g,\n  \"target_stretch\": %.6g,\n",
        trace_path.c_str(), static_cast<long long>(tape.jobs_in_trace),
        static_cast<long long>(tape.jobs_kept()),
        static_cast<long long>(tape.jobs_skipped),
        static_cast<long long>(tape.jobs_sampled_out), tape.m,
        tape_options.moldable ? "true" : "false", tape_options.time_scale,
        tape_options.stride, tape_options.quantize_steps,
        tape_options.lanes, tape.span, target_stretch);
    out << "  \"determinism\": [\n";
    for (std::size_t i = 0; i < determinism_rows.size(); ++i) {
      const DeterminismRow& row = determinism_rows[i];
      out << strfmt(
          "    {\"policy\": \"%s\", \"path\": \"%s\", "
          "\"identical_to_reference\": %s}%s\n",
          row.policy.c_str(), row.path.c_str(),
          row.identical ? "true" : "false",
          i + 1 < determinism_rows.size() ? "," : "");
    }
    out << "  ],\n  \"policies\": [\n";
    for (std::size_t i = 0; i < policy_rows.size(); ++i) {
      const PolicyRow& row = policy_rows[i];
      out << strfmt(
          "    {\"policy\": \"%s\", \"cmax\": %.6g, "
          "\"weighted_flow_sum\": %.6g, \"attainment\": %.4f,\n"
          "     \"slo_lanes\":\n",
          row.policy.c_str(), row.cmax, row.weighted_flow_sum,
          row.slo.attainment);
      out << slo_report_json(row.slo, "      ");
      out << strfmt("}%s\n", i + 1 < policy_rows.size() ? "," : "");
    }
    out << strfmt(
        "  ],\n  \"allocs\": [\n    {\"path\": \"stream_flatlist_trace\", "
        "\"allocs_per_arrival\": %.2f}\n  ]\n}\n",
        allocs_per_arrival);
    std::cout << "# json written to " << json_path << "\n";
  }

  if (!all_ok) {
    std::cerr << "ERROR: trace_replay contract violated (see above)\n";
    return 1;
  }
  return 0;
}
