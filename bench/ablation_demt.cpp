/// Ablation bench (not in the paper): measures the contribution of each
/// DEMT design choice the paper motivates qualitatively — small-task
/// merging, the compaction stages (none / pull-forward / list), the shuffle
/// count, and Smith ordering inside stacks. One block per workload family;
/// values are ratio-of-sums against the same lower bounds as the figures.
///
/// Flags: --n (tasks), --m, --runs, --seed, --families a,b,c

#include <iostream>
#include <map>

#include "dualapprox/cmax_estimator.hpp"
#include "exp/algorithms.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/validator.hpp"
#include "tasks/time_grid.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/strfmt.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace moldsched;

struct Variant {
  std::string name;
  DemtOptions options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  {
    Variant v;
    v.name = "full (paper)";
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "no merge";
    v.options.merge_small_tasks = false;
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "weight-order stacks";
    v.options.smith_order_stacks = false;
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "no compaction";
    v.options.compaction = DemtOptions::Compaction::None;
    v.options.shuffles = 0;
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "pull-forward only";
    v.options.compaction = DemtOptions::Compaction::PullForward;
    v.options.shuffles = 0;
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "list, no shuffle";
    v.options.shuffles = 0;
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "32 shuffles";
    v.options.shuffles = 32;
    out.push_back(v);
  }
  {
    Variant v;
    v.name = "shuffle batch order";
    v.options.shuffle_batch_order = true;
    out.push_back(v);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout
        << "ablation_demt -- contribution of each DEMT design choice\n"
        << "(merging, compaction stage, shuffles, stack ordering), as\n"
        << "ratio-of-sums against the figure lower bounds.\n\n"
        << "  --sizes a,b,c   task counts [150,400]\n"
        << "  --m N           processors [200]\n"
        << "  --runs N        instances per point [10]\n"
        << "  --seed S        base seed [20040627]\n"
        << "  --quick         sizes 100; runs 3\n\n"
        << "Output: aligned text table on stdout (one block per workload\n"
        << "family, one row per variant); this bench emits no JSON or\n"
        << "CSV.\n";
    return 0;
  }
  // Two load levels: m >= n (the knapsack rarely rejects, merging is moot)
  // and n >> m (small-task stacking and batch order decisions bite).
  std::vector<int> default_ns = {150, 400};
  int default_runs = 10;
  if (args.has("quick")) {
    default_ns = {100};
    default_runs = 3;
  }
  const std::vector<int> ns = args.get_int_list("sizes", default_ns);
  const int m = static_cast<int>(args.get_int("m", 200));
  const int runs = static_cast<int>(args.get_int("runs", default_runs));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  std::cout << strfmt(
      "# DEMT ablation: m=%d, %d runs; cells = ratio-of-sums "
      "(minsum | cmax)\n\n",
      m, runs);

  for (int n : ns)
  for (auto family : all_families()) {
    std::cout << strfmt("## family %s, n=%d\n",
                        std::string(family_name(family)).c_str(), n);

    // Shared instances + bounds per run (same across variants).
    std::vector<Instance> instances;
    std::vector<double> cmax_lbs, minsum_lbs;
    Rng rng(seed + static_cast<std::uint64_t>(family) * 7919);
    for (int r = 0; r < runs; ++r) {
      instances.push_back(generate_instance(family, n, m, rng));
      const auto est = estimate_cmax(instances.back());
      cmax_lbs.push_back(est.lower_bound);
      const TimeGrid grid(est.estimate, instances.back().tmin());
      minsum_lbs.push_back(
          minsum_lower_bound(instances.back(), grid).bound);
    }

    for (const auto& variant : variants()) {
      RatioOfSums wc_ratio, cm_ratio;
      for (int r = 0; r < runs; ++r) {
        const auto result = demt_schedule(instances[static_cast<std::size_t>(r)],
                                          variant.options);
        require_valid(result.schedule,
                      instances[static_cast<std::size_t>(r)]);
        wc_ratio.add(result.schedule.weighted_completion_sum(
                         instances[static_cast<std::size_t>(r)]),
                     minsum_lbs[static_cast<std::size_t>(r)]);
        cm_ratio.add(result.schedule.cmax(),
                     cmax_lbs[static_cast<std::size_t>(r)]);
      }
      std::cout << strfmt("  %-22s  minsum %6.3f | cmax %6.3f\n",
                          variant.name.c_str(), wc_ratio.ratio(),
                          cm_ratio.ratio());
    }
    std::cout << '\n';
  }
  return 0;
}
