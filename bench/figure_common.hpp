/// \file figure_common.hpp
/// Shared driver for the per-figure bench binaries. Every figure binary is
/// a thin main() that fills in its family/title and calls run_figure_main.
///
/// Common flags (paper defaults in brackets):
///   --sizes 25,50,...   task counts [25..400 in steps of 50, plus 25/50]
///   --m N               processors [200]
///   --runs N            instances per point [40]
///   --seed S            base seed [20040627]
///   --csv PATH          also write CSV
///   --gnuplot PREFIX    write PREFIX.dat + PREFIX.gp (two-panel figure)
///   --quick             small preset (sizes 25,50,100; runs 5) for smoke runs
///   --threads N         worker threads [hardware]
///   --verbose           progress logging

#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "exp/report.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace moldsched {

inline int run_figure_main(int argc, char** argv, FigureConfig config) {
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout
        << config.title << " reproduction harness\n\n"
        << "  --sizes a,b,c   task counts [25..400]\n"
        << "  --m N           processors [200]\n"
        << "  --runs N        instances per point [40]\n"
        << "  --seed S        base seed [20040627]\n"
        << "  --csv PATH      also write CSV\n"
        << "  --gnuplot PFX   write PFX.dat + PFX.gp (two-panel figure)\n"
        << "  --threads N     worker threads [hardware]\n"
        << "  --quick         sizes 25,50,100; runs 5\n"
        << "  --verbose       progress logging\n\n"
        << "Outputs: paper-style text report on stdout; --csv writes one\n"
        << "row per (n, algorithm) with columns figure, family, m, runs,\n"
        << "n, algorithm, minsum_ratio_{avg,min,max},\n"
        << "cmax_ratio_{avg,min,max}, runtime_mean_s, lp_bound_mean,\n"
        << "cmax_lb_mean. This\n"
        << "harness emits no JSON; the JSON-emitting benches are\n"
        << "fig7_runtime (BENCH_demt.json), micro_components\n"
        << "(BENCH_demt_micro.json) and engine_throughput\n"
        << "(BENCH_engine.json) -- see their --help for schemas.\n";
    return 0;
  }
  if (args.has("verbose")) set_log_level(LogLevel::Info);
  if (args.has("quick")) {
    config.ns = {25, 50, 100};
    config.runs = 5;
  }
  config.ns = args.get_int_list("sizes", config.ns);
  config.m = static_cast<int>(args.get_int("m", config.m));
  config.runs = static_cast<int>(args.get_int("runs", config.runs));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.threads =
      static_cast<unsigned>(args.get_int("threads", config.threads));

  WallTimer timer;
  const FigureResult result = run_figure(config);
  print_figure(result, std::cout);
  std::cout << "# total wall time: " << timer.seconds() << " s\n";

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    write_figure_csv(result, csv);
    std::cout << "# csv written to " << csv_path << "\n";
  }

  const std::string gnuplot_prefix = args.get_string("gnuplot", "");
  if (!gnuplot_prefix.empty()) {
    if (!write_figure_gnuplot(result, gnuplot_prefix)) {
      std::cerr << "cannot write " << gnuplot_prefix << ".dat/.gp\n";
      return 1;
    }
    std::cout << "# gnuplot files written to " << gnuplot_prefix
              << ".{dat,gp}\n";
  }
  return 0;
}

}  // namespace moldsched
