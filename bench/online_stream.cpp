/// Streaming serving bench for the online path: verifies that arrivals fed
/// chunk by chunk through AsyncScheduler streams reproduce the off-line
/// batch simulator bit for bit — every placement, completion, batch
/// boundary and metric — for shard counts {1, 2, 4} and both off-line
/// plug-ins, with one-shot batch traffic interleaved (checked against the
/// synchronous engine); sweeps feed-decision latency percentiles and
/// arrival throughput over the shard counts on a mixed §5 workload
/// (moldable + rigid + divisible); and counts steady-state heap
/// allocations per arrival on the FlatList stream path with the global
/// operator-new hook (must be 0.00; the process exits non-zero otherwise,
/// same as on a determinism failure).
///
/// Run `online_stream --help` for flags; all BENCH_*.json schemas are
/// documented centrally in docs/BENCHMARKS.md, the streaming architecture
/// in docs/ONLINE.md.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "engine/engine.hpp"
#include "serve/async_scheduler.hpp"
#include "sim/online.hpp"
#include "sim/stream.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

// Allocation counting uses the shared operator-new hook in alloc_hook.hpp
// (whole process, all threads). Under AddressSanitizer the hook is
// compiled out; the sanitized CI job still gates determinism while the
// allocation contract is enforced by the plain Release build (-1 here).

namespace {

using namespace moldsched;

constexpr const char* kHelp = R"(online_stream -- streaming online-scheduling bench

Feeds release-ordered arrivals chunk by chunk through AsyncScheduler
streams and compares every decision against the off-line batch simulator
(online_batch_schedule_reference) on the completed job list.

Flags
  --streams N       concurrent streams per round                [6]
  --jobs N          batch jobs per stream                       [40]
  --m N             processors per stream machine               [16]
  --shards a,b,c    shard counts to sweep                       [1,2,4]
  --max-batch N     coalescing batch bound                      [8]
  --flush-ms X      deadline flush (ms; 0 = every submit)       [0.5]
  --reps N          timed rounds per shard setting              [3]
  --shuffles N      DEMT shuffle candidates per batch decision  [4]
  --gap X           mean inter-arrival gap (Poisson process)    [0.8]
  --seed S          base RNG seed                               [20040627]
  --quick           small preset (3 streams, 16 jobs, 2 reps)
  --json PATH       JSON report path ("" disables)              [BENCH_online.json]
  --help            this text

The BENCH_online.json schema (and every other BENCH_*.json schema) is
documented in docs/BENCHMARKS.md; the streaming lifecycle and its
determinism/allocation contracts in docs/ONLINE.md.

Exit status: non-zero when any stream decision differs from the off-line
reference, an interleaved one-shot differs from the synchronous engine, or
the steady-state FlatList stream path allocates per arrival (allocation
counting is compiled out under AddressSanitizer and reported as -1).
)";

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const auto last = samples.size() - 1;
    const auto index = static_cast<std::size_t>(q * static_cast<double>(last));
    return samples[std::min(index, last)];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

/// One stream's workload: a release-ordered moldable job list.
std::vector<OnlineJob> make_jobs(int count, int m, double mean_gap,
                                 Rng& rng) {
  std::vector<OnlineJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  double release = 0.0;
  for (int i = 0; i < count; ++i) {
    Instance tmp = generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], 1, m, rng);
    jobs.push_back(OnlineJob{tmp.task(0), release});
    release += rng.exponential(mean_gap);
  }
  return jobs;
}

/// A stream result assembled from its deliveries, for comparison.
struct AssembledStream {
  std::vector<double> start, duration, completion;
  std::vector<std::vector<int>> procs;
  std::vector<double> batch_starts;
  double cmax = 0.0, wcs = 0.0, wfs = 0.0;
  int num_batches = 0;
  bool contiguous = true;  ///< deliveries arrived in stream order
};

void absorb(AssembledStream& acc, const StreamDelivery& delivery) {
  if (delivery.first_job != static_cast<int>(acc.start.size())) {
    acc.contiguous = false;
  }
  for (int e = 0; e < delivery.num_jobs(); ++e) {
    const auto entry = static_cast<std::size_t>(e);
    acc.start.push_back(delivery.placements.start[entry]);
    acc.duration.push_back(delivery.placements.duration[entry]);
    acc.completion.push_back(delivery.completion[entry]);
    const auto begin =
        static_cast<std::size_t>(delivery.placements.proc_begin[entry]);
    const auto count =
        static_cast<std::size_t>(delivery.placements.proc_count[entry]);
    acc.procs.emplace_back(
        delivery.placements.proc_ids.begin() +
            static_cast<std::ptrdiff_t>(begin),
        delivery.placements.proc_ids.begin() +
            static_cast<std::ptrdiff_t>(begin + count));
  }
  acc.batch_starts.insert(acc.batch_starts.end(),
                          delivery.batch_starts.begin(),
                          delivery.batch_starts.end());
  acc.cmax = delivery.cmax;
  acc.wcs = delivery.weighted_completion_sum;
  acc.wfs = delivery.weighted_flow_sum;
  acc.num_batches = delivery.num_batches;
}

bool identical_to_reference(const AssembledStream& acc,
                            const OnlineResult& reference,
                            const std::vector<OnlineJob>& jobs) {
  if (!acc.contiguous) return false;
  if (acc.start.size() != jobs.size()) return false;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Placement& p = reference.schedule.placement(static_cast<int>(j));
    if (acc.start[j] != p.start || acc.duration[j] != p.duration ||
        acc.procs[j] != p.procs ||
        acc.completion[j] != reference.completion[j]) {
      return false;
    }
  }
  return acc.batch_starts == reference.batch_starts &&
         acc.cmax == reference.cmax &&
         acc.wcs == reference.weighted_completion_sum &&
         acc.wfs == reference.weighted_flow_sum &&
         acc.num_batches == reference.num_batches;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout << kHelp;
    return 0;
  }
  int num_streams = static_cast<int>(args.get_int("streams", 6));
  int jobs_per_stream = static_cast<int>(args.get_int("jobs", 40));
  int reps = static_cast<int>(args.get_int("reps", 3));
  if (args.has("quick")) {
    num_streams = 3;
    jobs_per_stream = 16;
    reps = 2;
  }
  const int m = static_cast<int>(args.get_int("m", 16));
  const std::vector<int> shard_settings =
      args.get_int_list("shards", {1, 2, 4});
  const int max_batch = static_cast<int>(args.get_int("max-batch", 8));
  const double flush_ms = args.get_double("flush-ms", 0.5);
  const int shuffles = static_cast<int>(args.get_int("shuffles", 4));
  const double mean_gap = args.get_double("gap", 0.8);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  DemtOptions demt_options;
  demt_options.shuffles = shuffles;

  std::cout << strfmt(
      "# online_stream: %d streams x %d jobs (m=%d), gap=%.2f, "
      "max_batch=%d, flush=%.2fms, %d reps, pool=%zu workers\n\n",
      num_streams, jobs_per_stream, m, mean_gap, max_batch, flush_ms, reps,
      shared_thread_pool().size());

  bool all_ok = true;

  // Shared workloads: one job list per stream, plus a one-shot instance
  // set interleaved with the feeds.
  Rng rng(seed);
  std::vector<std::vector<OnlineJob>> stream_jobs;
  for (int s = 0; s < num_streams; ++s) {
    stream_jobs.push_back(make_jobs(jobs_per_stream, m, mean_gap, rng));
  }
  std::vector<Instance> oneshot_instances;
  for (int s = 0; s < num_streams; ++s) {
    oneshot_instances.push_back(
        generate_instance(WorkloadFamily::Mixed, 24, m, rng));
  }
  std::vector<EngineRequest> oneshot_requests(oneshot_instances.size());
  for (std::size_t i = 0; i < oneshot_instances.size(); ++i) {
    oneshot_requests[i].instance = &oneshot_instances[i];
    oneshot_requests[i].algorithm = EngineAlgorithm::FlatList;
  }

  // --- determinism: streamed chunks vs the off-line reference ----------
  struct DeterminismRow {
    std::string algorithm;
    int shards = 0;
    bool streams_identical = true;
    bool oneshots_identical = true;
  };
  std::vector<DeterminismRow> determinism_rows;
  {
    SchedulerEngine sync(EngineOptions{1, false});
    std::vector<EngineResult> oneshot_reference;
    sync.schedule_batch(oneshot_requests, oneshot_reference);

    std::cout << strfmt("%-10s %-8s %10s %10s\n", "algorithm", "shards",
                        "streams", "one-shots");
    for (const bool flat : {true, false}) {
      const EngineAlgorithm algorithm =
          flat ? EngineAlgorithm::FlatList : EngineAlgorithm::Demt;
      // Off-line oracle with the matching per-batch plug-in.
      const OfflineScheduler oracle_offline =
          flat ? OfflineScheduler([](const Instance& batch) {
              ListPassWorkspace list;
              FlatPlacements out;
              flat_list_schedule(batch, list, out);
              return out.to_schedule(batch.procs());
            })
               : OfflineScheduler([&](const Instance& batch) {
                   return demt_schedule(batch, demt_options).schedule;
                 });
      std::vector<OnlineResult> references;
      for (const auto& jobs : stream_jobs) {
        references.push_back(
            online_batch_schedule_reference(m, jobs, oracle_offline));
      }

      for (int shards : shard_settings) {
        AsyncOptions options;
        options.shards = shards;
        options.max_batch = max_batch;
        options.flush_after_ms = flush_ms;
        options.queue_capacity = 4096;
        options.max_streams = std::max(8, num_streams);
        AsyncScheduler async(options);

        std::vector<StreamTicket> streams;
        for (int s = 0; s < num_streams; ++s) {
          StreamOptions stream_options;
          stream_options.m = m;
          stream_options.offline_algorithm = algorithm;
          stream_options.demt = demt_options;
          streams.push_back(async.open_stream(stream_options));
        }
        // Feed chunks round-robin across streams, one-shots in between.
        Rng chunk_rng(seed ^ 0xC0FFEEULL);
        std::vector<std::size_t> fed(static_cast<std::size_t>(num_streams), 0);
        std::vector<std::vector<Ticket>> feed_tickets(
            static_cast<std::size_t>(num_streams));
        std::vector<Ticket> oneshot_tickets;
        bool feeding = true;
        while (feeding) {
          feeding = false;
          for (int s = 0; s < num_streams; ++s) {
            const auto& jobs = stream_jobs[static_cast<std::size_t>(s)];
            auto& done = fed[static_cast<std::size_t>(s)];
            if (done >= jobs.size()) continue;
            feeding = true;
            const auto chunk = std::min<std::size_t>(
                jobs.size() - done,
                static_cast<std::size_t>(chunk_rng.uniform_int(1, 5)));
            // The arrivals borrow the OnlineJob tasks; watermark promises
            // nothing earlier than the next un-fed release.
            static thread_local std::vector<StreamArrival> arrivals;
            arrivals.clear();
            for (std::size_t i = done; i < done + chunk; ++i) {
              arrivals.push_back(
                  moldable_arrival(jobs[i].task, jobs[i].release));
            }
            done += chunk;
            const double watermark = done < jobs.size()
                                         ? jobs[done].release
                                         : jobs.back().release;
            const Ticket ticket = async.submit_stream(
                streams[static_cast<std::size_t>(s)], arrivals.data(),
                arrivals.size(), watermark);
            if (!ticket.accepted()) {
              all_ok = false;
              continue;
            }
            // Feed deliveries must be taken in order; wait right away so
            // the borrowed arrivals buffer can be reused next iteration.
            (void)async.wait(ticket);
            feed_tickets[static_cast<std::size_t>(s)].push_back(ticket);
          }
          if (!oneshot_tickets.empty() ||
              fed[0] >= stream_jobs[0].size() / 2) {
            // Interleave one-shot traffic once the streams are flowing.
            if (oneshot_tickets.size() < oneshot_requests.size()) {
              oneshot_tickets.push_back(
                  async.submit(oneshot_requests[oneshot_tickets.size()]));
            }
          }
        }
        for (int s = 0; s < num_streams; ++s) {
          feed_tickets[static_cast<std::size_t>(s)].push_back(
              async.close_stream(streams[static_cast<std::size_t>(s)]));
        }
        async.drain();

        bool streams_identical = true;
        StreamDelivery delivery;
        for (int s = 0; s < num_streams; ++s) {
          AssembledStream acc;
          for (const Ticket& ticket :
               feed_tickets[static_cast<std::size_t>(s)]) {
            if (!ticket.accepted() ||
                async.poll(ticket) != TicketStatus::Done ||
                !async.take_stream(ticket, delivery)) {
              streams_identical = false;
              continue;
            }
            absorb(acc, delivery);
          }
          streams_identical &= identical_to_reference(
              acc, references[static_cast<std::size_t>(s)],
              stream_jobs[static_cast<std::size_t>(s)]);
        }
        bool oneshots_identical = true;
        EngineResult result;
        for (std::size_t i = 0; i < oneshot_tickets.size(); ++i) {
          oneshots_identical &=
              async.take(oneshot_tickets[i], result) &&
              result.cmax == oneshot_reference[i].cmax &&
              result.weighted_completion_sum ==
                  oneshot_reference[i].weighted_completion_sum;
        }
        oneshots_identical &=
            oneshot_tickets.size() == oneshot_requests.size();

        determinism_rows.push_back(DeterminismRow{
            flat ? "flatlist" : "demt", shards, streams_identical,
            oneshots_identical});
        all_ok &= streams_identical && oneshots_identical;
        std::cout << strfmt("%-10s %-8d %10s %10s\n",
                            flat ? "flatlist" : "demt", shards,
                            streams_identical ? "yes" : "NO",
                            oneshots_identical ? "yes" : "NO");
      }
    }
  }

  // --- decision latency + arrival throughput (mixed §5 workload) -------
  struct LatencyRow {
    int shards = 0;
    double arrivals_per_s = 0.0;
    Percentiles latency;
  };
  std::vector<LatencyRow> latency_rows;
  {
    // A mixed arrival tape per stream: moldable + rigid + divisible.
    std::vector<std::vector<StreamArrival>> tapes;
    Rng mix_rng(seed ^ 0x5EEDULL);
    for (int s = 0; s < num_streams; ++s) {
      std::vector<StreamArrival> tape;
      double release = 0.0;
      for (int i = 0; i < jobs_per_stream; ++i) {
        const double pick = mix_rng.uniform();
        if (pick < 0.70) {
          Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m,
                                           mix_rng);
          tape.push_back(moldable_arrival(tmp.task(0), release));
        } else if (pick < 0.85) {
          tape.push_back(rigid_arrival(
              static_cast<int>(mix_rng.uniform_int(1, std::max(1, m / 2))),
              mix_rng.uniform(0.5, 3.0), mix_rng.uniform(0.5, 2.0),
              release));
        } else {
          tape.push_back(divisible_arrival(mix_rng.uniform(1.0, 8.0),
                                           mix_rng.uniform(0.5, 2.0),
                                           release));
        }
        release += mix_rng.exponential(mean_gap);
      }
      tapes.push_back(std::move(tape));
    }
    const int chunk = 4;
    std::cout << strfmt("\n%-8s %14s %10s %10s %10s %10s\n", "shards",
                        "arrivals/s", "p50 ms", "p90 ms", "p99 ms",
                        "max ms");
    for (int shards : shard_settings) {
      AsyncOptions options;
      options.shards = shards;
      options.max_batch = max_batch;
      options.flush_after_ms = flush_ms;
      options.queue_capacity = 4096;
      options.max_streams = std::max(8, num_streams);
      AsyncScheduler async(options);
      std::vector<double> latencies;
      StreamDelivery delivery;
      std::size_t arrivals_served = 0;
      WallTimer timer;
      for (int r = 0; r < reps; ++r) {
        std::vector<StreamTicket> streams;
        StreamOptions stream_options;
        stream_options.m = m;
        stream_options.offline_algorithm = EngineAlgorithm::FlatList;
        for (int s = 0; s < num_streams; ++s) {
          streams.push_back(async.open_stream(stream_options));
        }
        std::vector<Ticket> tickets;
        for (int s = 0; s < num_streams; ++s) {
          const auto& tape = tapes[static_cast<std::size_t>(s)];
          for (std::size_t i = 0; i < tape.size();
               i += static_cast<std::size_t>(chunk)) {
            const auto count =
                std::min<std::size_t>(chunk, tape.size() - i);
            const double watermark =
                i + count < tape.size() ? tape[i + count].release
                                        : tape.back().release;
            tickets.push_back(
                async.submit_stream(streams[static_cast<std::size_t>(s)],
                                    tape.data() + i, count, watermark));
            arrivals_served += count;
          }
          tickets.push_back(
              async.close_stream(streams[static_cast<std::size_t>(s)]));
        }
        async.drain();
        for (const Ticket& ticket : tickets) {
          if (!ticket.accepted()) {
            all_ok = false;
            continue;
          }
          latencies.push_back(async.latency_seconds(ticket) * 1e3);
          (void)async.take_stream(ticket, delivery);
        }
      }
      const double elapsed = timer.seconds();
      LatencyRow row;
      row.shards = shards;
      row.arrivals_per_s = static_cast<double>(arrivals_served) / elapsed;
      row.latency = percentiles(latencies);
      latency_rows.push_back(row);
      std::cout << strfmt("%-8d %14.1f %10.3f %10.3f %10.3f %10.3f\n",
                          row.shards, row.arrivals_per_s, row.latency.p50,
                          row.latency.p90, row.latency.p99,
                          row.latency.max);
    }
  }

  // --- steady-state allocations per arrival (FlatList stream path) -----
  double allocs_per_arrival = -1.0;  // -1 = not measured (sanitizer build)
  if (kAllocHookEnabled) {
    AsyncOptions options;
    options.shards = 1;
    options.max_batch = max_batch;
    options.flush_after_ms = flush_ms;
    options.queue_capacity = 8;  // small slot ring: warm-up visits every slot
    options.max_streams = 4;
    AsyncScheduler async(options);
    const auto& jobs = stream_jobs[0];
    std::vector<StreamArrival> tape;
    for (const auto& job : jobs) {
      tape.push_back(moldable_arrival(job.task, job.release));
    }
    StreamOptions stream_options;
    stream_options.m = m;
    stream_options.offline_algorithm = EngineAlgorithm::FlatList;
    StreamDelivery delivery;
    const auto round = [&] {
      const StreamTicket stream = async.open_stream(stream_options);
      const Ticket feed = async.submit_stream(stream, tape.data(),
                                              tape.size(),
                                              tape.back().release);
      (void)async.wait(feed);
      (void)async.take_stream(feed, delivery);
      const Ticket close = async.close_stream(stream);
      (void)async.wait(close);
      (void)async.take_stream(close, delivery);
    };
    // Warm-up: cycle the slot and stream rings until every pooled buffer
    // hosted both feed shapes.
    for (int r = 0; r < 16; ++r) round();
    const std::uint64_t before = g_alloc_count.load();
    for (int r = 0; r < reps; ++r) round();
    allocs_per_arrival =
        static_cast<double>(g_alloc_count.load() - before) /
        static_cast<double>(tape.size() * static_cast<std::size_t>(reps));
    std::cout << strfmt(
        "\n# steady-state allocations (1 shard, flatlist stream): "
        "%.2f allocs/arrival\n",
        allocs_per_arrival);
    if (allocs_per_arrival != 0.0) {
      std::cerr << "ERROR: steady-state stream path allocated\n";
      all_ok = false;
    }
  } else {
    std::cout << "\n# steady-state allocations: not measured "
                 "(operator-new hook disabled under AddressSanitizer)\n";
  }

  const std::string json_path = args.get_string("json", "BENCH_online.json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << strfmt(
        "{\n  \"benchmark\": \"online_stream\",\n"
        "  \"streams\": %d,\n  \"jobs_per_stream\": %d,\n  \"m\": %d,\n"
        "  \"mean_gap\": %.3f,\n  \"max_batch\": %d,\n"
        "  \"flush_after_ms\": %.3f,\n  \"reps\": %d,\n"
        "  \"shuffles\": %d,\n  \"pool_workers\": %zu,\n",
        num_streams, jobs_per_stream, m, mean_gap, max_batch, flush_ms,
        reps, shuffles, shared_thread_pool().size());
    out << "  \"determinism\": [\n";
    for (std::size_t i = 0; i < determinism_rows.size(); ++i) {
      const auto& row = determinism_rows[i];
      out << strfmt(
          "    {\"algorithm\": \"%s\", \"shards\": %d, "
          "\"streams_identical_to_reference\": %s, "
          "\"oneshots_identical_to_sync\": %s}%s\n",
          row.algorithm.c_str(), row.shards,
          row.streams_identical ? "true" : "false",
          row.oneshots_identical ? "true" : "false",
          i + 1 < determinism_rows.size() ? "," : "");
    }
    out << "  ],\n  \"latency\": [\n";
    for (std::size_t i = 0; i < latency_rows.size(); ++i) {
      const auto& row = latency_rows[i];
      out << strfmt(
          "    {\"shards\": %d, \"arrivals_per_s\": %.1f, "
          "\"feed_latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, "
          "\"p99\": %.3f, \"max\": %.3f}}%s\n",
          row.shards, row.arrivals_per_s, row.latency.p50, row.latency.p90,
          row.latency.p99, row.latency.max,
          i + 1 < latency_rows.size() ? "," : "");
    }
    out << strfmt(
        "  ],\n  \"allocs\": [\n    {\"path\": \"stream_flatlist\", "
        "\"allocs_per_arrival\": %.2f}\n  ]\n}\n",
        allocs_per_arrival);
    std::cout << "# json written to " << json_path << "\n";
  }

  if (!all_ok) {
    std::cerr << "ERROR: online_stream contract violated (see above)\n";
    return 1;
  }
  return 0;
}
