/// Google-benchmark micro costs of the algorithmic components: the
/// per-batch knapsack, the dual-approximation search, the LP lower bound,
/// the list scheduler, the generators, and the full DEMT call. These back
/// the complexity claims (knapsack O(mn), overall O(mnK)) with
/// measurements.

#include <benchmark/benchmark.h>

#include "core/batching.hpp"
#include "core/demt.hpp"
#include "core/knapsack.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/list_scheduler.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace moldsched;

Instance make_instance(int n, int m, WorkloadFamily family, std::uint64_t seed) {
  Rng rng(seed);
  return generate_instance(family, n, m, rng);
}

void BM_Knapsack(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const int m = 200;
  Rng rng(1);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    items.push_back(KnapsackItem{static_cast<int>(rng.uniform_int(1, 16)),
                                 rng.uniform(1.0, 10.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_knapsack(items, m));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Knapsack)->Range(25, 400)->Complexity(benchmark::oN);

void BM_GenerateInstance(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_instance(WorkloadFamily::Cirne, n, 200, rng));
  }
}
BENCHMARK(BM_GenerateInstance)->Range(25, 400);

void BM_DualApproxSearch(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance =
      make_instance(n, 200, WorkloadFamily::Mixed, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_cmax(instance));
  }
}
BENCHMARK(BM_DualApproxSearch)->Range(25, 400);

void BM_ListScheduler(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<ListJob> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back(ListJob{i, static_cast<int>(rng.uniform_int(1, 32)),
                           rng.uniform(0.5, 10.0), 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(200, n, jobs));
  }
}
BENCHMARK(BM_ListScheduler)->Range(25, 400);

void BM_MinsumLpBound(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance =
      make_instance(n, 200, WorkloadFamily::HighlyParallel, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minsum_lower_bound(instance));
  }
}
BENCHMARK(BM_MinsumLpBound)->RangeMultiplier(2)->Range(25, 100)
    ->Unit(benchmark::kMillisecond);

void BM_DemtFull(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance =
      make_instance(n, 200, WorkloadFamily::Cirne, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demt_schedule(instance));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DemtFull)->Range(25, 400)->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_DemtNoShuffle(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance =
      make_instance(n, 200, WorkloadFamily::Cirne, 6);
  DemtOptions options;
  options.shuffles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(demt_schedule(instance, options));
  }
}
BENCHMARK(BM_DemtNoShuffle)->Range(25, 400)->Unit(benchmark::kMillisecond);

void BM_BatchBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance instance =
      make_instance(n, 200, WorkloadFamily::Mixed, 7);
  std::vector<int> pending;
  for (int i = 0; i < n; ++i) pending.push_back(i);
  const double length = estimate_cmax(instance).estimate / 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_batch_items(instance, pending, length));
  }
}
BENCHMARK(BM_BatchBuild)->Range(25, 400);

}  // namespace

BENCHMARK_MAIN();
