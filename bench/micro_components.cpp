/// Micro costs of the algorithmic components: the per-batch knapsack, the
/// dual-approximation search, the list scheduler, the generators, and the
/// full DEMT call. These back the complexity claims (knapsack O(mn),
/// overall O(mnK)) with measurements.
///
/// Self-contained harness (no external benchmark dependency): every
/// component is timed with a calibrated repetition loop, and a global
/// operator-new hook counts heap allocations so the zero-allocation claim
/// of the DEMT shuffle loop is verified, not asserted. Results go to stdout
/// and, machine-readable, to BENCH_demt_micro.json (--json PATH to
/// override, --json "" to disable).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "core/batching.hpp"
#include "core/demt.hpp"
#include "core/knapsack.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "sched/flat_schedule.hpp"
#include "sched/list_scheduler.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

// Allocation counting uses the shared hook in alloc_hook.hpp;
// measurements take deltas around the timed region (single-threaded
// here, so the delta is exact). Rows report -1 under sanitizers.

namespace {

using namespace moldsched;

struct BenchResult {
  std::string name;
  int n = 0;
  int reps = 0;
  double per_call_s = 0.0;
  double tasks_per_s = 0.0;  // n / per_call_s when n is a task count
  double allocs_per_call = -1.0;  // -1 = not measured
};

std::vector<BenchResult> g_results;

/// Time `body` with enough repetitions to accumulate ~min_time seconds.
template <typename F>
void bench(const std::string& name, int n, F&& body,
           double min_time = 0.05) {
  body();  // warm-up (also sizes any reusable workspaces)
  int reps = 1;
  double elapsed = 0.0;
  for (;;) {
    const std::uint64_t alloc_before =
        g_alloc_count.load(std::memory_order_relaxed);
    WallTimer timer;
    for (int r = 0; r < reps; ++r) body();
    elapsed = timer.seconds();
    if (elapsed >= min_time || reps >= (1 << 20)) {
      const std::uint64_t alloc_after =
          g_alloc_count.load(std::memory_order_relaxed);
      BenchResult result;
      result.name = name;
      result.n = n;
      result.reps = reps;
      result.per_call_s = elapsed / reps;
      result.tasks_per_s = n > 0 ? n / result.per_call_s : 0.0;
      result.allocs_per_call =
          kAllocHookEnabled
              ? static_cast<double>(alloc_after - alloc_before) / reps
              : -1.0;
      g_results.push_back(result);
      std::cout << strfmt("%-28s n=%4d  %12.3f us/call  %10.0f tasks/s  "
                          "%8.1f allocs/call\n",
                          name.c_str(), n, result.per_call_s * 1e6,
                          result.tasks_per_s, result.allocs_per_call);
      return;
    }
    reps *= 2;
  }
}

Instance make_instance(int n, int m, WorkloadFamily family,
                       std::uint64_t seed) {
  Rng rng(seed);
  return generate_instance(family, n, m, rng);
}

void write_json(const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"micro_components\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const auto& r = g_results[i];
    out << strfmt("    {\"name\": \"%s\", \"n\": %d, \"reps\": %d, "
                  "\"per_call_s\": %.9f, \"tasks_per_s\": %.3f, "
                  "\"allocs_per_call\": %.2f}%s\n",
                  r.name.c_str(), r.n, r.reps, r.per_call_s, r.tasks_per_s,
                  r.allocs_per_call, i + 1 < g_results.size() ? "," : "");
  }
  out << "  ]\n}\n";
  std::cout << "# json written to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout
        << "micro_components -- per-component micro costs of the DEMT\n"
        << "pipeline (knapsack, generators, dual-approx search, list\n"
        << "scheduler, batch build, full DEMT), with a global operator-new\n"
        << "hook verifying the zero-allocation shuffle loop.\n"
        << "Gated per-call checks (non-zero exit on failure): the\n"
        << "steady-state dual_test and knapsack row-sweep paths must run\n"
        << "allocation-free, the fused metric scan must match the split\n"
        << "scans bit-for-bit and allocate nothing, and at the largest size\n"
        << "the vectorized knapsack / fused scan must stay within 1.5x of\n"
        << "their scalar references (margin absorbs machine noise; the\n"
        << "point is catching a kernel regressing to much slower).\n\n"
        << "  --sizes a,b,c   task counts [25,100,400]\n"
        << "  --m N           processors [200]\n"
        << "  --quick         sizes 50,200\n"
        << "  --json PATH     JSON report [BENCH_demt_micro.json]; \"\" off\n\n"
        << "JSON schema: {benchmark, results: [{name, n, reps,\n"
        << "per_call_s, tasks_per_s, allocs_per_call}]} -- one row per\n"
        << "(component, n); allocs_per_call = -1 when not measured; the\n"
        << "shuffle_alloc_delta row reports heap allocations per extra\n"
        << "shuffle iteration (must be ~0).\n"
        << "Full schema reference and recorded baselines for every\n"
        << "BENCH_*.json report: docs/BENCHMARKS.md.\n";
    return 0;
  }
  const std::vector<int> sizes =
      args.has("quick") ? std::vector<int>{50, 200}
                        : args.get_int_list("sizes", {25, 100, 400});
  const int m = static_cast<int>(args.get_int("m", 200));

  // Knapsack three ways: the public vectorized entry point (allocates its
  // returned selection), the retained scalar reference, and the pooled
  // row-sweep kernel the batch loop actually calls. The last one is the
  // serving path, so it carries two gates: zero steady-state allocations,
  // and -- at the largest size -- per-call time within 1.5x of the scalar
  // reference (the sweep should win outright; the margin is noise head
  // room, the gate catches a rewrite that regresses the kernel).
  bool knap_alloc_ok = true;
  double knap_ref_s = 0.0;
  double knap_sweep_s = 0.0;
  for (int n : sizes) {
    Rng rng(1);
    std::vector<KnapsackItem> items;
    std::vector<int> costs;
    std::vector<double> weights;
    for (int i = 0; i < n; ++i) {
      items.push_back(KnapsackItem{static_cast<int>(rng.uniform_int(1, 16)),
                                   rng.uniform(1.0, 10.0)});
      costs.push_back(items.back().cost);
      weights.push_back(items.back().weight);
    }
    bench(strfmt("knapsack"), n,
          [&] { (void)max_weight_knapsack(items, m); });
    bench("knapsack_reference", n,
          [&] { (void)max_weight_knapsack_reference(items, m); });
    knap_ref_s = g_results.back().per_call_s;
    KnapsackWorkspace kws;
    std::vector<int> selected;
    bench("knapsack_row_sweep", n, [&] {
      max_weight_knapsack_into(costs.data(), weights.data(), n, m, kws,
                               selected);
    });
    knap_sweep_s = g_results.back().per_call_s;
    if (kAllocHookEnabled && g_results.back().allocs_per_call != 0.0) {
      knap_alloc_ok = false;
    }
  }
  // Timing gate at the largest size only (small sizes are all overhead).
  const bool knap_time_ok =
      knap_sweep_s <= knap_ref_s * 1.5 || knap_ref_s == 0.0;

  for (int n : sizes) {
    Rng rng(2);
    bench("generate_instance", n,
          [&] { (void)generate_instance(WorkloadFamily::Cirne, n, m, rng); });
  }

  for (int n : sizes) {
    const Instance instance = make_instance(n, m, WorkloadFamily::Mixed, 3);
    bench("dual_approx_search", n, [&] { (void)estimate_cmax(instance); });
  }

  // The same search through the pooled workspace form demt_schedule uses:
  // after the first call, every dual_test of the bisection must run
  // allocation-free (the pick matrix, DP rows, option pools and partition
  // buffers all live in the workspace). Gated below.
  bool dual_ws_ok = true;
  for (int n : sizes) {
    const Instance instance = make_instance(n, m, WorkloadFamily::Mixed, 3);
    const InstanceAllotments tables(instance);
    DualTestWorkspace ws;
    DualTestResult scratch;
    // Per-test allocations, isolated from the CmaxEstimate return value:
    // one search sizes the workspace, then dual_test_into runs directly
    // across the search's typical guess range.
    const CmaxEstimate sized = estimate_cmax(instance, 1e-4, tables, ws);
    dual_test_into(instance, sized.estimate, tables, ws, scratch);  // warm
    const std::uint64_t before = g_alloc_count.load();
    const int probes = 64;
    for (int i = 0; i < probes; ++i) {
      const double lambda =
          sized.lower_bound +
          (sized.estimate * 2.0 - sized.lower_bound) * (i + 1) / probes;
      dual_test_into(instance, lambda, tables, ws, scratch);
    }
    const double per_test =
        kAllocHookEnabled
            ? static_cast<double>(g_alloc_count.load() - before) / probes
            : -1.0;
    std::cout << strfmt("%-28s n=%4d  allocs/dual_test = %.2f\n",
                        "dual_test_steady_state", n, per_test);
    BenchResult result;
    result.name = "dual_test_steady_state";
    result.n = n;
    result.reps = probes;
    result.allocs_per_call = per_test;
    g_results.push_back(result);
    if (kAllocHookEnabled && per_test != 0.0) dual_ws_ok = false;
  }

  for (int n : sizes) {
    Rng rng(4);
    std::vector<ListJob> jobs;
    for (int i = 0; i < n; ++i) {
      jobs.push_back(ListJob{i, static_cast<int>(rng.uniform_int(1, 32)),
                             rng.uniform(0.5, 10.0), 0.0});
    }
    bench("list_scheduler", n, [&] { (void)list_schedule(m, n, jobs); });
  }

  for (int n : sizes) {
    const Instance instance = make_instance(n, m, WorkloadFamily::Mixed, 7);
    std::vector<int> pending;
    for (int i = 0; i < n; ++i) pending.push_back(i);
    const double length = estimate_cmax(instance).estimate / 4.0;
    bench("batch_build", n,
          [&] { (void)build_batch_items(instance, pending, length); });
  }

  // Fused min/argmin candidate-metric scan vs the two split scans it
  // replaced. Three gates: the fused pass allocates nothing, its results
  // equal the split scans bit-for-bit (same adds, same max comparisons,
  // same order -- see FlatPlacements::metrics), and at the largest size it
  // stays within 1.5x of the split pair (it touches each entry once
  // instead of twice, so it should simply win; the gate is a regression
  // tripwire, not a tight bound).
  bool metrics_alloc_ok = true;
  bool metrics_identical = true;
  double metrics_fused_s = 0.0;
  double metrics_split_s = 0.0;
  for (int n : sizes) {
    const Instance instance = make_instance(n, m, WorkloadFamily::Mixed, 9);
    const DemtResult placed = demt_schedule(instance);
    FlatPlacements flat;
    flat.assign_from(placed.schedule);
    FlatMetrics fused;
    bench("metrics_fused_scan", n, [&] { fused = flat.metrics(instance); });
    metrics_fused_s = g_results.back().per_call_s;
    if (kAllocHookEnabled && g_results.back().allocs_per_call != 0.0) {
      metrics_alloc_ok = false;
    }
    double split_wc = 0.0;
    double split_cmax = 0.0;
    bench("metrics_split_scans", n, [&] {
      split_wc = flat.weighted_completion_sum(instance);
      split_cmax = flat.cmax();
    });
    metrics_split_s = g_results.back().per_call_s;
    if (fused.weighted_completion_sum != split_wc ||
        fused.cmax != split_cmax) {
      metrics_identical = false;
    }
  }
  const bool metrics_time_ok =
      metrics_fused_s <= metrics_split_s * 1.5 || metrics_split_s == 0.0;

  for (int n : sizes) {
    const Instance instance = make_instance(n, m, WorkloadFamily::Cirne, 6);
    bench("demt_full", n, [&] { (void)demt_schedule(instance); }, 0.2);
  }

  for (int n : sizes) {
    const Instance instance = make_instance(n, m, WorkloadFamily::Cirne, 6);
    DemtOptions options;
    options.shuffles = 0;
    bench("demt_no_shuffle", n,
          [&] { (void)demt_schedule(instance, options); }, 0.2);
  }

  // Zero-allocation check for the shuffle loop: compare a 1-shuffle call
  // against a 65-shuffle call. The extra 64 iterations must reuse the
  // workspace, so the allocation delta per extra shuffle should be ~0.
  {
    const int n = 200;
    const Instance instance = make_instance(n, m, WorkloadFamily::Cirne, 6);
    DemtOptions base;
    base.shuffles = 1;
    DemtOptions heavy;
    heavy.shuffles = 65;
    (void)demt_schedule(instance, base);  // warm-up
    const auto count_allocs = [&](const DemtOptions& options) {
      const std::uint64_t before = g_alloc_count.load();
      (void)demt_schedule(instance, options);
      return static_cast<double>(g_alloc_count.load() - before);
    };
    const double allocs_1 = count_allocs(base);
    const double allocs_65 = count_allocs(heavy);
    const double per_shuffle =
        kAllocHookEnabled ? (allocs_65 - allocs_1) / 64.0 : -1.0;
    std::cout << strfmt("%-28s n=%4d  allocs/shuffle-iter = %.2f "
                        "(1 shuffle: %.0f, 65 shuffles: %.0f)\n",
                        "shuffle_alloc_delta", n, per_shuffle, allocs_1,
                        allocs_65);
    BenchResult result;
    result.name = "shuffle_alloc_delta";
    result.n = n;
    result.reps = 1;
    result.allocs_per_call = per_shuffle;
    g_results.push_back(result);
  }

  // Cold-path allocation budget: one demt_schedule call through the
  // convenience form, which builds a fresh DemtWorkspace every time — the
  // opposite of the pooled serving path. Measured on the serving baseline
  // shape (n=60, m=32 — the BENCH_serve default): the count is all
  // workspace sizing (tables, DP rows, pick matrix, placement buffers),
  // ≈346 today. Informational gate with generous head room (~2x the
  // recorded figure): it trips only when a change turns workspace sizing
  // into per-element churn.
  bool cold_alloc_ok = true;
  {
    const int n = 60;
    const Instance instance = make_instance(n, 32, WorkloadFamily::Cirne, 6);
    (void)demt_schedule(instance);  // settle any one-time static state
    const std::uint64_t before = g_alloc_count.load();
    (void)demt_schedule(instance);
    const double cold_allocs =
        kAllocHookEnabled
            ? static_cast<double>(g_alloc_count.load() - before)
            : -1.0;
    std::cout << strfmt("%-28s n=%4d  allocs/cold-call = %.0f\n",
                        "demt_no_workspace_reuse", n, cold_allocs);
    BenchResult result;
    result.name = "demt_no_workspace_reuse";
    result.n = n;
    result.reps = 1;
    result.allocs_per_call = cold_allocs;
    g_results.push_back(result);
    if (kAllocHookEnabled && cold_allocs > 700.0) cold_alloc_ok = false;
  }

  // Distinct default from fig7_runtime's BENCH_demt.json (different
  // schema); running both benches must not clobber either report.
  const std::string json_path =
      args.get_string("json", "BENCH_demt_micro.json");
  if (!json_path.empty()) write_json(json_path);
  bool ok = true;
  if (!dual_ws_ok) {
    std::cerr << "ERROR: dual_test workspace path allocated per test\n";
    ok = false;
  }
  if (!knap_alloc_ok) {
    std::cerr << "ERROR: knapsack row-sweep kernel allocated per call\n";
    ok = false;
  }
  if (!knap_time_ok) {
    std::cerr << strfmt("ERROR: knapsack row sweep slower than 1.5x the "
                        "scalar reference (%.3f us vs %.3f us per call)\n",
                        knap_sweep_s * 1e6, knap_ref_s * 1e6);
    ok = false;
  }
  if (!metrics_alloc_ok) {
    std::cerr << "ERROR: fused metric scan allocated per call\n";
    ok = false;
  }
  if (!metrics_identical) {
    std::cerr << "ERROR: fused metric scan diverged from the split scans\n";
    ok = false;
  }
  if (!metrics_time_ok) {
    std::cerr << strfmt("ERROR: fused metric scan slower than 1.5x the "
                        "split scans (%.3f us vs %.3f us per call)\n",
                        metrics_fused_s * 1e6, metrics_split_s * 1e6);
    ok = false;
  }
  if (!cold_alloc_ok) {
    std::cerr << "ERROR: cold demt_schedule call blew its allocation "
                 "budget (workspace sizing should stay near ~350 allocs)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
