/// Figure 4 reproduction: performance ratios on 200 processors, highly
/// parallel tasks (recurrence X~N(0.9,0.2)). Expected shape: DEMT clearly
/// best on the minsum criterion; Gang good at small n, Sequential good only
/// at large n; list baselines stable but worse on minsum.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  moldsched::FigureConfig config;
  config.title = "Figure 4 - highly parallel";
  config.family = moldsched::WorkloadFamily::HighlyParallel;
  return moldsched::run_figure_main(argc, argv, config);
}
