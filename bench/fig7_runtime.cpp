/// Figure 7 reproduction: wall-clock execution time of the DEMT scheduling
/// call against the number of tasks, on the weakly parallel, Cirne and
/// highly parallel workloads (m = 200). The paper reports < 2 s at n = 400
/// on 2004 hardware; the shape (roughly linear growth in n, weakly parallel
/// slowest because of its larger K) is the reproduction target.
///
/// Flags: --sizes, --m, --runs, --seed, --csv as in the figure harnesses,
/// plus the shuffle-engine knobs: --shuffles N (candidates per call),
/// --shuffle-workers K (0 = all shared-pool workers, 1 = sequential), and
/// --json PATH for a machine-readable BENCH_demt.json ("" disables). A
/// shuffle-heavy speedup check: `fig7_runtime --sizes 200 --m 64
/// --shuffles 64 --shuffle-workers 0` vs `--shuffle-workers 1` — identical
/// schedules, parallel wall-clock.

#include <fstream>
#include <iostream>

#include "core/demt.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strfmt.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout
        << "fig7_runtime -- DEMT wall-clock vs task count (paper Fig. 7)\n\n"
        << "  --sizes a,b,c        task counts [25..400]\n"
        << "  --m N                processors [200]\n"
        << "  --runs N             instances per point [10]\n"
        << "  --seed S             base seed [20040627]\n"
        << "  --shuffles N         shuffle candidates per DEMT call [8]\n"
        << "  --shuffle-workers K  0 = all pool workers, 1 = sequential [1]\n"
        << "  --quick              sizes 25,100,400\n"
        << "  --csv PATH           also write CSV (n, family, mean_s,\n"
        << "                       min_s, max_s)\n"
        << "  --json PATH          JSON report [BENCH_demt.json]; \"\" off\n\n"
        << "JSON schema: {benchmark, m, runs, shuffles, shuffle_workers,\n"
        << "results: [{n, family, mean_s, min_s, max_s, tasks_per_s,\n"
        << "last_wc, last_cmax}]} -- last_wc/last_cmax record the final\n"
        << "run's schedule metrics so parallel and sequential runs of the\n"
        << "bench can be diffed for identical output, not just speed.\n"
        << "Full schema reference and recorded baselines for every\n"
        << "BENCH_*.json report: docs/BENCHMARKS.md.\n";
    return 0;
  }
  std::vector<int> sizes = args.get_int_list(
      "sizes", {25, 50, 100, 150, 200, 250, 300, 350, 400});
  if (args.has("quick")) sizes = {25, 100, 400};
  const int m = static_cast<int>(args.get_int("m", 200));
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  DemtOptions demt_options;
  demt_options.shuffles =
      static_cast<int>(args.get_int("shuffles", demt_options.shuffles));
  demt_options.shuffle_workers = static_cast<int>(
      args.get_int("shuffle-workers", demt_options.shuffle_workers));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel};

  std::cout << "# Figure 7 - execution time of the DEMT scheduling "
               "algorithm (seconds)\n";
  std::cout << strfmt(
      "# m=%d, %d runs per point (mean [min,max]), %d shuffles, "
      "shuffle_workers=%d\n\n",
      m, runs, demt_options.shuffles, demt_options.shuffle_workers);
  std::cout << strfmt("%6s", "n");
  for (auto family : families) {
    std::cout << strfmt("  %-26s", std::string(family_name(family)).c_str());
  }
  std::cout << '\n';

  struct JsonRow {
    int n;
    std::string family;
    double mean_s, min_s, max_s, tasks_per_s, wc, cmax;
  };
  std::vector<JsonRow> json_rows;
  std::vector<std::vector<std::string>> csv_rows;
  for (int n : sizes) {
    std::cout << strfmt("%6d", n);
    for (auto family : families) {
      Rng rng(seed + static_cast<std::uint64_t>(n) * 13 +
              static_cast<std::uint64_t>(family));
      RunningStats time_s;
      double wc = 0.0;
      double cmax = 0.0;
      for (int r = 0; r < runs; ++r) {
        const Instance instance = generate_instance(family, n, m, rng);
        WallTimer timer;
        const auto result = demt_schedule(instance, demt_options);
        time_s.add(timer.seconds());
        // Record schedule quality so parallel/sequential runs of this bench
        // can be checked for identical output, not just speed.
        wc = result.schedule.weighted_completion_sum(instance);
        cmax = result.schedule.cmax();
      }
      std::cout << strfmt("  %8.4f [%7.4f,%7.4f]", time_s.mean(), time_s.min(),
                          time_s.max());
      csv_rows.push_back({strfmt("%d", n),
                          std::string(family_name(family)),
                          strfmt("%.6f", time_s.mean()),
                          strfmt("%.6f", time_s.min()),
                          strfmt("%.6f", time_s.max())});
      json_rows.push_back({n, std::string(family_name(family)), time_s.mean(),
                           time_s.min(), time_s.max(), n / time_s.mean(), wc,
                           cmax});
    }
    std::cout << '\n';
  }

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    CsvWriter csv(out);
    csv.header({"n", "family", "mean_s", "min_s", "max_s"});
    for (const auto& row : csv_rows) csv.row(row);
    std::cout << "# csv written to " << csv_path << "\n";
  }

  const std::string json_path = args.get_string("json", "BENCH_demt.json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << strfmt(
        "{\n  \"benchmark\": \"fig7_runtime\",\n  \"m\": %d,\n"
        "  \"runs\": %d,\n  \"shuffles\": %d,\n  \"shuffle_workers\": %d,\n"
        "  \"results\": [\n",
        m, runs, demt_options.shuffles, demt_options.shuffle_workers);
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      out << strfmt(
          "    {\"n\": %d, \"family\": \"%s\", \"mean_s\": %.6f, "
          "\"min_s\": %.6f, \"max_s\": %.6f, \"tasks_per_s\": %.1f, "
          "\"last_wc\": %.6f, \"last_cmax\": %.6f}%s\n",
          r.n, r.family.c_str(), r.mean_s, r.min_s, r.max_s, r.tasks_per_s,
          r.wc, r.cmax, i + 1 < json_rows.size() ? "," : "");
    }
    out << "  ]\n}\n";
    std::cout << "# json written to " << json_path << "\n";
  }
  return 0;
}
