/// Figure 7 reproduction: wall-clock execution time of the DEMT scheduling
/// call against the number of tasks, on the weakly parallel, Cirne and
/// highly parallel workloads (m = 200). The paper reports < 2 s at n = 400
/// on 2004 hardware; the shape (roughly linear growth in n, weakly parallel
/// slowest because of its larger K) is the reproduction target.
///
/// Flags: --sizes, --m, --runs, --seed, --csv as in the figure harnesses.

#include <fstream>
#include <iostream>

#include "core/demt.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strfmt.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  std::vector<int> sizes = args.get_int_list(
      "sizes", {25, 50, 100, 150, 200, 250, 300, 350, 400});
  if (args.has("quick")) sizes = {25, 100, 400};
  const int m = static_cast<int>(args.get_int("m", 200));
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel};

  std::cout << "# Figure 7 - execution time of the DEMT scheduling "
               "algorithm (seconds)\n";
  std::cout << strfmt("# m=%d, %d runs per point (mean [min,max])\n\n", m,
                      runs);
  std::cout << strfmt("%6s", "n");
  for (auto family : families) {
    std::cout << strfmt("  %-26s", std::string(family_name(family)).c_str());
  }
  std::cout << '\n';

  std::vector<std::vector<std::string>> csv_rows;
  for (int n : sizes) {
    std::cout << strfmt("%6d", n);
    for (auto family : families) {
      Rng rng(seed + static_cast<std::uint64_t>(n) * 13 +
              static_cast<std::uint64_t>(family));
      RunningStats time_s;
      for (int r = 0; r < runs; ++r) {
        const Instance instance = generate_instance(family, n, m, rng);
        WallTimer timer;
        const auto result = demt_schedule(instance);
        time_s.add(timer.seconds());
        (void)result;
      }
      std::cout << strfmt("  %8.4f [%7.4f,%7.4f]", time_s.mean(), time_s.min(),
                          time_s.max());
      csv_rows.push_back({strfmt("%d", n),
                          std::string(family_name(family)),
                          strfmt("%.6f", time_s.mean()),
                          strfmt("%.6f", time_s.min()),
                          strfmt("%.6f", time_s.max())});
    }
    std::cout << '\n';
  }

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    CsvWriter csv(out);
    csv.header({"n", "family", "mean_s", "min_s", "max_s"});
    for (const auto& row : csv_rows) csv.row(row);
    std::cout << "# csv written to " << csv_path << "\n";
  }
  return 0;
}
