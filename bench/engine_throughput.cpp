/// Server-workload bench for the multi-instance SchedulerEngine: a fixed
/// set of scheduling requests is served repeatedly while we vary the
/// engine's worker count, measuring instances/sec, verifying the results
/// stay bit-identical, and counting steady-state heap allocations per
/// request with a global operator-new hook (same technique as
/// micro_components).
///
/// Run `engine_throughput --help` for flags and the JSON schema.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "engine/engine.hpp"
#include "util/cli.hpp"
#include "util/strfmt.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

// Allocation counting uses the shared operator-new hook in
// alloc_hook.hpp. Steady-state measurements run on the engine's
// single-strand path (workers=1) so the delta is exact; rows report -1
// under sanitizers (hook compiled out).

namespace {

using namespace moldsched;

constexpr const char* kHelp = R"(engine_throughput -- SchedulerEngine serving bench

Serves a fixed request set repeatedly through the multi-instance engine.

Flags
  --requests N      independent instances per batch call        [48]
  --n N             tasks per instance                          [60]
  --m N             processors per instance                     [32]
  --reps N          timed batch calls per worker setting        [5]
  --workers a,b,c   worker counts to sweep (0 = all pool)       [1,2,4,0]
  --shuffles N      DEMT shuffle candidates per request         [8]
  --online-jobs N   jobs per on-line simulation request         [24]
  --seed S          base RNG seed                               [20040627]
  --quick           small preset (8 requests, 2 reps)
  --json PATH       JSON report path ("" disables)              [BENCH_engine.json]
  --help            this text

JSON output schema (BENCH_engine.json)
  {
    "benchmark": "engine_throughput",
    "requests": int, "n": int, "m": int, "reps": int, "shuffles": int,
    "pool_workers": int,                    // shared_thread_pool().size()
    "throughput": [                         // off-line DEMT requests
      {"workers": int,                      // requested strand cap (0 = all)
       "strands": int,                      // strands actually used
       "instances_per_s": float,
       "identical_to_sequential": bool},    // bit-identical results check
      ...],
    "online": [                             // on-line simulation requests
      {"workers": int, "strands": int, "streams_per_s": float,
       "identical_to_sequential": bool}, ...],
    "allocs": [                             // steady-state, workers=1
      {"path": "engine_flatlist_metrics_only", "allocs_per_request": float},
      {"path": "engine_demt_with_schedule",   "allocs_per_request": float},
      {"path": "demt_no_workspace_reuse",     "allocs_per_request": float},
      {"path": "online_sim_demt_offline",     "allocs_per_request": float}]
  }
  "allocs_per_request" counts operator-new calls per request once the
  per-strand workspaces are warm; at the default workload shape
  (requests >= 48, n=60, m=32, 8 shuffles) BOTH
  engine_flatlist_metrics_only AND engine_demt_with_schedule must be
  exactly 0.00 — the whole DEMT pipeline (SoA allotment tables, pooled
  batch construction, flat placement/compaction, pooled Schedule
  materialisation) runs allocation-free once its workspace is warm, and
  the process exits non-zero on any regression that starts allocating
  per request, per shuffle or per task.
Full schema reference and recorded baselines for every BENCH_*.json
report: docs/BENCHMARKS.md.
)";

/// Alloc ceiling for the DEMT keep_schedules path at the default workload
/// shape: exactly zero. demt_schedule_into runs on pooled SoA buffers and
/// the keep_schedules materialisation reuses the result objects' Schedule
/// capacity, so a warm request stream must never touch the allocator
/// (formerly 1114, back when batch items and allotment tables were rebuilt
/// on the heap per request).
constexpr double kDemtScheduleAllocCeiling = 0.0;

bool results_identical(const std::vector<EngineResult>& a,
                       const std::vector<EngineResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cmax != b[i].cmax ||
        a[i].weighted_completion_sum != b[i].weighted_completion_sum) {
      return false;
    }
    if (a[i].has_schedule != b[i].has_schedule) return false;
    if (!a[i].has_schedule) continue;
    const Schedule& sa = a[i].schedule;
    const Schedule& sb = b[i].schedule;
    if (sa.num_tasks() != sb.num_tasks()) return false;
    for (int t = 0; t < sa.num_tasks(); ++t) {
      const Placement& pa = sa.placement(t);
      const Placement& pb = sb.placement(t);
      if (pa.start != pb.start || pa.duration != pb.duration ||
          pa.procs != pb.procs) {
        return false;
      }
    }
  }
  return true;
}

bool online_identical(const std::vector<FlatOnlineResult>& a,
                      const std::vector<FlatOnlineResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cmax != b[i].cmax ||
        a[i].weighted_completion_sum != b[i].weighted_completion_sum ||
        a[i].weighted_flow_sum != b[i].weighted_flow_sum ||
        a[i].num_batches != b[i].num_batches ||
        a[i].schedule.start != b[i].schedule.start ||
        a[i].schedule.duration != b[i].schedule.duration) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::cout << kHelp;
    return 0;
  }
  int num_requests = static_cast<int>(args.get_int("requests", 48));
  const int n = static_cast<int>(args.get_int("n", 60));
  const int m = static_cast<int>(args.get_int("m", 32));
  int reps = static_cast<int>(args.get_int("reps", 5));
  if (args.has("quick")) {
    num_requests = 8;
    reps = 2;
  }
  std::vector<int> worker_settings =
      args.get_int_list("workers", {1, 2, 4, 0});
  const int shuffles = static_cast<int>(args.get_int("shuffles", 8));
  const int online_jobs = static_cast<int>(args.get_int("online-jobs", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};

  // The request set: independent instances, mixed families.
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }
  DemtOptions demt_options;
  demt_options.shuffles = shuffles;
  std::vector<EngineRequest> requests(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    requests[i].instance = &instances[i];
    requests[i].algorithm = EngineAlgorithm::Demt;
    requests[i].demt = demt_options;
  }

  // On-line simulation request set: job streams over the same machine.
  std::vector<std::vector<OnlineJob>> streams(
      static_cast<std::size_t>(std::max(1, num_requests / 4)));
  for (auto& stream : streams) {
    double clock = 0.0;
    for (int j = 0; j < online_jobs; ++j) {
      Instance one = generate_instance(
          families[static_cast<std::size_t>(j) % families.size()], 1, m, rng);
      clock += rng.uniform(0.0, 1.0);
      stream.push_back(OnlineJob{one.task(0), clock});
    }
  }
  std::vector<OnlineRequest> online_requests(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    online_requests[i].m = m;
    online_requests[i].jobs = &streams[i];
    online_requests[i].offline_algorithm = EngineAlgorithm::Demt;
    online_requests[i].demt = demt_options;
  }

  std::cout << strfmt(
      "# engine_throughput: %d requests (n=%d, m=%d, %d shuffles), "
      "%d reps, pool=%zu workers\n\n",
      num_requests, n, m, shuffles, reps, shared_thread_pool().size());

  struct ThroughputRow {
    int workers = 0;
    int strands = 0;
    double per_s = 0.0;
    bool identical = true;
  };
  std::vector<ThroughputRow> offline_rows;
  std::vector<ThroughputRow> online_rows;

  // --- off-line throughput sweep -------------------------------------
  std::vector<EngineResult> reference;
  {
    SchedulerEngine sequential(EngineOptions{1, true});
    reference = sequential.schedule_batch(requests);
  }
  std::cout << strfmt("%-22s %8s %8s %14s %10s\n", "path", "workers",
                      "strands", "requests/s", "identical");
  for (int workers : worker_settings) {
    SchedulerEngine engine(EngineOptions{workers, true});
    std::vector<EngineResult> results;
    engine.schedule_batch(requests, results);  // warm-up
    WallTimer timer;
    for (int r = 0; r < reps; ++r) engine.schedule_batch(requests, results);
    const double elapsed = timer.seconds();
    ThroughputRow row;
    row.workers = workers;
    row.strands = engine.stats().strands_last_batch;
    row.per_s = static_cast<double>(num_requests) * reps / elapsed;
    row.identical = results_identical(results, reference);
    offline_rows.push_back(row);
    std::cout << strfmt("%-22s %8d %8d %14.1f %10s\n", "offline_demt",
                        row.workers, row.strands, row.per_s,
                        row.identical ? "yes" : "NO");
  }

  // --- on-line throughput sweep --------------------------------------
  std::vector<FlatOnlineResult> online_reference;
  {
    SchedulerEngine sequential(EngineOptions{1, true});
    sequential.simulate_batch(online_requests, online_reference);
  }
  for (int workers : worker_settings) {
    SchedulerEngine engine(EngineOptions{workers, true});
    std::vector<FlatOnlineResult> results;
    engine.simulate_batch(online_requests, results);  // warm-up
    WallTimer timer;
    for (int r = 0; r < reps; ++r) engine.simulate_batch(online_requests, results);
    const double elapsed = timer.seconds();
    ThroughputRow row;
    row.workers = workers;
    row.strands = engine.stats().strands_last_batch;
    row.per_s = static_cast<double>(streams.size()) * reps / elapsed;
    row.identical = online_identical(results, online_reference);
    online_rows.push_back(row);
    std::cout << strfmt("%-22s %8d %8d %14.1f %10s\n", "online_sim_demt",
                        row.workers, row.strands, row.per_s,
                        row.identical ? "yes" : "NO");
  }

  // --- steady-state allocations per request (single strand) ----------
  struct AllocRow {
    std::string path;
    double allocs_per_request = 0.0;
  };
  std::vector<AllocRow> alloc_rows;
  const auto measure = [&](const char* name, std::size_t served,
                           auto&& body) {
    body();  // warm the workspaces
    const std::uint64_t before = g_alloc_count.load();
    body();
    const double per_request =
        kAllocHookEnabled ? static_cast<double>(g_alloc_count.load() - before) /
                                static_cast<double>(served)
                          : -1.0;
    alloc_rows.push_back(AllocRow{name, per_request});
    std::cout << strfmt("%-34s %8.2f allocs/request\n", name, per_request);
  };

  std::cout << "\n# steady-state allocations (workers=1)\n";
  {
    SchedulerEngine engine(EngineOptions{1, false});
    std::vector<EngineRequest> flat_requests = requests;
    for (auto& r : flat_requests) r.algorithm = EngineAlgorithm::FlatList;
    std::vector<EngineResult> results;
    measure("engine_flatlist_metrics_only", requests.size(),
            [&] { engine.schedule_batch(flat_requests, results); });
  }
  {
    SchedulerEngine engine(EngineOptions{1, true});
    std::vector<EngineResult> results;
    measure("engine_demt_with_schedule", requests.size(),
            [&] { engine.schedule_batch(requests, results); });
  }
  {
    // Baseline without workspace reuse: fresh demt_schedule calls.
    measure("demt_no_workspace_reuse", instances.size(), [&] {
      for (const auto& instance : instances) {
        (void)demt_schedule(instance, demt_options);
      }
    });
  }
  {
    SchedulerEngine engine(EngineOptions{1, true});
    std::vector<FlatOnlineResult> results;
    measure("online_sim_demt_offline", streams.size(), [&] {
      engine.simulate_batch(online_requests, results);
    });
  }

  const std::string json_path = args.get_string("json", "BENCH_engine.json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << strfmt(
        "{\n  \"benchmark\": \"engine_throughput\",\n"
        "  \"requests\": %d,\n  \"n\": %d,\n  \"m\": %d,\n"
        "  \"reps\": %d,\n  \"shuffles\": %d,\n  \"pool_workers\": %zu,\n",
        num_requests, n, m, reps, shuffles, shared_thread_pool().size());
    out << "  \"throughput\": [\n";
    for (std::size_t i = 0; i < offline_rows.size(); ++i) {
      const auto& r = offline_rows[i];
      out << strfmt(
          "    {\"workers\": %d, \"strands\": %d, \"instances_per_s\": "
          "%.1f, \"identical_to_sequential\": %s}%s\n",
          r.workers, r.strands, r.per_s, r.identical ? "true" : "false",
          i + 1 < offline_rows.size() ? "," : "");
    }
    out << "  ],\n  \"online\": [\n";
    for (std::size_t i = 0; i < online_rows.size(); ++i) {
      const auto& r = online_rows[i];
      out << strfmt(
          "    {\"workers\": %d, \"strands\": %d, \"streams_per_s\": %.1f, "
          "\"identical_to_sequential\": %s}%s\n",
          r.workers, r.strands, r.per_s, r.identical ? "true" : "false",
          i + 1 < online_rows.size() ? "," : "");
    }
    out << "  ],\n  \"allocs\": [\n";
    for (std::size_t i = 0; i < alloc_rows.size(); ++i) {
      const auto& r = alloc_rows[i];
      out << strfmt(
          "    {\"path\": \"%s\", \"allocs_per_request\": %.2f}%s\n",
          r.path.c_str(), r.allocs_per_request,
          i + 1 < alloc_rows.size() ? "," : "");
    }
    out << "  ]\n}\n";
    std::cout << "# json written to " << json_path << "\n";
  }

  bool all_identical = true;
  for (const auto& r : offline_rows) all_identical &= r.identical;
  for (const auto& r : online_rows) all_identical &= r.identical;
  if (!all_identical) {
    std::cerr << "ERROR: results differed across worker counts\n";
    return 1;
  }
  // Zero-alloc gate: both serving paths — FlatList metrics-only AND the
  // full DEMT keep_schedules pipeline — must run allocation-free once
  // their workspaces are warm. Only meaningful at the default workload
  // shape and with enough requests to amortise warm-up; sanitizer builds
  // report -1 and skip.
  if (kAllocHookEnabled && num_requests >= 48 && n == 60 && m == 32 &&
      shuffles == 8) {
    for (const auto& r : alloc_rows) {
      const bool gated = r.path == "engine_demt_with_schedule" ||
                         r.path == "engine_flatlist_metrics_only";
      if (gated && r.allocs_per_request > kDemtScheduleAllocCeiling) {
        std::cerr << strfmt(
            "ERROR: %s allocated %.2f/request, ceiling %.2f\n",
            r.path.c_str(), r.allocs_per_request, kDemtScheduleAllocCeiling);
        return 1;
      }
    }
  }
  return 0;
}
