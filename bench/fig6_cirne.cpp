/// Figure 6 reproduction: performance ratios on 200 processors with the
/// Cirne–Berman moldable-job model (Downey speedups). Expected shape: DEMT
/// clearly outperforms every baseline on minsum and is the only algorithm
/// with a stable ratio across n.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  moldsched::FigureConfig config;
  config.title = "Figure 6 - cirne";
  config.family = moldsched::WorkloadFamily::Cirne;
  return moldsched::run_figure_main(argc, argv, config);
}
