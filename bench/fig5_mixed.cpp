/// Figure 5 reproduction: performance ratios on 200 processors, mixed
/// workload (70% small weakly-parallel N(1,0.5), 30% large highly-parallel
/// N(10,5)). Expected shape: DEMT stable around 2 on both criteria; SAF
/// beats DEMT on minsum; the other list orders degrade as n grows.

#include "figure_common.hpp"

int main(int argc, char** argv) {
  moldsched::FigureConfig config;
  config.title = "Figure 5 - mixed";
  config.family = moldsched::WorkloadFamily::Mixed;
  return moldsched::run_figure_main(argc, argv, config);
}
