/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API: build a small moldable
/// instance by hand, schedule it with the bi-criteria algorithm, inspect
/// the result against both lower bounds, and print an ASCII Gantt chart.
///
///   ./quickstart

#include <cstdio>

#include "core/demt.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "tasks/instance.hpp"

int main() {
  using namespace moldsched;

  // An 8-processor cluster with a handful of moldable jobs. Each task is a
  // vector of processing times p(1..m) plus a weight (priority).
  Instance instance(8);
  // A perfectly parallel render job: p(k) = 24 / k.
  {
    std::vector<double> times;
    for (int k = 1; k <= 8; ++k) times.push_back(24.0 / k);
    instance.add_task(MoldableTask(std::move(times), 3.0));
  }
  // A solver with diminishing returns past 4 processors.
  instance.add_task(
      MoldableTask({16.0, 8.5, 6.0, 4.8, 4.5, 4.4, 4.35, 4.3}, 5.0));
  // Six short sequential post-processing scripts (no speedup at all).
  for (int i = 0; i < 6; ++i) {
    instance.add_task(MoldableTask(std::vector<double>(8, 1.5), 1.0));
  }
  // A rigid legacy MPI job that only runs on exactly 4 processors.
  instance.add_task(MoldableTask({9.0, 9.0, 9.0, 2.6, 2.6, 2.6, 2.6, 2.6},
                                 2.0, /*min_procs=*/4));

  // Schedule with the paper's bi-criteria batch algorithm.
  const DemtResult result = demt_schedule(instance);
  require_valid(result.schedule, instance);  // throws if anything is off

  std::printf("scheduled %d tasks on %d processors\n", instance.num_tasks(),
              instance.procs());
  std::printf("  makespan (Cmax)        : %.3f\n", result.schedule.cmax());
  std::printf("  weighted minsum (SwC)  : %.3f\n",
              result.schedule.weighted_completion_sum(instance));
  std::printf("  batches used           : %d (grid K = %d)\n",
              result.diag.num_batches, result.diag.grid_k);

  // How good is that? Compare against the two lower bounds the paper uses.
  const CmaxEstimate cmax_bound = estimate_cmax(instance);
  const MinsumBoundResult minsum_bound_result = minsum_lower_bound(instance);
  std::printf("  Cmax ratio vs bound    : %.3f (bound %.3f)\n",
              result.schedule.cmax() / cmax_bound.lower_bound,
              cmax_bound.lower_bound);
  std::printf("  minsum ratio vs bound  : %.3f (bound %.3f)\n",
              result.schedule.weighted_completion_sum(instance) /
                  minsum_bound_result.bound,
              minsum_bound_result.bound);

  std::printf("\n%s", render_gantt(result.schedule).c_str());
  return 0;
}
