/// \file batch_server.cpp
/// Server-style use of the multi-instance SchedulerEngine: scheduling
/// requests arrive in waves (ticks), each wave is served as one engine
/// batch on the shared thread pool, and per-wave latency plus cumulative
/// throughput are reported — the shape of a cluster front-end serving many
/// concurrent users rather than one researcher running one instance.
///
///   ./batch_server [--ticks 10] [--wave 16] [--n 60] [--m 32]
///                  [--workers 0] [--algorithm demt|flatlist] [--seed 1]

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::printf(
        "batch_server -- serve waves of scheduling requests through the "
        "SchedulerEngine\n\n"
        "  --ticks N      waves to serve                [10]\n"
        "  --wave N       requests per wave             [16]\n"
        "  --n N          tasks per instance            [60]\n"
        "  --m N          processors per instance       [32]\n"
        "  --workers K    engine strands (0 = all pool) [0]\n"
        "  --algorithm A  demt | flatlist               [demt]\n"
        "  --seed S       RNG seed                      [1]\n"
        "No JSON output; see bench/engine_throughput for the measured "
        "BENCH_engine.json report.\n");
    return 0;
  }
  const int ticks = static_cast<int>(args.get_int("ticks", 10));
  const int wave = static_cast<int>(args.get_int("wave", 16));
  const int n = static_cast<int>(args.get_int("n", 60));
  const int m = static_cast<int>(args.get_int("m", 32));
  const int workers = static_cast<int>(args.get_int("workers", 0));
  const std::string algorithm_name = args.get_string("algorithm", "demt");
  const EngineAlgorithm algorithm = algorithm_name == "flatlist"
                                        ? EngineAlgorithm::FlatList
                                        : EngineAlgorithm::Demt;
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};

  SchedulerEngine engine(EngineOptions{workers, true});
  std::vector<EngineResult> results;  // reused storage, wave after wave
  RunningStats wave_ms;
  RunningStats cmax_stats;
  double total_seconds = 0.0;

  std::printf("batch_server: %d ticks x %d requests (n=%d, m=%d), "
              "%s, pool=%zu workers\n\n",
              ticks, wave, n, m, algorithm_name.c_str(),
              shared_thread_pool().size());

  for (int tick = 0; tick < ticks; ++tick) {
    // The wave of requests that "arrived" since the last tick.
    std::vector<Instance> instances;
    instances.reserve(static_cast<std::size_t>(wave));
    for (int i = 0; i < wave; ++i) {
      instances.push_back(generate_instance(
          families[static_cast<std::size_t>(i) % families.size()], n, m,
          rng));
    }
    std::vector<EngineRequest> requests(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      requests[i].instance = &instances[i];
      requests[i].algorithm = algorithm;
    }

    WallTimer timer;
    engine.schedule_batch(requests, results);
    const double seconds = timer.seconds();
    total_seconds += seconds;
    wave_ms.add(seconds * 1e3);
    for (const auto& result : results) cmax_stats.add(result.cmax);
    std::printf("tick %3d: %2zu requests in %7.2f ms (%7.1f req/s, "
                "%d strands)\n",
                tick, results.size(), seconds * 1e3,
                static_cast<double>(results.size()) / seconds,
                engine.stats().strands_last_batch);
  }

  const EngineStats& stats = engine.stats();
  std::printf("\nserved %llu requests in %d batches: %7.1f req/s overall, "
              "wave latency %.2f ms mean [%.2f, %.2f]\n",
              static_cast<unsigned long long>(stats.requests), ticks,
              static_cast<double>(stats.requests) / total_seconds,
              wave_ms.mean(), wave_ms.min(), wave_ms.max());
  std::printf("schedule quality: mean cmax %.2f over %s requests\n",
              cmax_stats.mean(), algorithm_name.c_str());
  return 0;
}
