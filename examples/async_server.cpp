/// \file async_server.cpp
/// Server-style use of the async submit/poll layer: requests arrive one by
/// one (an open-loop arrival stream, not pre-assembled batches), each
/// submit returns a Ticket immediately, the scheduler coalesces them into
/// engine batches behind the caller's back, and a completion loop polls
/// tickets and retires results as they finish — including explicit
/// Rejected handling when the arrival rate overruns the admission bound.
///
///   ./async_server [--requests 200] [--n 40] [--m 32] [--shards 2]
///                  [--max-batch 16] [--flush-ms 0.5] [--capacity 32]
///                  [--algorithm flatlist|demt] [--seed 1]

#include <cstdio>
#include <string>
#include <vector>

#include "serve/async_scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::printf(
        "async_server -- open-loop request stream through the async "
        "submit/poll serving layer\n\n"
        "  --requests N   requests to stream               [200]\n"
        "  --n N          tasks per instance               [40]\n"
        "  --m N          processors per instance          [32]\n"
        "  --shards K     engine shards                    [2]\n"
        "  --max-batch N  coalescing batch bound           [16]\n"
        "  --flush-ms X   deadline flush in ms             [0.5]\n"
        "  --capacity N   admission bound (small on purpose:\n"
        "                 overload shows Rejected tickets) [32]\n"
        "  --algorithm A  flatlist | demt                  [flatlist]\n"
        "  --seed S       RNG seed                         [1]\n"
        "Architecture and contracts: docs/SERVING.md; measured numbers:\n"
        "bench/serve_throughput (BENCH_serve.json, docs/BENCHMARKS.md).\n");
    return 0;
  }
  const int num_requests = static_cast<int>(args.get_int("requests", 200));
  const int n = static_cast<int>(args.get_int("n", 40));
  const int m = static_cast<int>(args.get_int("m", 32));
  const std::string algorithm_name = args.get_string("algorithm", "flatlist");
  const EngineAlgorithm algorithm = algorithm_name == "demt"
                                        ? EngineAlgorithm::Demt
                                        : EngineAlgorithm::FlatList;
  AsyncOptions options;
  options.shards = static_cast<int>(args.get_int("shards", 2));
  options.max_batch = static_cast<int>(args.get_int("max-batch", 16));
  options.flush_after_ms = args.get_double("flush-ms", 0.5);
  options.queue_capacity = static_cast<int>(args.get_int("capacity", 32));
  options.keep_schedules = false;  // metrics-only serving
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }

  std::printf(
      "async_server: %d requests (n=%d, m=%d), %s, %d shards, "
      "max_batch=%d, flush=%.2fms, capacity=%d, pool=%zu workers\n\n",
      num_requests, n, m, algorithm_name.c_str(), options.shards,
      options.max_batch, options.flush_after_ms, options.queue_capacity,
      shared_thread_pool().size());

  AsyncScheduler server(options);
  std::vector<std::pair<int, Ticket>> outstanding;
  RunningStats latency_ms;
  RunningStats cmax_stats;
  int rejected = 0;
  int completed = 0;
  EngineResult result;

  // Retire every finished ticket without blocking; frees admission slots.
  const auto reap = [&] {
    std::size_t kept = 0;
    for (auto& entry : outstanding) {
      const TicketStatus status = server.poll(entry.second);
      if (status == TicketStatus::Done || status == TicketStatus::Failed) {
        latency_ms.add(server.latency_seconds(entry.second) * 1e3);
        (void)server.take(entry.second, result);
        if (status == TicketStatus::Done) cmax_stats.add(result.cmax);
        ++completed;
      } else {
        outstanding[kept++] = entry;
      }
    }
    outstanding.resize(kept);
  };

  WallTimer timer;
  for (int i = 0; i < num_requests; ++i) {
    EngineRequest request;
    request.instance = &instances[static_cast<std::size_t>(i)];
    request.algorithm = algorithm;
    Ticket ticket = server.submit(request);
    if (!ticket.accepted()) {
      // Overloaded: an admission-bounded server says no instead of
      // queueing without bound (a real front-end would return 429). This
      // client applies backpressure — block on the oldest outstanding
      // ticket, retire finished work, then retry once.
      ++rejected;
      if (!outstanding.empty()) {
        (void)server.wait(outstanding.front().second);
        reap();
      }
      ticket = server.submit(request);
      if (!ticket.accepted()) continue;  // still saturated: drop
    }
    outstanding.emplace_back(i, ticket);
    if (outstanding.size() >= static_cast<std::size_t>(options.queue_capacity) / 2) {
      reap();
    }
  }
  server.drain();
  reap();
  const double elapsed = timer.seconds();

  const AsyncStats stats = server.stats();
  std::printf("streamed %d requests in %.2f ms: %d served, %d rejected "
              "(admission bound %d)\n",
              num_requests, elapsed * 1e3, completed, rejected,
              options.queue_capacity);
  std::printf("throughput %.1f req/s; latency ms mean %.3f [%.3f, %.3f]\n",
              static_cast<double>(completed) / elapsed, latency_ms.mean(),
              latency_ms.min(), latency_ms.max());
  std::printf("batches %llu (size-flush %llu, deadline-flush %llu, forced "
              "%llu); mean batch %.1f requests\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.size_flushes),
              static_cast<unsigned long long>(stats.deadline_flushes),
              static_cast<unsigned long long>(stats.forced_flushes),
              stats.batches > 0
                  ? static_cast<double>(stats.completed + stats.failed) /
                        static_cast<double>(stats.batches)
                  : 0.0);
  std::printf("schedule quality: mean cmax %.2f over %s requests\n",
              cmax_stats.mean(), algorithm_name.c_str());
  return 0;
}
