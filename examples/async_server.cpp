/// \file async_server.cpp
/// Server-style use of the async submit/poll layer: requests arrive one by
/// one (an open-loop arrival stream, not pre-assembled batches), each
/// submit returns a Ticket immediately, the scheduler coalesces them into
/// engine batches behind the caller's back, and a completion loop polls
/// tickets and retires results as they finish — including explicit
/// Rejected handling when the arrival rate overruns the admission bound.
///
/// The server runs two priority lanes (serve/admission.hpp): an
/// "interactive" lane (weight 3) serving the cheap FlatListPolicy and a
/// "batch" lane (weight 1, its own small in-flight bound) serving the full
/// DemtPolicy — the weighted-fair pop keeps interactive latency low while
/// batch work streams through, and the per-lane bound keeps slow batch
/// requests from monopolising the slot table.
///
///   ./async_server [--requests 200] [--n 40] [--m 32] [--shards 2]
///                  [--max-batch 16] [--flush-ms 0.5] [--capacity 32]
///                  [--batch-every N] [--seed 1]

#include <cstdio>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "serve/admission.hpp"
#include "serve/async_scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::printf(
        "async_server -- open-loop request stream through the async "
        "submit/poll serving layer,\nserved on two priority lanes "
        "(interactive flatlist, weight 3; batch demt, weight 1)\n\n"
        "  --requests N    requests to stream               [200]\n"
        "  --n N           tasks per instance               [40]\n"
        "  --m N           processors per instance          [32]\n"
        "  --shards K      engine shards                    [2]\n"
        "  --max-batch N   coalescing batch bound           [16]\n"
        "  --flush-ms X    deadline flush in ms             [0.5]\n"
        "  --capacity N    admission bound (small on purpose:\n"
        "                  overload shows Rejected tickets) [32]\n"
        "  --batch-every N every Nth request rides the batch\n"
        "                  (demt) lane                      [4]\n"
        "  --seed S        RNG seed                         [1]\n"
        "Architecture and contracts: docs/SERVING.md; measured numbers:\n"
        "bench/serve_throughput (BENCH_serve.json, docs/BENCHMARKS.md).\n");
    return 0;
  }
  const int num_requests = static_cast<int>(args.get_int("requests", 200));
  const int n = static_cast<int>(args.get_int("n", 40));
  const int m = static_cast<int>(args.get_int("m", 32));
  const int batch_every =
      std::max(1, static_cast<int>(args.get_int("batch-every", 4)));

  // Two priority lanes: interactive work is served 3x as often as batch
  // work when both are backlogged, and the batch lane's own in-flight
  // bound keeps the slow requests from hogging the slot table.
  LaneSpec interactive;
  interactive.name = "interactive";
  interactive.weight = 3;
  LaneSpec batch;
  batch.name = "batch";
  batch.weight = 1;
  batch.queue_capacity = 8;
  const WeightedLanesAdmission admission({interactive, batch});
  constexpr int kInteractiveLane = 0;
  constexpr int kBatchLane = 1;

  DemtOptions demt_options;
  const DemtPolicy demt_policy(demt_options);
  const FlatListPolicy flat_policy;

  AsyncOptions options;
  options.shards = static_cast<int>(args.get_int("shards", 2));
  options.max_batch = static_cast<int>(args.get_int("max-batch", 16));
  options.flush_after_ms = args.get_double("flush-ms", 0.5);
  options.queue_capacity = static_cast<int>(args.get_int("capacity", 32));
  options.keep_schedules = false;  // metrics-only serving
  options.admission = &admission;
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  const std::vector<WorkloadFamily> families = {
      WorkloadFamily::WeaklyParallel, WorkloadFamily::Cirne,
      WorkloadFamily::HighlyParallel, WorkloadFamily::Mixed};
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    instances.push_back(generate_instance(
        families[static_cast<std::size_t>(i) % families.size()], n, m, rng));
  }

  std::printf(
      "async_server: %d requests (n=%d, m=%d), every %dth on the batch "
      "lane, %d shards,\nmax_batch=%d, flush=%.2fms, capacity=%d, pool=%zu "
      "workers\n\n",
      num_requests, n, m, batch_every, options.shards, options.max_batch,
      options.flush_after_ms, options.queue_capacity,
      shared_thread_pool().size());

  AsyncScheduler server(options);
  std::vector<std::pair<int, Ticket>> outstanding;
  RunningStats lane_latency_ms[2];
  RunningStats cmax_stats;
  int rejected = 0;
  int completed = 0;
  EngineResult result;

  // Retire every finished ticket without blocking; frees admission slots.
  const auto reap = [&] {
    std::size_t kept = 0;
    for (auto& entry : outstanding) {
      const TicketStatus status = server.poll(entry.second);
      if (status == TicketStatus::Done || status == TicketStatus::Failed) {
        lane_latency_ms[entry.second.lane].add(
            server.latency_seconds(entry.second) * 1e3);
        (void)server.take(entry.second, result);
        if (status == TicketStatus::Done) cmax_stats.add(result.cmax);
        ++completed;
      } else {
        outstanding[kept++] = entry;
      }
    }
    outstanding.resize(kept);
  };

  WallTimer timer;
  for (int i = 0; i < num_requests; ++i) {
    // Every batch_every-th request is heavy DEMT work on the batch lane;
    // the rest are interactive FlatList requests.
    const bool heavy = i % batch_every == batch_every - 1;
    EngineRequest request;
    request.instance = &instances[static_cast<std::size_t>(i)];
    request.policy = heavy
                         ? static_cast<const SchedulingPolicy*>(&demt_policy)
                         : &flat_policy;
    const int lane = heavy ? kBatchLane : kInteractiveLane;
    Ticket ticket = server.submit(request, lane);
    if (!ticket.accepted()) {
      // Overloaded (global table or the lane's own bound): an
      // admission-bounded server says no instead of queueing without bound
      // (a real front-end would return 429). This client applies
      // backpressure — block on the oldest outstanding ticket, retire
      // finished work, then retry once.
      ++rejected;
      if (!outstanding.empty()) {
        (void)server.wait(outstanding.front().second);
        reap();
      }
      ticket = server.submit(request, lane);
      if (!ticket.accepted()) continue;  // still saturated: drop
    }
    outstanding.emplace_back(i, ticket);
    if (outstanding.size() >= static_cast<std::size_t>(options.queue_capacity) / 2) {
      reap();
    }
  }
  server.drain();
  reap();
  const double elapsed = timer.seconds();

  const AsyncStats stats = server.stats();
  std::printf("streamed %d requests in %.2f ms: %d served, %d rejected "
              "(admission bound %d)\n",
              num_requests, elapsed * 1e3, completed, rejected,
              options.queue_capacity);
  std::printf("throughput %.1f req/s\n",
              static_cast<double>(completed) / elapsed);
  for (int l = 0; l < server.num_lanes(); ++l) {
    const LaneStats& lane = stats.lanes[static_cast<std::size_t>(l)];
    std::printf(
        "lane %-12s (weight %d): %llu served, %llu rejected; latency ms "
        "mean %.3f [%.3f, %.3f]\n",
        lane.name.c_str(), server.lane_spec(l).weight,
        static_cast<unsigned long long>(lane.completed),
        static_cast<unsigned long long>(lane.rejected),
        lane_latency_ms[l].mean(), lane_latency_ms[l].min(),
        lane_latency_ms[l].max());
  }
  std::printf("batches %llu (size-flush %llu, deadline-flush %llu, forced "
              "%llu); mean batch %.1f requests\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.size_flushes),
              static_cast<unsigned long long>(stats.deadline_flushes),
              static_cast<unsigned long long>(stats.forced_flushes),
              stats.batches > 0
                  ? static_cast<double>(stats.completed + stats.failed) /
                        static_cast<double>(stats.batches)
                  : 0.0);
  std::printf("schedule quality: mean cmax %.2f over served requests\n",
              cmax_stats.mean());
  return 0;
}
