/// \file cluster_workload_study.cpp
/// Compare the bi-criteria algorithm against all five baselines on a
/// realistic Cirne–Berman workload — a miniature of the paper's Figure 6
/// that runs in seconds.
///
///   ./cluster_workload_study [--family cirne] [--n 60] [--m 64] [--runs 5]

#include <iostream>

#include "exp/report.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  set_log_level(LogLevel::Info);

  FigureConfig config;
  config.family = parse_family(args.get_string("family", "cirne"));
  config.title = "workload study (" +
                 std::string(family_name(config.family)) + ")";
  const int n = static_cast<int>(args.get_int("n", 60));
  config.ns = {n / 2, n};
  config.m = static_cast<int>(args.get_int("m", 64));
  config.runs = static_cast<int>(args.get_int("runs", 5));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040627));

  const FigureResult result = run_figure(config);
  print_figure(result, std::cout);

  std::cout << "reading: DEMT should post the lowest minsum ratio on this\n"
               "workload while staying near the pack on Cmax (paper Fig 6).\n";
  return 0;
}
