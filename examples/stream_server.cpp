/// \file stream_server.cpp
/// Server-style use of the streaming online path (paper §5 job mix as a
/// live workload): several clients drive open-loop Poisson arrival
/// processes of moldable, rigid, and divisible jobs; each client owns one
/// stream pinned to a shard, feeds arrivals in watermark windows as its
/// simulated clock advances, and retires batch decisions as they are
/// delivered — in order, per stream — while one-shot batch requests share
/// the same scheduler. Reported at the end: arrival throughput, decision
/// latency, per-kind job counts, mean flow time, and the divisible filler
/// utilisation of the idle holes.
///
/// With `--trace <file>` the clients replay a real SWF cluster log
/// instead: the log is compiled into a release-ordered tape
/// (docs/TRACES.md) and dealt round-robin across the streams, so every
/// client drives a release-ordered subsequence of the real arrival
/// process.
///
///   ./stream_server [--streams 4] [--arrivals 120] [--m 32]
///                   [--shards 2] [--gap 0.5] [--window 2.0]
///                   [--algorithm flatlist|demt] [--seed 1]
///                   [--trace log.swf] [--scale X] [--moldable]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/async_scheduler.hpp"
#include "trace/tape.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  if (args.help_requested()) {
    std::printf(
        "stream_server -- open-loop Poisson job-mix streams through the "
        "async serving layer\n\n"
        "  --streams K    concurrent client streams          [4]\n"
        "  --arrivals N   arrivals per stream                [120]\n"
        "  --m N          processors per stream machine      [32]\n"
        "  --shards K     engine shards                      [2]\n"
        "  --gap X        mean inter-arrival gap (Poisson)   [0.5]\n"
        "  --window X     watermark window per feed          [2.0]\n"
        "  --algorithm A  flatlist | demt                    [flatlist]\n"
        "  --seed S       RNG seed                           [1]\n"
        "  --trace F      replay an SWF log instead of the Poisson mix\n"
        "                 (dealt round-robin across the streams)\n"
        "  --scale X      trace clock compression (time_scale)  [1.0]\n"
        "  --moldable     compile trace jobs as moldable Downey tasks\n"
        "Streaming lifecycle and contracts: docs/ONLINE.md; trace\n"
        "format and scaling knobs: docs/TRACES.md; measured numbers:\n"
        "bench/online_stream (BENCH_online.json, docs/BENCHMARKS.md).\n");
    return 0;
  }
  const int num_streams = static_cast<int>(args.get_int("streams", 4));
  const int num_arrivals = static_cast<int>(args.get_int("arrivals", 120));
  const std::string trace_path = args.get_string("trace", "");
  int m = static_cast<int>(args.get_int("m", trace_path.empty() ? 32 : 0));
  const double mean_gap = args.get_double("gap", 0.5);
  const std::string algorithm_name = args.get_string("algorithm", "flatlist");
  AsyncOptions options;
  options.shards = static_cast<int>(args.get_int("shards", 2));
  options.max_streams = std::max(8, num_streams);
  AsyncScheduler server(options);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  // With --trace, compile the SWF log into a release-ordered tape
  // (docs/TRACES.md) before sizing the streams; the tape resolves the
  // machine from the log's MaxProcs header unless --m overrides it.
  Tape log_tape;
  if (!trace_path.empty()) {
    SwfTrace swf;
    load_swf_file(trace_path, swf);
    TapeOptions tape_options;
    tape_options.m = m;
    tape_options.time_scale = args.get_double("scale", 1.0);
    tape_options.moldable = args.has("moldable");
    compile_tape(swf, tape_options, log_tape);
    m = log_tape.m;
  }
  // Default watermark window: ~100 feed rounds over the trace's span.
  const double window = args.get_double(
      "window", trace_path.empty() ? 2.0
                                   : std::max(log_tape.span / 100.0, 1e-9));

  // One arrival tape per client: an open-loop Poisson process over the
  // §5 mix — mostly moldable, some rigid, some divisible filler — or,
  // with --trace, a round-robin deal of the compiled log (every client's
  // tape is a release-ordered subsequence of the real arrival process).
  struct Client {
    StreamTicket stream;
    std::vector<StreamArrival> tape;
    std::size_t fed = 0;        ///< arrivals already submitted
    double clock = 0.0;         ///< simulated wall clock == watermark
    std::vector<Ticket> feeds;  ///< outstanding feed tickets, in order
    int moldable = 0, rigid = 0, divisible = 0;
  };
  std::vector<Client> clients(static_cast<std::size_t>(num_streams));
  StreamOptions stream_options;
  stream_options.m = m;
  stream_options.offline_algorithm = algorithm_name == "demt"
                                         ? EngineAlgorithm::Demt
                                         : EngineAlgorithm::FlatList;
  if (!trace_path.empty()) {
    for (std::size_t i = 0; i < log_tape.arrivals.size(); ++i) {
      Client& client = clients[i % clients.size()];
      const StreamArrival& arrival = log_tape.arrivals[i];
      client.tape.push_back(arrival);
      if (arrival.task.min_procs() == arrival.task.max_procs()) {
        ++client.rigid;
      } else {
        ++client.moldable;
      }
    }
    for (auto& client : clients) {
      client.stream = server.open_stream(stream_options);
    }
  } else {
    for (auto& client : clients) {
      double release = 0.0;
      for (int i = 0; i < num_arrivals; ++i) {
        const double pick = rng.uniform();
        if (pick < 0.70) {
          Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, m, rng);
          client.tape.push_back(moldable_arrival(tmp.task(0), release));
          ++client.moldable;
        } else if (pick < 0.85) {
          client.tape.push_back(rigid_arrival(
              static_cast<int>(rng.uniform_int(1, std::max(1, m / 4))),
              rng.uniform(0.5, 3.0), rng.uniform(0.5, 2.0), release));
          ++client.rigid;
        } else {
          client.tape.push_back(divisible_arrival(
              rng.uniform(2.0, 10.0), rng.uniform(0.5, 2.0), release));
          ++client.divisible;
        }
        release += rng.exponential(mean_gap);
      }
      client.stream = server.open_stream(stream_options);
    }
  }
  int total_arrivals = 0;
  for (const auto& client : clients) {
    total_arrivals += static_cast<int>(client.tape.size());
  }

  if (trace_path.empty()) {
    std::printf(
        "stream_server: %d streams x %d arrivals (m=%d), %s, %d shards, "
        "gap=%.2f, window=%.2f, pool=%zu workers\n\n",
        num_streams, num_arrivals, m, algorithm_name.c_str(), options.shards,
        mean_gap, window, shared_thread_pool().size());
  } else {
    std::printf(
        "stream_server: replaying %s (%lld/%lld usable jobs, span %.0f) "
        "over %d streams (m=%d), %s, %d shards, window=%.2f, pool=%zu "
        "workers\n\n",
        trace_path.c_str(), static_cast<long long>(log_tape.jobs_kept()),
        static_cast<long long>(log_tape.jobs_in_trace), log_tape.span,
        num_streams, m, algorithm_name.c_str(), options.shards, window,
        shared_thread_pool().size());
  }

  RunningStats latency_ms;
  RunningStats flow;
  double divisible_work_placed = 0.0;
  int decided_jobs = 0, batches = 0, divisible_done = 0;
  StreamDelivery delivery;

  // Retire finished feed tickets in per-stream order (ordered delivery:
  // a later feed never completes before an earlier one on the same
  // stream, so draining from the front is enough).
  const auto reap = [&](Client& client) {
    std::size_t taken = 0;
    for (const Ticket& ticket : client.feeds) {
      const TicketStatus status = server.poll(ticket);
      if (status != TicketStatus::Done && status != TicketStatus::Failed) {
        break;
      }
      latency_ms.add(server.latency_seconds(ticket) * 1e3);
      if (server.take_stream(ticket, delivery)) {
        decided_jobs += delivery.num_jobs();
        batches = delivery.num_batches;
        divisible_done += static_cast<int>(delivery.divisible_done.size());
        for (int e = 0; e < delivery.num_jobs(); ++e) {
          // Flow of a decided job: completion minus release; the release
          // is not in the delivery, so approximate with the batch window
          // start (exact per-job flow comes from the result_ accessor at
          // engine level; the server keeps it simple).
          flow.add(delivery.completion[static_cast<std::size_t>(e)] -
                   delivery.placements.start[static_cast<std::size_t>(e)]);
        }
        for (const auto& chunk : delivery.chunks) {
          divisible_work_placed += chunk.duration;
        }
      }
      ++taken;
    }
    client.feeds.erase(client.feeds.begin(),
                       client.feeds.begin() + static_cast<std::ptrdiff_t>(taken));
  };

  // A rejected feed means the slot table is full: apply backpressure —
  // retire the client's oldest outstanding feed, then retry. Arrivals are
  // only marked fed once their feed is accepted (never dropped silently).
  int backpressure_stalls = 0;
  const auto submit_with_backpressure =
      [&](Client& client, std::size_t end) -> Ticket {
    for (;;) {
      const Ticket ticket = server.submit_stream(
          client.stream, client.tape.data() + client.fed,
          end - client.fed, client.clock);
      if (ticket.accepted()) return ticket;
      ++backpressure_stalls;
      if (!client.feeds.empty()) {
        (void)server.wait(client.feeds.front());
        reap(client);
      } else {
        // The slots are held by other clients: retire their finished
        // feeds so admission can reopen.
        for (auto& other : clients) reap(other);
      }
    }
  };

  WallTimer timer;
  bool feeding = true;
  while (feeding) {
    feeding = false;
    for (auto& client : clients) {
      if (client.fed >= client.tape.size()) continue;
      feeding = true;
      // Advance the client's simulated clock one watermark window and
      // feed every arrival it covers.
      client.clock += window;
      std::size_t end = client.fed;
      while (end < client.tape.size() &&
             client.tape[end].release <= client.clock) {
        ++end;
      }
      client.feeds.push_back(submit_with_backpressure(client, end));
      client.fed = end;
      reap(client);
    }
  }
  for (auto& client : clients) {
    for (;;) {
      const Ticket close = server.close_stream(client.stream);
      if (close.accepted()) {
        client.feeds.push_back(close);
        break;
      }
      ++backpressure_stalls;  // slot table full: retire finished feeds
      if (!client.feeds.empty()) {
        (void)server.wait(client.feeds.front());
        reap(client);
      } else {
        for (auto& other : clients) reap(other);
      }
    }
  }
  server.drain();
  for (auto& client : clients) reap(client);
  const double elapsed = timer.seconds();

  const AsyncStats stats = server.stats();
  int moldable = 0, rigid = 0, divisible = 0;
  for (const auto& client : clients) {
    moldable += client.moldable;
    rigid += client.rigid;
    divisible += client.divisible;
  }
  std::printf(
      "served %d arrivals (%d moldable, %d rigid, %d divisible) in "
      "%.2f ms: %.1f arrivals/s\n",
      total_arrivals, moldable, rigid, divisible, elapsed * 1e3,
      static_cast<double>(total_arrivals) / elapsed);
  std::printf(
      "decisions: %d batch jobs in ~%d batches/stream; feed latency ms "
      "mean %.3f [%.3f, %.3f]\n",
      decided_jobs, batches, latency_ms.mean(), latency_ms.min(),
      latency_ms.max());
  std::printf(
      "divisible filler: %d jobs completed, %.1f proc-time units poured "
      "into idle holes\n",
      divisible_done, divisible_work_placed);
  std::printf(
      "mean in-batch wait+run %.2f; streams %llu opened / %llu closed, "
      "%llu feeds, %llu engine batches, %d backpressure stalls\n",
      flow.mean(), static_cast<unsigned long long>(stats.streams_opened),
      static_cast<unsigned long long>(stats.streams_closed),
      static_cast<unsigned long long>(stats.stream_feeds),
      static_cast<unsigned long long>(stats.batches), backpressure_stalls);
  return 0;
}
