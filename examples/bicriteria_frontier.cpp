/// \file bicriteria_frontier.cpp
/// Trace the Cmax / weighted-minsum trade-off of the bi-criteria algorithm
/// on one instance by sweeping the shuffle acceptance budget: with a larger
/// makespan budget, the shuffle stage may accept schedules with better
/// minsum at a (bounded) makespan cost.
///
///   ./bicriteria_frontier [--family mixed] [--n 80] [--m 32] [--seed 3]

#include <cstdio>

#include "core/demt.hpp"
#include "dualapprox/cmax_estimator.hpp"
#include "lp/minsum_bound.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));
  const auto family = parse_family(args.get_string("family", "mixed"));
  const int n = static_cast<int>(args.get_int("n", 80));
  const int m = static_cast<int>(args.get_int("m", 32));

  const Instance instance = generate_instance(family, n, m, rng);
  const auto cmax_bound = estimate_cmax(instance);
  const auto minsum_bound_result = minsum_lower_bound(instance);

  std::printf("bi-criteria frontier: family=%s n=%d m=%d\n",
              std::string(family_name(family)).c_str(), n, m);
  std::printf("lower bounds: Cmax >= %.3f, sum wC >= %.1f\n\n",
              cmax_bound.lower_bound, minsum_bound_result.bound);
  std::printf("%8s  %10s  %10s  %10s  %10s\n", "budget", "Cmax", "ratio",
              "sum wC", "ratio");

  for (double budget : {1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 2.0}) {
    DemtOptions options;
    options.cmax_budget_factor = budget;
    options.shuffles = 64;  // explore aggressively at each budget
    const auto result = demt_schedule(instance, options);
    const double cmax = result.schedule.cmax();
    const double wc = result.schedule.weighted_completion_sum(instance);
    std::printf("%8.2f  %10.3f  %10.3f  %10.1f  %10.3f\n", budget, cmax,
                cmax / cmax_bound.lower_bound, wc,
                wc / minsum_bound_result.bound);
  }

  std::printf("\nreading: the minsum ratio should fall (or hold) as the "
              "budget loosens, while Cmax stays within budget x the "
              "unshuffled makespan.\n");
  return 0;
}
