/// \file schedule_instance_file.cpp
/// Miniature cluster front-end tool: read a serialized instance (or
/// generate one and save it), schedule it with a chosen algorithm, report
/// both criteria against the lower bounds, and optionally draw the Gantt.
///
///   # generate an instance file, then schedule it with two algorithms
///   ./schedule_instance_file --generate cirne --n 30 --m 16 --out /tmp/i.msi
///   ./schedule_instance_file --in /tmp/i.msi --algo DEMT --gantt
///   ./schedule_instance_file --in /tmp/i.msi --algo SAF

#include <fstream>
#include <iostream>
#include <sstream>

#include "dualapprox/cmax_estimator.hpp"
#include "exp/algorithms.hpp"
#include "lp/minsum_bound.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);

  if (args.has("generate")) {
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
    const auto family = parse_family(args.get_string("generate", "cirne"));
    const int n = static_cast<int>(args.get_int("n", 30));
    const int m = static_cast<int>(args.get_int("m", 16));
    const Instance instance = generate_instance(family, n, m, rng);
    const std::string path = args.get_string("out", "instance.msi");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    instance.save(out);
    std::cout << "wrote " << n << " " << family_name(family) << " tasks (m="
              << m << ") to " << path << "\n";
    return 0;
  }

  const std::string in_path = args.get_string("in", "");
  if (in_path.empty()) {
    std::cerr << "usage: --generate FAMILY --out FILE | --in FILE [--algo "
                 "NAME] [--gantt]\n";
    return 1;
  }
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "cannot read " << in_path << "\n";
    return 1;
  }
  const Instance instance = Instance::load(in);

  const std::string algo_name = args.get_string("algo", "DEMT");
  const auto algorithms = algorithms_by_name({algo_name});
  const Schedule schedule = algorithms.front().run(instance);
  require_valid(schedule, instance);

  const auto cmax_bound = estimate_cmax(instance);
  const auto minsum_bound_result = minsum_lower_bound(instance);
  std::cout << algo_name << " on " << instance.num_tasks() << " tasks / "
            << instance.procs() << " processors\n"
            << "  Cmax   = " << schedule.cmax() << "  (ratio "
            << schedule.cmax() / cmax_bound.lower_bound << ")\n"
            << "  sum wC = " << schedule.weighted_completion_sum(instance)
            << "  (ratio "
            << schedule.weighted_completion_sum(instance) /
                   minsum_bound_result.bound
            << ")\n";
  if (args.has("gantt")) std::cout << "\n" << render_gantt(schedule);
  return 0;
}
