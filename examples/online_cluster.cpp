/// \file online_cluster.cpp
/// On-line batch scheduling on a simulated cluster front-end (paper §2.2
/// and §5): jobs arrive over time through the submission queue, the
/// scheduler batches them with DEMT, and part of the machine is reserved
/// for a maintenance window. Compares DEMT batches against Gang batches on
/// the same arrival trace.
///
///   ./online_cluster [--jobs 40] [--m 32] [--rate 0.8] [--seed 1]

#include <cmath>
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/demt.hpp"
#include "sim/online.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace moldsched;
  const ArgParser args(argc, argv);
  const int num_jobs = static_cast<int>(args.get_int("jobs", 40));
  const int m = static_cast<int>(args.get_int("m", 32));
  const double rate = args.get_double("rate", 0.8);  // arrivals per time unit
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  // Poisson-ish arrival trace of Cirne–Berman jobs.
  std::vector<OnlineJob> jobs;
  double clock = 0.0;
  for (int i = 0; i < num_jobs; ++i) {
    Instance one = generate_instance(WorkloadFamily::Cirne, 1, m, rng);
    clock += -std::log(1.0 - rng.uniform()) / rate;  // exponential gap
    jobs.push_back(OnlineJob{one.task(0), clock});
  }

  // Maintenance: a quarter of the nodes offline during [10, 25).
  std::vector<NodeReservation> reservations;
  for (int p = 0; p < m / 4; ++p) {
    reservations.push_back(NodeReservation{p, 10.0, 25.0});
  }

  auto report = [&](const char* name, const OnlineResult& result) {
    RunningStats flow;
    for (double f : result.flow) flow.add(f);
    std::printf("%-12s batches=%3d cmax=%8.2f  mean flow=%7.2f  "
                "max flow=%7.2f  sum wC=%9.1f\n",
                name, result.num_batches, result.cmax, flow.mean(), flow.max(),
                result.weighted_completion_sum);
  };

  std::printf("online cluster: %d jobs, m=%d, arrival rate %.2f, "
              "%d nodes reserved during [10, 25)\n\n",
              num_jobs, m, rate, m / 4);

  const auto demt = online_batch_schedule(
      m, jobs,
      [](const Instance& instance) { return demt_schedule(instance).schedule; },
      reservations);
  report("DEMT", demt);

  const auto gang = online_batch_schedule(
      m, jobs,
      [](const Instance& instance) { return gang_schedule(instance); },
      reservations);
  report("Gang", gang);

  const auto saf = online_batch_schedule(
      m, jobs,
      [](const Instance& instance) {
        return list_graham_schedule(instance, ListOrder::SmallestAreaFirst);
      },
      reservations);
  report("SAF", saf);

  std::printf("\nreading: batching with DEMT keeps mean flow competitive "
              "while the reservation window shrinks the machine.\n");
  return 0;
}
