#include "lp/minsum_bound.hpp"

#include <gtest/gtest.h>

#include "dualapprox/cmax_estimator.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

Instance ideal_tasks(int n, int m, double seq) {
  Instance instance(m);
  for (int i = 0; i < n; ++i) {
    std::vector<double> times;
    for (int k = 1; k <= m; ++k) times.push_back(seq / k);
    instance.add_task(MoldableTask(std::move(times), 1.0));
  }
  return instance;
}

TEST(SquashedArea, SingleTask) {
  Instance instance(4);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.6}, 2.0));
  // min work = 8 (1 proc); bound = w * 8 / 4 = 4.
  EXPECT_DOUBLE_EQ(squashed_area_bound(instance), 4.0);
}

TEST(SquashedArea, PairsLargeWeightsWithEarlyPositions) {
  Instance instance(1);
  instance.add_task(MoldableTask({4.0}, 1.0));  // area 4
  instance.add_task(MoldableTask({1.0}, 9.0));  // area 1
  // Sorted areas: 1, 4 -> prefixes 1, 5. Weights descending: 9, 1.
  // Bound = 9*1 + 1*5 = 14. (On one machine the true optimum, Smith order,
  // is also 9*1 + 1*5 = 14 here.)
  EXPECT_DOUBLE_EQ(squashed_area_bound(instance), 14.0);
}

TEST(SquashedArea, LowerBoundsGangOnIdealTasks) {
  const Instance instance = ideal_tasks(6, 4, 8.0);
  // Ideal tasks: gang of each task back to back is optimal; its minsum is
  // sum_k k * (8/4) = 2 * 21 = 42. The squashed bound equals it exactly.
  EXPECT_NEAR(squashed_area_bound(instance), 42.0, 1e-9);
}

TEST(MinsumBound, OptimalStatusOnGeneratedInstances) {
  Rng rng(3);
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 15, 8, rng);
    const auto result = minsum_lower_bound(instance);
    EXPECT_EQ(result.status, LpStatus::Optimal) << family_name(family);
    EXPECT_GT(result.bound, 0.0);
    EXPECT_GT(result.num_vars, 0);
    EXPECT_GT(result.num_rows, 0);
  }
}

TEST(MinsumBound, AtLeastSquashedArea) {
  // The final bound takes the max with the squashed-area bound, so this
  // holds by construction; what we check is that the LP part does not
  // corrupt it.
  Rng rng(4);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 20, 8, rng);
  const auto result = minsum_lower_bound(instance);
  EXPECT_GE(result.bound, squashed_area_bound(instance) - 1e-9);
}

TEST(MinsumBound, SingleTaskBoundIsReasonable) {
  Instance instance(4);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.6}, 2.0));
  const auto result = minsum_lower_bound(instance);
  // The single task cannot finish before its fastest time 3.6 with weight 2
  // => true optimum is 7.2; the bound must stay below but positive.
  EXPECT_GT(result.bound, 0.0);
  EXPECT_LE(result.bound, 7.2 + 1e-9);
}

TEST(MinsumBound, TightensWithLargerLoad) {
  Rng rng(5);
  const Instance small =
      generate_instance(WorkloadFamily::HighlyParallel, 10, 8, rng);
  const Instance large =
      generate_instance(WorkloadFamily::HighlyParallel, 40, 8, rng);
  const auto b_small = minsum_lower_bound(small);
  const auto b_large = minsum_lower_bound(large);
  EXPECT_GT(b_large.bound, b_small.bound);
}

TEST(MinsumBound, ExplicitGridMatchesConvenienceOverload) {
  Rng rng(6);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 12, 8, rng);
  const auto est = estimate_cmax(instance);
  const TimeGrid grid(est.estimate, instance.tmin());
  const auto a = minsum_lower_bound(instance, grid);
  const auto b = minsum_lower_bound(instance);
  EXPECT_NEAR(a.bound, b.bound, 1e-6 * std::max(1.0, a.bound));
}

TEST(MinsumBound, WeightsScaleTheBound) {
  Instance light(4), heavy(4);
  for (int i = 0; i < 5; ++i) {
    light.add_task(MoldableTask({4.0, 2.5, 2.0, 1.8}, 1.0));
    heavy.add_task(MoldableTask({4.0, 2.5, 2.0, 1.8}, 3.0));
  }
  const auto lb_light = minsum_lower_bound(light);
  const auto lb_heavy = minsum_lower_bound(heavy);
  EXPECT_NEAR(lb_heavy.bound, 3.0 * lb_light.bound,
              1e-6 * lb_heavy.bound + 1e-9);
}

}  // namespace
}  // namespace moldsched
