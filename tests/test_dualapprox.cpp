#include "dualapprox/cmax_estimator.hpp"
#include "dualapprox/dual_test.hpp"

#include <gtest/gtest.h>

#include "workloads/generators.hpp"

namespace moldsched {
namespace {

Instance ideal_tasks(int n, int m, double seq) {
  Instance instance(m);
  for (int i = 0; i < n; ++i) {
    std::vector<double> times;
    for (int k = 1; k <= m; ++k) times.push_back(seq / k);
    instance.add_task(MoldableTask(std::move(times), 1.0));
  }
  return instance;
}

TEST(DualTest, AcceptsGenerousGuess) {
  const Instance instance = ideal_tasks(4, 4, 8.0);
  const auto result = dual_test(instance, 100.0);
  EXPECT_TRUE(result.feasible);
}

TEST(DualTest, RejectsImpossibleGuess) {
  // 4 ideal tasks of work 8 on 4 procs: total work 32, m*lambda = 4*1 = 4.
  const Instance instance = ideal_tasks(4, 4, 8.0);
  const auto result = dual_test(instance, 1.0);
  EXPECT_FALSE(result.feasible);
}

TEST(DualTest, RejectsWhenATaskCannotMeetLambda) {
  Instance instance(2);
  instance.add_task(MoldableTask({10.0, 9.0}, 1.0));  // min time 9
  EXPECT_FALSE(dual_test(instance, 5.0).feasible);
}

TEST(DualTest, MonotoneInLambda) {
  Rng rng(42);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 30, 16, rng);
  // Once accepted, every larger lambda must also be accepted.
  bool accepted = false;
  for (double lambda = 0.25; lambda < 600.0; lambda *= 1.4) {
    const bool now = dual_test(instance, lambda).feasible;
    if (accepted) EXPECT_TRUE(now) << "regressed at lambda=" << lambda;
    accepted = accepted || now;
  }
  EXPECT_TRUE(accepted);
}

TEST(DualTest, AssignmentCoversAllTasksWhenFeasible) {
  Rng rng(7);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 20, 8, rng);
  const auto estimate = estimate_cmax(instance);
  const auto& assignment = estimate.partition.assignment;
  ASSERT_EQ(assignment.size(), 20u);
  for (const auto& a : assignment) {
    EXPECT_GE(a.allotment, 1);
    EXPECT_LE(a.allotment, 8);
  }
}

TEST(DualTest, ShelfOneAllotmentsFitTheMachine) {
  Rng rng(8);
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 40, 16, rng);
    const auto estimate = estimate_cmax(instance);
    int shelf1 = 0;
    for (const auto& a : estimate.partition.assignment) {
      if (a.shelf == Shelf::Large) shelf1 += a.allotment;
    }
    EXPECT_LE(shelf1, 16) << family_name(family);
  }
}

TEST(DualTest, ShelfDurationsRespectDeadlines) {
  Rng rng(9);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 30, 12, rng);
  const auto estimate = estimate_cmax(instance);
  const double lambda = estimate.estimate;
  for (int i = 0; i < instance.num_tasks(); ++i) {
    const auto& a = estimate.partition.assignment[static_cast<std::size_t>(i)];
    const double t = instance.task(i).time(a.allotment);
    if (a.shelf == Shelf::Large) {
      EXPECT_LE(t, lambda * (1.0 + 1e-9));
    } else {
      EXPECT_LE(t, lambda / 2.0 * (1.0 + 1e-9));
    }
  }
}

TEST(DualTest, TotalWorkIsWithinBoundWhenAccepted) {
  Rng rng(10);
  const Instance instance =
      generate_instance(WorkloadFamily::WeaklyParallel, 25, 8, rng);
  const auto estimate = estimate_cmax(instance);
  EXPECT_LE(estimate.partition.total_work,
            8.0 * estimate.estimate * (1.0 + 1e-9));
}

TEST(DualTest, Validation) {
  const Instance instance = ideal_tasks(1, 2, 1.0);
  EXPECT_THROW(dual_test(instance, 0.0), std::invalid_argument);
  EXPECT_THROW(dual_test(instance, -2.0), std::invalid_argument);
}

TEST(CmaxEstimator, IdealTasksTightBound) {
  // n ideal tasks of work w each on m procs: optimal makespan = n*w/m
  // (perfect malleability). The dual bound must bracket it closely.
  const Instance instance = ideal_tasks(8, 4, 6.0);  // total work 48, opt 12
  const auto estimate = estimate_cmax(instance);
  EXPECT_NEAR(estimate.lower_bound, 12.0, 0.01);
  EXPECT_GE(estimate.estimate, estimate.lower_bound * (1.0 - 1e-9));
  EXPECT_LE(estimate.estimate, 12.5);
}

TEST(CmaxEstimator, SingleTask) {
  Instance instance(4);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.5}, 1.0));
  const auto estimate = estimate_cmax(instance);
  // One task: optimum is its fastest execution time.
  EXPECT_NEAR(estimate.lower_bound, 3.5, 1e-6);
}

TEST(CmaxEstimator, LowerBoundNeverExceedsEstimate) {
  Rng rng(11);
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 30, 10, rng);
    const auto estimate = estimate_cmax(instance);
    EXPECT_LE(estimate.lower_bound, estimate.estimate * (1.0 + 1e-9))
        << family_name(family);
    EXPECT_GT(estimate.lower_bound, 0.0);
  }
}

TEST(CmaxEstimator, SearchPrecision) {
  Rng rng(12);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 40, 16, rng);
  const auto tight = estimate_cmax(instance, 1e-6);
  EXPECT_LE(tight.estimate - tight.lower_bound, 2e-6 * tight.estimate);
}

TEST(CmaxEstimator, Validation) {
  Instance empty(4);
  EXPECT_THROW(estimate_cmax(empty), std::invalid_argument);
  const Instance instance = ideal_tasks(1, 2, 1.0);
  EXPECT_THROW(estimate_cmax(instance, 0.0), std::invalid_argument);
}

TEST(CmaxEstimator, RigidTasksSupported) {
  Instance instance(4);
  instance.add_task(MoldableTask({8.0, 5.0, 4.0, 3.5}, 1.0, /*min_procs=*/3));
  instance.add_task(MoldableTask({6.0, 3.0, 2.5, 2.0}, 1.0));
  const auto estimate = estimate_cmax(instance);
  EXPECT_GT(estimate.estimate, 0.0);
  const auto& a0 = estimate.partition.assignment[0];
  EXPECT_GE(a0.allotment, 3);
}

TEST(DualTest, WorkspaceFormBitIdenticalToPlainOverloads) {
  Rng rng(17);
  DualTestWorkspace ws;  // deliberately shared across every call below
  DualTestResult pooled;
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 25, 12, rng);
    const InstanceAllotments tables(instance);
    const auto tight = estimate_cmax(instance).estimate;
    for (double factor : {0.4, 0.8, 1.0, 1.3, 2.5}) {
      const double lambda = tight * factor;
      const auto plain = dual_test(instance, lambda, tables);
      dual_test_into(instance, lambda, tables, ws, pooled);
      EXPECT_EQ(pooled.feasible, plain.feasible);
      EXPECT_EQ(pooled.total_work, plain.total_work);
      ASSERT_EQ(pooled.assignment.size(), plain.assignment.size());
      for (std::size_t i = 0; i < plain.assignment.size(); ++i) {
        EXPECT_EQ(pooled.assignment[i].shelf, plain.assignment[i].shelf);
        EXPECT_EQ(pooled.assignment[i].allotment,
                  plain.assignment[i].allotment);
      }
    }
  }
}

TEST(CmaxEstimator, WorkspaceFormKeepsTheSearchTrajectory) {
  Rng rng(18);
  DualTestWorkspace ws;
  for (auto family : all_families()) {
    const Instance instance = generate_instance(family, 30, 10, rng);
    const InstanceAllotments tables(instance);
    const auto plain = estimate_cmax(instance, 1e-4, tables);
    const auto pooled = estimate_cmax(instance, 1e-4, tables, ws);
    EXPECT_EQ(pooled.estimate, plain.estimate) << family_name(family);
    EXPECT_EQ(pooled.lower_bound, plain.lower_bound);
    // The regression anchor: pooling must not change the search at all.
    EXPECT_EQ(pooled.dual_tests, plain.dual_tests);
    ASSERT_EQ(pooled.partition.assignment.size(),
              plain.partition.assignment.size());
    for (std::size_t i = 0; i < plain.partition.assignment.size(); ++i) {
      EXPECT_EQ(pooled.partition.assignment[i].allotment,
                plain.partition.assignment[i].allotment);
    }
  }
}

}  // namespace
}  // namespace moldsched
