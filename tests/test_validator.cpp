#include "sched/validator.hpp"

#include <gtest/gtest.h>

namespace moldsched {
namespace {

Instance make_instance() {
  Instance instance(4);
  instance.add_task(MoldableTask({4.0, 2.5, 2.0, 1.8}, 1.0));
  instance.add_task(MoldableTask({3.0, 1.5, 1.2, 1.0}, 2.0));
  return instance;
}

TEST(Validator, AcceptsFeasibleSchedule) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 2.5, {0, 1});
  schedule.place(1, 0.0, 1.5, {2, 3});
  const auto report = validate_schedule(schedule, instance);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_NO_THROW(require_valid(schedule, instance));
}

TEST(Validator, DetectsUnassignedTask) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 4.0, {0});
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.errors[0].find("not assigned"), std::string::npos);
}

TEST(Validator, DetectsProcessorOverlap) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 4.0, {0});
  schedule.place(1, 2.0, 3.0, {0});  // overlaps task 0 on processor 0
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.errors[0].find("overlaps"), std::string::npos);
  EXPECT_THROW(require_valid(schedule, instance), std::runtime_error);
}

TEST(Validator, BackToBackIsNotOverlap) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 4.0, {0});
  schedule.place(1, 4.0, 3.0, {0});  // starts exactly when task 0 ends
  EXPECT_TRUE(validate_schedule(schedule, instance).ok);
}

TEST(Validator, DetectsDurationMismatch) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 99.0, {0});  // p(1) is 4.0
  schedule.place(1, 0.0, 1.5, {2, 3});
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.errors[0].find("duration"), std::string::npos);
}

TEST(Validator, DurationCheckCanBeDisabled) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 99.0, {0});
  schedule.place(1, 0.0, 1.5, {2, 3});
  ValidationOptions options;
  options.check_durations = false;
  EXPECT_TRUE(validate_schedule(schedule, instance, options).ok);
}

TEST(Validator, DetectsDisallowedAllotment) {
  Instance instance(4);
  instance.add_task(MoldableTask({4.0, 2.5, 2.0, 1.8}, 1.0, /*min_procs=*/2));
  Schedule schedule(4, 1);
  schedule.place(0, 0.0, 4.0, {0});  // 1 proc < min_procs
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.errors[0].find("allotment"), std::string::npos);
}

TEST(Validator, ChecksReleaseDates) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 2.5, {0, 1});
  schedule.place(1, 0.0, 1.5, {2, 3});
  ValidationOptions options;
  options.releases = {1.0, 0.0};  // task 0 released at t=1 but starts at 0
  const auto report = validate_schedule(schedule, instance, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.errors[0].find("release"), std::string::npos);
}

TEST(Validator, ShapeMismatchIsAnError) {
  const Instance instance = make_instance();
  Schedule wrong_tasks(4, 3);
  EXPECT_FALSE(validate_schedule(wrong_tasks, instance).ok);
  Schedule wrong_procs(5, 2);
  EXPECT_FALSE(validate_schedule(wrong_procs, instance).ok);
}

TEST(Validator, MultipleErrorsAllReported) {
  const Instance instance = make_instance();
  Schedule schedule(4, 2);
  schedule.place(0, 0.0, 9.0, {0});   // bad duration
  schedule.place(1, 0.0, 9.0, {0});   // bad duration AND overlap
  const auto report = validate_schedule(schedule, instance);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.errors.size(), 3u);
}

}  // namespace
}  // namespace moldsched
