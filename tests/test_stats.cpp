#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace moldsched {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RatioOfSums, JainAggregation) {
  // ratio-of-sums is NOT the mean of ratios: (10+30)/(10+10) = 2, while the
  // mean of per-run ratios is (1 + 3)/2 = 2 here, but with uneven
  // references they differ.
  RatioOfSums r;
  r.add(10.0, 10.0);  // ratio 1
  r.add(30.0, 10.0);  // ratio 3
  EXPECT_DOUBLE_EQ(r.ratio(), 2.0);
  EXPECT_DOUBLE_EQ(r.min_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.max_ratio(), 3.0);

  RatioOfSums uneven;
  uneven.add(2.0, 1.0);    // ratio 2
  uneven.add(100.0, 100.0);  // ratio 1
  EXPECT_NEAR(uneven.ratio(), 102.0 / 101.0, 1e-12);
  EXPECT_NE(uneven.ratio(), 1.5);  // mean of ratios would be 1.5
}

TEST(RatioOfSums, RejectsNonPositiveReference) {
  RatioOfSums r;
  EXPECT_THROW(r.add(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(r.add(1.0, -2.0), std::invalid_argument);
}

TEST(RatioOfSums, MergeAccumulates) {
  RatioOfSums a, b;
  a.add(10.0, 5.0);
  b.add(20.0, 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.ratio(), 3.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, Validation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched
