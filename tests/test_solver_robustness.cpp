/// Failure-path and robustness tests: iteration limits, solver fallbacks,
/// and metric-consistency invariants that the happy-path suites skip.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/demt.hpp"
#include "lp/minsum_bound.hpp"
#include "lp/simplex.hpp"
#include "sim/online.hpp"
#include "workloads/generators.hpp"

namespace moldsched {
namespace {

TEST(SolverRobustness, SimplexIterationLimitReported) {
  LpProblem lp;
  lp.num_vars = 6;
  lp.objective.assign(6, -1.0);
  lp.upper.assign(6, 5.0);
  for (int r = 0; r < 4; ++r) {
    LpProblem::Row row;
    for (int j = 0; j < 6; ++j) row.coeffs.emplace_back(j, 1.0 + j * 0.1 + r);
    row.rel = Relation::LessEq;
    row.rhs = 10.0;
    lp.rows.push_back(std::move(row));
  }
  SimplexOptions options;
  options.max_iterations = 1;  // cannot possibly finish
  const auto solution = solve_lp(lp, options);
  EXPECT_EQ(solution.status, LpStatus::IterationLimit);
}

TEST(SolverRobustness, MinsumBoundFallsBackToSquashedArea) {
  Rng rng(5);
  const Instance instance =
      generate_instance(WorkloadFamily::Mixed, 20, 8, rng);
  SimplexOptions options;
  options.max_iterations = 1;  // force the LP to fail
  const auto est_grid = TimeGrid(10.0, instance.tmin());
  const auto result = minsum_lower_bound(instance, est_grid, options);
  EXPECT_EQ(result.status, LpStatus::IterationLimit);
  EXPECT_DOUBLE_EQ(result.bound, squashed_area_bound(instance));
}

TEST(SolverRobustness, SimplexBlandModeStillSolves) {
  // Force Bland pricing from the first iteration; optimum must not change.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 2.0}}, Relation::LessEq, 4.0});
  lp.rows.push_back({{{0, 3.0}, {1, 1.0}}, Relation::LessEq, 6.0});
  SimplexOptions options;
  options.bland_after = 0;
  const auto solution = solve_lp(lp, options);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, -14.0 / 5.0, 1e-9);
}

TEST(SolverRobustness, SimplexManyRedundantRows) {
  // 30 copies of the same constraint: heavy degeneracy.
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {-2.0, -3.0, -1.0};
  for (int r = 0; r < 30; ++r) {
    lp.rows.push_back(
        {{{0, 1.0}, {1, 1.0}, {2, 1.0}}, Relation::LessEq, 6.0});
  }
  const auto solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  EXPECT_NEAR(solution.objective, -18.0, 1e-8);  // all budget on x1
}

TEST(SolverRobustness, DemtTightDualEps) {
  Rng rng(6);
  const Instance instance =
      generate_instance(WorkloadFamily::Cirne, 20, 8, rng);
  DemtOptions coarse, fine;
  coarse.dual_eps = 0.2;
  fine.dual_eps = 1e-7;
  const auto a = demt_schedule(instance, coarse);
  const auto b = demt_schedule(instance, fine);
  // Both valid; the fine estimate is never larger than the coarse one.
  EXPECT_LE(b.diag.cmax_estimate, a.diag.cmax_estimate * (1.0 + 1e-9));
}

TEST(SolverRobustness, OnlineMetricSumsAreConsistent) {
  Rng rng(7);
  std::vector<OnlineJob> jobs;
  double release = 0.0;
  for (int i = 0; i < 15; ++i) {
    Instance tmp = generate_instance(WorkloadFamily::Mixed, 1, 8, rng);
    jobs.push_back({tmp.task(0), release});
    release += rng.uniform(0.0, 1.5);
  }
  const auto result = online_batch_schedule(
      8, jobs,
      [](const Instance& instance) { return demt_schedule(instance).schedule; });
  double wc = 0.0, wf = 0.0, cmax = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    wc += jobs[j].task.weight() * result.completion[j];
    wf += jobs[j].task.weight() * result.flow[j];
    cmax = std::max(cmax, result.completion[j]);
    EXPECT_NEAR(result.completion[j],
                result.schedule.placement(static_cast<int>(j)).finish(), 1e-9);
    EXPECT_GE(result.flow[j], 0.0);
  }
  EXPECT_NEAR(result.weighted_completion_sum, wc, 1e-6);
  EXPECT_NEAR(result.weighted_flow_sum, wf, 1e-6);
  EXPECT_NEAR(result.cmax, cmax, 1e-9);
}

TEST(SolverRobustness, ListGrahamCustomEps) {
  Rng rng(8);
  const Instance instance =
      generate_instance(WorkloadFamily::HighlyParallel, 20, 8, rng);
  // A very coarse dual search still yields a valid schedule.
  const Schedule schedule =
      list_graham_schedule(instance, ListOrder::ShelfOrder, /*dual_eps=*/0.5);
  EXPECT_TRUE(schedule.complete());
}

TEST(SolverRobustness, LpBoundScalesLinearlyWithMachineSize) {
  // Doubling m at fixed workload cannot increase the minsum lower bound.
  Rng rng(9);
  const Instance small = generate_instance(WorkloadFamily::Mixed, 16, 8, rng);
  Instance large(16);
  for (const auto& task : small.tasks()) {
    std::vector<double> times = task.times();
    times.resize(16, times.back());  // flat extension: no extra speedup
    large.add_task(MoldableTask(std::move(times), task.weight()));
  }
  const auto lb_small = minsum_lower_bound(small);
  const auto lb_large = minsum_lower_bound(large);
  EXPECT_LE(lb_large.bound, lb_small.bound * (1.0 + 1e-6));
}

}  // namespace
}  // namespace moldsched
