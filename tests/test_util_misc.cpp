#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/strfmt.hpp"
#include "util/timer.hpp"

namespace moldsched {
namespace {

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("n=%d r=%.2f s=%s", 7, 1.5, "x"), "n=7 r=1.50 s=x");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strfmt, LongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(strfmt("%s", big.c_str()).size(), 500u);
}

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Cli, ParsesKeyValueForms) {
  // Note: a bare `--flag` followed by a non-option token would consume the
  // token as its value (greedy `--key value` form); boolean flags therefore
  // go last or use `--flag=1`.
  const char* argv[] = {"prog", "--n", "42", "--eps=0.5", "pos", "--flag"};
  ArgParser args(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, GreedyValueConsumption) {
  const char* argv[] = {"prog", "--flag", "pos"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_string("flag", ""), "pos");
  EXPECT_TRUE(args.positional().empty());
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_EQ(args.get_int("missing", 9), 9);
  EXPECT_EQ(args.get_string("missing", "d"), "d");
  EXPECT_FALSE(args.has("missing"));
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--sizes", "25,50,100"};
  ArgParser args(3, argv);
  const auto sizes = args.get_int_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 25);
  EXPECT_EQ(sizes[1], 50);
  EXPECT_EQ(sizes[2], 100);
  const auto fallback = args.get_int_list("other", {1, 2});
  EXPECT_EQ(fallback.size(), 2u);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a", "true", "--b", "0", "--c", "off"};
  ArgParser args(7, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_info("dropped (not asserted, just must not crash)");
  set_log_level(before);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  // Busy-wait a tiny amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace moldsched
